# A relay-free loop: legal only because buffered shells register their
# inputs (the minimum-memory registers live inside the shells).
buffered-shell  a  router in=2 out=2
buffered-shell  b  identity
source  in
sink    out

connect a:0  -> b:0
connect b:0  -> a:0
connect in:0 -> a:1
connect a:1  -> out:0
