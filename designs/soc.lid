# A small SoC datapath: splitter, two filter paths of unequal floorplan
# distance, mixer, post-processing — the paper's motivating scenario.
source  adc
shell   split  identity fanout=2
shell   fir    delay k=2
shell   eq     accumulator
shell   mix    join arity=2 op=sum
shell   post   identity
relay   w1 full
relay   w2 full
relay   w3 full
relay   w4 full
relay   w5 half
relay   w6 half
sink    dac  stops=every:7:3

connect adc:0   -> split:0
connect split:0 -> w1:0
connect w1:0    -> w2:0
connect w2:0    -> fir:0
connect split:1 -> w3:0
connect w3:0    -> eq:0
connect fir:0   -> w6:0
connect w6:0    -> mix:0
connect eq:0    -> w4:0
connect w4:0    -> mix:1
connect mix:0   -> w5:0
connect w5:0    -> post:0
connect post:0  -> dac:0
