#!/usr/bin/env bash
# Regenerate every paper artefact (figures, claims, ablations) in order.
# Criterion cost benches are separate: `cargo bench --workspace`.
set -uo pipefail

BINS=(
  fig1_feedforward
  fig2_feedback
  exp_tree
  exp_reconvergent
  exp_feedback
  exp_composition
  exp_variant_speedup
  exp_equalization
  exp_transient
  exp_verify_safety
  exp_deadlock
  exp_ablation_equalizer
  exp_ablation_memory
  exp_queue_sizing
  exp_clock_gating
  exp_batch_sweep
)

cargo build --release -p lip-bench --bins || exit 1

FAILED=()
for bin in "${BINS[@]}"; do
  echo
  echo "################################################################"
  echo "## $bin"
  echo "################################################################"
  if ! cargo run --release -q -p lip-bench --bin "$bin"; then
    echo "!! $bin exited non-zero" >&2
    FAILED+=("$bin")
  fi
done

echo
if [ "${#FAILED[@]}" -ne 0 ]; then
  echo "################################################################" >&2
  echo "## FAILED experiments: ${FAILED[*]}" >&2
  echo "################################################################" >&2
  exit 1
fi
echo "All ${#BINS[@]} experiments completed successfully."
