#!/usr/bin/env bash
# Regenerate every paper artefact (figures, claims, ablations).
# Criterion cost benches are separate: `cargo bench --workspace`.
#
# Independent experiment bins run concurrently, bounded by LIP_JOBS
# (default: nproc). Timing-gated bins (the ones asserting wall-clock
# speedups) run serially afterwards so the concurrent batch cannot
# distort their measurements. Per-bin output is captured to a log file
# and replayed in declaration order, so the summary is stable and
# byte-comparable no matter how the concurrent phase interleaved.
set -uo pipefail

# Bins safe to run concurrently: pure result-correctness checks.
CONCURRENT_BINS=(
  fig1_feedforward
  fig2_feedback
  exp_tree
  exp_reconvergent
  exp_feedback
  exp_composition
  exp_variant_speedup
  exp_equalization
  exp_transient
  exp_verify_safety
  exp_deadlock
  exp_ablation_equalizer
  exp_ablation_memory
  exp_queue_sizing
  exp_clock_gating
  exp_static_analysis
  exp_model_check
  exp_profile
)

# Bins that assert wall-clock gates: must own the machine.
# exp_delta rides here too — its regression sentinel builds noise bands
# from wall-clock history committed during the run, so concurrent load
# would widen (or bust) the bands it is asserting against.
TIMED_BINS=(
  exp_batch_sweep
  exp_parallel_sweep
  exp_runtime_obs
  exp_incremental
  exp_delta
)

REPORT_DIR="${LIP_REPORT_DIR:-target/reports}"
LOG_DIR="$REPORT_DIR/logs"
TARGET_DIR="${CARGO_TARGET_DIR:-target}"
JOBS="${LIP_JOBS:-$(nproc 2>/dev/null || echo 1)}"
case "$JOBS" in
  ''|*[!0-9]*|0) echo "!! LIP_JOBS must be a positive integer, got '$JOBS'" >&2; exit 1 ;;
esac

mkdir -p "$LOG_DIR"
cargo build --release -p lip-bench -p lip-delta --bins || exit 1

# Artefact schema versions come from the single source of truth
# (lip_obs::schema, surfaced by `lip_diff schema`) instead of being
# hardcoded here and drifting from the emitters.
DIFF_BIN="$TARGET_DIR/release/lip_diff"
EXPECTED_SCHEMA=$("$DIFF_BIN" schema report) || exit 1
EXPECTED_BLAME_SCHEMA=$("$DIFF_BIN" schema blame) || exit 1
EXPECTED_DELTA_SCHEMA=$("$DIFF_BIN" schema delta) || exit 1

# Validate one report JSON: present, and carrying the expected
# schema_version (second arg overrides, for the independently-versioned
# blame artefacts). Uses jq when available, grep otherwise.
check_report() {
  local file="$1"
  local expected="${2:-$EXPECTED_SCHEMA}"
  if [ ! -f "$file" ]; then
    echo "!! missing report: $file" >&2
    return 1
  fi
  if command -v jq >/dev/null 2>&1; then
    local v
    v=$(jq -r '.schema_version' "$file") || return 1
    [ "$v" = "$expected" ] || {
      echo "!! $file: schema_version $v != $expected" >&2
      return 1
    }
  else
    grep -q "\"schema_version\": $expected" "$file" || {
      echo "!! $file: schema_version $expected not found" >&2
      return 1
    }
  fi
}

# Run one bin (pre-built, invoked directly so concurrent runs do not
# contend on cargo's target-dir lock), capturing output and exit status.
run_bin() {
  local bin="$1"
  if "$TARGET_DIR/release/$bin" >"$LOG_DIR/$bin.log" 2>&1; then
    echo ok >"$LOG_DIR/$bin.status"
  else
    echo fail >"$LOG_DIR/$bin.status"
  fi
}

# ---- Phase 1: concurrent batch, bounded by $JOBS in-flight jobs. ----
echo "running ${#CONCURRENT_BINS[@]} experiments with up to $JOBS concurrent job(s)..."
active=0
for bin in "${CONCURRENT_BINS[@]}"; do
  run_bin "$bin" &
  active=$((active + 1))
  if [ "$active" -ge "$JOBS" ]; then
    wait -n
    active=$((active - 1))
  fi
done
wait

# ---- Phase 2: timing-gated bins, serial on a quiet machine. ----
for bin in "${TIMED_BINS[@]}"; do
  echo "running $bin (serial: wall-clock gated)..."
  run_bin "$bin"
done

# ---- Phase 3: replay logs and validate, in stable declaration order. ----
FAILED=()
for bin in "${CONCURRENT_BINS[@]}" "${TIMED_BINS[@]}"; do
  echo
  echo "################################################################"
  echo "## $bin"
  echo "################################################################"
  cat "$LOG_DIR/$bin.log"
  status=$(cat "$LOG_DIR/$bin.status" 2>/dev/null || echo missing)
  if [ "$status" != ok ]; then
    echo "!! $bin exited non-zero" >&2
    FAILED+=("$bin")
  elif ! check_report "$REPORT_DIR/$bin.json"; then
    FAILED+=("$bin (report)")
  fi
done

# The perf-trajectory artefacts carry the same schema version.
check_report BENCH_skeleton.json || FAILED+=("BENCH_skeleton.json (schema)")
check_report BENCH_parallel.json || FAILED+=("BENCH_parallel.json (schema)")

# Surface a skipped parallel-speedup gate (low-core machines record the
# reason instead of silently passing) in the replayed summary.
if [ -f BENCH_parallel.json ]; then
  if command -v jq >/dev/null 2>&1; then
    skipped=$(jq -r '.gate_skipped // empty' BENCH_parallel.json 2>/dev/null)
    [ "$skipped" = null ] && skipped=""
  else
    skipped=$(sed -n 's/.*"gate_skipped": "\([a-z_]*\)".*/\1/p' BENCH_parallel.json)
  fi
  if [ -n "$skipped" ]; then
    echo ">> BENCH_parallel: parallel speedup gate SKIPPED ($skipped) — recorded in the artefact, not silently passed"
  fi
fi

# The many-lane engine artefact must carry the per-width table with a
# passing widest-width gate; replay the per-width summary so the sweep's
# scaling curve is visible without opening the JSON.
if [ -f BENCH_skeleton.json ] && command -v jq >/dev/null 2>&1; then
  if ! jq -e '.lane_widths | type == "array" and length >= 2' BENCH_skeleton.json >/dev/null; then
    echo "!! BENCH_skeleton.json: lane_widths array missing" >&2
    FAILED+=("BENCH_skeleton.json (lane_widths)")
  elif ! jq -e '.lane_widths | max_by(.lanes) | .ok' BENCH_skeleton.json >/dev/null; then
    echo "!! BENCH_skeleton.json: widest lane-width gate failed" >&2
    FAILED+=("BENCH_skeleton.json (widest gate)")
  fi
  echo ">> BENCH_skeleton per-width lane summary (min speedup vs scalar):"
  jq -r '.lane_widths[] |
         ">>   \(.lanes) lanes (\(.words)w): \(.min_speedup)x" +
         (if .claimed_speedup > 0
          then " (gate \(.claimed_speedup)x: \(if .ok then "ok" else "FAIL" end))"
          else "" end)' BENCH_skeleton.json
fi

# The flight-recorder artefact: versioned, overhead-gated (< 3% with the
# recorder shipped but disabled), span tree explaining >= 95% of the
# sweep, and per-opcode kernel counters that reconcile exactly.
check_report BENCH_runtime.json || FAILED+=("BENCH_runtime.json (schema)")
if [ -f BENCH_runtime.json ] && command -v jq >/dev/null 2>&1; then
  if ! jq -e '.overhead_pct < 3
              and .overhead_enabled_pct < 15
              and .span_coverage >= 0.95
              and (.kernel.by_opcode | length) == 6
              and (.kernel.by_stratum | length) == 5
              and .kernel.reconciled' BENCH_runtime.json >/dev/null; then
    echo "!! BENCH_runtime.json: flight-recorder gates failed" >&2
    FAILED+=("BENCH_runtime.json (gates)")
  fi
  jq -r '">> BENCH_runtime: overhead \(.overhead_pct)% disabled / \(.overhead_enabled_pct)% enabled, " +
         "span coverage \(.span_coverage), " +
         "\(.kernel.ops_total) kernel ops over \(.kernel.settles) settles " +
         "(occupancy \(.kernel.occupancy), reconciled: \(.kernel.reconciled))"' \
    BENCH_runtime.json
fi

# The incremental-compilation artefact: versioned, patch-vs-recompile
# speedup gate (>= 20x), per-edit byte-equivalence flag, and the
# end-to-end cold-cache sizing comparison.
check_report BENCH_incremental.json || FAILED+=("BENCH_incremental.json (schema)")
if [ -f BENCH_incremental.json ] && command -v jq >/dev/null 2>&1; then
  if ! jq -e '.min_patch_speedup >= 20
              and .equivalent
              and .sizing.ok
              and .ok' BENCH_incremental.json >/dev/null; then
    echo "!! BENCH_incremental.json: incremental-compilation gates failed" >&2
    FAILED+=("BENCH_incremental.json (gates)")
  fi
  jq -r '">> BENCH_incremental: capacity patch \(.min_patch_speedup)x vs full recompile " +
         "(gate \(.claimed_speedup)x), \(.edits_checked) edits byte-equal: \(.equivalent), " +
         "cold-cache sizing \(.sizing.speedup)x"' \
    BENCH_incremental.json
fi

# The model-checking artefact: versioned, the six-way agreement matrix
# all-true, and a gate_skipped marker when a corpus entry blew the
# state budget (recorded, never silently dropped).
check_report BENCH_check.json || FAILED+=("BENCH_check.json (schema)")
if [ -f BENCH_check.json ] && command -v jq >/dev/null 2>&1; then
  if ! jq -e '(.agreement | all(.[]; . == true)) and .ok' BENCH_check.json >/dev/null; then
    echo "!! BENCH_check.json: proof-vs-simulation agreement matrix failed" >&2
    FAILED+=("BENCH_check.json (agreement)")
  fi
  skipped=$(jq -r '.gate_skipped // empty' BENCH_check.json 2>/dev/null)
  [ "$skipped" = null ] && skipped=""
  if [ -n "$skipped" ]; then
    echo ">> BENCH_check: a corpus entry was SKIPPED ($skipped) — recorded in the artefact, not silently passed"
  fi
  jq -r '">> BENCH_check: \(.systems_proved) systems proved, \(.states_total) states at " +
         "\(.states_per_sec) states/sec, \(.deadlocks_proved) deadlocks with replayed " +
         "counterexamples, peak arena \(.peak_arena_bytes) bytes"' \
    BENCH_check.json
fi

# The causal-profiling artefacts (written by exp_profile) version
# independently: blame schema is still 1.
check_report "$REPORT_DIR/BLAME_fig1.json" "$EXPECTED_BLAME_SCHEMA" || FAILED+=("BLAME_fig1.json (schema)")
if [ ! -s "$REPORT_DIR/TRACE_fig1.json" ]; then
  echo "!! missing or empty trace: $REPORT_DIR/TRACE_fig1.json" >&2
  FAILED+=("TRACE_fig1.json")
fi

# The differential-observability artefact: the exp_delta self-test must
# have caught its injected regressions (capacity downgrade attributed
# via blame shift, timing spike via the sentinel) and diffed its
# identical re-run clean.
check_report BENCH_delta.json "$EXPECTED_DELTA_SCHEMA" || FAILED+=("BENCH_delta.json (schema)")
if [ -f BENCH_delta.json ] && command -v jq >/dev/null 2>&1; then
  if ! jq -e '.ok and .rerun_clean and .regression_flagged
              and .attribution_ok and .mc_agrees
              and .timing_regression_flagged' BENCH_delta.json >/dev/null; then
    echo "!! BENCH_delta.json: differential-observability gates failed" >&2
    FAILED+=("BENCH_delta.json (gates)")
  fi
  jq -r '">> BENCH_delta: throughput \(.ratio_before.num)/\(.ratio_before.den) -> " +
         "\(.ratio_after.num)/\(.ratio_after.den) attributed to \(.attributed_channel), " +
         "re-run clean: \(.rerun_clean), sentinel tripped: \(.timing_regression_flagged)"' \
    BENCH_delta.json
fi

# ---- Phase 4: differential observability over the whole sweep. ----
# Commit this sweep's artefacts to the run store, diff against the
# previous stored sweep (informational: exact diffs are *expected*
# after code changes), and gate on the committed exact-domain
# baselines (a hard failure: divergence means either a bug or a
# deliberate change that must be re-accepted and committed).
if [ -x "$DIFF_BIN" ]; then
  SWEEP_ARTIFACTS=(BENCH_skeleton.json BENCH_parallel.json BENCH_runtime.json
                   BENCH_incremental.json BENCH_check.json BENCH_delta.json
                   "$REPORT_DIR/BLAME_fig1.json")
  PRESENT=()
  for f in "${SWEEP_ARTIFACTS[@]}"; do
    [ -f "$f" ] && PRESENT+=("$f")
  done
  if [ "${#PRESENT[@]}" -gt 0 ]; then
    if RUN_ID=$("$DIFF_BIN" capture --label "run_experiments" "${PRESENT[@]}"); then
      echo ">> run store: captured ${#PRESENT[@]} artefact(s) as run $RUN_ID"
      mapfile -t RUN_IDS < <("$DIFF_BIN" list | awk '{print $1}')
      if [ "${#RUN_IDS[@]}" -ge 2 ]; then
        PREV="${RUN_IDS[-2]}"
        if "$DIFF_BIN" compare "$PREV" "$RUN_ID" >"$LOG_DIR/diff.log" 2>&1; then
          echo ">> differential: clean against previous sweep $PREV"
        else
          echo ">> differential: DIVERGED against previous sweep $PREV (expected after code changes):"
          sed 's/^/>>   /' "$LOG_DIR/diff.log"
        fi
      fi
    else
      echo "!! run store capture failed" >&2
      FAILED+=("run store (capture)")
    fi
  fi
  if [ -d baselines ]; then
    if "$DIFF_BIN" baseline check; then
      echo ">> baselines: exact-domain snapshots hold"
    else
      echo "!! committed baselines diverged — run '$DIFF_BIN baseline accept' and commit if intentional" >&2
      FAILED+=("baselines (check)")
    fi
  fi
fi

echo
if [ "${#FAILED[@]}" -ne 0 ]; then
  echo "################################################################" >&2
  echo "## FAILED experiments: ${FAILED[*]}" >&2
  echo "################################################################" >&2
  exit 1
fi
echo "All $((${#CONCURRENT_BINS[@]} + ${#TIMED_BINS[@]})) experiments completed successfully."
