#!/usr/bin/env bash
# Regenerate every paper artefact (figures, claims, ablations) in order.
# Criterion cost benches are separate: `cargo bench --workspace`.
set -euo pipefail

BINS=(
  fig1_feedforward
  fig2_feedback
  exp_tree
  exp_reconvergent
  exp_feedback
  exp_composition
  exp_variant_speedup
  exp_equalization
  exp_transient
  exp_verify_safety
  exp_deadlock
  exp_ablation_equalizer
  exp_ablation_memory
  exp_queue_sizing
  exp_clock_gating
)

cargo build --release -p lip-bench --bins
for bin in "${BINS[@]}"; do
  echo
  echo "################################################################"
  echo "## $bin"
  echo "################################################################"
  cargo run --release -q -p lip-bench --bin "$bin"
done
