#!/usr/bin/env bash
# Regenerate every paper artefact (figures, claims, ablations) in order.
# Criterion cost benches are separate: `cargo bench --workspace`.
set -uo pipefail

BINS=(
  fig1_feedforward
  fig2_feedback
  exp_tree
  exp_reconvergent
  exp_feedback
  exp_composition
  exp_variant_speedup
  exp_equalization
  exp_transient
  exp_verify_safety
  exp_deadlock
  exp_ablation_equalizer
  exp_ablation_memory
  exp_queue_sizing
  exp_clock_gating
  exp_batch_sweep
)

REPORT_DIR="${LIP_REPORT_DIR:-target/reports}"
EXPECTED_SCHEMA=1

cargo build --release -p lip-bench --bins || exit 1

# Validate one report JSON: present, and carrying the expected
# schema_version. Uses jq when available, grep otherwise.
check_report() {
  local file="$1"
  if [ ! -f "$file" ]; then
    echo "!! missing report: $file" >&2
    return 1
  fi
  if command -v jq >/dev/null 2>&1; then
    local v
    v=$(jq -r '.schema_version' "$file") || return 1
    [ "$v" = "$EXPECTED_SCHEMA" ] || {
      echo "!! $file: schema_version $v != $EXPECTED_SCHEMA" >&2
      return 1
    }
  else
    grep -q "\"schema_version\": $EXPECTED_SCHEMA" "$file" || {
      echo "!! $file: schema_version $EXPECTED_SCHEMA not found" >&2
      return 1
    }
  fi
}

FAILED=()
for bin in "${BINS[@]}"; do
  echo
  echo "################################################################"
  echo "## $bin"
  echo "################################################################"
  if ! cargo run --release -q -p lip-bench --bin "$bin"; then
    echo "!! $bin exited non-zero" >&2
    FAILED+=("$bin")
  elif ! check_report "$REPORT_DIR/$bin.json"; then
    FAILED+=("$bin (report)")
  fi
done

# The perf-trajectory artefact carries the same schema version.
check_report BENCH_skeleton.json || FAILED+=("BENCH_skeleton.json (schema)")

echo
if [ "${#FAILED[@]}" -ne 0 ]; then
  echo "################################################################" >&2
  echo "## FAILED experiments: ${FAILED[*]}" >&2
  echo "################################################################" >&2
  exit 1
fi
echo "All ${#BINS[@]} experiments completed successfully."
