//! The determinism contract of the parallel executor, end to end: every
//! parallel entry point in the workspace must produce *byte-identical*
//! results no matter how many workers ran it — including the merged
//! [`MetricsRegistry`] counters and the serialised [`Report`] JSON that
//! experiments persist to disk.

use std::sync::Arc;

use lip_core::RelayKind;
use lip_graph::{generate, Netlist};
use lip_obs::{MetricsRegistry, Report};
use lip_sim::{BatchSkeleton, SettleProgram, LANES};
use lip_verify::{explore_random, random_explore_system_sharded, Dut};

/// Deterministic schedule words from a splitmix64 stream (same scheme as
/// the sim-side equivalence tests).
fn schedule_words(seed: u64, n: usize) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        })
        .collect()
}

/// One shard of a probed sweep: run `cycles` random-schedule steps of the
/// batch engine on its own registry and summarise into a `Report`. The
/// whole unit is a pure function of `(netlist, seed, shard)`.
fn probed_shard(prog: &Arc<SettleProgram>, seed: u64, shard: usize) -> (MetricsRegistry, Report) {
    let shard_seed = seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut metrics = MetricsRegistry::with_lanes(prog.topology(), LANES as u32);
    let mut batch = BatchSkeleton::from_program(Arc::clone(prog));
    for t in 0..48u64 {
        let srcs = schedule_words(shard_seed ^ (t << 1), prog.source_count());
        let snks = schedule_words(shard_seed ^ (t << 1) ^ 1, prog.sink_count());
        batch.step_with_masks_probed(&srcs, &snks, &mut metrics);
    }
    let mut report = Report::new(format!("shard{shard}"));
    report
        .push_int("cycles", metrics.cycles())
        .push_int("fires", metrics.total_fires());
    (metrics, report)
}

/// Run the sharded sweep under an explicit worker count and fold the
/// per-worker outputs in *input order* into one registry + one report.
fn sweep_with_workers(workers: usize, netlist: &Netlist, seed: u64) -> (String, String) {
    let prog = Arc::new(SettleProgram::compile(netlist).unwrap());
    let shards: Vec<usize> = (0..8).collect();
    let outputs =
        lip_par::par_map_indexed_jobs(workers, &shards, |_, &s| probed_shard(&prog, seed, s));
    let mut merged = MetricsRegistry::with_lanes(prog.topology(), LANES as u32);
    let mut master = Report::new("parallel_sweep");
    for (metrics, report) in &outputs {
        merged.merge(metrics);
        master.absorb(report);
    }
    master.push_int("merged_fires", merged.total_fires());
    (merged.to_json(), master.to_json())
}

#[test]
fn merged_metrics_and_report_json_are_byte_identical_across_worker_counts() {
    let netlist = generate::fig1().netlist;
    let (metrics_1, report_1) = sweep_with_workers(1, &netlist, 0xDECAF);
    let (metrics_8, report_8) = sweep_with_workers(8, &netlist, 0xDECAF);
    assert_eq!(metrics_1, metrics_8, "merged MetricsRegistry JSON diverged");
    assert_eq!(report_1, report_8, "absorbed Report JSON diverged");
    // And re-running the whole sweep is reproducible, not merely
    // self-consistent.
    let (metrics_again, report_again) = sweep_with_workers(3, &netlist, 0xDECAF);
    assert_eq!(metrics_1, metrics_again);
    assert_eq!(report_1, report_again);
}

#[test]
fn explore_random_verdict_is_identical_across_worker_counts() {
    // `explore_random` and `random_explore_system_sharded` read the
    // ambient LIP_JOBS count, so this test owns the env var; other tests
    // in this binary pin worker counts explicitly and never read it.
    let duts = [Dut::full_relay(), Dut::fifo_relay(2)];
    let ring = generate::ring(2, 1, RelayKind::Full).netlist;

    std::env::set_var("LIP_JOBS", "1");
    let verdicts_1: Vec<_> = duts
        .iter()
        .map(|d| explore_random(d.clone(), 5, 7))
        .collect();
    let search_1 = random_explore_system_sharded(&ring, 160, 7, 4).unwrap();

    std::env::set_var("LIP_JOBS", "8");
    let verdicts_8: Vec<_> = duts
        .iter()
        .map(|d| explore_random(d.clone(), 5, 7))
        .collect();
    let search_8 = random_explore_system_sharded(&ring, 160, 7, 4).unwrap();
    std::env::remove_var("LIP_JOBS");

    assert_eq!(verdicts_1, verdicts_8, "explore_random verdict diverged");
    assert_eq!(search_1, search_8, "sharded system search diverged");
    assert!(verdicts_1.iter().all(|v| v.holds));
}

#[test]
fn par_map_preserves_input_order_regardless_of_workers() {
    let items: Vec<u64> = (0..97).collect();
    let expect: Vec<u64> = items.iter().map(|x| x * x + 1).collect();
    for workers in [1usize, 2, 8, 16] {
        let got = lip_par::par_map_jobs(workers, &items, |&x| x * x + 1);
        assert_eq!(got, expect, "{workers} workers reordered results");
    }
}
