//! The verification tooling must be reproducible: identical inputs give
//! identical verdicts, state counts and counterexamples.

use lip_core::ProtocolVariant;
use lip_verify::{explore, explore_system, verify_all, Dut, ShellSpec};

#[test]
fn block_exploration_is_deterministic() {
    for mk in [
        || Dut::full_relay(),
        || Dut::half_relay(),
        || Dut::naive_one_reg(),
        || Dut::shell(ShellSpec::Join2, ProtocolVariant::Refined),
    ] {
        let a = explore(mk(), 5);
        let b = explore(mk(), 5);
        assert_eq!(a.holds, b.holds);
        assert_eq!(a.states, b.states);
        assert_eq!(a.transitions, b.transitions);
        assert_eq!(a.violation, b.violation);
        assert_eq!(a.counterexample, b.counterexample);
    }
}

#[test]
fn system_exploration_is_deterministic() {
    let f = lip_graph::generate::fig1();
    let a = explore_system(&f.netlist, 50_000).unwrap();
    let b = explore_system(&f.netlist, 50_000).unwrap();
    assert_eq!(a, b);
}

#[test]
fn report_is_stable_across_depths() {
    // Increasing the bound can only grow the explored space; verdicts on
    // safe blocks never flip.
    for depth in 3..=6u64 {
        for row in verify_all(depth) {
            assert!(row.as_expected(), "{} at depth {depth}", row.block);
        }
    }
}

#[test]
fn deeper_bounds_explore_more_states() {
    let shallow = explore(Dut::full_relay(), 3);
    let deep = explore(Dut::full_relay(), 7);
    assert!(deep.states >= shallow.states);
    assert!(deep.holds && shallow.holds);
}
