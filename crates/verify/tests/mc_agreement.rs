//! Cross-crate agreement: `lip-mc`'s adversarial breadth-first checker
//! and `lip-verify`'s [`explore_system`] walk the same reachable space.
//!
//! The two implementations were written against the same skeleton
//! semantics but share no search code — `lip-mc` interns packed control
//! states into a hash-consed arena while the explorer hashes
//! `component_state()` vectors. On every system where both complete and
//! prove deadlock freedom they must agree on the *exact* number of
//! reachable states; on every system they must agree on the verdict.
//! (When the explorer finds a wedge it returns early, so its state
//! count is partial and only the verdict is comparable.)

use lip_core::RelayKind;
use lip_graph::{generate, Netlist};
use lip_mc::{check_adversarial, McConfig, Verdict};
use lip_verify::explore_system;

const CAP: usize = 200_000;

/// Run both searches and assert agreement; returns the shared state
/// count when both proved deadlock freedom over the complete space.
fn agree(name: &str, netlist: &Netlist) -> Option<usize> {
    let proof = check_adversarial(netlist, &McConfig { max_states: CAP })
        .unwrap_or_else(|e| panic!("{name}: adversarial check failed: {e}"));
    let search =
        explore_system(netlist, CAP).unwrap_or_else(|e| panic!("{name}: explorer failed: {e}"));
    if proof.verdict == Verdict::Unknown || !search.complete {
        return None;
    }
    assert_eq!(
        proof.verdict == Verdict::DeadlockFree,
        search.deadlock_free(),
        "{name}: verdict disagreement"
    );
    if proof.verdict != Verdict::DeadlockFree {
        return None;
    }
    assert_eq!(
        proof.states, search.states,
        "{name}: reachable-state count disagreement"
    );
    Some(proof.states)
}

#[test]
fn named_small_systems_agree_exactly() {
    let corpus: Vec<(&str, Netlist)> = vec![
        ("fig1", generate::fig1().netlist),
        (
            "chain(2,1,full)",
            generate::chain(2, 1, RelayKind::Full).netlist,
        ),
        (
            "chain(1,1,half)",
            generate::chain(1, 1, RelayKind::Half).netlist,
        ),
        (
            "ring(2,1,full)",
            generate::ring(2, 1, RelayKind::Full).netlist,
        ),
        ("buffered_ring(2,0)", generate::buffered_ring(2, 0).netlist),
        ("tree(1,2,1)", generate::tree(1, 2, 1).netlist),
    ];
    for (name, netlist) in &corpus {
        let states = agree(name, netlist)
            .unwrap_or_else(|| panic!("{name}: expected both searches to complete"));
        assert!(states > 0, "{name}: empty reachable space");
    }
}

#[test]
fn fig1_adversarial_space_is_pinned() {
    // Pinned alongside the declared-mode counts in lip-mc's own
    // regression suite: the full environment-closed space of Fig. 1.
    let fig1 = generate::fig1().netlist;
    assert_eq!(agree("fig1", &fig1), Some(56));
}

#[test]
fn random_corpus_agrees() {
    let mut compared = 0u32;
    for seed in 0..24u64 {
        let (family, netlist) = generate::random_family(seed);
        if netlist.validate().is_err() {
            continue;
        }
        // Both searches are capped; agree() skips truncated runs.
        if agree(&format!("seed {seed} {family:?}"), &netlist).is_some() {
            compared += 1;
        }
    }
    assert!(
        compared >= 8,
        "too few random systems completed under the cap ({compared})"
    );
}
