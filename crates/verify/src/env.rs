//! Appropriate environments for block-level verification.
//!
//! The paper verifies each block "provided [it] works in an appropriate
//! environment": upstream producers keep their values on asserted stops,
//! and valid inputs arrive in order. [`UpstreamEnv`] is the most general
//! such producer — every cycle it nondeterministically offers either a
//! void or the next sequence-numbered token, but it re-offers a token the
//! device stopped. Downstream consumers are pure nondeterministic stop
//! choices, resolved by the explorer.

use lip_core::Token;

/// A nondeterministic, protocol-respecting producer on one channel.
///
/// Data are consecutive sequence numbers, so the observer can detect any
/// loss, duplication or reorder by simple counting.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct UpstreamEnv {
    /// Next fresh sequence number.
    next_seq: u64,
    /// Token currently offered.
    offered: Token,
}

impl UpstreamEnv {
    /// An environment about to offer its first token; `first_valid`
    /// resolves the initial nondeterministic choice.
    #[must_use]
    pub fn new(first_valid: bool) -> Self {
        let mut env = UpstreamEnv {
            next_seq: 0,
            offered: Token::VOID,
        };
        env.offered = env.generate(first_valid);
        env
    }

    fn generate(&mut self, valid: bool) -> Token {
        if valid {
            let t = Token::valid(self.next_seq);
            self.next_seq += 1;
            t
        } else {
            Token::VOID
        }
    }

    /// Token offered this cycle.
    #[must_use]
    pub fn offered(&self) -> Token {
        self.offered
    }

    /// Sequence numbers emitted so far.
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.next_seq
    }

    /// Advance one cycle: if the device stopped a valid token, re-offer
    /// it (the appropriate-environment obligation); otherwise offer a
    /// fresh token whose validity is the explorer's nondeterministic
    /// `choice`.
    pub fn clock(&mut self, stopped: bool, choice: bool) {
        if self.offered.is_valid() && stopped {
            return;
        }
        self.offered = self.generate(choice);
    }

    /// Compact state encoding for the visited-set.
    #[must_use]
    pub fn encode(&self) -> [u64; 2] {
        [
            self.next_seq,
            match self.offered.value() {
                Some(v) => v + 1,
                None => 0,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emits_ordered_sequence() {
        let mut env = UpstreamEnv::new(true);
        assert_eq!(env.offered(), Token::valid(0));
        env.clock(false, true);
        assert_eq!(env.offered(), Token::valid(1));
        env.clock(false, false);
        assert_eq!(env.offered(), Token::VOID);
        env.clock(false, true);
        assert_eq!(env.offered(), Token::valid(2));
        assert_eq!(env.emitted(), 3);
    }

    #[test]
    fn holds_valid_token_under_stop() {
        let mut env = UpstreamEnv::new(true);
        env.clock(true, false);
        assert_eq!(env.offered(), Token::valid(0));
        env.clock(true, true);
        assert_eq!(env.offered(), Token::valid(0));
        env.clock(false, true);
        assert_eq!(env.offered(), Token::valid(1));
    }

    #[test]
    fn voids_are_not_held() {
        let mut env = UpstreamEnv::new(false);
        assert_eq!(env.offered(), Token::VOID);
        env.clock(true, true); // stop over a void: advance anyway
        assert_eq!(env.offered(), Token::valid(0));
    }

    #[test]
    fn encoding_distinguishes_states() {
        let a = UpstreamEnv::new(true);
        let b = UpstreamEnv::new(false);
        assert_ne!(a.encode(), b.encode());
    }
}
