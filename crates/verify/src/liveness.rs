//! Liveness: the paper's three deadlock statements, made executable.
//!
//! > Any LID is deadlock free if it has only a feed-forward topology
//! > (possibly with reconvergence); any LID using only "full" relay
//! > stations is deadlock free; any LID with full and half relay
//! > stations has potential deadlocks iff half relay stations are
//! > present in loops.
//!
//! Since liveness is topology dependent, the paper could not verify it
//! once and for all; its recipe is to simulate the skeleton past the
//! transient and observe. [`theorem_sweep`] runs that recipe over a
//! seeded corpus and checks every instance against the statement that
//! covers it; experiment `EXP-V2` prints the table.

use lip_core::{Pattern, RelayKind};
use lip_graph::generate;
use lip_graph::topology::{classify, TopologyClass};
use lip_graph::{Netlist, NetlistError};
use lip_sim::measure::check_liveness;

use lip_analysis::half_relays_in_loops;

/// Which of the paper's three statements covers an instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LivenessClass {
    /// Feed-forward (acyclic): guaranteed live.
    FeedForward,
    /// Cyclic but with full relay stations only: guaranteed live.
    FullOnlyLoops,
    /// Half relay stations inside loops: deadlock *possible*; decided by
    /// skeleton simulation per instance.
    HalfInLoops,
}

impl std::fmt::Display for LivenessClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LivenessClass::FeedForward => f.write_str("feed-forward"),
            LivenessClass::FullOnlyLoops => f.write_str("loops, full relay stations only"),
            LivenessClass::HalfInLoops => f.write_str("loops containing half relay stations"),
        }
    }
}

/// Classify `netlist` under the paper's liveness taxonomy.
#[must_use]
pub fn liveness_class(netlist: &Netlist) -> LivenessClass {
    if classify(netlist) != TopologyClass::Feedback {
        LivenessClass::FeedForward
    } else if half_relays_in_loops(netlist).is_empty() {
        LivenessClass::FullOnlyLoops
    } else {
        LivenessClass::HalfInLoops
    }
}

/// One instance's liveness verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LivenessCase {
    /// Description of the instance.
    pub description: String,
    /// The covering statement.
    pub class: LivenessClass,
    /// Whether every shell keeps firing.
    pub live: bool,
    /// Whether the verdict is consistent with the paper's statements
    /// (classes 1–2 must be live; class 3 may go either way).
    pub consistent: bool,
}

/// Decide liveness of `netlist` by the paper's skeleton-simulation
/// recipe and check it against the covering statement.
///
/// # Errors
///
/// Propagates [`NetlistError`] from elaboration.
pub fn check_case(
    netlist: &Netlist,
    description: impl Into<String>,
) -> Result<LivenessCase, NetlistError> {
    let class = liveness_class(netlist);
    let report = check_liveness(netlist, 20_000, 5_000)?;
    let live = report.is_live();
    let consistent = match class {
        LivenessClass::FeedForward | LivenessClass::FullOnlyLoops => live,
        LivenessClass::HalfInLoops => true, // "potential": either verdict is consistent
    };
    Ok(LivenessCase {
        description: description.into(),
        class,
        live,
        consistent,
    })
}

/// Run the liveness recipe over a seeded corpus covering all three
/// classes (random families, full/half rings with disturbing
/// environments).
///
/// # Errors
///
/// Propagates [`NetlistError`] from elaboration of any instance.
pub fn theorem_sweep(seeds: u64) -> Result<Vec<LivenessCase>, NetlistError> {
    let mut cases = Vec::new();
    for seed in 0..seeds {
        let (family, netlist) = generate::random_family(seed);
        if netlist.validate().is_err() {
            continue;
        }
        cases.push(check_case(
            &netlist,
            format!("random {family:?} (seed {seed})"),
        )?);
    }
    // Disturbed rings, the deadlock-prone configurations: external stop
    // bursts and void streams hitting loops of each relay kind.
    for kind in [RelayKind::Full, RelayKind::Half] {
        for (s, r) in [(1usize, 1usize), (2, 1), (2, 2), (3, 2)] {
            for period in [2u32, 3, 5] {
                let ring = generate::ring_with_entry(
                    s,
                    r,
                    kind,
                    Pattern::EveryNth { period, phase: 0 },
                    Pattern::EveryNth {
                        period: period + 1,
                        phase: 1,
                    },
                );
                if ring.netlist.validate().is_err() {
                    continue;
                }
                cases.push(check_case(
                    &ring.netlist,
                    format!("{kind} ring S={s} R={r}, env period {period}"),
                )?);
            }
        }
    }
    Ok(cases)
}

/// Result of [`exhaustive_pattern_search`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatternSearchReport {
    /// Environments explored (pairs of cyclic void/stop patterns).
    pub environments: usize,
    /// Environments under which every shell kept firing.
    pub live: usize,
    /// `(void_bits, stop_bits)` of every starving environment found.
    pub starving: Vec<(Vec<bool>, Vec<bool>)>,
}

impl PatternSearchReport {
    /// `true` when no explored environment starves the system.
    #[must_use]
    pub fn all_live(&self) -> bool {
        self.starving.is_empty()
    }
}

/// Exhaustively search for a deadlock/starvation injection into a ring
/// of `shells` shells and `relays` stations of `kind`, fed and drained
/// through an entry shell, over **every** cyclic environment pattern of
/// period ≤ `max_period` (void pattern on the source × stop pattern on
/// the sink). Patterns that trivially forbid progress (all-void input or
/// all-stop output) are excluded — those starve any system and say
/// nothing about the protocol.
///
/// Because system + environment are finite-state and the environment is
/// periodic, each instance is *decided* (not just tested) by simulating
/// past the transient — the paper's own argument: "either the deadlock
/// will show, or will be forever avoided".
///
/// # Errors
///
/// Propagates [`NetlistError`] from elaboration.
pub fn exhaustive_pattern_search(
    shells: usize,
    relays: usize,
    kind: RelayKind,
    max_period: u32,
) -> Result<PatternSearchReport, NetlistError> {
    let mut patterns: Vec<Vec<bool>> = Vec::new();
    for p in 1..=max_period {
        for bits in 0..(1u32 << p) {
            let v: Vec<bool> = (0..p).map(|i| bits & (1 << i) != 0).collect();
            if v.iter().all(|b| *b) {
                continue; // all-void / all-stop: trivial starvation
            }
            patterns.push(v);
        }
    }
    let mut report = PatternSearchReport {
        environments: 0,
        live: 0,
        starving: Vec::new(),
    };
    for void_bits in &patterns {
        for stop_bits in &patterns {
            let ring = generate::ring_with_entry(
                shells,
                relays,
                kind,
                Pattern::Cyclic(void_bits.clone()),
                Pattern::Cyclic(stop_bits.clone()),
            );
            if ring.netlist.validate().is_err() {
                continue;
            }
            report.environments += 1;
            let live = check_liveness(&ring.netlist, 50_000, 10_000)?.is_live();
            if live {
                report.live += 1;
            } else {
                report.starving.push((void_bits.clone(), stop_bits.clone()));
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_assigned_correctly() {
        assert_eq!(
            liveness_class(&generate::fig1().netlist),
            LivenessClass::FeedForward
        );
        assert_eq!(
            liveness_class(&generate::ring(2, 1, RelayKind::Full).netlist),
            LivenessClass::FullOnlyLoops
        );
        assert_eq!(
            liveness_class(&generate::ring(2, 1, RelayKind::Half).netlist),
            LivenessClass::HalfInLoops
        );
    }

    #[test]
    fn sweep_is_consistent_with_the_paper() {
        let cases = theorem_sweep(30).unwrap();
        assert!(cases.len() >= 30);
        for case in &cases {
            assert!(
                case.consistent,
                "{} ({}): live={} contradicts the paper",
                case.description, case.class, case.live
            );
        }
        // Both guaranteed-live classes must actually appear in the
        // corpus, or the sweep proves nothing.
        assert!(cases.iter().any(|c| c.class == LivenessClass::FeedForward));
        assert!(cases
            .iter()
            .any(|c| c.class == LivenessClass::FullOnlyLoops));
        assert!(cases.iter().any(|c| c.class == LivenessClass::HalfInLoops));
    }

    #[test]
    fn pattern_search_confirms_full_ring_liveness() {
        // Full-station rings must survive *every* periodic environment
        // (the paper's second statement), here proven exhaustively for
        // periods up to 3.
        let report = exhaustive_pattern_search(2, 1, RelayKind::Full, 3).unwrap();
        assert!(report.environments > 100);
        assert!(
            report.all_live(),
            "full ring starved by {:?}",
            report.starving.first()
        );
    }

    #[test]
    fn pattern_search_decides_half_rings() {
        // Half stations in loops: "potential" deadlock. The search
        // decides every instance; whatever the verdict, it must be
        // internally consistent (live + starving = explored).
        let report = exhaustive_pattern_search(2, 2, RelayKind::Half, 3).unwrap();
        assert_eq!(report.live + report.starving.len(), report.environments);
    }

    #[test]
    fn display_names() {
        assert_eq!(LivenessClass::FeedForward.to_string(), "feed-forward");
        assert!(LivenessClass::HalfInLoops.to_string().contains("half"));
    }
}
