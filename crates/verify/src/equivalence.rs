//! System-level latency insensitivity: the LID behaves "in a latency
//! insensitive sense exactly as an equally connected system without ...
//! shells and non/pipelined connections".
//!
//! The paper states this as its safety definition and discharges it
//! block-by-block in SMV; [`check_latency_insensitivity`] checks it
//! whole-system: simulate the pipelined design and its zero-latency
//! reference (every relay station stripped), and compare every sink's
//! informative stream — they must agree value-for-value, differing only
//! in arrival times.

use lip_graph::{Netlist, NetlistError, NodeId};
use lip_sim::System;

/// Result of a whole-system equivalence check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EquivalenceReport {
    /// Cycles simulated on each side.
    pub cycles: u64,
    /// Per sink: tokens delivered by the LID and by the reference.
    pub delivered: Vec<(NodeId, usize, usize)>,
    /// The first mismatch, if any: `(sink, index, lid_value,
    /// reference_value)`.
    pub mismatch: Option<(NodeId, usize, u64, u64)>,
}

impl EquivalenceReport {
    /// `true` when every sink's stream is a value-exact prefix of the
    /// reference's (or vice versa).
    #[must_use]
    pub fn holds(&self) -> bool {
        self.mismatch.is_none()
    }
}

/// Compare `netlist` against its zero-latency reference for `cycles`
/// cycles.
///
/// # Errors
///
/// Propagates [`NetlistError`] when either design fails to elaborate —
/// notably when stripping relays from a loop leaves a combinational
/// stop path (such references are not directly executable; their loops
/// must be compared against the paper's original synchronous semantics
/// instead, which is outside this whole-system check).
pub fn check_latency_insensitivity(
    netlist: &Netlist,
    cycles: u64,
) -> Result<EquivalenceReport, NetlistError> {
    let (reference, map) = netlist.without_relays();
    let mut lid = System::new(netlist)?;
    let mut refsys = System::new(&reference)?;
    lid.run(cycles);
    refsys.run(cycles);

    let mut delivered = Vec::new();
    let mut mismatch = None;
    for sink in netlist.sinks() {
        let new_sink = map[sink.index()].expect("sinks are kept");
        let a = lid.sink(sink).expect("sink").received();
        let b = refsys.sink(new_sink).expect("sink").received();
        delivered.push((sink, a.len(), b.len()));
        let n = a.len().min(b.len());
        if mismatch.is_none() {
            for i in 0..n {
                if a[i] != b[i] {
                    mismatch = Some((sink, i, a[i], b[i]));
                    break;
                }
            }
        }
    }
    Ok(EquivalenceReport {
        cycles,
        delivered,
        mismatch,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_graph::generate;

    #[test]
    fn fig1_is_latency_insensitive() {
        let f = generate::fig1();
        let report = check_latency_insensitivity(&f.netlist, 200).unwrap();
        assert!(report.holds(), "{:?}", report.mismatch);
        // The LID delivers fewer tokens (T = 4/5) but identical values.
        let (_, lid, reference) = report.delivered[0];
        assert!(lid <= reference);
        assert!(lid > 150);
    }

    #[test]
    fn pipelined_chains_are_latency_insensitive() {
        use lip_core::RelayKind;
        for (shells, relays, kind) in [
            (2usize, 3usize, RelayKind::Full),
            (3, 1, RelayKind::Half),
            (1, 4, RelayKind::Full),
        ] {
            let c = generate::chain(shells, relays, kind);
            let report = check_latency_insensitivity(&c.netlist, 150).unwrap();
            assert!(
                report.holds(),
                "chain({shells},{relays},{kind}): {:?}",
                report.mismatch
            );
        }
    }

    #[test]
    fn feedforward_corpus_is_latency_insensitive() {
        let mut checked = 0;
        for seed in 0..120u64 {
            let (_, netlist) = generate::random_family(seed);
            if netlist.validate().is_err() {
                continue;
            }
            // Only references that elaborate (relay-stripped loops with
            // simplified shells cannot).
            let (reference, _) = netlist.without_relays();
            if reference.validate().is_err() {
                continue;
            }
            let report = check_latency_insensitivity(&netlist, 80).unwrap();
            assert!(report.holds(), "seed {seed}: {:?}", report.mismatch);
            checked += 1;
        }
        assert!(checked >= 40, "only {checked} references elaborated");
    }

    #[test]
    fn buffered_rings_strip_to_executable_references() {
        // Buffered shells keep relay-free loops legal, so their
        // references elaborate even when cyclic.
        let r = generate::buffered_ring(3, 2);
        let report = check_latency_insensitivity(&r.netlist, 150).unwrap();
        assert!(report.holds(), "{:?}", report.mismatch);
    }
}
