//! Whole-system liveness exploration: the strongest form of the paper's
//! deadlock analysis.
//!
//! The pattern sweep in [`liveness`](crate::liveness) decides every
//! *periodic* environment; this module universally quantifies over
//! **all** environment behaviours. The system's skeleton control state
//! is finite; breadth-first exploration over every per-cycle environment
//! choice (each source offers or withholds, each sink stops or accepts)
//! enumerates every reachable control state. A state is *wedged* when no
//! shell can ever fire again even under the fully permissive
//! continuation (all sources offering, no sink stopping) — the paper's
//! deadlock. If no reachable state is wedged, the system is deadlock
//! free against every environment, adversarial or not.

use std::collections::{HashMap, HashSet, VecDeque};

use lip_graph::{Netlist, NetlistError};
use lip_sim::SkeletonSystem;

use lip_analysis::transient_bound;

/// One environment choice: `(source validities, sink stops)`.
type EnvChoice = (Vec<bool>, Vec<bool>);

/// Result of [`explore_system`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemSearch {
    /// Distinct control states reached.
    pub states: usize,
    /// Environment transitions taken.
    pub transitions: usize,
    /// `true` when the whole reachable space was enumerated within the
    /// budget (otherwise the verdict only covers the explored part).
    pub complete: bool,
    /// The environment-choice trace into a wedged state, if one exists:
    /// each step is `(source_valids, sink_stops)`.
    pub wedged: Option<Vec<EnvChoice>>,
}

impl SystemSearch {
    /// `true` when no reachable control state is wedged.
    #[must_use]
    pub fn deadlock_free(&self) -> bool {
        self.wedged.is_none()
    }
}

/// Exhaustively explore the control-state space of `netlist` under all
/// environment behaviours, up to `max_states` distinct states.
///
/// # Errors
///
/// Propagates [`NetlistError`] from elaboration.
pub fn explore_system(netlist: &Netlist, max_states: usize) -> Result<SystemSearch, NetlistError> {
    let initial = SkeletonSystem::new(netlist)?;
    let n_src = netlist.sources().len();
    let n_snk = netlist.sinks().len();
    let has_shells = !netlist.shells().is_empty();
    // Permissive-run length that decides "can anything ever fire again":
    // the transient bound of the closed system.
    let horizon = transient_bound(netlist) + 4;

    let mut visited: HashSet<Vec<u64>> = HashSet::new();
    let mut parents: HashMap<Vec<u64>, (Vec<u64>, EnvChoice)> = HashMap::new();
    let mut queue: VecDeque<SkeletonSystem> = VecDeque::new();
    visited.insert(initial.component_state());
    queue.push_back(initial);
    let mut transitions = 0usize;
    let mut complete = true;

    while let Some(state) = queue.pop_front() {
        // Wedged check: permissive continuation must fire some shell.
        if has_shells && is_wedged(&state, n_src, n_snk, horizon) {
            let mut trace = Vec::new();
            let mut key = state.component_state();
            while let Some((parent, step)) = parents.get(&key) {
                trace.push(step.clone());
                key = parent.clone();
            }
            trace.reverse();
            return Ok(SystemSearch {
                states: visited.len(),
                transitions,
                complete,
                wedged: Some(trace),
            });
        }
        if visited.len() >= max_states {
            complete = false;
            continue; // drain the queue without expanding further
        }
        for src_mask in 0..(1u32 << n_src) {
            let valids: Vec<bool> = (0..n_src).map(|i| src_mask & (1 << i) != 0).collect();
            for snk_mask in 0..(1u32 << n_snk) {
                let stops: Vec<bool> = (0..n_snk).map(|j| snk_mask & (1 << j) != 0).collect();
                let mut next = state.clone();
                next.step_with(&valids, &stops);
                transitions += 1;
                let key = next.component_state();
                if visited.insert(key.clone()) {
                    parents.insert(key, (state.component_state(), (valids.clone(), stops.clone())));
                    queue.push_back(next);
                }
            }
        }
    }
    Ok(SystemSearch { states: visited.len(), transitions, complete, wedged: None })
}

/// Under the fully permissive environment, does the system fail to fire
/// any shell within `horizon` cycles? By control-state finiteness and
/// the monotone permissive continuation, that decides "never fires
/// again".
fn is_wedged(state: &SkeletonSystem, n_src: usize, n_snk: usize, horizon: u64) -> bool {
    let mut probe = state.clone();
    let before = probe.total_fires();
    let valids = vec![true; n_src];
    let stops = vec![false; n_snk];
    for _ in 0..horizon {
        probe.step_with(&valids, &stops);
        if probe.total_fires() > before {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_core::RelayKind;
    use lip_graph::generate;

    #[test]
    fn full_ring_with_entry_is_deadlock_free_universally() {
        // The strongest form of the paper's second statement: against
        // EVERY environment behaviour, not just periodic ones.
        let r = generate::ring_with_entry(
            2,
            1,
            RelayKind::Full,
            lip_core::Pattern::Never,
            lip_core::Pattern::Never,
        );
        let search = explore_system(&r.netlist, 100_000).unwrap();
        assert!(search.complete, "state space unexpectedly large");
        assert!(search.deadlock_free(), "wedged: {:?}", search.wedged);
        // The reachable control space is tiny (the protocol confines
        // it), but it must be more than the initial state alone.
        assert!(search.states >= 5, "{} states", search.states);
    }

    #[test]
    fn half_ring_with_entry_is_decided() {
        // Half stations in a loop: the paper says "potential" deadlock.
        // The universal search decides this instance definitively.
        let r = generate::ring_with_entry(
            2,
            2,
            RelayKind::Half,
            lip_core::Pattern::Never,
            lip_core::Pattern::Never,
        );
        let search = explore_system(&r.netlist, 200_000).unwrap();
        assert!(search.complete);
        // Record the verdict either way; consistency with the paper
        // ("potential") is automatic. For this FSM the loop is safe:
        assert!(search.deadlock_free(), "wedged: {:?}", search.wedged);
    }

    #[test]
    fn feedforward_systems_are_deadlock_free_universally() {
        let f = generate::fig1();
        let search = explore_system(&f.netlist, 100_000).unwrap();
        assert!(search.complete);
        assert!(search.deadlock_free());
    }

    #[test]
    fn fully_blocked_sinkless_flow_is_not_reported() {
        // Sanity: a plain wire (no shells) has nothing to wedge.
        let mut n = lip_graph::Netlist::new();
        let src = n.add_source("in");
        let out = n.add_sink("out");
        n.connect(src, 0, out, 0).unwrap();
        let search = explore_system(&n, 10_000).unwrap();
        assert!(search.deadlock_free());
    }

    #[test]
    fn buffered_ring_is_deadlock_free_universally() {
        let r = generate::buffered_ring(2, 0);
        let search = explore_system(&r.netlist, 100_000).unwrap();
        assert!(search.complete);
        assert!(search.deadlock_free());
    }
}
