//! Whole-system liveness exploration: the strongest form of the paper's
//! deadlock analysis.
//!
//! The pattern sweep in [`liveness`](crate::liveness) decides every
//! *periodic* environment; this module universally quantifies over
//! **all** environment behaviours. The system's skeleton control state
//! is finite; breadth-first exploration over every per-cycle environment
//! choice (each source offers or withholds, each sink stops or accepts)
//! enumerates every reachable control state. A state is *wedged* when no
//! shell can ever fire again even under the fully permissive
//! continuation (all sources offering, no sink stopping) — the paper's
//! deadlock. If no reachable state is wedged, the system is deadlock
//! free against every environment, adversarial or not.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use lip_graph::{Netlist, NetlistError};
use lip_sim::{
    dispatch_lane_width, BatchEngine, LaneWidthVisitor, LaneWord, SettleProgram, SkeletonSystem,
    LANES,
};

use lip_analysis::transient_bound;

/// One environment choice: `(source validities, sink stops)`.
type EnvChoice = (Vec<bool>, Vec<bool>);

/// Result of [`explore_system`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemSearch {
    /// Distinct control states reached.
    pub states: usize,
    /// Environment transitions taken.
    pub transitions: usize,
    /// `true` when the whole reachable space was enumerated within the
    /// budget (otherwise the verdict only covers the explored part).
    pub complete: bool,
    /// The environment-choice trace into a wedged state, if one exists:
    /// each step is `(source_valids, sink_stops)`.
    pub wedged: Option<Vec<EnvChoice>>,
}

impl SystemSearch {
    /// `true` when no reachable control state is wedged.
    #[must_use]
    pub fn deadlock_free(&self) -> bool {
        self.wedged.is_none()
    }
}

/// Exhaustively explore the control-state space of `netlist` under all
/// environment behaviours, up to `max_states` distinct states.
///
/// # Errors
///
/// Propagates [`NetlistError`] from elaboration.
pub fn explore_system(netlist: &Netlist, max_states: usize) -> Result<SystemSearch, NetlistError> {
    let initial = SkeletonSystem::new(netlist)?;
    let n_src = netlist.sources().len();
    let n_snk = netlist.sinks().len();
    let has_shells = !netlist.shells().is_empty();
    // Permissive-run length that decides "can anything ever fire again":
    // the transient bound of the closed system.
    let horizon = transient_bound(netlist) + 4;

    let mut visited: HashSet<Vec<u64>> = HashSet::new();
    let mut parents: HashMap<Vec<u64>, (Vec<u64>, EnvChoice)> = HashMap::new();
    let mut queue: VecDeque<SkeletonSystem> = VecDeque::new();
    visited.insert(initial.component_state());
    queue.push_back(initial);
    let mut transitions = 0usize;
    let mut complete = true;

    while let Some(state) = queue.pop_front() {
        // Wedged check: permissive continuation must fire some shell.
        if has_shells && is_wedged(&state, n_src, n_snk, horizon) {
            let mut trace = Vec::new();
            let mut key = state.component_state();
            while let Some((parent, step)) = parents.get(&key) {
                trace.push(step.clone());
                key = parent.clone();
            }
            trace.reverse();
            return Ok(SystemSearch {
                states: visited.len(),
                transitions,
                complete,
                wedged: Some(trace),
            });
        }
        if visited.len() >= max_states {
            complete = false;
            continue; // drain the queue without expanding further
        }
        for src_mask in 0..(1u32 << n_src) {
            let valids: Vec<bool> = (0..n_src).map(|i| src_mask & (1 << i) != 0).collect();
            for snk_mask in 0..(1u32 << n_snk) {
                let stops: Vec<bool> = (0..n_snk).map(|j| snk_mask & (1 << j) != 0).collect();
                let mut next = state.clone();
                next.step_with(&valids, &stops);
                transitions += 1;
                let key = next.component_state();
                if visited.insert(key.clone()) {
                    parents.insert(
                        key,
                        (state.component_state(), (valids.clone(), stops.clone())),
                    );
                    queue.push_back(next);
                }
            }
        }
    }
    Ok(SystemSearch {
        states: visited.len(),
        transitions,
        complete,
        wedged: None,
    })
}

/// Result of [`random_explore_system`]: a randomized (incomplete but
/// fast) hunt for wedged states.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RandomSystemSearch {
    /// Cycles each schedule ran.
    pub cycles: u64,
    /// Independent random stall schedules tried: the lane count of the
    /// engine width that ran the hunt ([`LANES`] for
    /// [`random_explore_system`]), summed over shards when sharded.
    pub schedules: usize,
    /// A scalar-confirmed environment trace into a wedged state, if any
    /// lane found one.
    pub wedged: Option<Vec<EnvChoice>>,
}

impl RandomSystemSearch {
    /// `true` when no sampled schedule reached a wedged state. Unlike
    /// [`SystemSearch::deadlock_free`] this is *not* a proof — it is the
    /// cheap pre-pass to run before the exhaustive search.
    #[must_use]
    pub fn deadlock_free(&self) -> bool {
        self.wedged.is_none()
    }
}

/// Randomized whole-system deadlock hunt: drive 64 independent random
/// stall schedules in lock-step on the bit-parallel
/// [`BatchEngine`]`<u64>` (each cycle, every lane draws fresh
/// source-offer and sink-stop choices), and periodically probe all 64
/// lanes at once for wedged states using the batched permissive
/// continuation. A hit is replayed and confirmed on the scalar
/// [`SkeletonSystem`] before it is reported, so a returned trace is
/// always genuine.
///
/// This samples schedules instead of enumerating them — linear cost per
/// cycle versus the exponential branching of [`explore_system`] — which
/// makes it the right first pass on systems whose exhaustive state space
/// is out of budget. [`random_explore_system_wide`] runs the same hunt
/// at wider lane words (up to 1024 schedules per engine pass).
///
/// # Errors
///
/// Propagates [`NetlistError`] from elaboration.
pub fn random_explore_system(
    netlist: &Netlist,
    cycles: u64,
    seed: u64,
) -> Result<RandomSystemSearch, NetlistError> {
    random_explore_generic::<u64>(netlist, cycles, seed)
}

/// [`random_explore_system`] at an arbitrary supported lane width:
/// one [`BatchEngine`] pass carries `lanes` independent random stall
/// schedules (walker count = lane count), so a 1024-lane word samples
/// 16× the schedules of the classic 64-lane hunt for one engine sweep.
///
/// At `lanes == 64` this is *exactly* [`random_explore_system`]: the
/// per-cycle random draw consumes one `splitmix64` word per lane word,
/// so the 64-lane schedule stream is byte-identical.
///
/// # Errors
///
/// Propagates [`NetlistError`] from elaboration.
///
/// # Panics
///
/// Panics if `lanes` is not one of [`lip_sim::LANE_WIDTHS`].
pub fn random_explore_system_wide(
    netlist: &Netlist,
    cycles: u64,
    seed: u64,
    lanes: usize,
) -> Result<RandomSystemSearch, NetlistError> {
    struct Hunt<'a> {
        netlist: &'a Netlist,
        cycles: u64,
        seed: u64,
    }
    impl LaneWidthVisitor for Hunt<'_> {
        type Out = Result<RandomSystemSearch, NetlistError>;
        fn visit<W: LaneWord>(&mut self) -> Self::Out {
            random_explore_generic::<W>(self.netlist, self.cycles, self.seed)
        }
    }
    dispatch_lane_width(
        lanes,
        &mut Hunt {
            netlist,
            cycles,
            seed,
        },
    )
}

/// Width-generic body of the randomized hunt: `W::LANES` schedules per
/// pass, wedge probes batched over the whole word, scalar confirmation
/// per hit.
fn random_explore_generic<W: LaneWord>(
    netlist: &Netlist,
    cycles: u64,
    seed: u64,
) -> Result<RandomSystemSearch, NetlistError> {
    let prog = Arc::new(SettleProgram::compile(netlist)?);
    let n_src = prog.source_count();
    let n_snk = prog.sink_count();
    let has_shells = prog.shell_count() > 0;
    let horizon = transient_bound(netlist) + 4;
    let probe_every = horizon.max(8);

    let mut batch = BatchEngine::<W>::from_program(Arc::clone(&prog));
    let mut rng = seed;
    let mut schedule: Vec<(Vec<W>, Vec<W>)> = Vec::with_capacity(cycles as usize);
    for t in 0..cycles {
        let srcs: Vec<W> = (0..n_src).map(|_| rand_word::<W>(&mut rng)).collect();
        let snks: Vec<W> = (0..n_snk).map(|_| rand_word::<W>(&mut rng)).collect();
        batch.step_with_masks(&srcs, &snks);
        schedule.push((srcs, snks));
        if has_shells && ((t + 1) % probe_every == 0 || t + 1 == cycles) {
            let wedged_lanes = batch_wedged_mask(&batch, n_src, n_snk, horizon);
            if wedged_lanes.any() {
                for lane in (0..W::LANES).filter(|&l| wedged_lanes.lane(l)) {
                    if let Some(trace) = confirm_lane(&prog, &schedule, lane, n_src, n_snk, horizon)
                    {
                        return Ok(RandomSystemSearch {
                            cycles: t + 1,
                            schedules: W::LANES,
                            wedged: Some(trace),
                        });
                    }
                }
            }
        }
    }
    Ok(RandomSystemSearch {
        cycles,
        schedules: W::LANES,
        wedged: None,
    })
}

/// One fresh random lane word: `W::WORDS` `splitmix64` draws, little
/// endian, so the `u64` shape consumes exactly one draw per call and
/// reproduces the historical 64-lane schedule stream bit for bit.
fn rand_word<W: LaneWord>(rng: &mut u64) -> W {
    let mut words = [0u64; 16];
    for w in words.iter_mut().take(W::WORDS) {
        *w = splitmix64(rng);
    }
    W::from_fn(|l| (words[l / 64] >> (l % 64)) & 1 == 1)
}

/// [`random_explore_system`] fanned out over `shards` independent
/// 64-lane batches via [`lip_par::par_map_indexed`] — `shards * 64`
/// sampled schedules for the wall-clock price of the slowest shard.
///
/// Shard `k` runs exactly `random_explore_system(netlist, cycles,
/// derive(seed, k))`, so its behaviour is a pure function of its index:
/// the merged result (first wedged shard by index wins; `schedules`
/// sums) is byte-identical for every worker count, including serial.
///
/// # Errors
///
/// Propagates [`NetlistError`] from elaboration.
pub fn random_explore_system_sharded(
    netlist: &Netlist,
    cycles: u64,
    seed: u64,
    shards: usize,
) -> Result<RandomSystemSearch, NetlistError> {
    random_explore_system_sharded_wide(netlist, cycles, seed, shards, LANES)
}

/// [`random_explore_system_sharded`] at an arbitrary supported lane
/// width: `shards * lanes` sampled schedules, with each shard one
/// `lanes`-wide engine pass. Shard `k` runs exactly
/// [`random_explore_system_wide`]`(netlist, cycles, derive(seed, k),
/// lanes)`, preserving the worker-count-independent merge.
///
/// # Errors
///
/// Propagates [`NetlistError`] from elaboration.
///
/// # Panics
///
/// Panics if `lanes` is not one of [`lip_sim::LANE_WIDTHS`].
pub fn random_explore_system_sharded_wide(
    netlist: &Netlist,
    cycles: u64,
    seed: u64,
    shards: usize,
    lanes: usize,
) -> Result<RandomSystemSearch, NetlistError> {
    // Elaborate once up front so a bad netlist fails before fan-out.
    SettleProgram::compile(netlist)?;
    let shard_ids: Vec<usize> = (0..shards.max(1)).collect();
    let results = lip_par::par_map_indexed(&shard_ids, |_, &k| {
        let shard_seed = seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        random_explore_system_wide(netlist, cycles, shard_seed, lanes)
            .expect("netlist compiled above; elaboration is deterministic")
    });
    let schedules: usize = results.iter().map(|r| r.schedules).sum();
    let first_wedged = results.iter().find(|r| r.wedged.is_some());
    Ok(match first_wedged {
        Some(hit) => RandomSystemSearch {
            cycles: hit.cycles,
            schedules,
            wedged: hit.wedged.clone(),
        },
        None => RandomSystemSearch {
            cycles,
            schedules,
            wedged: None,
        },
    })
}

/// Lanes that fail to fire any shell within `horizon` permissive cycles
/// — the batched form of [`is_wedged`], all `W::LANES` lanes probed at
/// once.
fn batch_wedged_mask<W: LaneWord>(
    batch: &BatchEngine<W>,
    n_src: usize,
    n_snk: usize,
    horizon: u64,
) -> W {
    let mut probe = batch.clone();
    probe.reset_fired_mask();
    let all_valid = vec![W::ONES; n_src];
    let no_stop = vec![W::ZERO; n_snk];
    for _ in 0..horizon {
        probe.step_with_masks(&all_valid, &no_stop);
    }
    probe.fired_mask().not()
}

/// Replay `lane`'s bits of the recorded schedule on a scalar skeleton
/// and re-check the wedge verdict; returns the per-cycle environment
/// trace when confirmed.
fn confirm_lane<W: LaneWord>(
    prog: &Arc<SettleProgram>,
    schedule: &[(Vec<W>, Vec<W>)],
    lane: usize,
    n_src: usize,
    n_snk: usize,
    horizon: u64,
) -> Option<Vec<EnvChoice>> {
    let mut scalar = SkeletonSystem::from_program(Arc::clone(prog));
    let mut trace = Vec::with_capacity(schedule.len());
    for (srcs, snks) in schedule {
        let valids: Vec<bool> = (0..n_src).map(|i| srcs[i].lane(lane)).collect();
        let stops: Vec<bool> = (0..n_snk).map(|j| snks[j].lane(lane)).collect();
        scalar.step_with(&valids, &stops);
        trace.push((valids, stops));
    }
    is_wedged(&scalar, n_src, n_snk, horizon).then_some(trace)
}

/// The splitmix64 step: cheap, well-mixed, and dependency-free.
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Under the fully permissive environment, does the system fail to fire
/// any shell within `horizon` cycles? By control-state finiteness and
/// the monotone permissive continuation, that decides "never fires
/// again".
fn is_wedged(state: &SkeletonSystem, n_src: usize, n_snk: usize, horizon: u64) -> bool {
    let mut probe = state.clone();
    let before = probe.total_fires();
    let valids = vec![true; n_src];
    let stops = vec![false; n_snk];
    for _ in 0..horizon {
        probe.step_with(&valids, &stops);
        if probe.total_fires() > before {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_core::RelayKind;
    use lip_graph::generate;

    #[test]
    fn full_ring_with_entry_is_deadlock_free_universally() {
        // The strongest form of the paper's second statement: against
        // EVERY environment behaviour, not just periodic ones.
        let r = generate::ring_with_entry(
            2,
            1,
            RelayKind::Full,
            lip_core::Pattern::Never,
            lip_core::Pattern::Never,
        );
        let search = explore_system(&r.netlist, 100_000).unwrap();
        assert!(search.complete, "state space unexpectedly large");
        assert!(search.deadlock_free(), "wedged: {:?}", search.wedged);
        // The reachable control space is tiny (the protocol confines
        // it), but it must be more than the initial state alone.
        assert!(search.states >= 5, "{} states", search.states);
    }

    #[test]
    fn half_ring_with_entry_is_decided() {
        // Half stations in a loop: the paper says "potential" deadlock.
        // The universal search decides this instance definitively.
        let r = generate::ring_with_entry(
            2,
            2,
            RelayKind::Half,
            lip_core::Pattern::Never,
            lip_core::Pattern::Never,
        );
        let search = explore_system(&r.netlist, 200_000).unwrap();
        assert!(search.complete);
        // Record the verdict either way; consistency with the paper
        // ("potential") is automatic. For this FSM the loop is safe:
        assert!(search.deadlock_free(), "wedged: {:?}", search.wedged);
    }

    #[test]
    fn feedforward_systems_are_deadlock_free_universally() {
        let f = generate::fig1();
        let search = explore_system(&f.netlist, 100_000).unwrap();
        assert!(search.complete);
        assert!(search.deadlock_free());
    }

    #[test]
    fn fully_blocked_sinkless_flow_is_not_reported() {
        // Sanity: a plain wire (no shells) has nothing to wedge.
        let mut n = lip_graph::Netlist::new();
        let src = n.add_source("in");
        let out = n.add_sink("out");
        n.connect(src, 0, out, 0).unwrap();
        let search = explore_system(&n, 10_000).unwrap();
        assert!(search.deadlock_free());
    }

    #[test]
    fn buffered_ring_is_deadlock_free_universally() {
        let r = generate::buffered_ring(2, 0);
        let search = explore_system(&r.netlist, 100_000).unwrap();
        assert!(search.complete);
        assert!(search.deadlock_free());
    }

    #[test]
    fn random_prepass_agrees_with_exhaustive_on_safe_systems() {
        // The randomized 64-schedule pre-pass samples the same space the
        // exhaustive search enumerates; on systems proven safe it must
        // never report a wedge (a report would be scalar-confirmed, so a
        // failure here is a genuine engine bug, not sampling noise).
        for netlist in [
            generate::fig1().netlist,
            generate::ring_with_entry(
                2,
                1,
                RelayKind::Full,
                lip_core::Pattern::Never,
                lip_core::Pattern::Never,
            )
            .netlist,
            generate::ring_with_entry(
                2,
                2,
                RelayKind::Half,
                lip_core::Pattern::Never,
                lip_core::Pattern::Never,
            )
            .netlist,
        ] {
            let exhaustive = explore_system(&netlist, 200_000).unwrap();
            assert!(exhaustive.deadlock_free());
            for seed in 0..3 {
                let random = random_explore_system(&netlist, 500, seed).unwrap();
                assert!(random.deadlock_free(), "seed {seed}: {:?}", random.wedged);
                assert_eq!(random.schedules, LANES);
                assert_eq!(random.cycles, 500);
            }
        }
    }

    #[test]
    fn sharded_prepass_covers_more_schedules_deterministically() {
        let f = generate::fig1();
        let sharded = random_explore_system_sharded(&f.netlist, 200, 3, 4).unwrap();
        assert!(sharded.deadlock_free());
        assert_eq!(sharded.schedules, 4 * LANES);
        assert_eq!(sharded.cycles, 200);
        // Shard 0 is exactly the unsharded run with the same seed, and
        // the merged verdict is independent of worker count.
        let single = random_explore_system(&f.netlist, 200, 3).unwrap();
        assert_eq!(single.wedged, sharded.wedged);
        let again = random_explore_system_sharded(&f.netlist, 200, 3, 4).unwrap();
        assert_eq!(sharded, again);
    }

    #[test]
    fn wide_prepass_is_scalar_hunt_at_64_and_scales_schedules() {
        let f = generate::fig1();
        // At 64 lanes the wide entry point is byte-identical to the
        // classic hunt: same splitmix64 stream, same verdict.
        let narrow = random_explore_system(&f.netlist, 300, 11).unwrap();
        let wide64 = random_explore_system_wide(&f.netlist, 300, 11, 64).unwrap();
        assert_eq!(narrow, wide64);
        // Wider words carry proportionally more walkers per pass.
        for lanes in [128, 256] {
            let wide = random_explore_system_wide(&f.netlist, 300, 11, lanes).unwrap();
            assert!(wide.deadlock_free(), "{lanes} lanes: {:?}", wide.wedged);
            assert_eq!(wide.schedules, lanes);
            assert_eq!(wide.cycles, 300);
        }
    }

    #[test]
    fn sharded_wide_prepass_multiplies_walkers_deterministically() {
        let r = generate::ring_with_entry(
            2,
            1,
            RelayKind::Full,
            lip_core::Pattern::Never,
            lip_core::Pattern::Never,
        );
        let sharded = random_explore_system_sharded_wide(&r.netlist, 160, 9, 2, 256).unwrap();
        assert!(sharded.deadlock_free(), "{:?}", sharded.wedged);
        assert_eq!(sharded.schedules, 2 * 256);
        let again = random_explore_system_sharded_wide(&r.netlist, 160, 9, 2, 256).unwrap();
        assert_eq!(sharded, again);
        // The classic sharded API is the wide one pinned at 64 lanes.
        let classic = random_explore_system_sharded(&r.netlist, 160, 9, 2).unwrap();
        let pinned = random_explore_system_sharded_wide(&r.netlist, 160, 9, 2, 64).unwrap();
        assert_eq!(classic, pinned);
    }

    #[test]
    fn random_prepass_handles_shell_free_systems() {
        let mut n = lip_graph::Netlist::new();
        let src = n.add_source("in");
        let out = n.add_sink("out");
        n.connect(src, 0, out, 0).unwrap();
        let search = random_explore_system(&n, 200, 7).unwrap();
        assert!(search.deadlock_free());
    }
}
