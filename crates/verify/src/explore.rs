//! The explicit-state explorer: an SMV substitute for block-level
//! safety.
//!
//! The composed state space — device × upstream environments × observer
//! — is enumerated breadth-first. Every cycle the explorer branches over
//! all environment choices (each input nondeterministically offers the
//! next token or a void; each output nondeterministically receives a
//! stop), checks the safety observer, and clocks everything. Exploration
//! is exhaustive up to an emitted-tokens bound `depth`; since the blocks
//! buffer at most two tokens, every distinct protocol control situation
//! occurs well within a small bound (the classic finite-window data
//! abstraction SMV models of FIFOs use).

use std::collections::{HashMap, HashSet, VecDeque};

use lip_core::Token;

use crate::dut::{Dut, ShellSpec};
use crate::env::UpstreamEnv;

/// Which safety property an observer step violated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A consumed output token was out of order or skipped data
    /// (expected `expected`, saw `saw`). Covers the paper's "produces
    /// outputs in the correct order" and "does not skip any valid
    /// output".
    OrderOrSkip {
        /// Expected datum.
        expected: u64,
        /// Observed datum.
        saw: u64,
    },
    /// A consumed output was not the pearl function of the consumed
    /// inputs ("elaborates coherent data").
    Incoherent {
        /// Expected datum.
        expected: u64,
        /// Observed datum.
        saw: u64,
    },
    /// A stopped valid output changed before it was consumed ("keeps
    /// its output on asserted stops").
    DroppedUnderStop {
        /// The held token that disappeared.
        held: u64,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::OrderOrSkip { expected, saw } => {
                write!(
                    f,
                    "output order/skip violation: expected {expected}, saw {saw}"
                )
            }
            Violation::Incoherent { expected, saw } => {
                write!(f, "incoherent data: expected {expected}, saw {saw}")
            }
            Violation::DroppedUnderStop { held } => {
                write!(
                    f,
                    "stopped output dropped: token {held} vanished while held"
                )
            }
        }
    }
}

/// One step of a counterexample trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceStep {
    /// Validity choice per input.
    pub input_valid: Vec<bool>,
    /// Stop choice per output.
    pub output_stop: Vec<bool>,
    /// Tokens the device presented.
    pub outputs: Vec<Token>,
}

/// Result of an exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// `true` when no violation is reachable within the bound.
    pub holds: bool,
    /// Distinct composed states visited.
    pub states: usize,
    /// Transitions executed.
    pub transitions: usize,
    /// The first violation found, if any.
    pub violation: Option<Violation>,
    /// Environment choices leading to the violation.
    pub counterexample: Vec<TraceStep>,
}

/// The safety observer, specialised by device kind.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Observer {
    /// Index of the next output datum the spec expects.
    next_out: u64,
    /// Last cycle's (token, stop) per output, for the hold check.
    prev: Vec<(Option<u64>, bool)>,
    /// Whether the hold check applies (relay stations only).
    check_hold: bool,
    /// Expected-stream generator.
    spec: StreamSpec,
}

/// What the consumed output stream should look like.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum StreamSpec {
    /// Relay stations: the identity on the input stream (0, 1, 2, …).
    RelayFifo,
    /// Shells: `f(0..)` prefixed by the initial output `f(0)`.
    Shell(ShellSpec),
}

impl StreamSpec {
    /// Expected datum at output index `k`.
    fn expected(self, k: u64) -> u64 {
        match self {
            StreamSpec::RelayFifo => k,
            // Shell outputs: index 0 is the initialisation firing over
            // zero inputs; index j >= 1 corresponds to input j-1.
            StreamSpec::Shell(ShellSpec::Identity | ShellSpec::Join2) => k.saturating_sub(1),
            StreamSpec::Shell(ShellSpec::Accumulator) => {
                // sum of 0..k (inputs 0..=k-1), and 0 at init.
                (k.saturating_sub(1)) * k / 2
            }
        }
    }

    fn is_shell(self) -> bool {
        matches!(self, StreamSpec::Shell(_))
    }
}

impl Observer {
    fn new(dut: &Dut) -> Self {
        let (check_hold, spec) = match dut {
            Dut::Shell(_, s) | Dut::Buffered(_, s) => (false, StreamSpec::Shell(*s)),
            _ => (true, StreamSpec::RelayFifo),
        };
        Observer {
            next_out: 0,
            prev: vec![(None, false); dut.num_outputs()],
            check_hold,
            spec,
        }
    }

    /// Observe one settled cycle; `outputs`/`stops` are the device's
    /// settled output tokens and the downstream stop choices.
    fn observe(&mut self, outputs: &[Token], stops: &[bool]) -> Result<(), Violation> {
        // Hold check: a valid token under stop must reappear unchanged.
        if self.check_hold {
            for (j, &(prev, was_stopped)) in self.prev.iter().enumerate() {
                if let (Some(held), true) = (prev, was_stopped) {
                    if outputs[j].value() != Some(held) {
                        return Err(Violation::DroppedUnderStop { held });
                    }
                }
            }
        }
        // Consumption check: port 0 carries the specified stream (multi
        // output shells replicate, so checking port 0 suffices for the
        // specs used here).
        if let (Some(v), false) = (outputs[0].value(), stops[0]) {
            let expected = self.spec.expected(self.next_out);
            if v != expected {
                let violation = if self.spec.is_shell() {
                    Violation::Incoherent { expected, saw: v }
                } else {
                    Violation::OrderOrSkip { expected, saw: v }
                };
                return Err(violation);
            }
            self.next_out += 1;
        }
        for (j, slot) in self.prev.iter_mut().enumerate() {
            *slot = (outputs[j].value(), stops[j]);
        }
        Ok(())
    }

    fn encode(&self) -> Vec<u64> {
        let mut v = vec![self.next_out, u64::from(self.check_hold)];
        for (t, s) in &self.prev {
            v.push(match t {
                Some(x) => x + 2,
                None => 0,
            });
            v.push(u64::from(*s));
        }
        v
    }
}

/// One composed exploration state.
#[derive(Debug, Clone)]
struct Composed {
    dut: Dut,
    envs: Vec<UpstreamEnv>,
    observer: Observer,
}

impl Composed {
    fn encode(&self) -> Vec<u64> {
        let mut v = self.dut.encode();
        for e in &self.envs {
            v.extend(e.encode());
        }
        v.extend(self.observer.encode());
        v
    }
}

/// Exhaustively explore `dut` under all appropriate environments that
/// emit at most `depth` tokens per input. Checks the paper's three
/// relay-station properties (order, no-skip, hold-on-stop) or three
/// shell properties (coherent data, order, no-skip) depending on the
/// device kind.
#[must_use]
pub fn explore(dut: Dut, depth: u64) -> Verdict {
    let n_in = dut.num_inputs();
    let n_out = dut.num_outputs();
    let observer = Observer::new(&dut);

    // Initial states: every combination of first-token validity.
    let mut queue: VecDeque<Composed> = VecDeque::new();
    let mut visited: HashSet<Vec<u64>> = HashSet::new();
    let mut parents: HashMap<Vec<u64>, (Vec<u64>, TraceStep)> = HashMap::new();
    for mask in 0..(1u32 << n_in) {
        let envs: Vec<UpstreamEnv> = (0..n_in)
            .map(|i| UpstreamEnv::new(mask & (1 << i) != 0))
            .collect();
        let c = Composed {
            dut: dut.clone(),
            envs,
            observer: observer.clone(),
        };
        if visited.insert(c.encode()) {
            queue.push_back(c);
        }
    }

    let mut transitions = 0usize;
    while let Some(state) = queue.pop_front() {
        let inputs: Vec<Token> = state.envs.iter().map(UpstreamEnv::offered).collect();
        // Branch over every stop choice and every next-validity choice.
        for stop_mask in 0..(1u32 << n_out) {
            let stops: Vec<bool> = (0..n_out).map(|j| stop_mask & (1 << j) != 0).collect();
            let outputs = state.dut.outputs(&inputs);
            for valid_mask in 0..(1u32 << n_in) {
                let choices: Vec<bool> = (0..n_in).map(|i| valid_mask & (1 << i) != 0).collect();
                let mut next = state.clone();
                transitions += 1;
                let step = TraceStep {
                    input_valid: choices.clone(),
                    output_stop: stops.clone(),
                    outputs: outputs.clone(),
                };
                if let Err(violation) = next.observer.observe(&outputs, &stops) {
                    let mut counterexample = vec![step];
                    let mut key = state.encode();
                    while let Some((parent, s)) = parents.get(&key) {
                        counterexample.push(s.clone());
                        key = parent.clone();
                    }
                    counterexample.reverse();
                    return Verdict {
                        holds: false,
                        states: visited.len(),
                        transitions,
                        violation: Some(violation),
                        counterexample,
                    };
                }
                // Clock device and environments.
                let dut_stops: Vec<bool> = (0..n_in)
                    .map(|i| next.dut.stop_upstream(i, &inputs, &stops))
                    .collect();
                next.dut.clock(&inputs, &stops);
                for (i, env) in next.envs.iter_mut().enumerate() {
                    env.clock(dut_stops[i], choices[i]);
                }
                // Depth bound: stop expanding once any environment has
                // emitted `depth` tokens.
                if next.envs.iter().any(|e| e.emitted() > depth) {
                    continue;
                }
                let key = next.encode();
                if visited.insert(key.clone()) {
                    parents.insert(key, (state.encode(), step));
                    queue.push_back(next);
                }
            }
        }
    }
    Verdict {
        holds: true,
        states: visited.len(),
        transitions,
        violation: None,
        counterexample: Vec::new(),
    }
}

/// What one random walker brings home: its violation (if any) with the
/// trace that produced it, the composed states it visited, and its
/// transition count. Merged deterministically in walker-index order.
struct WalkerOutcome {
    violation: Option<(Violation, Vec<TraceStep>)>,
    visited: HashSet<Vec<u64>>,
    transitions: usize,
}

/// Run walker `index`'s complete random stall schedule. The walker's
/// entire choice stream derives from `(seed, index)` — never from
/// scheduling — so the outcome is a pure function of its arguments and
/// the fan-out below stays deterministic for every worker count.
fn run_walker(dut: &Dut, depth: u64, seed: u64, index: usize) -> WalkerOutcome {
    let n_in = dut.num_inputs();
    let n_out = dut.num_outputs();
    let mut rng = seed ^ (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mask = crate::system_explore::splitmix64(&mut rng);
    let envs: Vec<UpstreamEnv> = (0..n_in)
        .map(|i| UpstreamEnv::new(mask & (1 << i) != 0))
        .collect();
    let mut state = Composed {
        dut: dut.clone(),
        envs,
        observer: Observer::new(dut),
    };
    let mut trace: Vec<TraceStep> = Vec::new();
    let mut visited: HashSet<Vec<u64>> = HashSet::new();
    let mut transitions = 0usize;
    loop {
        let choice = crate::system_explore::splitmix64(&mut rng);
        let stops: Vec<bool> = (0..n_out).map(|j| choice & (1 << j) != 0).collect();
        let choices: Vec<bool> = (0..n_in)
            .map(|i| choice & (1 << (n_out + i)) != 0)
            .collect();
        let inputs: Vec<Token> = state.envs.iter().map(UpstreamEnv::offered).collect();
        let outputs = state.dut.outputs(&inputs);
        transitions += 1;
        trace.push(TraceStep {
            input_valid: choices.clone(),
            output_stop: stops.clone(),
            outputs: outputs.clone(),
        });
        if let Err(violation) = state.observer.observe(&outputs, &stops) {
            return WalkerOutcome {
                violation: Some((violation, trace)),
                visited,
                transitions,
            };
        }
        let dut_stops: Vec<bool> = (0..n_in)
            .map(|i| state.dut.stop_upstream(i, &inputs, &stops))
            .collect();
        state.dut.clock(&inputs, &stops);
        for (i, env) in state.envs.iter_mut().enumerate() {
            env.clock(dut_stops[i], choices[i]);
        }
        visited.insert(state.encode());
        if state.envs.iter().any(|e| e.emitted() > depth) {
            return WalkerOutcome {
                violation: None,
                visited,
                transitions,
            };
        }
    }
}

/// Randomized pre-pass over `dut`: [`lip_sim::LANES`] (64) independent
/// random stall schedules, each drawing fresh input-validity and
/// output-stop choices every round and running the same safety observer
/// as [`explore`]. Each schedule ends once its environments have emitted
/// `depth` tokens.
///
/// Walkers are embarrassingly parallel, so they fan out over
/// [`lip_par::par_map_indexed`] under the ambient `LIP_JOBS` worker
/// count. Every walker's random stream derives from `(seed, walker
/// index)` and outcomes merge in walker-index order (first violating
/// walker wins, visited sets union, transitions sum), so the verdict is
/// byte-identical no matter how many threads ran it.
///
/// Token-level devices carry data words, so unlike the skeleton this
/// cannot be bit-packed — the batching here is over schedules, trading
/// exhaustiveness for linear cost. A `holds == false` verdict carries a
/// genuine counterexample trace; `holds == true` only means the 64
/// sampled schedules found nothing, so run [`explore`] for the proof.
#[must_use]
pub fn explore_random(dut: Dut, depth: u64, seed: u64) -> Verdict {
    let walker_ids: Vec<usize> = (0..lip_sim::LANES).collect();
    let outcomes = lip_par::par_map_indexed(&walker_ids, |_, &w| run_walker(&dut, depth, seed, w));
    let mut visited: HashSet<Vec<u64>> = HashSet::new();
    let mut transitions = 0usize;
    let mut first_violation: Option<(Violation, Vec<TraceStep>)> = None;
    for outcome in outcomes {
        transitions += outcome.transitions;
        visited.extend(outcome.visited);
        if first_violation.is_none() {
            first_violation = outcome.violation;
        }
    }
    match first_violation {
        Some((violation, counterexample)) => Verdict {
            holds: false,
            states: visited.len(),
            transitions,
            violation: Some(violation),
            counterexample,
        },
        None => Verdict {
            holds: true,
            states: visited.len(),
            transitions,
            violation: None,
            counterexample: Vec::new(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_core::ProtocolVariant;

    #[test]
    fn full_relay_is_safe() {
        let v = explore(Dut::full_relay(), 6);
        assert!(v.holds, "violation: {:?}", v.violation);
        assert!(v.states > 50);
    }

    #[test]
    fn half_relay_is_safe() {
        let v = explore(Dut::half_relay(), 6);
        assert!(v.holds, "violation: {:?}", v.violation);
    }

    #[test]
    fn identity_shell_is_safe_in_both_variants() {
        for variant in ProtocolVariant::ALL {
            let v = explore(Dut::shell(ShellSpec::Identity, variant), 6);
            assert!(v.holds, "{variant}: {:?}", v.violation);
        }
    }

    #[test]
    fn accumulator_shell_is_coherent() {
        let v = explore(
            Dut::shell(ShellSpec::Accumulator, ProtocolVariant::Refined),
            6,
        );
        assert!(v.holds, "violation: {:?}", v.violation);
    }

    #[test]
    fn join_shell_is_safe() {
        let v = explore(Dut::shell(ShellSpec::Join2, ProtocolVariant::Refined), 5);
        assert!(v.holds, "violation: {:?}", v.violation);
    }

    #[test]
    fn naive_one_reg_station_is_caught() {
        let v = explore(Dut::naive_one_reg(), 6);
        assert!(!v.holds, "the mutant must violate safety");
        assert!(!v.counterexample.is_empty());
    }

    #[test]
    fn leaky_relay_is_caught_dropping_under_stop() {
        let v = explore(Dut::leaky_relay(), 6);
        assert!(!v.holds);
        assert!(
            matches!(
                v.violation,
                Some(Violation::DroppedUnderStop { .. }) | Some(Violation::OrderOrSkip { .. })
            ),
            "{:?}",
            v.violation
        );
    }

    #[test]
    fn random_prepass_passes_safe_devices_and_catches_mutants() {
        // Safe devices survive all 64 sampled schedules.
        let v = explore_random(Dut::full_relay(), 6, 11);
        assert!(v.holds, "violation: {:?}", v.violation);
        assert!(v.transitions > 0 && v.states > 0);
        // The leaky relay drops a held token under stop — random stalls
        // hit that quickly; the returned trace must be non-empty.
        let v = explore_random(Dut::leaky_relay(), 8, 11);
        assert!(!v.holds, "mutant survived the random pre-pass");
        assert!(!v.counterexample.is_empty());
    }

    #[test]
    fn violation_display_forms() {
        assert!(Violation::OrderOrSkip {
            expected: 1,
            saw: 3
        }
        .to_string()
        .contains("expected 1"));
        assert!(Violation::Incoherent {
            expected: 2,
            saw: 0
        }
        .to_string()
        .contains("incoherent"));
        assert!(Violation::DroppedUnderStop { held: 4 }
            .to_string()
            .contains("vanished"));
    }
}
