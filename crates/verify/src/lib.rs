//! Formal verification of latency-insensitive protocol blocks — the
//! paper's SMV work, rebuilt as an explicit-state explorer.
//!
//! * [`explore`] — exhaustive breadth-first search over a block composed
//!   with the most general *appropriate environment* (inputs hold their
//!   values on asserted stops; valid inputs are ordered), with a safety
//!   observer encoding the paper's properties;
//! * [`props`] — the six obligations (three per shell,
//!   three per relay station) as a reproducible report, including two
//!   mutants whose counterexamples demonstrate the minimum-memory
//!   theorem: a one-register station with a registered stop provably
//!   loses data;
//! * [`liveness`] — the paper's three topology-level
//!   deadlock statements, checked by its own skeleton-simulation recipe
//!   over a generated corpus.
//!
//! # Example
//!
//! ```
//! use lip_verify::{explore, Dut};
//!
//! // The full relay station satisfies all three properties...
//! let verdict = explore(Dut::full_relay(), 5);
//! assert!(verdict.holds);
//!
//! // ...while the naive one-register station the paper rules out is
//! // caught with a counterexample trace.
//! let verdict = explore(Dut::naive_one_reg(), 5);
//! assert!(!verdict.holds);
//! assert!(!verdict.counterexample.is_empty());
//! ```

#![warn(missing_docs)]

mod dut;
mod env;
pub mod equivalence;
mod explore;
pub mod liveness;
pub mod props;
pub mod system_explore;

pub use dut::{Dut, ShellSpec};
pub use env::UpstreamEnv;
pub use equivalence::{check_latency_insensitivity, EquivalenceReport};
pub use explore::{explore, explore_random, TraceStep, Verdict, Violation};
pub use props::{verify_all, PropertyResult, RELAY_PROPERTIES, SHELL_PROPERTIES};
pub use system_explore::{
    explore_system, random_explore_system, random_explore_system_sharded,
    random_explore_system_sharded_wide, random_explore_system_wide, RandomSystemSearch,
    SystemSearch,
};
