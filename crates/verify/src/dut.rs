//! Devices under verification: the protocol blocks, plus deliberately
//! broken mutants that demonstrate the paper's minimum-memory theorem.

use lip_core::pearl::{AccumulatorPearl, IdentityPearl, JoinPearl};
use lip_core::{
    BufferedShell, FifoStation, FullRelayStation, HalfRelayStation, ProtocolVariant, Shell, Token,
};

/// The pearl wrapped by a shell under verification. Restricted to an
/// enumerable set so device states can be encoded exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ShellSpec {
    /// One-input identity: expected output stream = input stream.
    Identity,
    /// One-input running sum: expected output `k` = sum of inputs `0..=k`.
    Accumulator,
    /// Two-input join emitting its first input: exercises multi-input
    /// firing alignment.
    Join2,
}

/// A device the explorer can drive: a relay station, a shell, or a
/// mutant.
#[derive(Debug, Clone)]
pub enum Dut {
    /// The paper's full relay station.
    FullRelay(FullRelayStation),
    /// The paper's half relay station.
    HalfRelay(HalfRelayStation),
    /// A sized FIFO station (Carloni DAC'00 queue).
    FifoRelay(FifoStation),
    /// A shell with a [`ShellSpec`] pearl.
    Shell(Shell, ShellSpec),
    /// A buffered shell (registered inputs) with a [`ShellSpec`] pearl.
    Buffered(BufferedShell, ShellSpec),
    /// **Mutant**: the naive one-register pipeline station with a
    /// registered stop and no second register. It is exactly what the
    /// paper's minimum-memory analysis forbids: during the one-cycle
    /// stop lag the in-flight token has nowhere to go and is dropped.
    NaiveOneReg {
        /// The single data register.
        reg: Token,
        /// Registered back-pressure (mirrors last cycle's downstream
        /// stop).
        stop_reg: bool,
    },
    /// **Mutant**: a full relay station that fails to hold its output
    /// while stopped (it shifts regardless), violating "keeps its output
    /// on asserted stops".
    LeakyRelay(FullRelayStation),
}

impl Dut {
    /// A fresh full relay station.
    #[must_use]
    pub fn full_relay() -> Self {
        Dut::FullRelay(FullRelayStation::new())
    }

    /// A fresh half relay station.
    #[must_use]
    pub fn half_relay() -> Self {
        Dut::HalfRelay(HalfRelayStation::new())
    }

    /// A fresh sized FIFO station.
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2`.
    #[must_use]
    pub fn fifo_relay(capacity: usize) -> Self {
        Dut::FifoRelay(FifoStation::new(capacity))
    }

    /// A fresh shell over `spec` under `variant`.
    #[must_use]
    pub fn shell(spec: ShellSpec, variant: ProtocolVariant) -> Self {
        let shell = match spec {
            ShellSpec::Identity => Shell::with_variant(IdentityPearl::new(), variant),
            ShellSpec::Accumulator => Shell::with_variant(AccumulatorPearl::new(), variant),
            ShellSpec::Join2 => Shell::with_variant(JoinPearl::first(2), variant),
        };
        Dut::Shell(shell, spec)
    }

    /// A fresh buffered shell over `spec` under `variant`.
    #[must_use]
    pub fn buffered_shell(spec: ShellSpec, variant: ProtocolVariant) -> Self {
        let shell = match spec {
            ShellSpec::Identity => BufferedShell::with_variant(IdentityPearl::new(), variant),
            ShellSpec::Accumulator => BufferedShell::with_variant(AccumulatorPearl::new(), variant),
            ShellSpec::Join2 => BufferedShell::with_variant(JoinPearl::first(2), variant),
        };
        Dut::Buffered(shell, spec)
    }

    /// The naive one-register station mutant.
    #[must_use]
    pub fn naive_one_reg() -> Self {
        Dut::NaiveOneReg {
            reg: Token::VOID,
            stop_reg: false,
        }
    }

    /// The hold-violating relay mutant.
    #[must_use]
    pub fn leaky_relay() -> Self {
        Dut::LeakyRelay(FullRelayStation::new())
    }

    /// Number of input channels.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        match self {
            Dut::Shell(s, _) => s.num_inputs(),
            Dut::Buffered(s, _) => s.num_inputs(),
            _ => 1,
        }
    }

    /// Number of output channels.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        match self {
            Dut::Shell(s, _) => s.num_outputs(),
            Dut::Buffered(s, _) => s.num_outputs(),
            _ => 1,
        }
    }

    /// Tokens presented on each output this cycle, given this cycle's
    /// inputs (needed by the half station's bypass).
    #[must_use]
    pub fn outputs(&self, inputs: &[Token]) -> Vec<Token> {
        match self {
            Dut::FullRelay(rs) | Dut::LeakyRelay(rs) => vec![rs.output()],
            Dut::HalfRelay(rs) => vec![rs.output(inputs[0])],
            Dut::FifoRelay(q) => vec![q.output()],
            Dut::Shell(s, _) => s.outputs().to_vec(),
            Dut::Buffered(s, _) => s.outputs().to_vec(),
            Dut::NaiveOneReg { reg, .. } => vec![*reg],
        }
    }

    /// Back-pressure towards the producer of input `index`.
    #[must_use]
    pub fn stop_upstream(&self, index: usize, inputs: &[Token], output_stops: &[bool]) -> bool {
        match self {
            Dut::FullRelay(rs) | Dut::LeakyRelay(rs) => rs.stop_upstream(),
            Dut::HalfRelay(rs) => rs.stop_upstream(),
            Dut::FifoRelay(q) => q.stop_upstream(),
            Dut::Shell(s, _) => s.stop_upstream(index, inputs, output_stops),
            Dut::Buffered(s, _) => s.stop_upstream(index),
            Dut::NaiveOneReg { stop_reg, .. } => *stop_reg,
        }
    }

    /// Advance one cycle.
    pub fn clock(&mut self, inputs: &[Token], output_stops: &[bool]) {
        match self {
            Dut::FullRelay(rs) => rs.clock(inputs[0], output_stops[0]),
            Dut::HalfRelay(rs) => rs.clock(inputs[0], output_stops[0]),
            Dut::FifoRelay(q) => q.clock(inputs[0], output_stops[0]),
            Dut::Shell(s, _) => s.clock(inputs, output_stops),
            Dut::Buffered(s, _) => s.clock(inputs, output_stops),
            Dut::NaiveOneReg { reg, stop_reg } => {
                // The broken design: capture whenever upstream was not
                // stopped, hold when downstream stops — but the stop is
                // registered, so the token arriving during the lag
                // overwrites `reg` (if held) or is dropped downstream.
                if !output_stops[0] || reg.is_void() {
                    *reg = inputs[0];
                } else if inputs[0].is_valid() && !*stop_reg {
                    // In-flight token with nowhere to go: overwrite.
                    *reg = inputs[0];
                }
                *stop_reg = output_stops[0];
            }
            Dut::LeakyRelay(rs) => {
                // Ignores the stop: shifts as if the consumer always
                // accepted.
                rs.clock(inputs[0], false);
            }
        }
    }

    /// Compact exact state encoding for the visited-set.
    #[must_use]
    pub fn encode(&self) -> Vec<u64> {
        fn tok(t: Token) -> u64 {
            match t.value() {
                Some(v) => v + 1,
                None => 0,
            }
        }
        match self {
            Dut::FullRelay(rs) | Dut::LeakyRelay(rs) => {
                let (m, a) = rs.state();
                vec![tok(m), tok(a)]
            }
            Dut::HalfRelay(rs) => vec![tok(rs.state())],
            Dut::FifoRelay(q) => {
                // Occupancy plus head value suffices? No — order matters:
                // encode the whole queue via output + occupancy is not
                // enough for exactness, so clone-and-drain is avoided by
                // hashing occupancy and head (safe because the env data
                // is strictly increasing: occupancy + head determine the
                // contents).
                vec![q.occupancy() as u64, tok(q.output())]
            }
            Dut::Shell(s, _) => {
                let mut v: Vec<u64> = s.outputs().iter().map(|t| tok(*t)).collect();
                v.extend(s.pearl_state());
                v
            }
            Dut::Buffered(s, _) => {
                let mut v: Vec<u64> = s.outputs().iter().map(|t| tok(*t)).collect();
                for i in 0..s.num_inputs() {
                    v.push(tok(s.buffer(i)));
                }
                v.extend(s.pearl_state());
                v
            }
            Dut::NaiveOneReg { reg, stop_reg } => vec![tok(*reg), u64::from(*stop_reg)],
        }
    }

    /// Human-readable name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Dut::FullRelay(_) => "full relay station",
            Dut::HalfRelay(_) => "half relay station",
            Dut::FifoRelay(q) => match q.capacity() {
                3 => "fifo station (capacity 3)",
                4 => "fifo station (capacity 4)",
                _ => "fifo station",
            },
            Dut::Shell(_, ShellSpec::Identity) => "identity shell",
            Dut::Shell(_, ShellSpec::Accumulator) => "accumulator shell",
            Dut::Shell(_, ShellSpec::Join2) => "join shell",
            Dut::Buffered(_, ShellSpec::Identity) => "buffered identity shell",
            Dut::Buffered(_, ShellSpec::Accumulator) => "buffered accumulator shell",
            Dut::Buffered(_, ShellSpec::Join2) => "buffered join shell",
            Dut::NaiveOneReg { .. } => "naive one-register station (mutant)",
            Dut::LeakyRelay(_) => "leaky relay station (mutant)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_by_kind() {
        assert_eq!(Dut::full_relay().num_inputs(), 1);
        assert_eq!(
            Dut::shell(ShellSpec::Join2, ProtocolVariant::Refined).num_inputs(),
            2
        );
        assert_eq!(Dut::naive_one_reg().num_outputs(), 1);
    }

    #[test]
    fn encodings_differ_across_states() {
        let mut rs = Dut::full_relay();
        let e0 = rs.encode();
        rs.clock(&[Token::valid(3)], &[false]);
        assert_ne!(rs.encode(), e0);
    }

    #[test]
    fn names_are_informative() {
        assert!(Dut::leaky_relay().name().contains("mutant"));
        assert!(Dut::shell(ShellSpec::Identity, ProtocolVariant::Carloni)
            .name()
            .contains("identity"));
    }

    #[test]
    fn naive_station_demonstrably_loses_data() {
        // Hand trace: token 0 in reg, downstream stops, token 1 arrives
        // during the lag and overwrites token 0.
        let mut d = Dut::naive_one_reg();
        d.clock(&[Token::valid(0)], &[false]);
        assert_eq!(d.outputs(&[Token::VOID])[0], Token::valid(0));
        d.clock(&[Token::valid(1)], &[true]); // stop lag: 0 is lost
        assert_eq!(d.outputs(&[Token::VOID])[0], Token::valid(1));
    }
}
