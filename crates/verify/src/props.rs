//! The paper's six verification obligations, packaged as a reproducible
//! report.
//!
//! > We used the tool SMV to verify that: any shell elaborates coherent
//! > data; any shell produces outputs in the correct order; any shell
//! > does not skip any valid output — provided the shell works in an
//! > appropriate environment. Analogously, for relay stations: any relay
//! > station produces outputs in the correct order; does not skip any
//! > valid output; keeps its output on asserted stops — provided all its
//! > valid inputs are ordered.
//!
//! [`verify_all`] runs the explorer over every block and both protocol
//! variants, plus the two mutants whose counterexamples demonstrate the
//! minimum-memory theorem. Experiment `EXP-V1` prints this table.

use lip_core::ProtocolVariant;

use crate::dut::{Dut, ShellSpec};
use crate::explore::{explore, Verdict};

/// One row of the verification report.
#[derive(Debug, Clone)]
pub struct PropertyResult {
    /// Block verified.
    pub block: String,
    /// Properties checked (paper wording).
    pub properties: &'static str,
    /// Whether verification is *expected* to succeed (mutants are not).
    pub expected_safe: bool,
    /// The explorer's verdict.
    pub verdict: Verdict,
}

impl PropertyResult {
    /// `true` when the verdict matches the expectation (safe blocks
    /// hold; mutants are caught).
    #[must_use]
    pub fn as_expected(&self) -> bool {
        self.verdict.holds == self.expected_safe
    }
}

/// Properties checked for relay stations (paper wording).
pub const RELAY_PROPERTIES: &str =
    "produces outputs in the correct order; does not skip any valid output; keeps its output on asserted stops";

/// Properties checked for shells (paper wording).
pub const SHELL_PROPERTIES: &str =
    "elaborates coherent data; produces outputs in the correct order; does not skip any valid output";

/// Verify every protocol block (and the instructive mutants) to `depth`
/// emitted tokens per input.
#[must_use]
pub fn verify_all(depth: u64) -> Vec<PropertyResult> {
    fn row(dut: Dut, depth: u64, properties: &'static str, expected_safe: bool) -> PropertyResult {
        let block = dut.name().to_owned();
        let verdict = explore(dut, depth);
        PropertyResult {
            block,
            properties,
            expected_safe,
            verdict,
        }
    }

    let mut rows = vec![
        row(Dut::full_relay(), depth, RELAY_PROPERTIES, true),
        row(Dut::half_relay(), depth, RELAY_PROPERTIES, true),
        row(Dut::fifo_relay(3), depth, RELAY_PROPERTIES, true),
        row(Dut::fifo_relay(4), depth, RELAY_PROPERTIES, true),
    ];
    for variant in ProtocolVariant::ALL {
        for spec in [
            ShellSpec::Identity,
            ShellSpec::Accumulator,
            ShellSpec::Join2,
        ] {
            for dut in [
                Dut::shell(spec, variant),
                Dut::buffered_shell(spec, variant),
            ] {
                let block = format!("{} ({variant})", dut.name());
                let verdict = explore(dut, depth);
                rows.push(PropertyResult {
                    block,
                    properties: SHELL_PROPERTIES,
                    expected_safe: true,
                    verdict,
                });
            }
        }
    }
    // Mutants: the minimum-memory theorem made executable.
    rows.push(row(Dut::naive_one_reg(), depth, RELAY_PROPERTIES, false));
    rows.push(row(Dut::leaky_relay(), depth, RELAY_PROPERTIES, false));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_blocks_verify_as_expected() {
        let rows = verify_all(5);
        assert_eq!(rows.len(), 18); // 4 stations + 12 shells + 2 mutants
        for row in &rows {
            assert!(
                row.as_expected(),
                "{}: holds={} expected_safe={} ({:?})",
                row.block,
                row.verdict.holds,
                row.expected_safe,
                row.verdict.violation
            );
        }
    }

    #[test]
    fn mutants_produce_counterexamples() {
        let rows = verify_all(5);
        let mutants: Vec<_> = rows.iter().filter(|r| !r.expected_safe).collect();
        assert_eq!(mutants.len(), 2);
        for m in mutants {
            assert!(!m.verdict.holds);
            assert!(
                !m.verdict.counterexample.is_empty(),
                "{} lacks a trace",
                m.block
            );
        }
    }
}
