//! Incremental compilation: in-place patching of compiled
//! [`SettleProgram`]s for the edit loop.
//!
//! Every one-relay edit used to pay a full [`SettleProgram::compile`] —
//! re-validation, re-elaboration, Kahn re-stratification and a fresh op
//! tape — which makes the queue-sizing bisection
//! (`lip_analysis::minimal_equalizing_capacity`) and the
//! `lip-lint --fix` rewrite loop compile-bound. This module patches the
//! compiled artefact in place instead:
//!
//! * [`SettleProgram::patch_fifo_capacity`] — mutate one `fifo_cap`
//!   entry, splice the FIFO's at-capacity compare run on the op tape
//!   (or rebuild the tape allocation-free when the bit-plane count
//!   changes) and rehash only the capacity section of the structural
//!   fingerprint.
//! * [`SettleProgram::patch_relay_kind`] — move one relay between the
//!   per-kind tables (rows stay in node-id order, so the result is
//!   byte-identical to a fresh compile), re-stratifying the half-relay
//!   Kahn order only when a half relay is involved.
//! * [`NetlistDelta`] + [`SettleProgram::recompile_delta`] — the
//!   structural edits the netlist mutation API can express (relay
//!   insertion, kind changes, environment pattern swaps), re-running
//!   only the Kahn stratification a delta can actually affect: a relay
//!   inserted between two unbuffered shells re-sorts the backward stop
//!   stratum, one spliced into a half chain re-sorts the forward valid
//!   stratum, and anything else keeps both orders untouched.
//!
//! The contract, enforced by the property suite and the `EXP-I1` gates:
//! after any patch sequence the program compares **equal** (tables, op
//! tape, section hashes — `SettleProgram: PartialEq`) to
//! `SettleProgram::compile` of the identically edited netlist, so
//! [`stable_structural_hash`](SettleProgram::stable_structural_hash)
//! keys stay exact and [`ThroughputCache`](crate::ThroughputCache)
//! hits are sound.
//!
//! Flight-recorder accounting: full compiles count `compile.full`,
//! every patch counts `compile.patch`, each under a `compile` span —
//! `BENCH_runtime.json` shows which path an edit loop ran on.

use lip_core::{Pattern, RelayKind};
use lip_graph::{ChannelId, Netlist, NodeId};

use crate::program::{kahn, lcm, CompSlot, SettleProgram};

/// One structural edit, expressed against *both* representations: apply
/// it to the [`Netlist`] with [`apply_to`](Self::apply_to) and to the
/// already-compiled [`SettleProgram`] with
/// [`recompile_delta`](SettleProgram::recompile_delta), and the two
/// stay in lockstep — the program equals a fresh compile of the edited
/// netlist without paying for one.
#[derive(Debug, Clone, PartialEq)]
pub enum NetlistDelta {
    /// Replace the kind of an existing relay station
    /// ([`Netlist::set_relay_kind`]). `Fifo → Fifo` is a pure capacity
    /// change and takes the cheapest path.
    SetRelayKind {
        /// The relay station to mutate.
        node: NodeId,
        /// Its new kind.
        kind: RelayKind,
    },
    /// Insert a relay station on a channel
    /// ([`Netlist::insert_relay_on_channel`]) — the LIP001 fix-it. The
    /// producer keeps the original channel; the new relay drives a new
    /// channel into the original consumer.
    InsertRelay {
        /// The channel to break.
        channel: ChannelId,
        /// The relay station kind to insert.
        kind: RelayKind,
    },
    /// Replace a source's void pattern
    /// ([`Netlist::set_source_pattern`]).
    SetSourcePattern {
        /// The source to mutate.
        node: NodeId,
        /// Its new void pattern.
        pattern: Pattern,
    },
    /// Replace a sink's stop pattern ([`Netlist::set_sink_pattern`]).
    SetSinkPattern {
        /// The sink to mutate.
        node: NodeId,
        /// Its new stop pattern.
        pattern: Pattern,
    },
}

impl NetlistDelta {
    /// Apply this delta to `netlist`; returns the inserted relay's id
    /// for [`InsertRelay`](Self::InsertRelay), `None` otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `node` does not have the kind the delta expects
    /// (relay / source / sink respectively).
    pub fn apply_to(&self, netlist: &mut Netlist) -> Option<NodeId> {
        match self {
            NetlistDelta::SetRelayKind { node, kind } => {
                netlist.set_relay_kind(*node, *kind);
                None
            }
            NetlistDelta::InsertRelay { channel, kind } => {
                Some(netlist.insert_relay_on_channel(*channel, *kind))
            }
            NetlistDelta::SetSourcePattern { node, pattern } => {
                assert!(
                    netlist.set_source_pattern(*node, pattern.clone()),
                    "node {node} is not a source"
                );
                None
            }
            NetlistDelta::SetSinkPattern { node, pattern } => {
                assert!(
                    netlist.set_sink_pattern(*node, pattern.clone()),
                    "node {node} is not a sink"
                );
                None
            }
        }
    }
}

/// What a patch touched — enough for engines
/// ([`BatchEngine::adopt`](crate::BatchEngine::adopt) /
/// [`SkeletonSystem::adopt`](crate::SkeletonSystem::adopt)) and
/// telemetry to know how much state survived.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProgramPatch {
    /// The edit was structurally a no-op (same kind, same capacity,
    /// same pattern); nothing changed.
    Noop,
    /// Only one FIFO's capacity changed.
    FifoCapacity {
        /// The patched relay station.
        node: NodeId,
        /// Previous capacity.
        old_cap: u32,
        /// New capacity.
        new_cap: u32,
    },
    /// A relay station changed kind.
    RelayKind {
        /// The patched relay station.
        node: NodeId,
        /// Whether the forward half-relay stratum was re-sorted.
        restratified: bool,
    },
    /// A relay station was inserted on a channel.
    Insert {
        /// Node index of the inserted relay (`comp_slots` row).
        node_index: u32,
        /// The channel that was split (now ends at the new relay).
        split_channel: ChannelId,
        /// Channel index of the new relay → old-consumer channel.
        new_channel_index: u32,
        /// Whether either Kahn stratum was re-sorted.
        restratified: bool,
    },
    /// A source or sink environment pattern was replaced.
    Pattern {
        /// The patched endpoint.
        node: NodeId,
    },
}

impl SettleProgram {
    /// Change the capacity of the FIFO relay station at `node` in
    /// place: one `fifo_cap` table write, an op-tape splice (or an
    /// allocation-free tape rebuild when the occupancy bit-plane count
    /// changes), and a rehash of the single fingerprint section that
    /// holds capacities. Orders of magnitude cheaper than
    /// [`compile`](Self::compile), byte-identical result.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a FIFO relay station in this program
    /// (change the kind first via
    /// [`patch_relay_kind`](Self::patch_relay_kind)).
    pub fn patch_fifo_capacity(&mut self, node: NodeId, cap: u8) -> ProgramPatch {
        let CompSlot::Fifo(row) = self.comp_slots[node.index()] else {
            panic!("node {node} is not a FIFO relay station in this program");
        };
        let row = row as usize;
        let old_cap = self.fifo_cap[row];
        let new_cap = u32::from(cap);
        if old_cap == new_cap {
            return ProgramPatch::Noop;
        }
        let _span = lip_obs::flight::global_span("compile", "patch_fifo_capacity");
        lip_obs::flight::global_add("compile.patch", 1);
        self.fifo_cap[row] = new_cap;
        let mut kernel = std::mem::take(&mut self.kernel);
        kernel.patch_fifo_capacity(self, row, old_cap);
        self.kernel = kernel;
        // One entry of section 9 (fifo_cap) changed; xor its old mix
        // out and the new one in rather than rehashing the section.
        self.section_hashes[8] ^=
            crate::program::section_entry_hash(9, row as u64, u64::from(old_cap))
                ^ crate::program::section_entry_hash(9, row as u64, u64::from(new_cap));
        self.debug_verify("patch_fifo_capacity");
        ProgramPatch::FifoCapacity {
            node,
            old_cap,
            new_cap,
        }
    }

    /// Change the kind of the relay station at `node` in place: the
    /// relay's row moves between the per-kind tables (kept in node-id
    /// order, so every row matches a fresh compile), the forward
    /// half-relay stratum is re-sorted only when a half relay is
    /// involved, the tape is rebuilt allocation-free, and only the
    /// sections of the two kinds involved are rehashed.
    ///
    /// `Fifo → Fifo` delegates to
    /// [`patch_fifo_capacity`](Self::patch_fifo_capacity); a same-kind
    /// edit is a no-op.
    ///
    /// # Panics
    ///
    /// Panics if `node` is not a relay station, or if the edit creates
    /// a combinational loop (the edited netlist would fail validation —
    /// e.g. rewriting every relay of a feedback loop to half).
    pub fn patch_relay_kind(&mut self, node: NodeId, kind: RelayKind) -> ProgramPatch {
        let old = self.comp_slots[node.index()];
        match (old, kind) {
            (CompSlot::Fifo(_), RelayKind::Fifo(k)) => return self.patch_fifo_capacity(node, k),
            (CompSlot::Full(_), RelayKind::Full) | (CompSlot::Half(_), RelayKind::Half) => {
                return ProgramPatch::Noop;
            }
            (CompSlot::Source(_) | CompSlot::Sink(_) | CompSlot::Shell(_), _) => {
                panic!("node {node} is not a relay station");
            }
            _ => {}
        }
        let _span = lip_obs::flight::global_span("compile", "patch_relay_kind");
        lip_obs::flight::global_add("compile.patch", 1);

        // Detach from the old kind table; later rows of that kind slide
        // down by one (node-id order is preserved by construction).
        let mut tags: Vec<u64> = Vec::with_capacity(5);
        let (in_ch, out_ch) = match old {
            CompSlot::Full(r) => {
                let r = r as usize;
                let v = (self.full_in_ch.remove(r), self.full_out_ch.remove(r));
                for s in &mut self.comp_slots {
                    if let CompSlot::Full(q) = s {
                        *q -= u32::from(*q as usize > r);
                    }
                }
                tags.extend([3, 4]);
                v
            }
            CompSlot::Half(r) => {
                let r = r as usize;
                let v = (self.half_in_ch.remove(r), self.half_out_ch.remove(r));
                for s in &mut self.comp_slots {
                    if let CompSlot::Half(q) = s {
                        *q -= u32::from(*q as usize > r);
                    }
                }
                tags.extend([5, 6]);
                v
            }
            CompSlot::Fifo(r) => {
                let r = r as usize;
                self.fifo_cap.remove(r);
                let v = (self.fifo_in_ch.remove(r), self.fifo_out_ch.remove(r));
                for s in &mut self.comp_slots {
                    if let CompSlot::Fifo(q) = s {
                        *q -= u32::from(*q as usize > r);
                    }
                }
                tags.extend([7, 8, 9]);
                v
            }
            _ => unreachable!("non-relay slots rejected above"),
        };

        // Attach to the new kind table at the node-id-sorted position.
        let slot_of = |s: &CompSlot, k: RelayKind| -> bool {
            matches!(
                (s, k),
                (CompSlot::Full(_), RelayKind::Full)
                    | (CompSlot::Half(_), RelayKind::Half)
                    | (CompSlot::Fifo(_), RelayKind::Fifo(_))
            )
        };
        let pos = self.comp_slots[..node.index()]
            .iter()
            .filter(|s| slot_of(s, kind))
            .count();
        for s in &mut self.comp_slots {
            match (s, kind) {
                (CompSlot::Full(q), RelayKind::Full)
                | (CompSlot::Half(q), RelayKind::Half)
                | (CompSlot::Fifo(q), RelayKind::Fifo(_)) => *q += u32::from(*q as usize >= pos),
                _ => {}
            }
        }
        self.comp_slots[node.index()] = match kind {
            RelayKind::Full => {
                self.full_in_ch.insert(pos, in_ch);
                self.full_out_ch.insert(pos, out_ch);
                tags.extend([3, 4]);
                CompSlot::Full(pos as u32)
            }
            RelayKind::Half => {
                self.half_in_ch.insert(pos, in_ch);
                self.half_out_ch.insert(pos, out_ch);
                tags.extend([5, 6]);
                CompSlot::Half(pos as u32)
            }
            RelayKind::Fifo(k) => {
                self.fifo_in_ch.insert(pos, in_ch);
                self.fifo_out_ch.insert(pos, out_ch);
                self.fifo_cap.insert(pos, u32::from(k));
                tags.extend([7, 8, 9]);
                CompSlot::Fifo(pos as u32)
            }
        };

        // Stratum diff: relay kinds only feed the forward half-relay
        // order; the backward shell order never reads relay tables.
        let restratified = matches!(old, CompSlot::Half(_)) || matches!(kind, RelayKind::Half);
        if restratified {
            self.recompute_half_order();
        }
        self.rebuild_kernel();
        tags.sort_unstable();
        tags.dedup();
        self.rehash_sections(tags);
        self.debug_verify("patch_relay_kind");
        ProgramPatch::RelayKind { node, restratified }
    }

    /// Apply one [`NetlistDelta`] to this compiled program (see the
    /// [module docs](self)). The caller keeps the source [`Netlist`] in
    /// sync via [`NetlistDelta::apply_to`]; afterwards the program
    /// equals `SettleProgram::compile` of that edited netlist.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as the per-edit methods: the
    /// target node has the wrong kind, or the edit would make the
    /// netlist fail validation.
    pub fn recompile_delta(&mut self, delta: &NetlistDelta) -> ProgramPatch {
        match delta {
            NetlistDelta::SetRelayKind { node, kind } => self.patch_relay_kind(*node, *kind),
            NetlistDelta::InsertRelay { channel, kind } => self.patch_insert_relay(*channel, *kind),
            NetlistDelta::SetSourcePattern { node, pattern } => {
                self.patch_endpoint_pattern(*node, pattern, true)
            }
            NetlistDelta::SetSinkPattern { node, pattern } => {
                self.patch_endpoint_pattern(*node, pattern, false)
            }
        }
    }

    /// Insert a relay of `kind` on `channel`, mirroring
    /// [`Netlist::insert_relay_on_channel`]: the producer keeps
    /// `channel`, the new relay (highest node id, so the last row of
    /// its kind table) drives a fresh channel into the old consumer.
    /// Only the Kahn stratum the split channel can affect is re-sorted.
    fn patch_insert_relay(&mut self, channel: ChannelId, kind: RelayKind) -> ProgramPatch {
        let _span = lip_obs::flight::global_span("compile", "patch_insert_relay");
        lip_obs::flight::global_add("compile.patch", 1);
        let ch = channel.index() as u32;
        let new_ch = self.n_channels as u32;
        let mut tags: Vec<u64> = Vec::with_capacity(5);

        // Rewire the (unique) consumer of `ch` onto the new channel,
        // remembering what kind of consumer it was: the stratum diff
        // below depends on it.
        let mut consumer_half = false;
        let mut consumer_shell_port = None;
        let rewired = 'rewire: {
            for v in &mut self.snk_in_ch {
                if *v == ch {
                    *v = new_ch;
                    tags.push(2);
                    break 'rewire true;
                }
            }
            for v in &mut self.full_in_ch {
                if *v == ch {
                    *v = new_ch;
                    tags.push(3);
                    break 'rewire true;
                }
            }
            for v in &mut self.half_in_ch {
                if *v == ch {
                    *v = new_ch;
                    consumer_half = true;
                    tags.push(5);
                    break 'rewire true;
                }
            }
            for v in &mut self.fifo_in_ch {
                if *v == ch {
                    *v = new_ch;
                    tags.push(7);
                    break 'rewire true;
                }
            }
            for (j, v) in self.shell_in_ch.iter_mut().enumerate() {
                if *v == ch {
                    *v = new_ch;
                    consumer_shell_port = Some(j);
                    tags.push(12);
                    break 'rewire true;
                }
            }
            false
        };
        assert!(rewired, "channel {channel} has no consumer in this program");

        // Stratum diff. Forward half order: the chain through `ch`
        // changes when the inserted relay is half or the consumer was a
        // half relay mid-chain. Backward shell order: the only stop
        // edge insertion can break is an unbuffered-shell →
        // unbuffered-shell adjacency across `ch`.
        let half_restrat = matches!(kind, RelayKind::Half) || consumer_half;
        let shell_restrat = consumer_shell_port.is_some_and(|j| {
            let consumer = self.shell_of_in_port(j);
            !self.shell_buffered[consumer]
                && self
                    .shell_out_ch
                    .iter()
                    .enumerate()
                    .any(|(k, &c)| c == ch && !self.shell_buffered[self.shell_of_out_port(k)])
        });

        let node_index = self.comp_slots.len() as u32;
        self.comp_slots.push(match kind {
            RelayKind::Full => {
                self.full_in_ch.push(ch);
                self.full_out_ch.push(new_ch);
                tags.extend([3, 4]);
                CompSlot::Full(self.full_in_ch.len() as u32 - 1)
            }
            RelayKind::Half => {
                self.half_in_ch.push(ch);
                self.half_out_ch.push(new_ch);
                tags.extend([5, 6]);
                CompSlot::Half(self.half_in_ch.len() as u32 - 1)
            }
            RelayKind::Fifo(k) => {
                self.fifo_in_ch.push(ch);
                self.fifo_out_ch.push(new_ch);
                self.fifo_cap.push(u32::from(k));
                tags.extend([7, 8, 9]);
                CompSlot::Fifo(self.fifo_in_ch.len() as u32 - 1)
            }
        });
        self.n_channels += 1;

        if half_restrat {
            self.recompute_half_order();
        }
        if shell_restrat {
            self.recompute_shell_order();
        }
        self.rebuild_kernel();
        tags.sort_unstable();
        tags.dedup();
        self.rehash_sections(tags);
        self.debug_verify("patch_insert_relay");
        ProgramPatch::Insert {
            node_index,
            split_channel: channel,
            new_channel_index: new_ch,
            restratified: half_restrat || shell_restrat,
        }
    }

    /// Replace a source/sink environment pattern in place: one pattern
    /// slot, the environment-period fold, and the single pattern
    /// section of the fingerprint. The op tape never reads patterns, so
    /// it is untouched.
    fn patch_endpoint_pattern(
        &mut self,
        node: NodeId,
        pattern: &Pattern,
        source: bool,
    ) -> ProgramPatch {
        let slot = self.comp_slots[node.index()];
        let target = match (slot, source) {
            (CompSlot::Source(r), true) => &mut self.src_pattern[r as usize],
            (CompSlot::Sink(r), false) => &mut self.snk_pattern[r as usize],
            _ => panic!(
                "node {node} is not a {} in this program",
                if source { "source" } else { "sink" }
            ),
        };
        if *target == *pattern {
            return ProgramPatch::Noop;
        }
        let _span = lip_obs::flight::global_span("compile", "patch_pattern");
        lip_obs::flight::global_add("compile.patch", 1);
        *target = pattern.clone();
        let mut env_period: Option<u64> = Some(1);
        for p in self.src_pattern.iter().chain(self.snk_pattern.iter()) {
            env_period = match (p.period(), env_period) {
                (Some(p), Some(a)) => Some(lcm(p, a)),
                _ => None,
            };
        }
        self.env_period = env_period;
        self.rehash_sections([15]);
        self.debug_verify("patch_endpoint_pattern");
        ProgramPatch::Pattern { node }
    }

    /// Shell row owning flat input-port slot `j` (CSR scan).
    fn shell_of_in_port(&self, j: usize) -> usize {
        debug_assert!(j < self.shell_in_ch.len());
        (0..self.shell_buffered.len())
            .find(|&s| self.shell_in_off[s + 1] as usize > j)
            .expect("port inside CSR range")
    }

    /// Shell row owning flat output-port slot `k` (CSR scan).
    fn shell_of_out_port(&self, k: usize) -> usize {
        debug_assert!(k < self.shell_out_ch.len());
        (0..self.shell_buffered.len())
            .find(|&s| self.shell_out_off[s + 1] as usize > k)
            .expect("port inside CSR range")
    }

    /// Re-sort the forward half-relay stratum from the current tables —
    /// the same Kahn run `compile` performs, so the order (and the
    /// tape emitted from it) is byte-identical to a fresh compile.
    fn recompute_half_order(&mut self) {
        let mut ch_half_producer = vec![u32::MAX; self.n_channels];
        for (h, &ch) in self.half_out_ch.iter().enumerate() {
            ch_half_producer[ch as usize] = h as u32;
        }
        let half_in_ch = &self.half_in_ch;
        let order = kahn(half_in_ch.len(), |h| {
            let p = ch_half_producer[half_in_ch[h] as usize];
            if p == u32::MAX {
                Vec::new()
            } else {
                vec![p as usize]
            }
        })
        .expect("patched netlist must stay free of combinational data loops");
        self.fwd_half_order = order.into_iter().map(|h| h as u32).collect();
    }

    /// Re-sort the backward unbuffered-shell stratum from the current
    /// tables — identical to `compile`'s Kahn run.
    fn recompute_shell_order(&mut self) {
        let mut ch_shell_consumer = vec![u32::MAX; self.n_channels];
        for s in 0..self.shell_buffered.len() {
            if self.shell_buffered[s] {
                continue;
            }
            for k in self.shell_in_range(s) {
                ch_shell_consumer[self.shell_in_ch[k] as usize] = s as u32;
            }
        }
        let order = kahn(self.shell_buffered.len(), |s| {
            if self.shell_buffered[s] {
                return Vec::new();
            }
            let mut deps = Vec::new();
            for k in self.shell_out_range(s) {
                let t = ch_shell_consumer[self.shell_out_ch[k] as usize];
                if t != u32::MAX {
                    deps.push(t as usize);
                }
            }
            deps
        })
        .expect("patched netlist must stay free of combinational stop loops");
        self.bwd_shell_order = order
            .into_iter()
            .filter(|&s| !self.shell_buffered[s])
            .map(|s| s as u32)
            .collect();
    }

    /// Rebuild the op tape in place, reusing its allocations.
    fn rebuild_kernel(&mut self) {
        let mut kernel = std::mem::take(&mut self.kernel);
        kernel.rebuild(self);
        self.kernel = kernel;
    }

    /// Run the IR verifier ([`SettleProgram::verify`]) after a patch in
    /// debug builds, so a corrupting patch fails at the patch site
    /// rather than at the first divergent measurement. Release builds
    /// skip it; CI and the equivalence proptests call `verify`
    /// explicitly.
    #[inline]
    fn debug_verify(&self, patched: &str) {
        #[cfg(debug_assertions)]
        if let Err(e) = self.verify() {
            panic!("IR verifier failed after {patched}: {e}");
        }
        #[cfg(not(debug_assertions))]
        let _ = patched;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_graph::generate;

    /// Fresh compile of `netlist` must equal `prog` byte-for-byte —
    /// tables, tape, cached section hashes and combined fingerprint.
    fn assert_matches_fresh(prog: &SettleProgram, netlist: &Netlist) {
        let fresh = SettleProgram::compile(netlist).expect("edited netlist compiles");
        assert_eq!(prog, &fresh, "patched program differs from fresh compile");
        assert_eq!(
            prog.stable_structural_hash(),
            fresh.stable_structural_hash()
        );
    }

    #[test]
    fn capacity_patch_matches_fresh_compile_across_plane_widths() {
        let ring = generate::ring(3, 2, RelayKind::Fifo(3));
        let mut netlist = ring.netlist;
        let mut prog = SettleProgram::compile(&netlist).unwrap();
        let relay = ring.relays[0];
        // 3 → 2 keeps the plane count (splice); 3 → 4 and 4 → 9 cross
        // plane boundaries (in-place rebuild); then back down.
        for cap in [2u8, 4, 9, 2, 6] {
            let delta = NetlistDelta::SetRelayKind {
                node: relay,
                kind: RelayKind::Fifo(cap),
            };
            delta.apply_to(&mut netlist);
            let patch = prog.recompile_delta(&delta);
            assert!(matches!(patch, ProgramPatch::FifoCapacity { .. }));
            assert_matches_fresh(&prog, &netlist);
        }
    }

    #[test]
    fn capacity_patch_same_capacity_is_noop() {
        let ring = generate::ring(2, 1, RelayKind::Fifo(3));
        let mut prog = SettleProgram::compile(&ring.netlist).unwrap();
        assert_eq!(
            prog.patch_fifo_capacity(ring.relays[0], 3),
            ProgramPatch::Noop
        );
        assert_matches_fresh(&prog, &ring.netlist);
    }

    #[test]
    fn relay_kind_patch_matches_fresh_compile() {
        let ring = generate::ring(3, 2, RelayKind::Full);
        let mut netlist = ring.netlist;
        let mut prog = SettleProgram::compile(&netlist).unwrap();
        // Walk one relay through every kind; half here is safe (the
        // ring keeps full relays elsewhere, so no combinational loop).
        for kind in [
            RelayKind::Fifo(4),
            RelayKind::Half,
            RelayKind::Full,
            RelayKind::Fifo(2),
        ] {
            let delta = NetlistDelta::SetRelayKind {
                node: ring.relays[1],
                kind,
            };
            delta.apply_to(&mut netlist);
            prog.recompile_delta(&delta);
            assert_matches_fresh(&prog, &netlist);
        }
    }

    #[test]
    fn insert_relay_patch_matches_fresh_compile() {
        let fig1 = generate::fig1();
        let mut netlist = fig1.netlist;
        let mut prog = SettleProgram::compile(&netlist).unwrap();
        // Insert on every original channel, all three kinds round-robin
        // — covers sink, shell and relay consumers.
        let channels: Vec<ChannelId> = netlist.channels().map(|(id, _)| id).collect();
        for (i, &channel) in channels.iter().enumerate() {
            let kind = match i % 3 {
                0 => RelayKind::Half,
                1 => RelayKind::Full,
                _ => RelayKind::Fifo(3),
            };
            let delta = NetlistDelta::InsertRelay { channel, kind };
            let inserted = delta.apply_to(&mut netlist).expect("insertion returns id");
            let patch = prog.recompile_delta(&delta);
            match patch {
                ProgramPatch::Insert { node_index, .. } => {
                    assert_eq!(node_index as usize, inserted.index());
                }
                other => panic!("expected insert patch, got {other:?}"),
            }
            assert_matches_fresh(&prog, &netlist);
        }
    }

    #[test]
    fn pattern_patch_matches_fresh_compile() {
        let fig1 = generate::fig1();
        let mut netlist = fig1.netlist;
        let mut prog = SettleProgram::compile(&netlist).unwrap();
        let delta = NetlistDelta::SetSinkPattern {
            node: fig1.sink,
            pattern: Pattern::EveryNth {
                period: 3,
                phase: 1,
            },
        };
        delta.apply_to(&mut netlist);
        prog.recompile_delta(&delta);
        assert_matches_fresh(&prog, &netlist);
        assert_eq!(prog.env_period(), Some(3));
    }

    #[test]
    fn insert_between_shells_restratifies_the_stop_order() {
        // A relay-free chain's shell→shell channels carry the backward
        // stop chain: splitting one must re-sort the unbuffered-shell
        // stratum.
        let chain = generate::chain(3, 0, RelayKind::Full);
        let mut netlist = chain.netlist;
        let mut prog = SettleProgram::compile(&netlist).unwrap();
        let shell_to_shell = netlist
            .channels()
            .find(|(_, ch)| {
                use lip_graph::NodeKind;
                matches!(
                    netlist.node(ch.producer.node).kind(),
                    NodeKind::Shell { .. }
                ) && matches!(
                    netlist.node(ch.consumer.node).kind(),
                    NodeKind::Shell { .. }
                )
            })
            .map(|(id, _)| id)
            .expect("chain has a shell-to-shell channel");
        let delta = NetlistDelta::InsertRelay {
            channel: shell_to_shell,
            kind: RelayKind::Full,
        };
        delta.apply_to(&mut netlist);
        let patch = prog.recompile_delta(&delta);
        assert!(
            matches!(
                patch,
                ProgramPatch::Insert {
                    restratified: true,
                    ..
                }
            ),
            "shell-to-shell split must re-sort a stratum, got {patch:?}"
        );
        assert_matches_fresh(&prog, &netlist);
    }
}
