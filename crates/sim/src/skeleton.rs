//! Skeleton simulation: the data-free control simulation the paper uses
//! for cheap deadlock analysis.
//!
//! *"We are allowed to simulate just the skeleton of the system
//! consisting of stop and valid signals, thus the simulation cost is
//! absolutely negligible."*
//!
//! A [`SkeletonSystem`] carries only validity bits and occupancies — no
//! data words, no pearl evaluation, no token recording — yet its control
//! behaviour is cycle-for-cycle identical to the full [`System`] (a
//! property the test-suite asserts over a topology corpus). Deadlock and
//! throughput questions only depend on control state, so this is the
//! cheap tool to answer them, exactly as the paper prescribes.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

use lip_core::{Pattern, ProtocolVariant, RelayKind};
use lip_graph::{Netlist, NetlistError, NodeId, NodeKind};

use crate::measure::Periodicity;

#[derive(Debug, Clone)]
enum SkelComp {
    Source { valid: bool, pattern: Pattern },
    Sink { pattern: Pattern, valid_seen: u64, voids_seen: u64 },
    Shell { out_valid: Vec<bool>, fires: u64 },
    Buffered { out_valid: Vec<bool>, in_buf: Vec<bool>, fires: u64 },
    FullRelay { main: bool, aux: bool },
    HalfRelay { occupied: bool },
    FifoRelay { occupancy: usize, capacity: usize },
}

/// The valid/stop-only view of a latency-insensitive system.
///
/// # Example
///
/// ```
/// use lip_graph::generate;
/// use lip_sim::SkeletonSystem;
///
/// # fn main() -> Result<(), lip_graph::NetlistError> {
/// let fig1 = generate::fig1();
/// let mut sk = SkeletonSystem::new(&fig1.netlist)?;
/// sk.run(500);
/// // Steady state delivers 4 informative tokens per 5 cycles.
/// let (valid, voids) = sk.sink_counts(fig1.sink).expect("sink");
/// assert!(valid > 390 && valid + voids == 500);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SkeletonSystem {
    comps: Vec<SkelComp>,
    in_chs: Vec<Vec<usize>>,
    out_chs: Vec<Vec<usize>>,
    producer: Vec<(usize, usize)>,
    consumer: Vec<(usize, usize)>,
    fwd_order: Vec<usize>,
    bwd_order: Vec<usize>,
    fwd: Vec<bool>,
    stop: Vec<bool>,
    cycle: u64,
    variant: ProtocolVariant,
    env_period: Option<u64>,
    /// When set, overrides environment behaviour for the next cycle:
    /// `(next source validities, current sink stops)`, each in node-id
    /// order. Used by `step_with` for externally driven exploration.
    env_override: Option<(Vec<bool>, Vec<bool>)>,
    /// Per node: its ordinal among sources / sinks (usize::MAX if not).
    source_ordinal: Vec<usize>,
    sink_ordinal: Vec<usize>,
}

impl SkeletonSystem {
    /// Validate `netlist` and elaborate its skeleton.
    ///
    /// # Errors
    ///
    /// Propagates any [`NetlistError`] from [`Netlist::validate`].
    pub fn new(netlist: &Netlist) -> Result<Self, NetlistError> {
        netlist.validate()?;
        let mut comps = Vec::with_capacity(netlist.node_count());
        let mut env_period: Option<u64> = Some(1);
        let fold = |p: Option<u64>, acc: &mut Option<u64>| {
            *acc = match (p, *acc) {
                (Some(p), Some(a)) => Some(lcm(p, a)),
                _ => None,
            };
        };
        for (_, node) in netlist.nodes() {
            comps.push(match node.kind() {
                NodeKind::Source { void_pattern } => {
                    fold(void_pattern.period(), &mut env_period);
                    SkelComp::Source { valid: !void_pattern.at(0), pattern: void_pattern.clone() }
                }
                NodeKind::Sink { stop_pattern } => {
                    fold(stop_pattern.period(), &mut env_period);
                    SkelComp::Sink { pattern: stop_pattern.clone(), valid_seen: 0, voids_seen: 0 }
                }
                NodeKind::Shell { pearl, buffered: false } => SkelComp::Shell {
                    out_valid: vec![true; pearl.num_outputs()],
                    fires: 0,
                },
                NodeKind::Shell { pearl, buffered: true } => SkelComp::Buffered {
                    out_valid: vec![true; pearl.num_outputs()],
                    in_buf: vec![false; pearl.num_inputs()],
                    fires: 0,
                },
                NodeKind::Relay { kind: RelayKind::Full } => {
                    SkelComp::FullRelay { main: false, aux: false }
                }
                NodeKind::Relay { kind: RelayKind::Half } => SkelComp::HalfRelay { occupied: false },
                NodeKind::Relay { kind: RelayKind::Fifo(k) } => {
                    SkelComp::FifoRelay { occupancy: 0, capacity: *k as usize }
                }
            });
        }

        let n_nodes = netlist.node_count();
        let n_ch = netlist.channel_count();
        let mut in_chs = vec![Vec::new(); n_nodes];
        let mut out_chs = vec![Vec::new(); n_nodes];
        for (id, node) in netlist.nodes() {
            for p in 0..node.kind().num_inputs() {
                in_chs[id.index()].push(netlist.in_channel(id, p).expect("validated").index());
            }
            for p in 0..node.kind().num_outputs() {
                out_chs[id.index()].push(netlist.out_channel(id, p).expect("validated").index());
            }
        }
        let mut producer = Vec::with_capacity(n_ch);
        let mut consumer = Vec::with_capacity(n_ch);
        for (_, ch) in netlist.channels() {
            producer.push((ch.producer.node.index(), ch.producer.index));
            consumer.push((ch.consumer.node.index(), ch.consumer.index));
        }

        let is_half = |i: usize| matches!(comps[i], SkelComp::HalfRelay { .. });
        let fwd_order = kahn(n_ch, |ch| {
            let (p, _) = producer[ch];
            if is_half(p) {
                vec![in_chs[p][0]]
            } else {
                Vec::new()
            }
        })
        .expect("validated: no combinational data loop");
        let is_shell = |i: usize| matches!(comps[i], SkelComp::Shell { .. });
        let bwd_order = kahn(n_ch, |ch| {
            let (c, _) = consumer[ch];
            if is_shell(c) {
                out_chs[c].clone()
            } else {
                Vec::new()
            }
        })
        .expect("validated: no combinational stop loop");

        let mut source_ordinal = vec![usize::MAX; comps.len()];
        let mut sink_ordinal = vec![usize::MAX; comps.len()];
        let (mut si, mut ki) = (0usize, 0usize);
        for (i, c) in comps.iter().enumerate() {
            match c {
                SkelComp::Source { .. } => {
                    source_ordinal[i] = si;
                    si += 1;
                }
                SkelComp::Sink { .. } => {
                    sink_ordinal[i] = ki;
                    ki += 1;
                }
                _ => {}
            }
        }
        Ok(SkeletonSystem {
            comps,
            in_chs,
            out_chs,
            producer,
            consumer,
            fwd_order,
            bwd_order,
            fwd: vec![false; n_ch],
            stop: vec![false; n_ch],
            cycle: 0,
            variant: netlist.variant(),
            env_period,
            env_override: None,
            source_ordinal,
            sink_ordinal,
        })
    }

    fn shell_can_fire(&self, node: usize) -> bool {
        let out_valid = match &self.comps[node] {
            SkelComp::Shell { out_valid, .. } => out_valid,
            SkelComp::Buffered { out_valid, .. } => out_valid,
            _ => unreachable!("caller checks kind"),
        };
        let all_valid = match &self.comps[node] {
            SkelComp::Buffered { in_buf, .. } => self.in_chs[node]
                .iter()
                .enumerate()
                .all(|(i, &c)| in_buf[i] || self.fwd[c]),
            _ => self.in_chs[node].iter().all(|&c| self.fwd[c]),
        };
        let blocked = self.out_chs[node].iter().zip(out_valid).any(|(&c, &v)| {
            self.stop[c] && (v || !self.variant.discards_stop_on_void())
        });
        all_valid && !blocked
    }

    /// Settle this cycle's valid and stop bits.
    pub fn settle(&mut self) {
        for i in 0..self.fwd_order.len() {
            let ch = self.fwd_order[i];
            let (p, port) = self.producer[ch];
            self.fwd[ch] = match &self.comps[p] {
                SkelComp::Source { valid, .. } => *valid,
                SkelComp::Shell { out_valid, .. } => out_valid[port],
                SkelComp::Buffered { out_valid, .. } => out_valid[port],
                SkelComp::FullRelay { main, .. } => *main,
                SkelComp::HalfRelay { occupied } => *occupied || self.fwd[self.in_chs[p][0]],
                SkelComp::FifoRelay { occupancy, .. } => *occupancy > 0,
                SkelComp::Sink { .. } => unreachable!("sinks have no outputs"),
            };
        }
        for i in 0..self.bwd_order.len() {
            let ch = self.bwd_order[i];
            let (c, _port) = self.consumer[ch];
            self.stop[ch] = match &self.comps[c] {
                SkelComp::Sink { pattern, .. } => match &self.env_override {
                    Some((_, stops)) => stops[self.sink_ordinal[c]],
                    None => pattern.at(self.cycle),
                },
                SkelComp::FullRelay { aux, .. } => *aux,
                SkelComp::HalfRelay { occupied } => *occupied,
                SkelComp::FifoRelay { occupancy, capacity } => *occupancy == *capacity,
                SkelComp::Shell { .. } => {
                    let fire = self.shell_can_fire(c);
                    if fire {
                        false
                    } else if self.variant.discards_stop_on_void() {
                        self.fwd[ch]
                    } else {
                        true
                    }
                }
                SkelComp::Buffered { in_buf, .. } => in_buf[_port],
                SkelComp::Source { .. } => unreachable!("sources have no inputs"),
            };
        }
    }

    /// Advance one clock cycle.
    pub fn step(&mut self) {
        self.settle();
        for i in 0..self.comps.len() {
            let fire = matches!(self.comps[i], SkelComp::Shell { .. } | SkelComp::Buffered { .. })
                && self.shell_can_fire(i);
            let in0 = self.in_chs[i].first().map(|&c| self.fwd[c]);
            let stop0 = self.out_chs[i].first().map(|&c| self.stop[c]);
            let stops: Vec<bool> = self.out_chs[i].iter().map(|&c| self.stop[c]).collect();
            let in_vals: Vec<bool> = self.in_chs[i].iter().map(|&c| self.fwd[c]).collect();
            match &mut self.comps[i] {
                SkelComp::Source { valid, pattern } => {
                    let stop = stop0.expect("source output connected");
                    if !(*valid && stop) {
                        *valid = match &self.env_override {
                            Some((valids, _)) => valids[self.source_ordinal[i]],
                            None => !pattern.at(self.cycle + 1),
                        };
                    }
                }
                SkelComp::Sink { pattern, valid_seen, voids_seen } => {
                    let stopped = match &self.env_override {
                        Some((_, stops)) => stops[self.sink_ordinal[i]],
                        None => pattern.at(self.cycle),
                    };
                    if !stopped {
                        if in0.expect("sink input connected") {
                            *valid_seen += 1;
                        } else {
                            *voids_seen += 1;
                        }
                    }
                }
                SkelComp::Shell { out_valid, fires } => {
                    if fire {
                        out_valid.iter_mut().for_each(|v| *v = true);
                        *fires += 1;
                    } else {
                        for (v, s) in out_valid.iter_mut().zip(&stops) {
                            if *v && !s {
                                *v = false;
                            }
                        }
                    }
                }
                SkelComp::Buffered { out_valid, in_buf, fires } => {
                    if fire {
                        out_valid.iter_mut().for_each(|v| *v = true);
                        in_buf.iter_mut().for_each(|b| *b = false);
                        *fires += 1;
                    } else {
                        for (b, &c) in in_buf.iter_mut().zip(&in_vals) {
                            if !*b && c {
                                *b = true;
                            }
                        }
                        for (v, s) in out_valid.iter_mut().zip(&stops) {
                            if *v && !s {
                                *v = false;
                            }
                        }
                    }
                }
                SkelComp::FullRelay { main, aux } => {
                    let input = in0.expect("relay input connected");
                    let stop = stop0.expect("relay output connected");
                    let released = *main && !stop;
                    if *aux {
                        if released {
                            // aux shifts into main; value-wise main stays
                            // informative.
                            *aux = false;
                        }
                    } else if *main {
                        if released {
                            *main = input;
                        } else if input {
                            *aux = true;
                        }
                    } else {
                        *main = input;
                    }
                }
                SkelComp::HalfRelay { occupied } => {
                    let input = in0.expect("relay input connected");
                    let stop = stop0.expect("relay output connected");
                    if *occupied {
                        if !stop {
                            *occupied = false;
                        }
                    } else if stop && input {
                        *occupied = true;
                    }
                }
                SkelComp::FifoRelay { occupancy, capacity } => {
                    let input = in0.expect("relay input connected");
                    let stop = stop0.expect("relay output connected");
                    let was_full = *occupancy == *capacity;
                    if !stop && *occupancy > 0 {
                        *occupancy -= 1;
                    }
                    if !was_full && input {
                        *occupancy += 1;
                    }
                }
            }
        }
        self.cycle += 1;
    }

    /// Run `n` cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Settle and clock one cycle with the environment driven
    /// *externally*: `sink_stop[j]` is the `j`-th sink's stop for this
    /// cycle, and `source_valid[i]` the validity of the `i`-th source's
    /// next offer (a held token stays held — the appropriate-environment
    /// obligation). Indices follow
    /// [`Netlist::sources`](lip_graph::Netlist::sources) /
    /// [`Netlist::sinks`](lip_graph::Netlist::sinks) order.
    ///
    /// This is the hook the whole-system explorer uses to universally
    /// quantify over environments instead of fixing a pattern.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the source/sink counts.
    pub fn step_with(&mut self, source_valid: &[bool], sink_stop: &[bool]) {
        let n_src = self.source_ordinal.iter().filter(|o| **o != usize::MAX).count();
        let n_snk = self.sink_ordinal.iter().filter(|o| **o != usize::MAX).count();
        assert_eq!(source_valid.len(), n_src, "source override arity");
        assert_eq!(sink_stop.len(), n_snk, "sink override arity");
        self.env_override = Some((source_valid.to_vec(), sink_stop.to_vec()));
        self.step();
        self.env_override = None;
    }

    /// Component control state only — no environment phase — the state
    /// the whole-system explorer keys on when the environment is
    /// external.
    #[must_use]
    pub fn component_state(&self) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.comps.len());
        for comp in &self.comps {
            match comp {
                SkelComp::Source { valid, .. } => out.push(u64::from(*valid)),
                SkelComp::Sink { .. } => {}
                SkelComp::Shell { out_valid, .. } => out.push(pack_bits(out_valid, &[])),
                SkelComp::Buffered { out_valid, in_buf, .. } => {
                    out.push(pack_bits(out_valid, in_buf));
                }
                SkelComp::FullRelay { main, aux } => {
                    out.push(u64::from(*main) + 2 * u64::from(*aux));
                }
                SkelComp::HalfRelay { occupied } => out.push(u64::from(*occupied)),
                SkelComp::FifoRelay { occupancy, .. } => out.push(*occupancy as u64),
            }
        }
        out
    }

    /// Total shell firings so far, summed over all shells.
    #[must_use]
    pub fn total_fires(&self) -> u64 {
        self.comps
            .iter()
            .map(|c| match c {
                SkelComp::Shell { fires, .. } | SkelComp::Buffered { fires, .. } => *fires,
                _ => 0,
            })
            .sum()
    }

    /// Cycles executed so far.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// `(valid, voids)` consumed by the sink at `node`.
    #[must_use]
    pub fn sink_counts(&self, node: NodeId) -> Option<(u64, u64)> {
        match &self.comps[node.index()] {
            SkelComp::Sink { valid_seen, voids_seen, .. } => Some((*valid_seen, *voids_seen)),
            _ => None,
        }
    }

    /// Number of firings of the shell at `node`.
    #[must_use]
    pub fn shell_fires(&self, node: NodeId) -> Option<u64> {
        match &self.comps[node.index()] {
            SkelComp::Shell { fires, .. } => Some(*fires),
            SkelComp::Buffered { fires, .. } => Some(*fires),
            _ => None,
        }
    }

    /// Control state (mirrors [`System::control_state`]); `None` for
    /// aperiodic environments.
    ///
    /// [`System::control_state`]: crate::System::control_state
    #[must_use]
    pub fn control_state(&self) -> Option<Vec<u64>> {
        let period = self.env_period?;
        let mut out = vec![self.cycle % period];
        for comp in &self.comps {
            match comp {
                SkelComp::Source { valid, .. } => out.push(u64::from(*valid)),
                SkelComp::Sink { .. } => {}
                SkelComp::Shell { out_valid, .. } => {
                    let mut bits = 0u64;
                    for (j, v) in out_valid.iter().enumerate() {
                        if *v {
                            bits |= 1 << (j % 64);
                        }
                    }
                    out.push(bits);
                }
                SkelComp::Buffered { out_valid, in_buf, .. } => {
                    let mut bits = 0u64;
                    for (j, v) in out_valid.iter().enumerate() {
                        if *v {
                            bits |= 1 << (j % 64);
                        }
                    }
                    for (i, b) in in_buf.iter().enumerate() {
                        if *b {
                            bits |= 1 << ((out_valid.len() + i) % 64);
                        }
                    }
                    out.push(bits);
                }
                SkelComp::FullRelay { main, aux } => {
                    out.push(u64::from(*main) + u64::from(*aux));
                }
                SkelComp::HalfRelay { occupied } => out.push(u64::from(*occupied)),
                SkelComp::FifoRelay { occupancy, .. } => out.push(*occupancy as u64),
            }
        }
        Some(out)
    }

    /// Hash of the control state.
    #[must_use]
    pub fn control_hash(&self) -> Option<u64> {
        let state = self.control_state()?;
        let mut h = DefaultHasher::new();
        state.hash(&mut h);
        Some(h.finish())
    }

    /// Detect the periodic regime (see
    /// [`find_periodicity`](crate::measure::find_periodicity)).
    pub fn find_periodicity(&mut self, max_cycles: u64) -> Option<Periodicity> {
        let mut seen: HashMap<u64, (u64, Vec<u64>)> = HashMap::new();
        for _ in 0..max_cycles {
            self.settle();
            let state = self.control_state()?;
            let hash = self.control_hash()?;
            match seen.get(&hash) {
                Some((first, prev)) if *prev == state => {
                    return Some(Periodicity { transient: *first, period: self.cycle - first });
                }
                Some(_) => {}
                None => {
                    seen.insert(hash, (self.cycle, state));
                }
            }
            self.step();
        }
        None
    }
}

fn pack_bits(a: &[bool], b: &[bool]) -> u64 {
    let mut bits = 0u64;
    for (j, v) in a.iter().chain(b).enumerate() {
        if *v {
            bits |= 1 << (j % 64);
        }
    }
    bits
}

fn lcm(a: u64, b: u64) -> u64 {
    fn gcd(mut a: u64, mut b: u64) -> u64 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }
    if a == 0 || b == 0 {
        return a.max(b).max(1);
    }
    (a / gcd(a, b)).saturating_mul(b)
}

fn kahn(n: usize, deps: impl Fn(usize) -> Vec<usize>) -> Option<Vec<usize>> {
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indegree = vec![0usize; n];
    for (ch, slot) in indegree.iter_mut().enumerate() {
        for d in deps(ch) {
            dependents[d].push(ch);
            *slot += 1;
        }
    }
    let mut queue: std::collections::VecDeque<usize> =
        (0..n).filter(|&c| indegree[c] == 0).collect();
    let mut out = Vec::with_capacity(n);
    while let Some(c) = queue.pop_front() {
        out.push(c);
        for &d in &dependents[c] {
            indegree[d] -= 1;
            if indegree[d] == 0 {
                queue.push_back(d);
            }
        }
    }
    (out.len() == n).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::System;
    use lip_core::RelayKind;
    use lip_graph::generate;

    /// The skeleton must follow the full simulation's control behaviour
    /// cycle for cycle.
    fn assert_skeleton_matches(netlist: &Netlist, cycles: u64) {
        let mut full = System::new(netlist).unwrap();
        let mut skel = SkeletonSystem::new(netlist).unwrap();
        for t in 0..cycles {
            full.settle();
            skel.settle();
            assert_eq!(
                full.control_state(),
                skel.control_state(),
                "control states diverge at cycle {t}"
            );
            full.step();
            skel.step();
        }
    }

    #[test]
    fn skeleton_equals_full_on_fig1() {
        assert_skeleton_matches(&generate::fig1().netlist, 50);
    }

    #[test]
    fn skeleton_equals_full_on_rings() {
        for (s, r) in [(1usize, 1usize), (2, 1), (3, 2)] {
            assert_skeleton_matches(&generate::ring(s, r, RelayKind::Full).netlist, 40);
        }
        assert_skeleton_matches(&generate::ring(2, 1, RelayKind::Half).netlist, 40);
    }

    #[test]
    fn skeleton_equals_full_on_random_corpus() {
        let mut checked = 0;
        for seed in 0..40u64 {
            let (_, netlist) = generate::random_family(seed);
            if netlist.validate().is_ok() {
                assert_skeleton_matches(&netlist, 30);
                checked += 1;
            }
        }
        assert!(checked >= 25, "only {checked} random instances checked");
    }

    #[test]
    fn skeleton_measures_fig1_throughput() {
        let f = generate::fig1();
        let mut sk = SkeletonSystem::new(&f.netlist).unwrap();
        let p = sk.find_periodicity(1000).unwrap();
        assert_eq!(p.period, 5);
        let (v0, n0) = sk.sink_counts(f.sink).unwrap();
        sk.run(10 * p.period);
        let (v1, n1) = sk.sink_counts(f.sink).unwrap();
        assert_eq!(v1 - v0, 40); // 4 valid per 5-cycle period x 10
        assert_eq!(n1 - n0, 10);
    }

    #[test]
    fn skeleton_counts_fires() {
        let f = generate::fig1();
        let mut sk = SkeletonSystem::new(&f.netlist).unwrap();
        sk.run(100);
        assert!(sk.shell_fires(f.fork).unwrap() > 50);
        assert!(sk.shell_fires(f.join).unwrap() > 50);
        assert_eq!(sk.shell_fires(f.sink), None);
        assert_eq!(sk.cycle(), 100);
    }
}
