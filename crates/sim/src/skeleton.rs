//! Skeleton simulation: the data-free control simulation the paper uses
//! for cheap deadlock analysis.
//!
//! *"We are allowed to simulate just the skeleton of the system
//! consisting of stop and valid signals, thus the simulation cost is
//! absolutely negligible."*
//!
//! A [`SkeletonSystem`] carries only validity bits and occupancies — no
//! data words, no pearl evaluation, no token recording — yet its control
//! behaviour is cycle-for-cycle identical to the full [`System`] (a
//! property the test-suite asserts over a topology corpus). Deadlock and
//! throughput questions only depend on control state, so this is the
//! cheap tool to answer them, exactly as the paper prescribes.
//!
//! The per-cycle loop executes a compiled
//! [`SettleProgram`](crate::program::SettleProgram): state lives in flat
//! per-kind vectors and each settle phase is a homogeneous loop over
//! integer index arrays, with no per-component enum dispatch. The same
//! program drives the 64-lane [`BatchSkeleton`](crate::BatchSkeleton).
//!
//! [`System`]: crate::System

use std::sync::Arc;

use lip_graph::{Netlist, NetlistError, NodeId};
use lip_obs::{NullProbe, Probe};

use crate::measure::Periodicity;
use crate::program::{stable_hash, CompSlot, SettleProgram};

/// The valid/stop-only view of a latency-insensitive system.
///
/// # Example
///
/// ```
/// use lip_graph::generate;
/// use lip_sim::SkeletonSystem;
///
/// # fn main() -> Result<(), lip_graph::NetlistError> {
/// let fig1 = generate::fig1();
/// let mut sk = SkeletonSystem::new(&fig1.netlist)?;
/// sk.run(500);
/// // Steady state delivers 4 informative tokens per 5 cycles.
/// let (valid, voids) = sk.sink_counts(fig1.sink).expect("sink");
/// assert!(valid > 390 && valid + voids == 500);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SkeletonSystem {
    prog: Arc<SettleProgram>,
    /// Settled valid bit per channel.
    fwd: Vec<bool>,
    /// Settled stop bit per channel.
    stop: Vec<bool>,
    /// Current validity offered by each source.
    src_valid: Vec<bool>,
    /// Output-register validity, flat by `shell_out_off`.
    shell_out: Vec<bool>,
    /// Input-buffer occupancy, flat by `shell_in_off` (unbuffered shells
    /// never set theirs).
    in_buf: Vec<bool>,
    /// Per shell: fire condition of the last settle.
    fire: Vec<bool>,
    /// Per shell: firings so far.
    fires: Vec<u64>,
    /// Full relay main/aux register validity.
    full_main: Vec<bool>,
    full_aux: Vec<bool>,
    /// Half relay occupancy.
    half_occ: Vec<bool>,
    /// FIFO relay occupancy.
    fifo_occ: Vec<u32>,
    /// Per sink: informative / void tokens consumed.
    snk_valid: Vec<u64>,
    snk_voids: Vec<u64>,
    cycle: u64,
    /// When set, overrides environment behaviour for the next cycle:
    /// `(next source validities, current sink stops)`, each in node-id
    /// order. Used by `step_with` for externally driven exploration.
    env_override: Option<(Vec<bool>, Vec<bool>)>,
}

impl SkeletonSystem {
    /// Validate `netlist` and elaborate its skeleton.
    ///
    /// # Errors
    ///
    /// Propagates any [`NetlistError`] from [`Netlist::validate`].
    pub fn new(netlist: &Netlist) -> Result<Self, NetlistError> {
        Ok(Self::from_program(Arc::new(SettleProgram::compile(
            netlist,
        )?)))
    }

    /// Build a skeleton over an already compiled (possibly shared)
    /// settle program. State starts at reset, cycle 0.
    #[must_use]
    pub fn from_program(prog: Arc<SettleProgram>) -> Self {
        let src_valid: Vec<bool> = prog.src_pattern.iter().map(|p| !p.at(0)).collect();
        SkeletonSystem {
            fwd: vec![false; prog.n_channels],
            stop: vec![false; prog.n_channels],
            src_valid,
            shell_out: vec![true; prog.shell_out_ch.len()],
            in_buf: vec![false; prog.shell_in_ch.len()],
            fire: vec![false; prog.shell_buffered.len()],
            fires: vec![0; prog.shell_buffered.len()],
            full_main: vec![false; prog.full_in_ch.len()],
            full_aux: vec![false; prog.full_in_ch.len()],
            half_occ: vec![false; prog.half_in_ch.len()],
            fifo_occ: vec![0; prog.fifo_in_ch.len()],
            snk_valid: vec![0; prog.snk_in_ch.len()],
            snk_voids: vec![0; prog.snk_in_ch.len()],
            cycle: 0,
            env_override: None,
            prog,
        }
    }

    /// The compiled settle program this skeleton executes.
    #[must_use]
    pub fn program(&self) -> &Arc<SettleProgram> {
        &self.prog
    }

    /// Adopt a patched settle program (see [`crate::patch`]) without
    /// rebuilding the skeleton: state slices the patch left alone are
    /// kept. Channels, source offers, shell registers, buffers and all
    /// counters carry over; relay occupancies map by node identity
    /// (rows may have moved between kind tables), FIFO occupancies are
    /// clamped into a shrunk capacity; kind-changed or newly inserted
    /// relays restart empty, as do sources whose environment pattern
    /// changed. Adopting at reset is indistinguishable from
    /// [`from_program`](Self::from_program) on the new program.
    ///
    /// # Panics
    ///
    /// Panics if `new_prog` disagrees with the current program on
    /// source, sink or shell structure — patches never change those;
    /// anything that does requires a fresh skeleton.
    pub fn adopt(&mut self, new_prog: Arc<SettleProgram>) {
        let old_prog = std::mem::replace(&mut self.prog, new_prog);
        let (p1, p2) = (&*old_prog, &*self.prog);
        assert_eq!(p1.src_out_ch, p2.src_out_ch, "adopt cannot change sources");
        assert_eq!(
            p1.snk_in_ch.len(),
            p2.snk_in_ch.len(),
            "adopt cannot change sinks"
        );
        assert_eq!(
            (&p1.shell_buffered, &p1.shell_in_off, &p1.shell_out_off),
            (&p2.shell_buffered, &p2.shell_in_off, &p2.shell_out_off),
            "adopt cannot change shells"
        );
        // Channel ids are stable under patches (insertions append).
        self.fwd.resize(p2.n_channels, false);
        self.stop.resize(p2.n_channels, false);
        // Relay state maps by node identity — same-kind rows carry
        // over, kind changes reset.
        let mut full_main = vec![false; p2.full_in_ch.len()];
        let mut full_aux = vec![false; p2.full_in_ch.len()];
        let mut half_occ = vec![false; p2.half_in_ch.len()];
        let mut fifo_occ = vec![0u32; p2.fifo_in_ch.len()];
        for (node, &s1) in p1.comp_slots.iter().enumerate() {
            match (s1, p2.comp_slots[node]) {
                (CompSlot::Full(r1), CompSlot::Full(r2)) => {
                    full_main[r2 as usize] = self.full_main[r1 as usize];
                    full_aux[r2 as usize] = self.full_aux[r1 as usize];
                }
                (CompSlot::Half(r1), CompSlot::Half(r2)) => {
                    half_occ[r2 as usize] = self.half_occ[r1 as usize];
                }
                (CompSlot::Fifo(r1), CompSlot::Fifo(r2)) => {
                    fifo_occ[r2 as usize] =
                        self.fifo_occ[r1 as usize].min(p2.fifo_cap[r2 as usize]);
                }
                _ => {}
            }
        }
        self.full_main = full_main;
        self.full_aux = full_aux;
        self.half_occ = half_occ;
        self.fifo_occ = fifo_occ;
        // A patched environment pattern restarts that source's offer
        // from the pattern at the current cycle.
        for (i, p) in p2.src_pattern.iter().enumerate() {
            if p1.src_pattern[i] != *p {
                self.src_valid[i] = !p.at(self.cycle);
            }
        }
    }

    /// Settle this cycle's valid and stop bits.
    pub fn settle(&mut self) {
        self.settle_probed(&mut NullProbe);
    }

    /// [`settle`](Self::settle) with observation: emits
    /// [`void_discard`](Probe::void_discard) as the refined variant
    /// suppresses stops, then per-channel [`stall`](Probe::stall) /
    /// [`channel_void`](Probe::channel_void) for the settled state.
    /// Every hook (and its argument computation) is guarded by
    /// [`Probe::ENABLED`], so `settle_probed::<NullProbe>` compiles to
    /// the unobserved loop.
    pub fn settle_probed<P: Probe>(&mut self, probe: &mut P) {
        let Self {
            prog,
            fwd,
            stop,
            src_valid,
            shell_out,
            in_buf,
            fire,
            full_main,
            full_aux,
            half_occ,
            fifo_occ,
            cycle,
            env_override,
            ..
        } = self;
        let p: &SettleProgram = prog;

        // Forward pass 1: registered producers, any order.
        for (i, &ch) in p.src_out_ch.iter().enumerate() {
            fwd[ch as usize] = src_valid[i];
        }
        for (k, &ch) in p.shell_out_ch.iter().enumerate() {
            fwd[ch as usize] = shell_out[k];
        }
        for (i, &ch) in p.full_out_ch.iter().enumerate() {
            fwd[ch as usize] = full_main[i];
        }
        for (i, &ch) in p.fifo_out_ch.iter().enumerate() {
            fwd[ch as usize] = fifo_occ[i] > 0;
        }
        // Forward pass 2: half-relay chains, upstream first.
        for &h in &p.fwd_half_order {
            let h = h as usize;
            fwd[p.half_out_ch[h] as usize] = half_occ[h] || fwd[p.half_in_ch[h] as usize];
        }

        // Backward pass 1: registered stops, any order.
        for (i, &ch) in p.snk_in_ch.iter().enumerate() {
            stop[ch as usize] = match env_override {
                Some((_, stops)) => stops[i],
                None => p.snk_pattern[i].at(*cycle),
            };
        }
        for (i, &ch) in p.full_in_ch.iter().enumerate() {
            stop[ch as usize] = full_aux[i];
        }
        for (h, &ch) in p.half_in_ch.iter().enumerate() {
            stop[ch as usize] = half_occ[h];
        }
        for (i, &ch) in p.fifo_in_ch.iter().enumerate() {
            stop[ch as usize] = fifo_occ[i] == p.fifo_cap[i];
        }
        for &s in &p.buffered_shells {
            for k in p.shell_in_range(s as usize) {
                stop[p.shell_in_ch[k] as usize] = in_buf[k];
            }
        }
        // Backward pass 2: unbuffered shells, downstream first. Each
        // shell's fire is final here (its output stops are settled), so
        // it is recorded for the clock phase.
        for &s in &p.bwd_shell_order {
            let s = s as usize;
            let f = shell_fire(p, fwd, stop, shell_out, in_buf, s);
            fire[s] = f;
            for k in p.shell_in_range(s) {
                let ch = p.shell_in_ch[k] as usize;
                stop[ch] = if f {
                    false
                } else if p.discards {
                    if P::ENABLED && !fwd[ch] {
                        // The baseline variant would assert this stop;
                        // the refinement discards it against the void.
                        probe.void_discard(*cycle, ch as u32, 0);
                    }
                    fwd[ch]
                } else {
                    true
                };
            }
        }
        // Pass 3: buffered shells fire once every stop has settled (their
        // own input stops are registered, so nothing downstream waits).
        for &s in &p.buffered_shells {
            let s = s as usize;
            fire[s] = shell_fire(p, fwd, stop, shell_out, in_buf, s);
        }
        if P::ENABLED {
            for ch in 0..p.n_channels {
                if stop[ch] {
                    probe.stall(*cycle, ch as u32, 0);
                }
                if !fwd[ch] {
                    probe.channel_void(*cycle, ch as u32, 0);
                }
            }
        }
    }

    /// Advance one clock cycle.
    pub fn step(&mut self) {
        self.step_probed(&mut NullProbe);
    }

    /// [`step`](Self::step) with observation: settles via
    /// [`settle_probed`](Self::settle_probed), then emits
    /// [`consume`](Probe::consume) / [`void_in`](Probe::void_in) at the
    /// sinks, [`fire`](Probe::fire) per firing shell,
    /// [`relay_fill`](Probe::relay_fill) /
    /// [`relay_drain`](Probe::relay_drain) per relay token movement
    /// (rows numbered full, then half, then FIFO), and finally
    /// [`end_cycle`](Probe::end_cycle).
    pub fn step_probed<P: Probe>(&mut self, probe: &mut P) {
        self.settle_probed(probe);
        let Self {
            prog,
            fwd,
            stop,
            src_valid,
            shell_out,
            in_buf,
            fire,
            fires,
            full_main,
            full_aux,
            half_occ,
            fifo_occ,
            snk_valid,
            snk_voids,
            cycle,
            env_override,
        } = self;
        let p: &SettleProgram = prog;

        for i in 0..src_valid.len() {
            let stopped = stop[p.src_out_ch[i] as usize];
            if !(src_valid[i] && stopped) {
                src_valid[i] = match env_override {
                    Some((valids, _)) => valids[i],
                    None => !p.src_pattern[i].at(*cycle + 1),
                };
            }
        }
        for i in 0..snk_valid.len() {
            let stopped = match env_override {
                Some((_, stops)) => stops[i],
                None => p.snk_pattern[i].at(*cycle),
            };
            if !stopped {
                if fwd[p.snk_in_ch[i] as usize] {
                    snk_valid[i] += 1;
                    if P::ENABLED {
                        probe.consume(*cycle, p.snk_in_ch[i], 0);
                    }
                } else {
                    snk_voids[i] += 1;
                    if P::ENABLED {
                        probe.void_in(*cycle, p.snk_in_ch[i], 0);
                    }
                }
            }
        }
        for s in 0..p.shell_buffered.len() {
            if fire[s] {
                if P::ENABLED {
                    probe.fire(*cycle, s as u32, 0);
                }
                for k in p.shell_out_range(s) {
                    shell_out[k] = true;
                }
                if p.shell_buffered[s] {
                    for k in p.shell_in_range(s) {
                        in_buf[k] = false;
                    }
                }
                fires[s] += 1;
            } else {
                if p.shell_buffered[s] {
                    for k in p.shell_in_range(s) {
                        in_buf[k] = in_buf[k] || fwd[p.shell_in_ch[k] as usize];
                    }
                }
                for k in p.shell_out_range(s) {
                    if shell_out[k] && !stop[p.shell_out_ch[k] as usize] {
                        shell_out[k] = false;
                    }
                }
            }
        }
        for i in 0..full_main.len() {
            let input = fwd[p.full_in_ch[i] as usize];
            let stopped = stop[p.full_out_ch[i] as usize];
            let released = full_main[i] && !stopped;
            if P::ENABLED {
                // A token enters whenever the input is offered and aux is
                // free (aux occupied ⇒ the registered stop held it
                // upstream); a token leaves whenever main releases.
                if input && !full_aux[i] {
                    probe.relay_fill(*cycle, p.full_relay_row(i), 0);
                }
                if released {
                    probe.relay_drain(*cycle, p.full_relay_row(i), 0);
                }
            }
            if full_aux[i] {
                if released {
                    // aux shifts into main; value-wise main stays
                    // informative.
                    full_aux[i] = false;
                }
            } else if full_main[i] {
                if released {
                    full_main[i] = input;
                } else if input {
                    full_aux[i] = true;
                }
            } else {
                full_main[i] = input;
            }
        }
        for h in 0..half_occ.len() {
            let input = fwd[p.half_in_ch[h] as usize];
            let stopped = stop[p.half_out_ch[h] as usize];
            if half_occ[h] {
                if !stopped {
                    half_occ[h] = false;
                    if P::ENABLED {
                        probe.relay_drain(*cycle, p.half_relay_row(h), 0);
                    }
                }
            } else if stopped && input {
                half_occ[h] = true;
                if P::ENABLED {
                    probe.relay_fill(*cycle, p.half_relay_row(h), 0);
                }
            }
        }
        for i in 0..fifo_occ.len() {
            let input = fwd[p.fifo_in_ch[i] as usize];
            let stopped = stop[p.fifo_out_ch[i] as usize];
            let was_full = fifo_occ[i] == p.fifo_cap[i];
            if !stopped && fifo_occ[i] > 0 {
                fifo_occ[i] -= 1;
                if P::ENABLED {
                    probe.relay_drain(*cycle, p.fifo_relay_row(i), 0);
                }
            }
            if !was_full && input {
                fifo_occ[i] += 1;
                if P::ENABLED {
                    probe.relay_fill(*cycle, p.fifo_relay_row(i), 0);
                }
            }
        }
        if P::ENABLED {
            probe.end_cycle(*cycle);
        }
        *cycle += 1;
    }

    /// Run `n` cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Run `n` cycles under observation (see
    /// [`step_probed`](Self::step_probed)).
    pub fn run_probed<P: Probe>(&mut self, n: u64, probe: &mut P) {
        for _ in 0..n {
            self.step_probed(probe);
        }
    }

    /// Settle and clock one cycle with the environment driven
    /// *externally*: `sink_stop[j]` is the `j`-th sink's stop for this
    /// cycle, and `source_valid[i]` the validity of the `i`-th source's
    /// next offer (a held token stays held — the appropriate-environment
    /// obligation). Indices follow
    /// [`Netlist::sources`](lip_graph::Netlist::sources) /
    /// [`Netlist::sinks`](lip_graph::Netlist::sinks) order.
    ///
    /// This is the hook the whole-system explorer uses to universally
    /// quantify over environments instead of fixing a pattern.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the source/sink counts.
    pub fn step_with(&mut self, source_valid: &[bool], sink_stop: &[bool]) {
        assert_eq!(
            source_valid.len(),
            self.prog.source_count(),
            "source override arity"
        );
        assert_eq!(
            sink_stop.len(),
            self.prog.sink_count(),
            "sink override arity"
        );
        self.env_override = Some((source_valid.to_vec(), sink_stop.to_vec()));
        self.step();
        self.env_override = None;
    }

    /// Component control state only — no environment phase — the state
    /// the whole-system explorer keys on when the environment is
    /// external.
    #[must_use]
    pub fn component_state(&self) -> Vec<u64> {
        let p = &*self.prog;
        let mut out = Vec::with_capacity(p.comp_slots.len());
        for slot in &p.comp_slots {
            match *slot {
                CompSlot::Source(i) => out.push(u64::from(self.src_valid[i as usize])),
                CompSlot::Sink(_) => {}
                CompSlot::Shell(s) => {
                    let s = s as usize;
                    let outs = &self.shell_out[p.shell_out_range(s)];
                    let bufs = if p.shell_buffered[s] {
                        &self.in_buf[p.shell_in_range(s)]
                    } else {
                        &[][..]
                    };
                    out.push(pack_bits(outs, bufs));
                }
                CompSlot::Full(i) => {
                    let i = i as usize;
                    out.push(u64::from(self.full_main[i]) + 2 * u64::from(self.full_aux[i]));
                }
                CompSlot::Half(h) => out.push(u64::from(self.half_occ[h as usize])),
                CompSlot::Fifo(i) => out.push(u64::from(self.fifo_occ[i as usize])),
            }
        }
        out
    }

    /// Fire condition of every shell from the last settle, in shell-row
    /// order (the order [`SettleProgram`] compiled shells, i.e. node-id
    /// order among shells). After a [`step`](Self::step) this reports
    /// which shells fired on the cycle that just retired — the signal
    /// the model checker's liveness analysis keys on.
    #[must_use]
    pub fn shell_fired(&self) -> &[bool] {
        &self.fire
    }

    /// Validity currently offered by each source, in source-row order.
    ///
    /// Unlike the void pattern itself this is *state*: a stopped source
    /// holds its offer, so the offer at cycle `t` is not a pure
    /// function of `t`. Counterexample schedules record this so a
    /// replay via [`step_with`](Self::step_with) reproduces the exact
    /// trajectory.
    #[must_use]
    pub fn source_offers(&self) -> &[bool] {
        &self.src_valid
    }

    /// `(occupancy, capacity)` of the relay station at `node`; `None`
    /// if `node` is not a relay. Full relays report occupancy
    /// `main + aux` out of 2, half relays 0/1 out of 1, FIFOs their
    /// element count out of the configured capacity.
    #[must_use]
    pub fn relay_level(&self, node: NodeId) -> Option<(u32, u32)> {
        match self.prog.comp_slots[node.index()] {
            CompSlot::Full(i) => {
                let i = i as usize;
                Some((
                    u32::from(self.full_main[i]) + u32::from(self.full_aux[i]),
                    2,
                ))
            }
            CompSlot::Half(h) => Some((u32::from(self.half_occ[h as usize]), 1)),
            CompSlot::Fifo(i) => {
                let i = i as usize;
                Some((self.fifo_occ[i], self.prog.fifo_cap[i]))
            }
            _ => None,
        }
    }

    /// Total shell firings so far, summed over all shells.
    #[must_use]
    pub fn total_fires(&self) -> u64 {
        self.fires.iter().sum()
    }

    /// Cycles executed so far.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// `(valid, voids)` consumed by the sink at `node`.
    #[must_use]
    pub fn sink_counts(&self, node: NodeId) -> Option<(u64, u64)> {
        match self.prog.comp_slots[node.index()] {
            CompSlot::Sink(i) => Some((self.snk_valid[i as usize], self.snk_voids[i as usize])),
            _ => None,
        }
    }

    /// Number of firings of the shell at `node`.
    #[must_use]
    pub fn shell_fires(&self, node: NodeId) -> Option<u64> {
        match self.prog.comp_slots[node.index()] {
            CompSlot::Shell(s) => Some(self.fires[s as usize]),
            _ => None,
        }
    }

    /// Control state (mirrors [`System::control_state`]); `None` for
    /// aperiodic environments.
    ///
    /// [`System::control_state`]: crate::System::control_state
    #[must_use]
    pub fn control_state(&self) -> Option<Vec<u64>> {
        let p = &*self.prog;
        let period = p.env_period?;
        let mut out = vec![self.cycle % period];
        for slot in &p.comp_slots {
            match *slot {
                CompSlot::Source(i) => out.push(u64::from(self.src_valid[i as usize])),
                CompSlot::Sink(_) => {}
                CompSlot::Shell(s) => {
                    let s = s as usize;
                    let outs = &self.shell_out[p.shell_out_range(s)];
                    let bufs = if p.shell_buffered[s] {
                        &self.in_buf[p.shell_in_range(s)]
                    } else {
                        &[][..]
                    };
                    out.push(pack_bits(outs, bufs));
                }
                CompSlot::Full(i) => {
                    let i = i as usize;
                    out.push(u64::from(self.full_main[i]) + u64::from(self.full_aux[i]));
                }
                CompSlot::Half(h) => out.push(u64::from(self.half_occ[h as usize])),
                CompSlot::Fifo(i) => out.push(u64::from(self.fifo_occ[i as usize])),
            }
        }
        Some(out)
    }

    /// Stable hash of the control state (see
    /// [`stable_hash`](crate::program::stable_hash)).
    #[must_use]
    pub fn control_hash(&self) -> Option<u64> {
        Some(stable_hash(&self.control_state()?))
    }

    /// Detect the periodic regime (see
    /// [`find_periodicity`](crate::measure::find_periodicity)); hash
    /// collisions are disambiguated by full-state comparison via
    /// [`PeriodDetector`](crate::measure::PeriodDetector).
    pub fn find_periodicity(&mut self, max_cycles: u64) -> Option<Periodicity> {
        let mut detector = crate::measure::PeriodDetector::new();
        for _ in 0..max_cycles {
            self.settle();
            let state = self.control_state()?;
            let hash = self.control_hash()?;
            if let Some((p, ())) = detector.observe(self.cycle, hash, &state, ()) {
                return Some(p);
            }
            self.step();
        }
        None
    }
}

/// Fire condition of shell `s` against settled `fwd`/`stop` bits: every
/// input available (buffered shells may satisfy an input from its
/// buffer) and no output port blocked — where under the refined variant
/// a stop against a void output register does not block.
#[inline]
fn shell_fire(
    p: &SettleProgram,
    fwd: &[bool],
    stop: &[bool],
    shell_out: &[bool],
    in_buf: &[bool],
    s: usize,
) -> bool {
    let buffered = p.shell_buffered[s];
    let mut all_valid = true;
    for k in p.shell_in_range(s) {
        let v = fwd[p.shell_in_ch[k] as usize];
        all_valid &= if buffered { in_buf[k] || v } else { v };
    }
    let mut blocked = false;
    for k in p.shell_out_range(s) {
        blocked |= stop[p.shell_out_ch[k] as usize] && (shell_out[k] || !p.discards);
    }
    all_valid && !blocked
}

fn pack_bits(a: &[bool], b: &[bool]) -> u64 {
    let mut bits = 0u64;
    for (j, v) in a.iter().chain(b).enumerate() {
        if *v {
            bits |= 1 << (j % 64);
        }
    }
    bits
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::System;
    use lip_core::RelayKind;
    use lip_graph::generate;

    /// The skeleton must follow the full simulation's control behaviour
    /// cycle for cycle.
    fn assert_skeleton_matches(netlist: &Netlist, cycles: u64) {
        let mut full = System::new(netlist).unwrap();
        let mut skel = SkeletonSystem::new(netlist).unwrap();
        for t in 0..cycles {
            full.settle();
            skel.settle();
            assert_eq!(
                full.control_state(),
                skel.control_state(),
                "control states diverge at cycle {t}"
            );
            full.step();
            skel.step();
        }
    }

    #[test]
    fn skeleton_equals_full_on_fig1() {
        assert_skeleton_matches(&generate::fig1().netlist, 50);
    }

    #[test]
    fn skeleton_equals_full_on_rings() {
        for (s, r) in [(1usize, 1usize), (2, 1), (3, 2)] {
            assert_skeleton_matches(&generate::ring(s, r, RelayKind::Full).netlist, 40);
        }
        assert_skeleton_matches(&generate::ring(2, 1, RelayKind::Half).netlist, 40);
    }

    #[test]
    fn skeleton_equals_full_on_random_corpus() {
        let mut checked = 0;
        for seed in 0..40u64 {
            let (_, netlist) = generate::random_family(seed);
            if netlist.validate().is_ok() {
                assert_skeleton_matches(&netlist, 30);
                checked += 1;
            }
        }
        assert!(checked >= 25, "only {checked} random instances checked");
    }

    #[test]
    fn skeleton_measures_fig1_throughput() {
        let f = generate::fig1();
        let mut sk = SkeletonSystem::new(&f.netlist).unwrap();
        let p = sk.find_periodicity(1000).unwrap();
        assert_eq!(p.period, 5);
        let (v0, n0) = sk.sink_counts(f.sink).unwrap();
        sk.run(10 * p.period);
        let (v1, n1) = sk.sink_counts(f.sink).unwrap();
        assert_eq!(v1 - v0, 40); // 4 valid per 5-cycle period x 10
        assert_eq!(n1 - n0, 10);
    }

    #[test]
    fn skeleton_counts_fires() {
        let f = generate::fig1();
        let mut sk = SkeletonSystem::new(&f.netlist).unwrap();
        sk.run(100);
        assert!(sk.shell_fires(f.fork).unwrap() > 50);
        assert!(sk.shell_fires(f.join).unwrap() > 50);
        assert_eq!(sk.shell_fires(f.sink), None);
        assert_eq!(sk.cycle(), 100);
    }
}
