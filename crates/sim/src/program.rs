//! Compiled settle programs: a netlist elaborated once into flat,
//! structure-of-arrays op lists.
//!
//! The skeleton engines spend essentially all their time in the per-cycle
//! settle/clock loop. Walking a `Vec<enum>` component list there costs an
//! unpredictable branch per component per pass. A [`SettleProgram`]
//! removes that: compilation groups every component by kind into parallel
//! index arrays (source → output channel, relay → in/out channel pair,
//! shell → CSR ranges over flat channel lists) and precomputes the two
//! topological orders the settle phases need — half-relay chains for the
//! forward (valid) pass and simple-shell stop propagation for the
//! backward (stop) pass. The per-cycle loop then becomes a handful of
//! tight homogeneous loops over integer arrays, with no enum dispatch.
//!
//! Both the scalar [`SkeletonSystem`](crate::SkeletonSystem) and the
//! 64-lane [`BatchSkeleton`](crate::BatchSkeleton) execute the same
//! program; the program is immutable after compilation and shared via
//! `Arc`, so cloning a simulator (the explorer does this per transition)
//! copies only the mutable state vectors.

use std::collections::VecDeque;

use lip_core::{Pattern, ProtocolVariant, RelayKind};
use lip_graph::{Netlist, NetlistError, NodeKind};

/// Which compiled table a netlist node landed in, and its row there.
///
/// Kept in node-id order so engines can rebuild observation vectors
/// (`control_state`, `component_state`) in exactly the order the full
/// [`System`](crate::System) produces them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompSlot {
    /// Row in the source tables.
    Source(u32),
    /// Row in the sink tables.
    Sink(u32),
    /// Row in the shell tables (buffered or not).
    Shell(u32),
    /// Row in the full-relay tables.
    Full(u32),
    /// Row in the half-relay tables.
    Half(u32),
    /// Row in the FIFO-relay tables.
    Fifo(u32),
}

/// Number of tagged sections in the structural fingerprint (tags
/// `1..=N_SECTIONS`; see [`SettleProgram::stable_structural_hash`]).
pub(crate) const N_SECTIONS: usize = 15;

/// A netlist compiled to flat per-kind op lists (see the module docs).
///
/// All indices are `u32`: channel ids in `*_ch` arrays, table rows in
/// order vectors. Shell geometry is CSR: shell `s` owns input channels
/// `shell_in_ch[shell_in_off[s]..shell_in_off[s+1]]` and output channels
/// `shell_out_ch[shell_out_off[s]..shell_out_off[s+1]]`; flat per-port
/// state (output validity, input buffers) uses the same offsets.
///
/// `PartialEq` compares every compiled table, the cached section
/// hashes *and* the op tape — the byte-equality relation the
/// incremental patch path (see [`crate::patch`]) is gated on: a patched
/// program must compare equal to a from-scratch compile of the edited
/// netlist.
#[derive(Debug, Clone, PartialEq)]
pub struct SettleProgram {
    /// Number of channels in the netlist.
    pub(crate) n_channels: usize,
    /// Protocol variant the netlist was built for.
    pub(crate) variant: ProtocolVariant,
    /// Cached `variant.discards_stop_on_void()`.
    pub(crate) discards: bool,
    /// LCM of all environment pattern periods (`None` if any aperiodic).
    pub(crate) env_period: Option<u64>,
    /// Per netlist node: kind table + row, in node-id order.
    pub(crate) comp_slots: Vec<CompSlot>,

    // Sources.
    /// Source row → its single output channel.
    pub(crate) src_out_ch: Vec<u32>,
    /// Source row → its void pattern.
    pub(crate) src_pattern: Vec<Pattern>,

    // Sinks.
    /// Sink row → its single input channel.
    pub(crate) snk_in_ch: Vec<u32>,
    /// Sink row → its stop pattern.
    pub(crate) snk_pattern: Vec<Pattern>,

    // Relay stations.
    /// Full-relay row → input channel.
    pub(crate) full_in_ch: Vec<u32>,
    /// Full-relay row → output channel.
    pub(crate) full_out_ch: Vec<u32>,
    /// Half-relay row → input channel.
    pub(crate) half_in_ch: Vec<u32>,
    /// Half-relay row → output channel.
    pub(crate) half_out_ch: Vec<u32>,
    /// Half-relay rows in forward-pass order: a half relay combinationally
    /// forwards its input validity, so chains of them must settle
    /// upstream-first.
    pub(crate) fwd_half_order: Vec<u32>,
    /// FIFO-relay row → input channel.
    pub(crate) fifo_in_ch: Vec<u32>,
    /// FIFO-relay row → output channel.
    pub(crate) fifo_out_ch: Vec<u32>,
    /// FIFO-relay row → capacity.
    pub(crate) fifo_cap: Vec<u32>,

    // Shells (CSR geometry; buffered shells flagged).
    /// Shell row → `true` if it has input buffers.
    pub(crate) shell_buffered: Vec<bool>,
    /// Shell row → start of its input-channel run (`len = shells + 1`).
    pub(crate) shell_in_off: Vec<u32>,
    /// Flat input channels of all shells.
    pub(crate) shell_in_ch: Vec<u32>,
    /// Shell row → start of its output-channel run (`len = shells + 1`).
    pub(crate) shell_out_off: Vec<u32>,
    /// Flat output channels of all shells.
    pub(crate) shell_out_ch: Vec<u32>,
    /// Unbuffered shell rows in backward-pass order: a simple shell's
    /// input stop depends on its fire condition, which reads the stops on
    /// its output channels — written by downstream consumers, so
    /// downstream shells settle first.
    pub(crate) bwd_shell_order: Vec<u32>,
    /// Buffered shell rows (their stops are registered; only the fire
    /// condition is evaluated, after every stop has settled).
    pub(crate) buffered_shells: Vec<u32>,

    /// The settle phase compiled to a branch-free streaming op tape
    /// (see [`crate::stream`]). Derived from the tables above and
    /// deliberately **not** part of
    /// [`stable_structural_hash`](Self::stable_structural_hash): it is
    /// an execution schedule, not netlist structure.
    pub(crate) kernel: crate::stream::StreamKernel,

    /// Cached per-section hashes of the structural fingerprint
    /// (`section_hashes[t - 1]` holds section tag `t`). A full compile
    /// computes all of them; the patch path rehashes only the sections
    /// an edit touched, so
    /// [`stable_structural_hash`](Self::stable_structural_hash) stays a
    /// pure function of the tables at patch cost.
    pub(crate) section_hashes: [u64; N_SECTIONS],
}

impl SettleProgram {
    /// Validate `netlist` and compile it.
    ///
    /// # Errors
    ///
    /// Propagates any [`NetlistError`] from [`Netlist::validate`].
    pub fn compile(netlist: &Netlist) -> Result<Self, NetlistError> {
        // Ambient flight-recorder span + counter: full compiles show up
        // in `BENCH_runtime.json` (against `compile.patch`, the
        // incremental path's counter) when a recorder is installed, and
        // cost one relaxed atomic load when none is.
        let _compile_span = lip_obs::flight::global_span("compile", "settle_program");
        lip_obs::flight::global_add("compile.full", 1);
        netlist.validate()?;

        let mut env_period: Option<u64> = Some(1);
        let fold = |p: Option<u64>, acc: &mut Option<u64>| {
            *acc = match (p, *acc) {
                (Some(p), Some(a)) => Some(lcm(p, a)),
                _ => None,
            };
        };

        let mut comp_slots = Vec::with_capacity(netlist.node_count());
        let mut src_out_ch = Vec::new();
        let mut src_pattern = Vec::new();
        let mut snk_in_ch = Vec::new();
        let mut snk_pattern = Vec::new();
        let mut full_in_ch = Vec::new();
        let mut full_out_ch = Vec::new();
        let mut half_in_ch = Vec::new();
        let mut half_out_ch = Vec::new();
        let mut fifo_in_ch = Vec::new();
        let mut fifo_out_ch = Vec::new();
        let mut fifo_cap = Vec::new();
        let mut shell_buffered = Vec::new();
        let mut shell_in_off = vec![0u32];
        let mut shell_in_ch = Vec::new();
        let mut shell_out_off = vec![0u32];
        let mut shell_out_ch = Vec::new();

        let in_ch = |id, p| netlist.in_channel(id, p).expect("validated").index() as u32;
        let out_ch = |id, p| netlist.out_channel(id, p).expect("validated").index() as u32;

        for (id, node) in netlist.nodes() {
            comp_slots.push(match node.kind() {
                NodeKind::Source { void_pattern } => {
                    fold(void_pattern.period(), &mut env_period);
                    src_out_ch.push(out_ch(id, 0));
                    src_pattern.push(void_pattern.clone());
                    CompSlot::Source(src_out_ch.len() as u32 - 1)
                }
                NodeKind::Sink { stop_pattern } => {
                    fold(stop_pattern.period(), &mut env_period);
                    snk_in_ch.push(in_ch(id, 0));
                    snk_pattern.push(stop_pattern.clone());
                    CompSlot::Sink(snk_in_ch.len() as u32 - 1)
                }
                NodeKind::Shell { pearl, buffered } => {
                    shell_buffered.push(*buffered);
                    for p in 0..pearl.num_inputs() {
                        shell_in_ch.push(in_ch(id, p));
                    }
                    shell_in_off.push(shell_in_ch.len() as u32);
                    for p in 0..pearl.num_outputs() {
                        shell_out_ch.push(out_ch(id, p));
                    }
                    shell_out_off.push(shell_out_ch.len() as u32);
                    CompSlot::Shell(shell_buffered.len() as u32 - 1)
                }
                NodeKind::Relay {
                    kind: RelayKind::Full,
                } => {
                    full_in_ch.push(in_ch(id, 0));
                    full_out_ch.push(out_ch(id, 0));
                    CompSlot::Full(full_in_ch.len() as u32 - 1)
                }
                NodeKind::Relay {
                    kind: RelayKind::Half,
                } => {
                    half_in_ch.push(in_ch(id, 0));
                    half_out_ch.push(out_ch(id, 0));
                    CompSlot::Half(half_in_ch.len() as u32 - 1)
                }
                NodeKind::Relay {
                    kind: RelayKind::Fifo(k),
                } => {
                    fifo_in_ch.push(in_ch(id, 0));
                    fifo_out_ch.push(out_ch(id, 0));
                    fifo_cap.push(u32::from(*k));
                    CompSlot::Fifo(fifo_in_ch.len() as u32 - 1)
                }
            });
        }

        // Forward order over half relays: relay `h` depends on the
        // producer of its input channel; only another half relay makes
        // that dependency combinational.
        let n_ch = netlist.channel_count();
        let mut ch_half_producer = vec![u32::MAX; n_ch];
        for (h, &ch) in half_out_ch.iter().enumerate() {
            ch_half_producer[ch as usize] = h as u32;
        }
        let fwd_half_order = kahn(half_in_ch.len(), |h| {
            let p = ch_half_producer[half_in_ch[h] as usize];
            if p == u32::MAX {
                Vec::new()
            } else {
                vec![p as usize]
            }
        })
        .expect("validated: no combinational data loop")
        .into_iter()
        .map(|h| h as u32)
        .collect();

        // Backward order over unbuffered shells: shell `s`'s fire reads
        // the stop on each of its output channels; if that stop is
        // written by another simple shell `t` (as consumer), `t` settles
        // first.
        let mut ch_shell_consumer = vec![u32::MAX; n_ch];
        for s in 0..shell_buffered.len() {
            if shell_buffered[s] {
                continue;
            }
            for k in shell_in_off[s] as usize..shell_in_off[s + 1] as usize {
                ch_shell_consumer[shell_in_ch[k] as usize] = s as u32;
            }
        }
        let bwd_shell_order = kahn(shell_buffered.len(), |s| {
            if shell_buffered[s] {
                return Vec::new();
            }
            let mut deps = Vec::new();
            for k in shell_out_off[s] as usize..shell_out_off[s + 1] as usize {
                let t = ch_shell_consumer[shell_out_ch[k] as usize];
                if t != u32::MAX {
                    deps.push(t as usize);
                }
            }
            deps
        })
        .expect("validated: no combinational stop loop");
        let bwd_shell_order: Vec<u32> = bwd_shell_order
            .into_iter()
            .filter(|&s| !shell_buffered[s])
            .map(|s| s as u32)
            .collect();
        let buffered_shells: Vec<u32> = (0..shell_buffered.len() as u32)
            .filter(|&s| shell_buffered[s as usize])
            .collect();

        let mut prog = SettleProgram {
            n_channels: n_ch,
            variant: netlist.variant(),
            discards: netlist.variant().discards_stop_on_void(),
            env_period,
            comp_slots,
            src_out_ch,
            src_pattern,
            snk_in_ch,
            snk_pattern,
            full_in_ch,
            full_out_ch,
            half_in_ch,
            half_out_ch,
            fwd_half_order,
            fifo_in_ch,
            fifo_out_ch,
            fifo_cap,
            shell_buffered,
            shell_in_off,
            shell_in_ch,
            shell_out_off,
            shell_out_ch,
            bwd_shell_order,
            buffered_shells,
            kernel: crate::stream::StreamKernel::default(),
            section_hashes: [0; N_SECTIONS],
        };
        prog.kernel = crate::stream::StreamKernel::compile(&prog);
        prog.rehash_sections(1..=N_SECTIONS as u64);
        Ok(prog)
    }

    /// Number of channels in the compiled netlist.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.n_channels
    }

    /// Ops on the compiled settle tape (one three-address op per settle
    /// assignment). Each counted settle retires exactly this many ops,
    /// so kernel execution counters reconcile as
    /// `total_ops == kernel_op_count × settles`.
    #[must_use]
    pub fn kernel_op_count(&self) -> usize {
        self.kernel.op_count()
    }

    /// Number of sources.
    #[must_use]
    pub fn source_count(&self) -> usize {
        self.src_out_ch.len()
    }

    /// Number of sinks.
    #[must_use]
    pub fn sink_count(&self) -> usize {
        self.snk_in_ch.len()
    }

    /// Input channel of sink `i` — the entity id of its
    /// [`consume`](lip_obs::Probe::consume) /
    /// [`void_in`](lip_obs::Probe::void_in) events, and the channel to
    /// query in
    /// [`sink_throughput`](lip_obs::MetricsRegistry::sink_throughput).
    #[must_use]
    pub fn sink_input_channel(&self, i: usize) -> u32 {
        self.snk_in_ch[i]
    }

    /// Number of shells (buffered or not).
    #[must_use]
    pub fn shell_count(&self) -> usize {
        self.shell_buffered.len()
    }

    /// Protocol variant the program was compiled for.
    #[must_use]
    pub fn variant(&self) -> ProtocolVariant {
        self.variant
    }

    /// LCM of all environment pattern periods, `None` if any pattern is
    /// aperiodic.
    #[must_use]
    pub fn env_period(&self) -> Option<u64> {
        self.env_period
    }

    /// Number of relay rows of every kind (full + half + FIFO).
    #[must_use]
    pub fn relay_count(&self) -> usize {
        self.full_in_ch.len() + self.half_in_ch.len() + self.fifo_in_ch.len()
    }

    /// The observable shape of the compiled netlist, for sizing a
    /// [`lip_obs::MetricsRegistry`] or [`lip_obs::TraceSink`].
    ///
    /// Relay rows are numbered full relays first, then half, then FIFO,
    /// each in compiled-table order — the same numbering the engines use
    /// for [`RelayFill`](lip_obs::EventKind::RelayFill) /
    /// [`RelayDrain`](lip_obs::EventKind::RelayDrain) event entities
    /// (see [`full_relay_row`](Self::full_relay_row) and friends).
    #[must_use]
    pub fn topology(&self) -> lip_obs::Topology {
        let mut relay_capacities =
            Vec::with_capacity(self.full_in_ch.len() + self.half_in_ch.len() + self.fifo_cap.len());
        relay_capacities.extend(std::iter::repeat_n(2, self.full_in_ch.len()));
        relay_capacities.extend(std::iter::repeat_n(1, self.half_in_ch.len()));
        relay_capacities.extend(self.fifo_cap.iter().copied());
        lip_obs::Topology {
            channels: self.n_channels as u32,
            shells: self.shell_buffered.len() as u32,
            relay_capacities,
        }
    }

    /// The channel-level wiring of the compiled netlist, for causal
    /// profiling: per-channel producer/consumer entities, shell port
    /// geometry, relay rows (same full/half/FIFO numbering as
    /// [`topology`](Self::topology)), and the mapping from dense entity
    /// ids back to `netlist` node ids and display names.
    ///
    /// `netlist` must be the netlist this program was compiled from
    /// (checked by node/channel counts).
    ///
    /// # Panics
    ///
    /// Panics if `netlist`'s node or channel count disagrees with the
    /// compiled program.
    #[must_use]
    pub fn channel_graph(&self, netlist: &Netlist) -> lip_obs::ChannelGraph {
        use lip_obs::Entity;
        assert_eq!(
            netlist.node_count(),
            self.comp_slots.len(),
            "netlist does not match this program"
        );
        assert_eq!(netlist.channel_count(), self.n_channels);

        let entity_of = |slot: CompSlot| match slot {
            CompSlot::Shell(s) => Entity::Shell(s),
            CompSlot::Full(i) => Entity::Relay(self.full_relay_row(i as usize)),
            CompSlot::Half(h) => Entity::Relay(self.half_relay_row(h as usize)),
            CompSlot::Fifo(i) => Entity::Relay(self.fifo_relay_row(i as usize)),
            CompSlot::Source(i) => Entity::Source(i),
            CompSlot::Sink(i) => Entity::Sink(i),
        };

        let mut producer = vec![Entity::Source(0); self.n_channels];
        let mut consumer = vec![Entity::Sink(0); self.n_channels];
        for (cid, ch) in netlist.channels() {
            producer[cid.index()] = entity_of(self.comp_slots[ch.producer.node.index()]);
            consumer[cid.index()] = entity_of(self.comp_slots[ch.consumer.node.index()]);
        }

        let relays = self.relay_count();
        let mut relay_in = vec![0u32; relays];
        let mut relay_out = vec![0u32; relays];
        let mut relay_capacity = vec![0u32; relays];
        for (i, (&in_ch, &out_ch)) in self.full_in_ch.iter().zip(&self.full_out_ch).enumerate() {
            let r = self.full_relay_row(i) as usize;
            (relay_in[r], relay_out[r], relay_capacity[r]) = (in_ch, out_ch, 2);
        }
        for (h, (&in_ch, &out_ch)) in self.half_in_ch.iter().zip(&self.half_out_ch).enumerate() {
            let r = self.half_relay_row(h) as usize;
            (relay_in[r], relay_out[r], relay_capacity[r]) = (in_ch, out_ch, 1);
        }
        for (i, (&in_ch, &out_ch)) in self.fifo_in_ch.iter().zip(&self.fifo_out_ch).enumerate() {
            let r = self.fifo_relay_row(i) as usize;
            (relay_in[r], relay_out[r], relay_capacity[r]) = (in_ch, out_ch, self.fifo_cap[i]);
        }

        // Dense entity order: shells, relays, sources, sinks.
        let n_ent = self.shell_count() + relays + self.source_count() + self.sink_count();
        let mut nodes = vec![0u32; n_ent];
        let mut names = vec![String::new(); n_ent];
        for (id, node) in netlist.nodes() {
            let e = entity_of(self.comp_slots[id.index()]);
            let dense = match e {
                Entity::Shell(s) => s as usize,
                Entity::Relay(r) => self.shell_count() + r as usize,
                Entity::Source(i) => self.shell_count() + relays + i as usize,
                Entity::Sink(i) => self.shell_count() + relays + self.source_count() + i as usize,
            };
            nodes[dense] = id.index() as u32;
            names[dense] = node.name().to_owned();
        }

        lip_obs::ChannelGraph {
            producer,
            consumer,
            source_out: self.src_out_ch.clone(),
            sink_in: self.snk_in_ch.clone(),
            relay_in,
            relay_out,
            relay_capacity,
            shell_in_off: self.shell_in_off.clone(),
            shell_in_ch: self.shell_in_ch.clone(),
            shell_out_off: self.shell_out_off.clone(),
            shell_out_ch: self.shell_out_ch.clone(),
            nodes,
            names,
        }
    }

    /// Relay row of the `i`-th full relay (event entity numbering).
    #[inline]
    #[must_use]
    pub fn full_relay_row(&self, i: usize) -> u32 {
        i as u32
    }

    /// Relay row of the `h`-th half relay (event entity numbering).
    #[inline]
    #[must_use]
    pub fn half_relay_row(&self, h: usize) -> u32 {
        (self.full_in_ch.len() + h) as u32
    }

    /// Relay row of the `i`-th FIFO relay (event entity numbering).
    #[inline]
    #[must_use]
    pub fn fifo_relay_row(&self, i: usize) -> u32 {
        (self.full_in_ch.len() + self.half_in_ch.len() + i) as u32
    }

    /// Stable structural fingerprint of the compiled netlist: a
    /// [`stable_hash`] over every compiled table — channel wiring, shell
    /// CSR geometry, relay kinds and capacities, protocol variant —
    /// **and** the source/sink environment patterns. Two netlists with
    /// equal fingerprints elaborate to simulations with identical
    /// observable behaviour, so the fingerprint is a sound memoization
    /// key for [`Measurement`](crate::Measurement)s (see
    /// [`ThroughputCache`](crate::ThroughputCache)), and it is stable
    /// across processes so persisted experiment caches stay valid.
    ///
    /// The fingerprint is two-level: each table is a tagged,
    /// length-prefixed *section* hashed on its own (the hashes are
    /// cached in `section_hashes`), and the fingerprint combines
    /// `[n_channels, variant, section hashes…]`. A full compile hashes
    /// every section; an in-place patch (see [`crate::patch`]) rehashes
    /// only the sections it touched — and reaches the identical
    /// fingerprint, because both paths combine the same section values.
    #[must_use]
    pub fn stable_structural_hash(&self) -> u64 {
        let mut words = [0u64; 2 + N_SECTIONS];
        words[0] = self.n_channels as u64;
        words[1] = match self.variant {
            ProtocolVariant::Refined => 0,
            ProtocolVariant::Carloni => 1,
        };
        words[2..].copy_from_slice(&self.section_hashes);
        stable_hash(&words)
    }

    /// Recompute the cached hashes of the given section tags
    /// (`1..=N_SECTIONS`) from the current tables. The patch path calls
    /// this with exactly the sections an edit touched; `compile` calls
    /// it with every tag.
    ///
    /// A section hash is `stable_hash([tag, len])` XORed with one
    /// [`section_entry_hash`] per entry. XOR combining (with the
    /// position salted into each entry mix, so permutations still
    /// differ) makes single-entry edits O(1): xor the old entry's mix
    /// out and the new one in — the fast path
    /// [`patch_fifo_capacity`](Self::patch_fifo_capacity) takes instead
    /// of calling this.
    pub(crate) fn rehash_sections(&mut self, tags: impl IntoIterator<Item = u64>) {
        let mut words: Vec<u64> = Vec::new();
        for tag in tags {
            words.clear();
            match tag {
                1 => words.extend(self.src_out_ch.iter().map(|&c| u64::from(c))),
                2 => words.extend(self.snk_in_ch.iter().map(|&c| u64::from(c))),
                3 => words.extend(self.full_in_ch.iter().map(|&c| u64::from(c))),
                4 => words.extend(self.full_out_ch.iter().map(|&c| u64::from(c))),
                5 => words.extend(self.half_in_ch.iter().map(|&c| u64::from(c))),
                6 => words.extend(self.half_out_ch.iter().map(|&c| u64::from(c))),
                7 => words.extend(self.fifo_in_ch.iter().map(|&c| u64::from(c))),
                8 => words.extend(self.fifo_out_ch.iter().map(|&c| u64::from(c))),
                9 => words.extend(self.fifo_cap.iter().map(|&c| u64::from(c))),
                10 => words.extend(self.shell_buffered.iter().map(|&b| u64::from(b))),
                11 => words.extend(self.shell_in_off.iter().map(|&c| u64::from(c))),
                12 => words.extend(self.shell_in_ch.iter().map(|&c| u64::from(c))),
                13 => words.extend(self.shell_out_off.iter().map(|&c| u64::from(c))),
                14 => words.extend(self.shell_out_ch.iter().map(|&c| u64::from(c))),
                15 => {
                    for p in self.src_pattern.iter().chain(self.snk_pattern.iter()) {
                        pattern_words(p, &mut words);
                    }
                }
                _ => unreachable!("section tag out of range"),
            }
            let mut h = stable_hash(&[tag, words.len() as u64]);
            for (i, &w) in words.iter().enumerate() {
                h ^= section_entry_hash(tag, i as u64, w);
            }
            self.section_hashes[tag as usize - 1] = h;
        }
    }

    /// Input-channel run of shell `s` (indices into the flat arrays).
    #[inline]
    pub(crate) fn shell_in_range(&self, s: usize) -> std::ops::Range<usize> {
        self.shell_in_off[s] as usize..self.shell_in_off[s + 1] as usize
    }

    /// Output-channel run of shell `s` (indices into the flat arrays).
    #[inline]
    pub(crate) fn shell_out_range(&self, s: usize) -> std::ops::Range<usize> {
        self.shell_out_off[s] as usize..self.shell_out_off[s + 1] as usize
    }
}

/// Why a compiled [`SettleProgram`] failed [`SettleProgram::verify`].
///
/// Each variant names the invariant class that broke; the payload
/// carries enough context to locate the corruption without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A compiled table is internally inconsistent: mismatched lengths,
    /// a `comp_slots` row out of node-id order, a channel index out of
    /// bounds, broken CSR geometry, a zero FIFO capacity, or a channel
    /// without exactly one producer and one consumer.
    Table(String),
    /// A settle stratum is not a valid schedule of its rows: the
    /// forward half-relay order or backward shell order is not a
    /// permutation, or violates its dependency direction.
    Stratum(String),
    /// The op tape violates a kernel invariant: wrong arena layout,
    /// strata that do not tile the tape, non-maximal segments, an op
    /// addressing cells out of bounds or writing a constant cell, or a
    /// tape that differs from a fresh emission of the current tables.
    Kernel(String),
    /// A cached section hash disagrees with recomputation from the
    /// tables — an in-place patch forgot to rehash what it touched.
    SectionHash {
        /// Section tag (`1..=N_SECTIONS`).
        tag: u64,
        /// The cached (stale) hash.
        cached: u64,
        /// The hash recomputed from the current tables.
        recomputed: u64,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::Table(d) => write!(f, "table invariant violated: {d}"),
            VerifyError::Stratum(d) => write!(f, "stratum invariant violated: {d}"),
            VerifyError::Kernel(d) => write!(f, "op-tape invariant violated: {d}"),
            VerifyError::SectionHash {
                tag,
                cached,
                recomputed,
            } => write!(
                f,
                "section {tag} hash stale: cached {cached:#018x}, tables say {recomputed:#018x}"
            ),
        }
    }
}

impl std::error::Error for VerifyError {}

impl SettleProgram {
    /// Statically verify the compiled IR: every table, stratum order,
    /// cached section hash and the op tape are checked against the
    /// invariants [`compile`](Self::compile) establishes.
    ///
    /// This is the safety net under the incremental patch path (see
    /// [`crate::patch`]): a patch that corrupts the program — a stale
    /// hash, a mis-spliced tape, a broken Kahn order — fails here at
    /// the patch site instead of surfacing as a silently wrong
    /// measurement later. Debug builds run it after every patch; the
    /// model checker and CI run it explicitly.
    ///
    /// The check is self-contained (no netlist needed): it validates
    /// internal consistency and re-derives everything derivable —
    /// section hashes, the environment period, the Kahn orders'
    /// dependency properties and a fresh tape emission — from the
    /// tables themselves.
    ///
    /// # Errors
    ///
    /// Returns the first [`VerifyError`] found, in table → stratum →
    /// hash → kernel order.
    pub fn verify(&self) -> Result<(), VerifyError> {
        self.verify_tables()?;
        self.verify_strata()?;
        self.verify_section_hashes()?;
        self.kernel.verify(self).map_err(VerifyError::Kernel)
    }

    /// Table lengths, `comp_slots` row order, channel bounds, CSR
    /// geometry, capacities, variant cache and the channel
    /// producer/consumer bijection.
    fn verify_tables(&self) -> Result<(), VerifyError> {
        let err = |d: String| Err(VerifyError::Table(d));

        // comp_slots must enumerate each kind's rows in node-id order.
        let mut rows = [0u32; 6];
        for (node, slot) in self.comp_slots.iter().enumerate() {
            let (kind, row) = match *slot {
                CompSlot::Source(r) => (0, r),
                CompSlot::Sink(r) => (1, r),
                CompSlot::Shell(r) => (2, r),
                CompSlot::Full(r) => (3, r),
                CompSlot::Half(r) => (4, r),
                CompSlot::Fifo(r) => (5, r),
            };
            if row != rows[kind] {
                return err(format!(
                    "node {node}: {slot:?} breaks node-id row order (expected row {})",
                    rows[kind]
                ));
            }
            rows[kind] += 1;
        }
        let lens = [
            ("src_out_ch", rows[0] as usize, self.src_out_ch.len()),
            ("src_pattern", rows[0] as usize, self.src_pattern.len()),
            ("snk_in_ch", rows[1] as usize, self.snk_in_ch.len()),
            ("snk_pattern", rows[1] as usize, self.snk_pattern.len()),
            (
                "shell_buffered",
                rows[2] as usize,
                self.shell_buffered.len(),
            ),
            ("full_in_ch", rows[3] as usize, self.full_in_ch.len()),
            ("full_out_ch", rows[3] as usize, self.full_out_ch.len()),
            ("half_in_ch", rows[4] as usize, self.half_in_ch.len()),
            ("half_out_ch", rows[4] as usize, self.half_out_ch.len()),
            ("fifo_in_ch", rows[5] as usize, self.fifo_in_ch.len()),
            ("fifo_out_ch", rows[5] as usize, self.fifo_out_ch.len()),
            ("fifo_cap", rows[5] as usize, self.fifo_cap.len()),
        ];
        for (name, want, got) in lens {
            if want != got {
                return err(format!("{name}: {got} rows, comp_slots say {want}"));
            }
        }

        // Shell CSR geometry.
        for (name, off, flat) in [
            ("shell_in", &self.shell_in_off, self.shell_in_ch.len()),
            ("shell_out", &self.shell_out_off, self.shell_out_ch.len()),
        ] {
            if off.len() != self.shell_buffered.len() + 1 {
                return err(format!("{name}_off: {} entries", off.len()));
            }
            if off[0] != 0 || off.windows(2).any(|w| w[0] > w[1]) {
                return err(format!("{name}_off not monotone from 0: {off:?}"));
            }
            if *off.last().expect("non-empty") as usize != flat {
                return err(format!(
                    "{name}_off ends at {:?}, flat len {flat}",
                    off.last()
                ));
            }
        }

        if self.fifo_cap.contains(&0) {
            return err("zero-capacity FIFO relay".into());
        }
        if self.discards != self.variant.discards_stop_on_void() {
            return err(format!(
                "discards cache {} contradicts variant {:?}",
                self.discards, self.variant
            ));
        }

        // Every channel: exactly one producer and one consumer.
        let mut produced = vec![0u8; self.n_channels];
        let mut consumed = vec![0u8; self.n_channels];
        let tally = |chs: &[u32], side: &mut Vec<u8>, what: &str| -> Result<(), VerifyError> {
            for &ch in chs {
                let Some(slot) = side.get_mut(ch as usize) else {
                    return Err(VerifyError::Table(format!(
                        "{what}: channel {ch} out of bounds ({} channels)",
                        self.n_channels
                    )));
                };
                *slot += 1;
            }
            Ok(())
        };
        tally(&self.src_out_ch, &mut produced, "src_out_ch")?;
        tally(&self.shell_out_ch, &mut produced, "shell_out_ch")?;
        tally(&self.full_out_ch, &mut produced, "full_out_ch")?;
        tally(&self.half_out_ch, &mut produced, "half_out_ch")?;
        tally(&self.fifo_out_ch, &mut produced, "fifo_out_ch")?;
        tally(&self.snk_in_ch, &mut consumed, "snk_in_ch")?;
        tally(&self.shell_in_ch, &mut consumed, "shell_in_ch")?;
        tally(&self.full_in_ch, &mut consumed, "full_in_ch")?;
        tally(&self.half_in_ch, &mut consumed, "half_in_ch")?;
        tally(&self.fifo_in_ch, &mut consumed, "fifo_in_ch")?;
        for ch in 0..self.n_channels {
            if produced[ch] != 1 || consumed[ch] != 1 {
                return err(format!(
                    "channel {ch}: {} producers, {} consumers",
                    produced[ch], consumed[ch]
                ));
            }
        }

        // Environment period is a pure fold over the patterns.
        let mut env_period: Option<u64> = Some(1);
        for p in self.src_pattern.iter().chain(self.snk_pattern.iter()) {
            env_period = match (p.period(), env_period) {
                (Some(p), Some(a)) => Some(lcm(p, a)),
                _ => None,
            };
        }
        if env_period != self.env_period {
            return err(format!(
                "env_period {:?} but patterns fold to {env_period:?}",
                self.env_period
            ));
        }
        Ok(())
    }

    /// The two Kahn orders and the buffered-shell list.
    fn verify_strata(&self) -> Result<(), VerifyError> {
        let err = |d: String| Err(VerifyError::Stratum(d));

        // Forward half order: a permutation that settles feeders first.
        let halves = self.half_in_ch.len();
        let mut pos = vec![usize::MAX; halves];
        for (i, &h) in self.fwd_half_order.iter().enumerate() {
            match pos.get_mut(h as usize) {
                Some(p) if *p == usize::MAX => *p = i,
                _ => return err(format!("fwd_half_order: row {h} repeated or out of range")),
            }
        }
        if self.fwd_half_order.len() != halves {
            return err(format!(
                "fwd_half_order covers {} of {halves} half relays",
                self.fwd_half_order.len()
            ));
        }
        let mut half_producer = vec![u32::MAX; self.n_channels];
        for (h, &ch) in self.half_out_ch.iter().enumerate() {
            half_producer[ch as usize] = h as u32;
        }
        for h in 0..halves {
            let up = half_producer[self.half_in_ch[h] as usize];
            if up != u32::MAX && pos[up as usize] >= pos[h] {
                return err(format!(
                    "fwd_half_order: half {h} settles before feeder {up}"
                ));
            }
        }

        // Backward shell order: a permutation of the unbuffered rows
        // that settles downstream consumers first; buffered_shells is
        // exactly the complementary sorted list.
        let shells = self.shell_buffered.len();
        let mut spos = vec![usize::MAX; shells];
        for (i, &s) in self.bwd_shell_order.iter().enumerate() {
            let s = s as usize;
            if s >= shells || self.shell_buffered[s] || spos[s] != usize::MAX {
                return err(format!("bwd_shell_order: row {s} invalid or repeated"));
            }
            spos[s] = i;
        }
        let unbuffered = self.shell_buffered.iter().filter(|&&b| !b).count();
        if self.bwd_shell_order.len() != unbuffered {
            return err(format!(
                "bwd_shell_order covers {} of {unbuffered} unbuffered shells",
                self.bwd_shell_order.len()
            ));
        }
        let expect_buffered: Vec<u32> = (0..shells as u32)
            .filter(|&s| self.shell_buffered[s as usize])
            .collect();
        if self.buffered_shells != expect_buffered {
            return err(format!(
                "buffered_shells {:?} != flags {expect_buffered:?}",
                self.buffered_shells
            ));
        }
        let mut shell_consumer = vec![u32::MAX; self.n_channels];
        for s in 0..shells {
            if self.shell_buffered[s] {
                continue;
            }
            for k in self.shell_in_range(s) {
                shell_consumer[self.shell_in_ch[k] as usize] = s as u32;
            }
        }
        for s in 0..shells {
            if self.shell_buffered[s] {
                continue;
            }
            for k in self.shell_out_range(s) {
                let t = shell_consumer[self.shell_out_ch[k] as usize];
                if t != u32::MAX && spos[t as usize] >= spos[s] {
                    return err(format!(
                        "bwd_shell_order: shell {s} settles before consumer {t}"
                    ));
                }
            }
        }
        Ok(())
    }

    /// Every cached section hash against a recomputation.
    fn verify_section_hashes(&self) -> Result<(), VerifyError> {
        let mut fresh = self.clone();
        fresh.rehash_sections(1..=N_SECTIONS as u64);
        for (i, (&cached, &recomputed)) in self
            .section_hashes
            .iter()
            .zip(&fresh.section_hashes)
            .enumerate()
        {
            if cached != recomputed {
                return Err(VerifyError::SectionHash {
                    tag: i as u64 + 1,
                    cached,
                    recomputed,
                });
            }
        }
        Ok(())
    }
}

/// Least common multiple with the conventions the environment-period
/// fold needs (`lcm(0, x)` behaves like `max`, never returns 0).
pub(crate) fn lcm(a: u64, b: u64) -> u64 {
    fn gcd(mut a: u64, mut b: u64) -> u64 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }
    if a == 0 || b == 0 {
        return a.max(b).max(1);
    }
    (a / gcd(a, b)).saturating_mul(b)
}

/// Injective word encoding of a [`Pattern`] for
/// [`SettleProgram::stable_structural_hash`]: discriminant, then the
/// variant's fields (cyclic bits length-prefixed so `[true]` and
/// `[true, false]` stay distinct from field-count coincidences).
fn pattern_words(p: &Pattern, out: &mut Vec<u64>) {
    match p {
        Pattern::Never => out.push(0),
        Pattern::Always => out.push(1),
        Pattern::EveryNth { period, phase } => {
            out.push(2);
            out.push(u64::from(*period));
            out.push(u64::from(*phase));
        }
        Pattern::Random { num, denom, seed } => {
            out.push(3);
            out.push(u64::from(*num));
            out.push(u64::from(*denom));
            out.push(*seed);
        }
        Pattern::Cyclic(bits) => {
            out.push(4);
            out.push(bits.len() as u64);
            out.extend(bits.iter().map(|&b| u64::from(b)));
        }
    }
}

/// Kahn topological sort of `0..n` under `deps` (`deps(i)` must settle
/// before `i`). `None` if cyclic.
pub(crate) fn kahn(n: usize, deps: impl Fn(usize) -> Vec<usize>) -> Option<Vec<usize>> {
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indegree = vec![0usize; n];
    for (i, slot) in indegree.iter_mut().enumerate() {
        for d in deps(i) {
            dependents[d].push(i);
            *slot += 1;
        }
    }
    let mut queue: VecDeque<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut out = Vec::with_capacity(n);
    while let Some(i) = queue.pop_front() {
        out.push(i);
        for &d in &dependents[i] {
            indegree[d] -= 1;
            if indegree[d] == 0 {
                queue.push_back(d);
            }
        }
    }
    (out.len() == n).then(|| out.into_iter().collect())
}

/// Per-entry mix for section hashes: a splitmix64 finalizer over the
/// entry word salted with its section tag and position. Section hashes
/// XOR these together (see
/// [`rehash_sections`](SettleProgram::rehash_sections)), so replacing
/// one entry updates the hash with two mixes instead of a full
/// section pass — the O(1) step a capacity patch relies on.
#[inline]
#[must_use]
pub(crate) fn section_entry_hash(tag: u64, pos: u64, word: u64) -> u64 {
    let mut z = word ^ (tag << 56) ^ pos.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a word slice: a stable hash for control states.
///
/// Periodicity detection compares hashes across runs and (via persisted
/// experiment output) across processes; `DefaultHasher` is explicitly
/// unstable between releases, so the engines use this fixed function
/// instead. Length is folded in first so prefixes don't collide.
#[must_use]
pub fn stable_hash(words: &[u64]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |w: u64| {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(words.len() as u64);
    for &w in words {
        mix(w);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_graph::generate;

    #[test]
    fn compiles_fig1() {
        let f = generate::fig1();
        let p = SettleProgram::compile(&f.netlist).unwrap();
        assert_eq!(p.source_count(), 1);
        assert_eq!(p.sink_count(), 1);
        assert_eq!(p.shell_count(), 3);
        assert_eq!(p.comp_slots.len(), f.netlist.node_count());
        assert_eq!(p.env_period(), Some(1));
    }

    #[test]
    fn half_chains_settle_upstream_first() {
        use lip_core::RelayKind;
        let r = generate::ring(2, 3, RelayKind::Half);
        let p = SettleProgram::compile(&r.netlist).unwrap();
        // Every half relay fed by another half relay must come later.
        let mut pos = vec![0usize; p.half_in_ch.len()];
        for (i, &h) in p.fwd_half_order.iter().enumerate() {
            pos[h as usize] = i;
        }
        let mut producer_of = vec![u32::MAX; p.n_channels];
        for (h, &ch) in p.half_out_ch.iter().enumerate() {
            producer_of[ch as usize] = h as u32;
        }
        for h in 0..p.half_in_ch.len() {
            let up = producer_of[p.half_in_ch[h] as usize];
            if up != u32::MAX {
                assert!(
                    pos[up as usize] < pos[h],
                    "half {h} settled before feeder {up}"
                );
            }
        }
    }

    #[test]
    fn verify_accepts_fresh_compiles() {
        use lip_core::RelayKind;
        for netlist in [
            generate::fig1().netlist,
            generate::ring(2, 3, RelayKind::Full).netlist,
            generate::ring(2, 2, RelayKind::Half).netlist,
            generate::ring(2, 1, RelayKind::Fifo(3)).netlist,
            generate::chain(3, 2, RelayKind::Fifo(5)).netlist,
        ] {
            let p = SettleProgram::compile(&netlist).unwrap();
            p.verify().expect("fresh compile verifies");
        }
    }

    #[test]
    fn verify_catches_table_corruption() {
        let p = SettleProgram::compile(&generate::fig1().netlist).unwrap();

        // Dangling channel index.
        let mut bad = p.clone();
        bad.snk_in_ch[0] = bad.n_channels as u32 + 7;
        assert!(matches!(bad.verify(), Err(VerifyError::Table(_))));

        // Duplicate consumer (channel bijection broken).
        let mut bad = p.clone();
        bad.snk_in_ch[0] = bad.shell_in_ch[0];
        assert!(matches!(bad.verify(), Err(VerifyError::Table(_))));

        // Stale environment period.
        let mut bad = p.clone();
        bad.env_period = Some(42);
        assert!(matches!(bad.verify(), Err(VerifyError::Table(_))));
    }

    #[test]
    fn verify_catches_stratum_corruption() {
        use lip_core::RelayKind;
        let p = SettleProgram::compile(&generate::ring(2, 3, RelayKind::Half).netlist).unwrap();
        let mut bad = p.clone();
        bad.fwd_half_order.reverse();
        assert!(matches!(bad.verify(), Err(VerifyError::Stratum(_))));

        let p = SettleProgram::compile(&generate::chain(3, 0, RelayKind::Full).netlist).unwrap();
        let mut bad = p.clone();
        bad.bwd_shell_order.reverse();
        assert!(matches!(bad.verify(), Err(VerifyError::Stratum(_))));
    }

    #[test]
    fn verify_catches_stale_section_hashes() {
        use lip_core::RelayKind;
        let p = SettleProgram::compile(&generate::ring(2, 1, RelayKind::Fifo(3)).netlist).unwrap();
        // A capacity edit without the O(1) hash fixup: tag 9 is stale.
        let mut bad = p.clone();
        bad.fifo_cap[0] = 2;
        let mut kernel = std::mem::take(&mut bad.kernel);
        kernel.patch_fifo_capacity(&bad, 0, 3);
        bad.kernel = kernel;
        assert!(matches!(
            bad.verify(),
            Err(VerifyError::SectionHash { tag: 9, .. })
        ));
    }

    #[test]
    fn verify_catches_tape_corruption() {
        use lip_core::RelayKind;
        let p = SettleProgram::compile(&generate::ring(2, 1, RelayKind::Fifo(3)).netlist).unwrap();
        // Tables edited (with hashes maintained) but the tape not
        // re-emitted: the FIFO compare run still spells the old
        // capacity, so the fresh-emission equality check fires.
        let mut bad = p.clone();
        bad.section_hashes[8] ^=
            section_entry_hash(9, 0, u64::from(bad.fifo_cap[0])) ^ section_entry_hash(9, 0, 2);
        bad.fifo_cap[0] = 2;
        assert!(matches!(bad.verify(), Err(VerifyError::Kernel(_))));
    }

    #[test]
    fn stable_hash_is_stable_and_length_aware() {
        // Golden values: these must never change across releases.
        assert_eq!(stable_hash(&[]), stable_hash(&[]));
        assert_ne!(stable_hash(&[0]), stable_hash(&[0, 0]));
        assert_ne!(stable_hash(&[1, 2]), stable_hash(&[2, 1]));
        let h = stable_hash(&[0xdead_beef, 42]);
        assert_eq!(h, stable_hash(&[0xdead_beef, 42]));
    }
}
