//! Elaboration of a netlist into an executable latency-insensitive
//! system, and its cycle-accurate simulation.
//!
//! Each cycle is evaluated in the three phases the protocol defines:
//!
//! 1. **forward settle** — every channel's token. Sources, shells and
//!    full relay stations present registered outputs; half relay stations
//!    bypass combinationally, so channels are settled in a precomputed
//!    topological order over half-station chains;
//! 2. **backward settle** — every channel's stop. Sinks and relay
//!    stations produce stops from their own state; shells propagate stops
//!    combinationally from their outputs to their inputs (they store no
//!    stops), so stops settle in reverse topological order over shells;
//! 3. **clock edge** — every component advances.
//!
//! The netlist validator guarantees both settle orders exist: every
//! directed cycle contains a relay station (stop cut) and a shell or full
//! relay station (data cut).

use std::collections::VecDeque;

use lip_core::{BufferedShell, RelayStation, Shell, Sink, Source, Token};
use lip_graph::{ChannelId, Netlist, NetlistError, NodeId, NodeKind};

/// One elaborated component.
#[derive(Debug, Clone)]
enum Comp {
    Source(Source),
    Sink(Sink),
    Shell(Shell),
    Buffered(BufferedShell),
    Relay(RelayStation),
}

/// An executable latency-insensitive system elaborated from a
/// [`Netlist`].
///
/// # Example
///
/// ```
/// use lip_graph::generate;
/// use lip_sim::System;
///
/// # fn main() -> Result<(), lip_graph::NetlistError> {
/// let chain = generate::chain(2, 1, lip_core::RelayKind::Full);
/// let mut sys = System::new(&chain.netlist)?;
/// sys.run(100);
/// // A linear pipeline reaches throughput 1 after its fill transient.
/// let sink = sys.sink(chain.sink).expect("sink");
/// assert!(sink.received().len() >= 95);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct System {
    comps: Vec<Comp>,
    /// Per node: input channels in port order.
    in_chs: Vec<Vec<ChannelId>>,
    /// Per node: output channels in port order.
    out_chs: Vec<Vec<ChannelId>>,
    /// Per channel: producing node (copied out of the netlist).
    producer: Vec<(NodeId, usize)>,
    /// Per channel: consuming node and port.
    consumer: Vec<(NodeId, usize)>,
    /// Forward settle order (channel indices).
    fwd_order: Vec<usize>,
    /// Backward settle order (channel indices).
    bwd_order: Vec<usize>,
    /// Settled token per channel (valid after `settle`/`step`).
    fwd: Vec<Token>,
    /// Settled stop per channel.
    stop: Vec<bool>,
    cycle: u64,
    /// LCM of all environment pattern periods, or `None` when some
    /// pattern is aperiodic. Folds the environment phase into the control
    /// state for periodicity detection.
    env_period: Option<u64>,
}

impl System {
    /// Validate `netlist` and elaborate it.
    ///
    /// # Errors
    ///
    /// Propagates any [`NetlistError`] from [`Netlist::validate`].
    pub fn new(netlist: &Netlist) -> Result<Self, NetlistError> {
        netlist.validate()?;
        let mut comps = Vec::with_capacity(netlist.node_count());
        let mut env_period: Option<u64> = Some(1);
        let fold_period = |p: Option<u64>, acc: &mut Option<u64>| {
            *acc = match (p, *acc) {
                (Some(p), Some(a)) => Some(lcm(p, a)),
                _ => None,
            };
        };
        for (_, node) in netlist.nodes() {
            comps.push(match node.kind() {
                NodeKind::Source { void_pattern } => {
                    fold_period(void_pattern.period(), &mut env_period);
                    Comp::Source(Source::with_void_pattern(void_pattern.clone()))
                }
                NodeKind::Sink { stop_pattern } => {
                    fold_period(stop_pattern.period(), &mut env_period);
                    Comp::Sink(Sink::with_stop_pattern(stop_pattern.clone()))
                }
                NodeKind::Shell {
                    pearl,
                    buffered: false,
                } => Comp::Shell(Shell::from_box(pearl.clone(), netlist.variant())),
                NodeKind::Shell {
                    pearl,
                    buffered: true,
                } => Comp::Buffered(BufferedShell::from_box(pearl.clone(), netlist.variant())),
                NodeKind::Relay { kind } => Comp::Relay(RelayStation::new(*kind)),
            });
        }

        let n_nodes = netlist.node_count();
        let n_ch = netlist.channel_count();
        let mut in_chs = vec![Vec::new(); n_nodes];
        let mut out_chs = vec![Vec::new(); n_nodes];
        for (id, node) in netlist.nodes() {
            for p in 0..node.kind().num_inputs() {
                in_chs[id.index()].push(netlist.in_channel(id, p).expect("validated"));
            }
            for p in 0..node.kind().num_outputs() {
                out_chs[id.index()].push(netlist.out_channel(id, p).expect("validated"));
            }
        }
        let mut producer = Vec::with_capacity(n_ch);
        let mut consumer = Vec::with_capacity(n_ch);
        for (_, ch) in netlist.channels() {
            producer.push((ch.producer.node, ch.producer.index));
            consumer.push((ch.consumer.node, ch.consumer.index));
        }

        // Forward order: channel produced by a half relay depends on that
        // relay's input channel.
        let is_half = |node: NodeId| {
            matches!(
                netlist.node(node).kind(),
                NodeKind::Relay {
                    kind: lip_core::RelayKind::Half
                }
            )
        };
        let fwd_order = kahn_order(n_ch, |ch| {
            let (p, _) = producer[ch];
            if is_half(p) {
                vec![in_chs[p.index()][0].index()]
            } else {
                Vec::new()
            }
        })
        .expect("validator rejects combinational data loops");

        // Backward order: stop of a shell's input channel depends on the
        // stops of all that shell's output channels.
        let bwd_order = kahn_order(n_ch, |ch| {
            let (c, _) = consumer[ch];
            // Only *simplified* shells propagate stops combinationally;
            // buffered shells (like relay stations) emit registered
            // stops.
            if netlist.node(c).kind().is_simple_shell() {
                out_chs[c.index()].iter().map(|x| x.index()).collect()
            } else {
                Vec::new()
            }
        })
        .expect("validator rejects combinational stop loops");

        Ok(System {
            comps,
            in_chs,
            out_chs,
            producer,
            consumer,
            fwd_order,
            bwd_order,
            fwd: vec![Token::VOID; n_ch],
            stop: vec![false; n_ch],
            cycle: 0,
            env_period,
        })
    }

    /// Settle this cycle's channel tokens and stops without clocking.
    /// Idempotent; called by [`step`](Self::step).
    pub fn settle(&mut self) {
        // Forward phase.
        for i in 0..self.fwd_order.len() {
            let ch = self.fwd_order[i];
            let (p, port) = self.producer[ch];
            let tok = match &self.comps[p.index()] {
                Comp::Source(s) => s.output(),
                Comp::Shell(s) => s.outputs()[port],
                Comp::Buffered(s) => s.outputs()[port],
                Comp::Relay(r) => {
                    let input = self.in_chs[p.index()]
                        .first()
                        .map_or(Token::VOID, |c| self.fwd[c.index()]);
                    r.output(input)
                }
                Comp::Sink(_) => unreachable!("sinks have no outputs"),
            };
            self.fwd[ch] = tok;
        }
        // Backward phase.
        for i in 0..self.bwd_order.len() {
            let ch = self.bwd_order[i];
            let (c, port) = self.consumer[ch];
            let s = match &self.comps[c.index()] {
                Comp::Sink(k) => k.stop(),
                Comp::Relay(r) => r.stop_upstream(),
                Comp::Shell(sh) => {
                    let inputs: Vec<Token> = self.in_chs[c.index()]
                        .iter()
                        .map(|x| self.fwd[x.index()])
                        .collect();
                    let stops: Vec<bool> = self.out_chs[c.index()]
                        .iter()
                        .map(|x| self.stop[x.index()])
                        .collect();
                    sh.stop_upstream(port, &inputs, &stops)
                }
                Comp::Buffered(sh) => sh.stop_upstream(port),
                Comp::Source(_) => unreachable!("sources have no inputs"),
            };
            self.stop[ch] = s;
        }
    }

    /// Advance one clock cycle (settle + edge).
    pub fn step(&mut self) {
        self.settle();
        for i in 0..self.comps.len() {
            let inputs: Vec<Token> = self.in_chs[i].iter().map(|x| self.fwd[x.index()]).collect();
            let stops: Vec<bool> = self.out_chs[i]
                .iter()
                .map(|x| self.stop[x.index()])
                .collect();
            match &mut self.comps[i] {
                Comp::Source(s) => s.clock(stops[0]),
                Comp::Sink(k) => k.clock(inputs[0]),
                Comp::Shell(sh) => sh.clock(&inputs, &stops),
                Comp::Buffered(sh) => sh.clock(&inputs, &stops),
                Comp::Relay(r) => r.clock(inputs[0], stops[0]),
            }
        }
        self.cycle += 1;
    }

    /// Run `n` cycles.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Cycles executed so far.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Token settled on `ch` in the current cycle (call
    /// [`settle`](Self::settle) first for mid-cycle inspection).
    #[must_use]
    pub fn channel_token(&self, ch: ChannelId) -> Token {
        self.fwd[ch.index()]
    }

    /// Stop settled on `ch` in the current cycle.
    #[must_use]
    pub fn channel_stop(&self, ch: ChannelId) -> bool {
        self.stop[ch.index()]
    }

    /// The sink component at `node`, if that node is a sink.
    #[must_use]
    pub fn sink(&self, node: NodeId) -> Option<&Sink> {
        match &self.comps[node.index()] {
            Comp::Sink(k) => Some(k),
            _ => None,
        }
    }

    /// The source component at `node`, if that node is a source.
    #[must_use]
    pub fn source(&self, node: NodeId) -> Option<&Source> {
        match &self.comps[node.index()] {
            Comp::Source(s) => Some(s),
            _ => None,
        }
    }

    /// The shell component at `node`, if that node is a simplified
    /// shell.
    #[must_use]
    pub fn shell(&self, node: NodeId) -> Option<&Shell> {
        match &self.comps[node.index()] {
            Comp::Shell(s) => Some(s),
            _ => None,
        }
    }

    /// The buffered shell at `node`, if that node is one.
    #[must_use]
    pub fn buffered_shell(&self, node: NodeId) -> Option<&BufferedShell> {
        match &self.comps[node.index()] {
            Comp::Buffered(s) => Some(s),
            _ => None,
        }
    }

    /// Firing statistics of the shell at `node`, of either flavour.
    #[must_use]
    pub fn shell_stats(&self, node: NodeId) -> Option<lip_core::ShellStats> {
        match &self.comps[node.index()] {
            Comp::Shell(s) => Some(s.stats()),
            Comp::Buffered(s) => Some(s.stats()),
            _ => None,
        }
    }

    /// The relay station at `node`, if that node is a relay station.
    #[must_use]
    pub fn relay(&self, node: NodeId) -> Option<&RelayStation> {
        match &self.comps[node.index()] {
            Comp::Relay(r) => Some(r),
            _ => None,
        }
    }

    /// Output tokens of every node, for evolution tables: `(node,
    /// tokens)` where endpoints contribute their single token.
    #[must_use]
    pub fn node_outputs(&self, node: NodeId) -> Vec<Token> {
        match &self.comps[node.index()] {
            Comp::Source(s) => vec![s.output()],
            Comp::Sink(_) => Vec::new(),
            Comp::Shell(s) => s.outputs().to_vec(),
            Comp::Buffered(s) => s.outputs().to_vec(),
            Comp::Relay(r) => {
                let input = self.in_chs[node.index()]
                    .first()
                    .map_or(Token::VOID, |c| self.fwd[c.index()]);
                vec![r.output(input)]
            }
        }
    }

    /// The *control state* of the system: everything that determines the
    /// future movement of tokens — validity bits, occupancies and
    /// environment phases — but no data values. Two cycles with equal
    /// control states evolve identically (control-wise) forever, which is
    /// what makes the paper's periodicity and transient analysis work.
    ///
    /// Returns `None` when an environment pattern is aperiodic.
    #[must_use]
    pub fn control_state(&self) -> Option<Vec<u64>> {
        let period = self.env_period?;
        let mut out = vec![self.cycle % period];
        for comp in &self.comps {
            match comp {
                Comp::Source(s) => out.push(u64::from(s.output().is_valid())),
                Comp::Sink(_) => {}
                Comp::Shell(sh) => {
                    let mut bits = 0u64;
                    for (j, t) in sh.outputs().iter().enumerate() {
                        if t.is_valid() {
                            bits |= 1 << (j % 64);
                        }
                    }
                    out.push(bits);
                }
                Comp::Buffered(sh) => {
                    let mut bits = 0u64;
                    for (j, t) in sh.outputs().iter().enumerate() {
                        if t.is_valid() {
                            bits |= 1 << (j % 64);
                        }
                    }
                    for i in 0..sh.num_inputs() {
                        if sh.buffer(i).is_valid() {
                            bits |= 1 << ((sh.num_outputs() + i) % 64);
                        }
                    }
                    out.push(bits);
                }
                Comp::Relay(r) => out.push(r.occupancy() as u64),
            }
        }
        Some(out)
    }

    /// Stable hash of [`control_state`](Self::control_state), or `None`
    /// for aperiodic environments. Uses
    /// [`stable_hash`](crate::program::stable_hash) so hashes are
    /// reproducible across runs, processes and toolchain releases.
    #[must_use]
    pub fn control_hash(&self) -> Option<u64> {
        Some(crate::program::stable_hash(&self.control_state()?))
    }

    /// Total informative tokens delivered to all sinks.
    #[must_use]
    pub fn total_received(&self) -> u64 {
        self.comps
            .iter()
            .map(|c| match c {
                Comp::Sink(k) => k.received().len() as u64,
                _ => 0,
            })
            .sum()
    }

    /// Total pearl firings across all shells.
    #[must_use]
    pub fn total_fires(&self) -> u64 {
        self.comps
            .iter()
            .map(|c| match c {
                Comp::Shell(s) => s.stats().fires,
                Comp::Buffered(s) => s.stats().fires,
                _ => 0,
            })
            .sum()
    }
}

/// Least common multiple, saturating.
fn lcm(a: u64, b: u64) -> u64 {
    fn gcd(mut a: u64, mut b: u64) -> u64 {
        while b != 0 {
            let t = a % b;
            a = b;
            b = t;
        }
        a
    }
    if a == 0 || b == 0 {
        return a.max(b).max(1);
    }
    (a / gcd(a, b)).saturating_mul(b)
}

/// Kahn topological sort over channel indices with `deps(ch)` returning
/// the channels `ch`'s value depends on. Returns `None` on a cycle.
fn kahn_order(n: usize, deps: impl Fn(usize) -> Vec<usize>) -> Option<Vec<usize>> {
    let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut indegree = vec![0usize; n];
    for (ch, slot) in indegree.iter_mut().enumerate() {
        for d in deps(ch) {
            dependents[d].push(ch);
            *slot += 1;
        }
    }
    let mut queue: VecDeque<usize> = (0..n).filter(|&c| indegree[c] == 0).collect();
    let mut out = Vec::with_capacity(n);
    while let Some(c) = queue.pop_front() {
        out.push(c);
        for &d in &dependents[c] {
            indegree[d] -= 1;
            if indegree[d] == 0 {
                queue.push_back(d);
            }
        }
    }
    (out.len() == n).then_some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_core::{Pattern, RelayKind};
    use lip_graph::generate;

    #[test]
    fn pipeline_delivers_all_tokens() {
        let chain = generate::chain(3, 1, RelayKind::Full);
        let mut sys = System::new(&chain.netlist).unwrap();
        sys.run(50);
        let sink = sys.sink(chain.sink).unwrap();
        // In-order, duplicate-free prefix.
        for (i, &v) in sink.received().iter().enumerate() {
            // Shell initial tokens (identity of 0) precede the stream.
            let _ = (i, v);
        }
        // 4 relay gaps x 1 full relay = 4 fill voids; 3 shells add their
        // initial valid tokens, so at least 50 - 4 tokens arrive.
        assert!(sink.received().len() >= 46, "{}", sink.received().len());
    }

    #[test]
    fn half_relay_pipeline_is_transparent() {
        let chain = generate::chain(2, 1, RelayKind::Half);
        let mut sys = System::new(&chain.netlist).unwrap();
        sys.run(50);
        let sink = sys.sink(chain.sink).unwrap();
        assert_eq!(sink.voids_seen(), 0);
        assert_eq!(sink.received().len(), 50);
    }

    #[test]
    fn invalid_netlist_is_rejected() {
        let ring = generate::ring(2, 0, RelayKind::Full);
        assert!(System::new(&ring.netlist).is_err());
    }

    #[test]
    fn ring_throughput_matches_s_over_s_plus_r() {
        // Fig. 2: S = 2 shells, R = 1 relay -> T = 2/3.
        let ring = generate::ring(2, 1, RelayKind::Full);
        let mut sys = System::new(&ring.netlist).unwrap();
        sys.run(300);
        let sink = sys.sink(ring.sink).unwrap();
        let t = sink.throughput();
        assert!((t - 2.0 / 3.0).abs() < 0.02, "throughput {t}");
    }

    #[test]
    fn fig1_fork_join_throughput_is_four_fifths() {
        // Fig. 1: fork A, long branch A -> rs -> B -> rs -> C, short
        // branch A -> rs -> C. m = 3 relays + shells A, B = 5; i = 1;
        // T = (m - i)/m = 4/5, with one void at the output every 5
        // cycles after the transient.
        let f = generate::fig1();
        let mut sys = System::new(&f.netlist).unwrap();
        sys.run(505);
        let sink = sys.sink(f.sink).unwrap();
        let t = sink.throughput();
        assert!((t - 0.8).abs() < 0.01, "throughput {t}");
    }

    #[test]
    fn independent_sources_decouple() {
        // Negative control: with independent sources instead of a fork,
        // there is no implicit loop and throughput recovers to 1 after
        // the transient (the branches decouple).
        let r = generate::reconvergent(2, 1);
        let mut sys = System::new(&r.netlist).unwrap();
        sys.run(500);
        let sink = sys.sink(r.sink).unwrap();
        assert!(sink.throughput() > 0.99, "throughput {}", sink.throughput());
    }

    #[test]
    fn control_state_detects_periodicity() {
        let ring = generate::ring(2, 1, RelayKind::Full);
        let mut sys = System::new(&ring.netlist).unwrap();
        let mut hashes = Vec::new();
        for _ in 0..60 {
            sys.settle();
            hashes.push(sys.control_hash().unwrap());
            sys.step();
        }
        // After some transient the hash sequence must repeat with the
        // loop period 3 (S + R = 3).
        let tail = &hashes[30..];
        for w in 0..tail.len() - 3 {
            assert_eq!(tail[w], tail[w + 3], "not periodic at {w}");
        }
    }

    #[test]
    fn aperiodic_environment_disables_control_state() {
        let mut n = Netlist::new();
        let src = n.add_source_with_pattern(
            "in",
            Pattern::Random {
                num: 1,
                denom: 2,
                seed: 7,
            },
        );
        let sink = n.add_sink("out");
        n.connect(src, 0, sink, 0).unwrap();
        let sys = System::new(&n).unwrap();
        assert!(sys.control_state().is_none());
        assert!(sys.control_hash().is_none());
    }

    #[test]
    fn accessors_discriminate_kinds() {
        let chain = generate::chain(1, 1, RelayKind::Full);
        let sys = System::new(&chain.netlist).unwrap();
        assert!(sys.source(chain.source).is_some());
        assert!(sys.sink(chain.source).is_none());
        assert!(sys.shell(chain.shells[0]).is_some());
        assert!(sys.relay(chain.shells[0]).is_none());
    }

    #[test]
    fn totals_accumulate() {
        let chain = generate::chain(2, 0, RelayKind::Half);
        let mut sys = System::new(&chain.netlist).unwrap();
        sys.run(10);
        assert!(sys.total_received() > 0);
        assert!(sys.total_fires() > 0);
        assert_eq!(sys.cycle(), 10);
    }

    #[test]
    fn lcm_behaviour() {
        assert_eq!(lcm(4, 6), 12);
        assert_eq!(lcm(1, 7), 7);
        assert_eq!(lcm(0, 0), 1);
    }
}
