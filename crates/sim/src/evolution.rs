//! Cycle-by-cycle evolution tables in the style of the paper's Fig. 1
//! and Fig. 2.
//!
//! The figures show, for each clock cycle, the token held at each block's
//! output ("N"/`n` for voids) and which channels carry a `stop` (dashed
//! arrows in the paper, a `*` suffix here). [`Evolution::record`]
//! captures that view from a running [`System`]; its [`Display`]
//! implementation renders the ASCII table printed by the `fig1_*` and
//! `fig2_*` experiment binaries.
//!
//! [`Display`]: std::fmt::Display

use std::fmt;

use lip_core::Token;
use lip_graph::{Netlist, NetlistError, NodeId};

use crate::system::System;

/// One observed cycle: per selected node, its output tokens and whether
/// each output channel was stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvolutionRow {
    /// The cycle number.
    pub cycle: u64,
    /// Per selected node: `(tokens, stops)` for each output port.
    pub outputs: Vec<(Vec<Token>, Vec<bool>)>,
}

/// A recorded evolution of selected nodes over consecutive cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Evolution {
    names: Vec<String>,
    rows: Vec<EvolutionRow>,
}

impl Evolution {
    /// Elaborate `netlist`, run it for `cycles` cycles and record the
    /// outputs of `nodes` (typically the shells of interest — `A`, `B`,
    /// `C` in Fig. 1).
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from elaboration.
    pub fn record(netlist: &Netlist, nodes: &[NodeId], cycles: u64) -> Result<Self, NetlistError> {
        let mut sys = System::new(netlist)?;
        Self::record_from(&mut sys, netlist, nodes, cycles)
    }

    /// As [`record`](Self::record), but continues an existing simulation
    /// (useful to skip a transient first).
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] if a selected node does not exist.
    pub fn record_from(
        sys: &mut System,
        netlist: &Netlist,
        nodes: &[NodeId],
        cycles: u64,
    ) -> Result<Self, NetlistError> {
        let names = nodes
            .iter()
            .map(|id| netlist.node(*id).name().to_owned())
            .collect();
        let mut rows = Vec::with_capacity(usize::try_from(cycles).unwrap_or(usize::MAX));
        for _ in 0..cycles {
            sys.settle();
            let mut outputs = Vec::with_capacity(nodes.len());
            for id in nodes {
                let tokens = sys.node_outputs(*id);
                let stops: Vec<bool> = (0..tokens.len())
                    .map(|p| {
                        netlist
                            .out_channel(*id, p)
                            .is_some_and(|ch| sys.channel_stop(ch))
                    })
                    .collect();
                outputs.push((tokens, stops));
            }
            rows.push(EvolutionRow {
                cycle: sys.cycle(),
                outputs,
            });
            sys.step();
        }
        Ok(Evolution { names, rows })
    }

    /// The recorded rows.
    #[must_use]
    pub fn rows(&self) -> &[EvolutionRow] {
        &self.rows
    }

    /// Node names, in column order.
    #[must_use]
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The rendered cell for node column `col` at row `row`: tokens
    /// joined by `,`, each stopped port marked `*` (e.g. `"3*"`, `"n"`).
    #[must_use]
    pub fn cell(&self, row: usize, col: usize) -> String {
        let (tokens, stops) = &self.rows[row].outputs[col];
        tokens
            .iter()
            .zip(stops)
            .map(|(t, s)| format!("{t}{}", if *s { "*" } else { "" }))
            .collect::<Vec<_>>()
            .join(",")
    }
}

impl fmt::Display for Evolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Column widths.
        let mut widths: Vec<usize> = self.names.iter().map(String::len).collect();
        let mut cells: Vec<Vec<String>> = Vec::with_capacity(self.rows.len());
        for (r, row) in self.rows.iter().enumerate() {
            let mut line = Vec::with_capacity(self.names.len());
            for (c, w) in widths.iter_mut().enumerate().take(row.outputs.len()) {
                let s = self.cell(r, c);
                *w = (*w).max(s.len());
                line.push(s);
            }
            cells.push(line);
        }
        write!(f, "{:>6} ", "cycle")?;
        for (name, w) in self.names.iter().zip(&widths) {
            write!(f, " {name:>w$}")?;
        }
        writeln!(f)?;
        for (row, line) in self.rows.iter().zip(&cells) {
            write!(f, "{:>6} ", row.cycle)?;
            for (cell, w) in line.iter().zip(&widths) {
                write!(f, " {cell:>w$}")?;
            }
            writeln!(f)?;
        }
        writeln!(
            f,
            "(voids print as `n`; a trailing `*` marks a stopped channel)"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_graph::generate;

    #[test]
    fn fig1_evolution_shows_periodic_void() {
        let f = generate::fig1();
        let nodes = [f.fork, f.mid, f.join];
        let ev = Evolution::record(&f.netlist, &nodes, 25).unwrap();
        assert_eq!(ev.names(), &["A", "B", "C"]);
        assert_eq!(ev.rows().len(), 25);
        // After the transient, C's output must be void exactly once
        // every 5 cycles (the paper: "the output utters an invalid datum
        // every 5 cycles").
        let c_voids: Vec<usize> = (10..25)
            .filter(|&r| ev.rows()[r].outputs[2].0[0].is_void())
            .collect();
        assert!(!c_voids.is_empty());
        for w in c_voids.windows(2) {
            assert_eq!(w[1] - w[0], 5, "void spacing {c_voids:?}");
        }
    }

    #[test]
    fn fig1_evolution_shows_stops_on_short_branch() {
        let f = generate::fig1();
        let nodes = [f.fork, f.mid, f.join];
        let ev = Evolution::record(&f.netlist, &nodes, 25).unwrap();
        // The fork's short-branch port (A port 1) must be stopped
        // periodically — the reverse-flowing stop of Fig. 1.
        let stopped = (10..25).filter(|&r| ev.rows()[r].outputs[0].1[1]).count();
        assert!(stopped >= 2, "expected periodic stops, saw {stopped}");
    }

    #[test]
    fn rendering_contains_voids_and_stops() {
        let f = generate::fig1();
        let ev = Evolution::record(&f.netlist, &[f.fork, f.join], 12).unwrap();
        let s = ev.to_string();
        assert!(s.contains("cycle"), "{s}");
        assert!(s.contains('n'), "voids missing:\n{s}");
        assert!(s.contains('*'), "stops missing:\n{s}");
    }

    #[test]
    fn cells_join_multiple_ports() {
        let f = generate::fig1();
        let ev = Evolution::record(&f.netlist, &[f.fork], 3).unwrap();
        // The fork has two output ports: cells contain a comma.
        assert!(ev.cell(0, 0).contains(','), "{}", ev.cell(0, 0));
    }
}
