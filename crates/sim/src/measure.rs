//! Throughput, transient and liveness measurement.
//!
//! The paper's quantitative claims are about *steady state*: "after a
//! number of clock cycles that are dependent on the system each part of
//! it behaves in a periodic fashion". These helpers detect that periodic
//! regime by hashing the system's control state every cycle, then measure
//! throughput exactly — as a rational number of informative tokens per
//! period — so the closed-form fractions (`4/5`, `S/(S+R)`) can be
//! asserted without floating-point tolerance.

use std::collections::HashMap;
use std::sync::Arc;

use lip_graph::{Netlist, NetlistError, NodeId};
use lip_obs::{
    rec_span, KernelCounters, NullProgress, NullRecorder, ProgressSink, ProgressSnapshot, Recorder,
};

use crate::batch::{BatchEngine, LanePatterns};
use crate::lane::LaneWord;
use crate::program::SettleProgram;
use crate::system::System;

/// An exact non-negative rational (e.g. a throughput of `4/5`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: u64,
    den: u64,
}

impl Ratio {
    /// `num/den`, reduced.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    #[must_use]
    pub fn new(num: u64, den: u64) -> Self {
        assert!(den != 0, "ratio denominator must be non-zero");
        let g = gcd(num, den).max(1);
        Ratio {
            num: num / g,
            den: den / g,
        }
    }

    /// Reduced numerator.
    #[must_use]
    pub fn num(self) -> u64 {
        self.num
    }

    /// Reduced denominator.
    #[must_use]
    pub fn den(self) -> u64 {
        self.den
    }

    /// The ratio as a float.
    #[must_use]
    pub fn to_f64(self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            self.num as f64 / self.den as f64
        }
    }
}

impl std::fmt::Display for Ratio {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.num, self.den)
    }
}

fn gcd(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// A detected periodic regime: after `transient` cycles, the control
/// state repeats every `period` cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Periodicity {
    /// Cycles before the first state that recurs (the paper's "transient
    /// duration").
    pub transient: u64,
    /// Length of the steady-state period.
    pub period: u64,
}

/// Incremental recurrence detector over hashed control states, with a
/// caller-chosen payload snapshotted at each state's first occurrence.
///
/// Each distinct hash keeps a *bucket* of every distinct state seen
/// under it, so two different states colliding on a hash cannot shadow
/// each other: the recurrence check compares full states, and a state
/// whose hash collides is still recorded and still recognised when it
/// genuinely recurs. (The previous single-slot map dropped the colliding
/// state entirely, so its later recurrence was missed and detection
/// could spuriously return `None` — see the forced-collision regression
/// test.)
///
/// The payload is returned alongside the [`Periodicity`] on a hit: the
/// batched measurement path stores per-sink token counts there, turning
/// the first-occurrence/recurrence pair into an exact tokens-per-period
/// reading with no extra simulation.
#[derive(Debug, Clone)]
pub struct PeriodDetector<T = ()> {
    seen: HashMap<u64, Vec<(u64, Vec<u64>, T)>>,
}

impl<T> Default for PeriodDetector<T> {
    fn default() -> Self {
        PeriodDetector {
            seen: HashMap::new(),
        }
    }
}

impl<T: Clone> PeriodDetector<T> {
    /// An empty detector.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Distinct states recorded so far.
    #[must_use]
    pub fn states(&self) -> usize {
        self.seen.values().map(Vec::len).sum()
    }

    /// Observe the control `state` (pre-hashed as `hash`) at `cycle`.
    /// On the first recurrence, returns the periodicity — transient =
    /// the state's first cycle, period = the gap — together with the
    /// payload recorded at that first occurrence.
    pub fn observe(
        &mut self,
        cycle: u64,
        hash: u64,
        state: &[u64],
        payload: T,
    ) -> Option<(Periodicity, T)> {
        let bucket = self.seen.entry(hash).or_default();
        for (first, prev, prev_payload) in bucket.iter() {
            if prev == state {
                return Some((
                    Periodicity {
                        transient: *first,
                        period: cycle - first,
                    },
                    prev_payload.clone(),
                ));
            }
        }
        bucket.push((cycle, state.to_vec(), payload));
        None
    }
}

/// Detect the periodic regime of `sys` by hashing control states, within
/// `max_cycles`. Returns `None` when the environment is aperiodic or no
/// repeat shows up in time. The system is left somewhere inside the
/// steady-state regime.
pub fn find_periodicity(sys: &mut System, max_cycles: u64) -> Option<Periodicity> {
    let mut detector = PeriodDetector::new();
    for _ in 0..max_cycles {
        sys.settle();
        let state = sys.control_state()?;
        let hash = sys.control_hash()?;
        if let Some((p, ())) = detector.observe(sys.cycle(), hash, &state, ()) {
            return Some(p);
        }
        sys.step();
    }
    None
}

/// Exact steady-state throughput of one sink, measured over whole
/// periods.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SinkThroughput {
    /// The sink node.
    pub sink: NodeId,
    /// Informative tokens per cycle in steady state.
    pub throughput: Ratio,
}

/// Full measurement result of [`measure`].
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Detected periodicity, if any.
    pub periodicity: Option<Periodicity>,
    /// Per-sink exact (periodic) or estimated (aperiodic) throughput.
    pub sinks: Vec<SinkThroughput>,
    /// Total cycles simulated.
    pub cycles: u64,
}

impl Measurement {
    /// The minimum sink throughput — the paper's "system throughput"
    /// (the slowest sub-topology dictates the speed).
    #[must_use]
    pub fn system_throughput(&self) -> Option<Ratio> {
        self.sinks
            .iter()
            .map(|s| s.throughput)
            .min_by(|a, b| (a.num() * b.den()).cmp(&(b.num() * a.den())))
    }
}

/// Options for [`measure`].
#[derive(Debug, Clone, Copy)]
pub struct MeasureOptions {
    /// Cycle budget for periodicity detection.
    pub max_transient: u64,
    /// Periods (or cycles, for aperiodic systems) to average over.
    pub measure_periods: u64,
    /// Fallback cycle count when no periodicity is found.
    pub fallback_cycles: u64,
}

impl Default for MeasureOptions {
    fn default() -> Self {
        MeasureOptions {
            max_transient: 10_000,
            measure_periods: 4,
            fallback_cycles: 10_000,
        }
    }
}

/// Simulate `netlist` to steady state and measure every sink's exact
/// throughput.
///
/// # Errors
///
/// Propagates [`NetlistError`] from elaboration.
pub fn measure(netlist: &Netlist) -> Result<Measurement, NetlistError> {
    measure_with(netlist, MeasureOptions::default())
}

/// [`measure`] with explicit options.
///
/// # Errors
///
/// Propagates [`NetlistError`] from elaboration.
pub fn measure_with(netlist: &Netlist, opts: MeasureOptions) -> Result<Measurement, NetlistError> {
    let mut sys = System::new(netlist)?;
    let periodicity = find_periodicity(&mut sys, opts.max_transient);
    let sinks = netlist.sinks();
    let window = match periodicity {
        Some(p) => p.period * opts.measure_periods,
        None => opts.fallback_cycles,
    };
    let before: Vec<u64> = sinks
        .iter()
        .map(|s| sys.sink(*s).expect("sink").received().len() as u64)
        .collect();
    sys.run(window);
    let mut out = Vec::with_capacity(sinks.len());
    for (i, s) in sinks.iter().enumerate() {
        let after = sys.sink(*s).expect("sink").received().len() as u64;
        out.push(SinkThroughput {
            sink: *s,
            throughput: Ratio::new(after - before[i], window),
        });
    }
    Ok(Measurement {
        periodicity,
        sinks: out,
        cycles: sys.cycle(),
    })
}

/// Steady-state activity of one shell: the fraction of cycles its pearl
/// actually fired (the complement is clock-gated — the paper's power
/// story: "a module waiting for new data and/or stopped keeps its
/// present state").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShellActivity {
    /// The shell node.
    pub shell: NodeId,
    /// Fires per cycle over the measured window.
    pub utilisation: Ratio,
}

/// Measure every shell's steady-state firing rate over whole periods.
///
/// In a connected LID every shell settles to the *same* rate — the
/// system throughput — because each firing consumes and produces exactly
/// one token per channel; the gated fraction `1 − T` is the activity
/// saved by the shell's clock gating.
///
/// # Errors
///
/// Propagates [`NetlistError`] from elaboration.
pub fn measure_activity(netlist: &Netlist) -> Result<Vec<ShellActivity>, NetlistError> {
    let mut sys = System::new(netlist)?;
    let periodicity = find_periodicity(&mut sys, 10_000);
    let window = periodicity.map_or(10_000, |p| p.period * 4);
    let shells = netlist.shells();
    let before: Vec<u64> = shells
        .iter()
        .map(|s| sys.shell_stats(*s).expect("shell").fires)
        .collect();
    sys.run(window);
    Ok(shells
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let fires = sys.shell_stats(*s).expect("shell").fires - before[i];
            ShellActivity {
                shell: *s,
                utilisation: Ratio::new(fires, window),
            }
        })
        .collect())
}

/// Result of a batched throughput sweep ([`measure_batch`] /
/// [`measure_batch_wide`]).
///
/// Lane `l` holds the outcome of simulating the netlist under lane `l`'s
/// environment patterns for the full cycle window.
#[derive(Debug, Clone)]
pub struct BatchMeasurement {
    /// Sinks measured, in [`Netlist::sinks`] order.
    pub sinks: Vec<NodeId>,
    /// `counts[sink][lane] = (informative, voids)` consumed.
    pub counts: Vec<Vec<(u64, u64)>>,
    /// Cycles simulated (identical across lanes).
    pub cycles: u64,
    /// Lanes swept (64 on the default engine, up to 1024 wide).
    pub lanes: usize,
}

impl BatchMeasurement {
    /// Measured throughput of sink `sink` (index into
    /// [`sinks`](Self::sinks)) in `lane`: informative tokens per cycle
    /// over the whole window.
    #[must_use]
    pub fn throughput(&self, sink: usize, lane: usize) -> Ratio {
        Ratio::new(self.counts[sink][lane].0, self.cycles)
    }

    /// Minimum sink throughput of `lane` — the lane's system throughput.
    #[must_use]
    pub fn system_throughput(&self, lane: usize) -> Option<Ratio> {
        (0..self.sinks.len())
            .map(|s| self.throughput(s, lane))
            .min_by(|a, b| (a.num() * b.den()).cmp(&(b.num() * a.den())))
    }
}

/// Measure 64 environment scenarios of `netlist` in one pass: lane `l`
/// simulates the netlist under `pats`' lane-`l` patterns for `cycles`
/// cycles on the bit-parallel [`BatchSkeleton`](crate::BatchSkeleton),
/// and every sink's token counts are read back per lane.
///
/// This is the batched replacement for running [`measure`] (or a scalar
/// skeleton) 64 times in a throughput sweep; counts are bit-identical
/// to 64 scalar runs. Unlike [`measure`] there is no periodicity
/// detection — pick `cycles` comfortably past the transient (e.g. via
/// [`lip_graph::topology::longest_latency`]) so the window average
/// converges on the steady-state rate.
///
/// # Errors
///
/// Propagates [`NetlistError`] from elaboration.
pub fn measure_batch(
    netlist: &Netlist,
    pats: &LanePatterns,
    cycles: u64,
) -> Result<BatchMeasurement, NetlistError> {
    measure_batch_probed(netlist, pats, cycles, &mut lip_obs::NullProbe)
}

/// [`measure_batch`] at any supported lane width: `pats` must carry
/// `W::LANES` lanes and the sweep runs on [`BatchEngine<W>`]. Results
/// are bit-identical, lane for lane, to the 64-lane path (and to
/// `W::LANES` scalar runs) — the wider word only buys wall-clock.
///
/// # Errors
///
/// Propagates [`NetlistError`] from elaboration.
///
/// # Panics
///
/// Panics if `pats` was built for a width other than `W::LANES`.
pub fn measure_batch_wide<W: LaneWord>(
    netlist: &Netlist,
    pats: &LanePatterns,
    cycles: u64,
) -> Result<BatchMeasurement, NetlistError> {
    measure_batch_probed_wide::<W, _>(netlist, pats, cycles, &mut lip_obs::NullProbe)
}

/// [`measure_batch`] with a [`lip_obs::Probe`] observing every lane.
///
/// Counters aggregated by a probe (e.g. [`lip_obs::MetricsRegistry`]
/// built over the program's [`SettleProgram::topology`]) sum across all
/// 64 lanes; pass `with_lanes(topology, 64)` so per-lane rates divide
/// out correctly.
///
/// # Errors
///
/// Propagates [`NetlistError`] from elaboration.
pub fn measure_batch_probed<P: lip_obs::Probe>(
    netlist: &Netlist,
    pats: &LanePatterns,
    cycles: u64,
    probe: &mut P,
) -> Result<BatchMeasurement, NetlistError> {
    measure_batch_probed_wide::<u64, P>(netlist, pats, cycles, probe)
}

/// [`measure_batch_wide`] with a [`lip_obs::Probe`] observing every
/// lane (mask hooks carry `W::WORDS`-word slices; size a
/// [`lip_obs::MetricsRegistry`] with `with_lanes(topology, W::LANES)`).
///
/// # Errors
///
/// Propagates [`NetlistError`] from elaboration.
///
/// # Panics
///
/// Panics if `pats` was built for a width other than `W::LANES`.
pub fn measure_batch_probed_wide<W: LaneWord, P: lip_obs::Probe>(
    netlist: &Netlist,
    pats: &LanePatterns,
    cycles: u64,
    probe: &mut P,
) -> Result<BatchMeasurement, NetlistError> {
    let prog = Arc::new(SettleProgram::compile(netlist)?);
    let mut batch = BatchEngine::<W>::from_patterns(prog, pats);
    batch.run_patterns_probed(pats, cycles, probe);
    let sinks = netlist.sinks();
    let counts = sinks
        .iter()
        .map(|&s| {
            (0..W::LANES)
                .map(|lane| batch.sink_counts_lane(s, lane).expect("sink"))
                .collect()
        })
        .collect();
    Ok(BatchMeasurement {
        sinks,
        counts,
        cycles,
        lanes: W::LANES,
    })
}

/// Result of a periodicity-aware batched sweep
/// ([`measure_batch_periodic`] / [`measure_batch_periodic_wide`]):
/// exact per-lane steady-state throughputs with the cycle budget
/// actually spent.
#[derive(Debug, Clone)]
pub struct BatchPeriodicMeasurement {
    /// Sinks measured, in [`Netlist::sinks`] order.
    pub sinks: Vec<NodeId>,
    /// `throughput[sink][lane]`: exact steady-state rate for converged
    /// lanes (tokens per period over one detected period), whole-window
    /// estimate for lanes that never converged within the budget.
    pub throughput: Vec<Vec<Ratio>>,
    /// Per lane: the detected periodic regime, `None` when the lane's
    /// environment is aperiodic or no recurrence fit the budget.
    pub periodicity: Vec<Option<Periodicity>>,
    /// Cycles actually simulated (`<= budget` — the early exit).
    pub cycles: u64,
    /// The full cycle budget a fixed-window sweep would have spent.
    pub budget: u64,
    /// Lanes swept (64 on the default engine, up to 1024 wide).
    pub lanes: usize,
    /// Converged-lane mask words: bit `l % 64` of word `l / 64` is set
    /// iff lane `l` converged (got an exact reading). Use
    /// [`lane_converged`](Self::lane_converged) for single-lane reads.
    pub converged: Vec<u64>,
}

impl BatchPeriodicMeasurement {
    /// Minimum sink throughput of `lane` — the lane's system throughput.
    #[must_use]
    pub fn system_throughput(&self, lane: usize) -> Option<Ratio> {
        (0..self.sinks.len())
            .map(|s| self.throughput[s][lane])
            .min_by(|a, b| (a.num() * b.den()).cmp(&(b.num() * a.den())))
    }

    /// `true` iff `lane` converged to an exact periodic reading.
    #[must_use]
    pub fn lane_converged(&self, lane: usize) -> bool {
        lane < self.lanes && (self.converged[lane / 64] >> (lane % 64)) & 1 == 1
    }

    /// `true` when every lane converged to an exact periodic reading.
    #[must_use]
    pub fn all_converged(&self) -> bool {
        let set: u64 = self
            .converged
            .iter()
            .map(|w| u64::from(w.count_ones()))
            .sum();
        set == self.lanes as u64
    }

    /// Cycles the periodicity early-exit saved against the full budget.
    #[must_use]
    pub fn cycles_saved(&self) -> u64 {
        self.budget - self.cycles
    }
}

/// Periodicity-aware replacement for [`measure_batch`]: sweep 64
/// environment scenarios at once, but track each lane's control-state
/// recurrence (via [`PeriodDetector`] over
/// [`stable_hash`](crate::program::stable_hash) of the bit-sliced lane
/// state) and *retire* a lane the moment it proves periodic — its exact
/// throughput is already decided, so it needs no further bookkeeping.
/// Once the converged-lane mask is full the sweep returns early instead
/// of burning the rest of `budget`; the paper's bounded-transient
/// result makes that the common case, cutting most of the simulated
/// cycles on settled corpora.
///
/// Converged lanes report the **same exact rational throughput the
/// scalar path does** (tokens over one whole period, e.g. Fig. 1 is
/// exactly `4/5`): the detector snapshots per-sink counts at each
/// state's first occurrence, so recurrence yields tokens-per-period
/// with no window truncation error. Lanes with aperiodic (random)
/// environments never converge; they run to the full budget and report
/// the whole-window estimate, exactly like [`measure_batch`].
///
/// # Errors
///
/// Propagates [`NetlistError`] from elaboration.
pub fn measure_batch_periodic(
    netlist: &Netlist,
    pats: &LanePatterns,
    budget: u64,
) -> Result<BatchPeriodicMeasurement, NetlistError> {
    measure_batch_periodic_wide::<u64>(netlist, pats, budget)
}

/// [`measure_batch_periodic`] at any supported lane width: `pats` must
/// carry `W::LANES` lanes. Per-lane periodicities, exact throughputs
/// and the early-exit behaviour are identical to running the 64-lane
/// path over the same lanes in chunks.
///
/// # Errors
///
/// Propagates [`NetlistError`] from elaboration.
///
/// # Panics
///
/// Panics if `pats` was built for a width other than `W::LANES`.
pub fn measure_batch_periodic_wide<W: LaneWord>(
    netlist: &Netlist,
    pats: &LanePatterns,
    budget: u64,
) -> Result<BatchPeriodicMeasurement, NetlistError> {
    // The unobserved path is the observable core monomorphized over the
    // null recorder and sink — every recording branch compiles away, so
    // this stays the honest baseline the overhead gate compares against.
    measure_batch_periodic_obs::<W, _, _>(
        netlist,
        pats,
        budget,
        "batch_periodic",
        &NullRecorder,
        &mut NullProgress,
    )
    .map(|(m, _)| m)
}

/// Hot-loop phases sampled by the flight recorder: every
/// `OBS_SAMPLE_EVERY`-th cycle of an observed
/// [`measure_batch_periodic_obs`] run is timed per phase (recurrence
/// detection vs. engine stepping) and accumulated into
/// `measure.sampled_*` counters. Sampling keeps the enabled-recorder
/// overhead bounded while still attributing wall-clock by phase.
const OBS_SAMPLE_EVERY: u64 = 64;

/// How often an observed sweep publishes a [`ProgressSnapshot`].
const OBS_PROGRESS_EVERY: u64 = 1024;

/// [`measure_batch_periodic_wide`] with runtime self-observability: a
/// [`Recorder`] receives a `measure`-category span covering the whole
/// call (child span `compile` for program compilation), sampled
/// per-phase timing counters (`measure.sampled_detector_ns`,
/// `measure.sampled_step_ns`, `measure.sampled_cycles`), and the
/// settle tape runs *counted* — the returned [`KernelCounters`] hold
/// per-opcode/per-stratum retirement for every executed cycle
/// (`None` under a disabled or [`NullRecorder`]). A [`ProgressSink`]
/// receives a live [`ProgressSnapshot`] every
/// `OBS_PROGRESS_EVERY` (internal) cycles and at completion.
///
/// With [`NullRecorder`] and [`NullProgress`] this monomorphizes to
/// exactly the unobserved sweep — [`measure_batch_periodic_wide`] is
/// this function under the null instantiation — and measured results
/// are bit-identical under every recorder configuration.
///
/// # Errors
///
/// Propagates [`NetlistError`] from elaboration.
///
/// # Panics
///
/// Panics if `pats` was built for a width other than `W::LANES`.
#[allow(clippy::too_many_lines)]
pub fn measure_batch_periodic_obs<W: LaneWord, R: Recorder, S: ProgressSink>(
    netlist: &Netlist,
    pats: &LanePatterns,
    budget: u64,
    label: &str,
    rec: &R,
    progress: &mut S,
) -> Result<(BatchPeriodicMeasurement, Option<KernelCounters>), NetlistError> {
    let _whole = rec_span(rec, "measure", label);
    let lanes = W::LANES;
    let prog = {
        let _compile = rec_span(rec, "compile", label);
        Arc::new(SettleProgram::compile(netlist)?)
    };
    let mut batch = BatchEngine::<W>::from_patterns(Arc::clone(&prog), pats);
    let compiled = crate::batch::CompiledPatterns::<W>::compile(pats);
    let mut kc = if R::ENABLED && rec.active() {
        Some(batch.kernel_counters())
    } else {
        None
    };
    let started = (R::ENABLED || S::ENABLED).then(std::time::Instant::now);
    let sinks = netlist.sinks();
    let n_snk = sinks.len();

    // Per-lane environment period: the lcm of that lane's pattern
    // periods. Aperiodic lanes can never be declared periodic.
    let lane_env_period: Vec<Option<u64>> = (0..lanes)
        .map(|lane| {
            let mut acc = Some(1u64);
            let mut fold = |p: Option<u64>| {
                acc = match (p, acc) {
                    (Some(p), Some(a)) => Some(crate::program::lcm(p, a)),
                    _ => None,
                };
            };
            for i in 0..pats.source_count() {
                fold(pats.source_pattern(i, lane).period());
            }
            for j in 0..pats.sink_count() {
                fold(pats.sink_pattern(j, lane).period());
            }
            acc
        })
        .collect();

    let mut detectors: Vec<PeriodDetector<Vec<(u64, u64)>>> =
        (0..lanes).map(|_| PeriodDetector::new()).collect();
    let mut periodicity: Vec<Option<Periodicity>> = vec![None; lanes];
    let mut throughput = vec![vec![Ratio::new(0, 1); lanes]; n_snk];
    let mut lane_done: Vec<bool> = lane_env_period.iter().map(Option::is_none).collect();
    // Aperiodic lanes can never converge; they only count against the
    // early exit, which therefore fires iff every *candidate* lane is
    // done AND no aperiodic lane exists.
    let aperiodic = lane_done.iter().filter(|&&d| d).count();
    let mut retired = 0usize;
    let mut executed = 0u64;

    for t in 0..budget {
        // Sampled per-phase wall-clock attribution: timing every cycle
        // would dominate the loop, so only every OBS_SAMPLE_EVERY-th
        // cycle pays the two Instant reads.
        let sampled = R::ENABLED && rec.active() && t % OBS_SAMPLE_EVERY == 0;
        let detector_start = sampled.then(std::time::Instant::now);
        // Observe the registered lane states *before* stepping, exactly
        // where the scalar detector samples; converged lanes are
        // retired from this bookkeeping entirely.
        for lane in 0..lanes {
            if lane_done[lane] {
                continue;
            }
            let env_period = lane_env_period[lane].expect("candidate lanes are periodic");
            let mut state = Vec::with_capacity(1 + prog.comp_slots.len());
            state.push(t % env_period);
            state.extend(batch.lane_component_state(lane));
            let hash = crate::program::stable_hash(&state);
            let counts: Vec<(u64, u64)> = sinks
                .iter()
                .map(|&s| batch.sink_counts_lane(s, lane).expect("sink"))
                .collect();
            if let Some((p, first_counts)) =
                detectors[lane].observe(t, hash, &state, counts.clone())
            {
                periodicity[lane] = Some(p);
                lane_done[lane] = true;
                retired += 1;
                for j in 0..n_snk {
                    throughput[j][lane] = Ratio::new(counts[j].0 - first_counts[j].0, p.period);
                }
            }
        }
        if let Some(t0) = detector_start {
            rec.add("measure.sampled_detector_ns", elapsed_ns(t0));
        }
        if aperiodic == 0 && retired == lanes {
            // Every lane has an exact reading: the remaining budget is
            // pure waste — exit early.
            executed = t;
            break;
        }
        let step_start = sampled.then(std::time::Instant::now);
        match kc.as_mut() {
            Some(kc) => batch.step_compiled_counted(&compiled, kc),
            None => batch.step_compiled_probed(&compiled, &mut lip_obs::NullProbe),
        }
        if let Some(t0) = step_start {
            rec.add("measure.sampled_step_ns", elapsed_ns(t0));
            rec.add("measure.sampled_cycles", 1);
        }
        executed = t + 1;
        if S::ENABLED && executed.is_multiple_of(OBS_PROGRESS_EVERY) {
            progress.publish(&obs_snapshot(label, lanes, retired, executed, started));
        }
    }

    // Unconverged lanes fall back to the whole-window estimate.
    let window = executed.max(1);
    for (j, &s) in sinks.iter().enumerate() {
        for (lane, slot) in throughput[j].iter_mut().enumerate() {
            if periodicity[lane].is_some() {
                continue;
            }
            let (valid, _) = batch.sink_counts_lane(s, lane).expect("sink");
            *slot = Ratio::new(valid, window);
        }
    }

    let mut converged = vec![0u64; W::WORDS];
    for (lane, p) in periodicity.iter().enumerate() {
        if p.is_some() {
            converged[lane / 64] |= 1 << (lane % 64);
        }
    }

    if S::ENABLED {
        progress.publish(&obs_snapshot(label, lanes, retired, executed, started));
    }

    Ok((
        BatchPeriodicMeasurement {
            sinks,
            throughput,
            periodicity,
            cycles: executed,
            budget,
            lanes,
            converged,
        },
        kc,
    ))
}

/// Nanoseconds since `t0`, saturating (an observed run outliving
/// `u64::MAX` ns is not a real configuration).
fn elapsed_ns(t0: std::time::Instant) -> u64 {
    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Live progress snapshot of an observed batch-periodic sweep.
fn obs_snapshot(
    label: &str,
    lanes: usize,
    converged: usize,
    cycles: u64,
    started: Option<std::time::Instant>,
) -> ProgressSnapshot {
    let elapsed = started.map_or(0, elapsed_ns);
    #[allow(clippy::cast_precision_loss)]
    let cycles_per_sec = if elapsed == 0 {
        0.0
    } else {
        cycles as f64 / (elapsed as f64 / 1e9)
    };
    ProgressSnapshot {
        experiment: "measure".to_owned(),
        topology: label.to_owned(),
        lanes: lanes as u64,
        lanes_converged: converged as u64,
        cycles_executed: cycles,
        cycles_per_sec,
        cache_hits: 0,
        cache_misses: 0,
        elapsed_ns: elapsed,
    }
}

/// Liveness verdict from skeleton-style simulation to the periodic
/// regime — the paper's deadlock detection recipe: "if we simulate the
/// system up to the transient's extinction, either the deadlock will
/// show, or will be forever avoided".
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LivenessReport {
    /// Shells that never fire within a steady-state period (starved or
    /// deadlocked forever, by periodicity).
    pub dead_shells: Vec<NodeId>,
    /// The detected periodic regime, when one exists.
    pub periodicity: Option<Periodicity>,
}

impl LivenessReport {
    /// `true` when every shell keeps firing.
    #[must_use]
    pub fn is_live(&self) -> bool {
        self.dead_shells.is_empty()
    }
}

/// Check liveness of `netlist` by simulating past the transient and
/// counting shell firings over one full period.
///
/// # Errors
///
/// Propagates [`NetlistError`] from elaboration. Returns an empty
/// periodicity (and judges over `fallback` cycles) for aperiodic
/// environments.
pub fn check_liveness(
    netlist: &Netlist,
    max_transient: u64,
    fallback: u64,
) -> Result<LivenessReport, NetlistError> {
    let mut sys = System::new(netlist)?;
    let periodicity = find_periodicity(&mut sys, max_transient);
    let window = periodicity.map_or(fallback, |p| p.period);
    let shells = netlist.shells();
    let before: Vec<u64> = shells
        .iter()
        .map(|s| sys.shell_stats(*s).expect("shell").fires)
        .collect();
    sys.run(window);
    let dead_shells = shells
        .iter()
        .enumerate()
        .filter(|(i, s)| sys.shell_stats(**s).expect("shell").fires == before[*i])
        .map(|(_, s)| *s)
        .collect();
    Ok(LivenessReport {
        dead_shells,
        periodicity,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::LANES;
    use lip_core::{Pattern, RelayKind};
    use lip_graph::generate;

    #[test]
    fn ratio_reduces_and_displays() {
        let r = Ratio::new(8, 10);
        assert_eq!((r.num(), r.den()), (4, 5));
        assert_eq!(r.to_string(), "4/5");
        assert!((r.to_f64() - 0.8).abs() < 1e-12);
        assert_eq!(Ratio::new(0, 7), Ratio::new(0, 3));
    }

    #[test]
    #[should_panic(expected = "denominator must be non-zero")]
    fn ratio_rejects_zero_denominator() {
        let _ = Ratio::new(1, 0);
    }

    #[test]
    fn fig1_measures_exactly_four_fifths() {
        let f = generate::fig1();
        let m = measure(&f.netlist).unwrap();
        let p = m.periodicity.expect("fig1 is periodic");
        assert_eq!(p.period, 5, "paper: n = 5");
        assert_eq!(m.system_throughput(), Some(Ratio::new(4, 5)));
    }

    #[test]
    fn fig2_ring_measures_s_over_s_plus_r() {
        for (s, r) in [(1usize, 1usize), (2, 1), (2, 2), (3, 1), (1, 3)] {
            let ring = generate::ring(s, r, RelayKind::Full);
            let m = measure(&ring.netlist).unwrap();
            assert_eq!(
                m.system_throughput(),
                Some(Ratio::new(s as u64, (s + r) as u64)),
                "ring S={s} R={r}"
            );
        }
    }

    #[test]
    fn tree_measures_unit_throughput() {
        let t = generate::tree(2, 2, 1);
        let m = measure(&t.netlist).unwrap();
        assert_eq!(m.system_throughput(), Some(Ratio::new(1, 1)));
        for s in &m.sinks {
            assert_eq!(s.throughput, Ratio::new(1, 1));
        }
    }

    #[test]
    fn transient_of_tree_is_bounded_by_longest_path() {
        let t = generate::tree(2, 2, 2);
        let mut sys = System::new(&t.netlist).unwrap();
        let p = find_periodicity(&mut sys, 1000).unwrap();
        let bound = lip_graph::topology::longest_latency(&t.netlist).unwrap();
        assert!(
            p.transient <= bound + 1,
            "transient {} exceeds longest-path bound {}",
            p.transient,
            bound
        );
    }

    #[test]
    fn periodicity_none_for_aperiodic_environment() {
        let mut n = Netlist::new();
        let src = n.add_source_with_pattern(
            "in",
            Pattern::Random {
                num: 1,
                denom: 2,
                seed: 1,
            },
        );
        let sink = n.add_sink("out");
        n.connect(src, 0, sink, 0).unwrap();
        let mut sys = System::new(&n).unwrap();
        assert_eq!(find_periodicity(&mut sys, 100), None);
        // measure still works via the fallback window.
        let m = measure_with(
            &n,
            MeasureOptions {
                max_transient: 50,
                measure_periods: 1,
                fallback_cycles: 2000,
            },
        )
        .unwrap();
        let t = m.system_throughput().unwrap().to_f64();
        assert!((t - 0.5).abs() < 0.1, "estimated {t}");
    }

    #[test]
    fn all_shells_fire_at_system_rate() {
        // Connected LIDs: every shell's steady rate equals the system
        // throughput (token conservation through each firing).
        for netlist in [
            generate::fig1().netlist,
            generate::ring(2, 1, RelayKind::Full).netlist,
            generate::composed_coupled(1, 1, 1, 2, 1).netlist,
        ] {
            let t = measure(&netlist).unwrap().system_throughput().unwrap();
            for a in measure_activity(&netlist).unwrap() {
                assert_eq!(a.utilisation, t, "shell {} off-rate", a.shell);
            }
        }
    }

    #[test]
    fn gated_fraction_complements_throughput() {
        let f = generate::fig1();
        let acts = measure_activity(&f.netlist).unwrap();
        assert_eq!(acts.len(), 3); // A, B, C
        for a in &acts {
            let gated = 1.0 - a.utilisation.to_f64();
            assert!((gated - 0.2).abs() < 1e-12, "gated {gated}");
        }
    }

    #[test]
    fn batch_sweep_matches_scalar_measure_on_fig1() {
        let f = generate::fig1();
        let prog = SettleProgram::compile(&f.netlist).unwrap();
        let mut pats = LanePatterns::broadcast(&prog);
        // Lane l's sink stops l cycles out of every 64 (lane 0 free-runs).
        for lane in 1..LANES {
            pats.set_sink(
                0,
                lane,
                Pattern::Cyclic((0..64).map(|c| c < lane).collect()),
            );
        }
        let m = measure_batch(&f.netlist, &pats, 6400).unwrap();
        // Lane 0 is the plain fig1 environment: identical counts to a
        // scalar skeleton run, and within one transient token of 4/5.
        let mut sk = crate::SkeletonSystem::new(&f.netlist).unwrap();
        sk.run(6400);
        assert_eq!(m.counts[0][0], sk.sink_counts(f.sink).unwrap());
        assert!((m.throughput(0, 0).to_f64() - 0.8).abs() < 1e-3);
        // Heavier stalling never increases throughput.
        let t: Vec<f64> = (0..LANES).map(|l| m.throughput(0, l).to_f64()).collect();
        for l in 1..LANES {
            assert!(
                t[l] <= t[l - 1] + 1e-12,
                "lane {l}: {} > {}",
                t[l],
                t[l - 1]
            );
        }
        // A sink stopped 32/64 of the time consumes at most half.
        assert!(t[32] <= 0.5 + 1e-12);
    }

    #[test]
    fn liveness_holds_for_feedforward_and_full_rings() {
        // Paper: any feed-forward LID is deadlock-free; any LID with only
        // full relay stations is deadlock-free.
        let f = generate::fig1();
        assert!(check_liveness(&f.netlist, 1000, 1000).unwrap().is_live());
        let r = generate::ring(2, 2, RelayKind::Full);
        assert!(check_liveness(&r.netlist, 1000, 1000).unwrap().is_live());
    }

    #[test]
    fn fully_stopped_sink_starves_the_system() {
        // A sink that always stops makes every shell eventually dead —
        // the liveness detector must report it.
        let mut n = Netlist::new();
        let src = n.add_source("in");
        let a = n.add_shell("A", lip_core::pearl::IdentityPearl::new());
        let sink = n.add_sink_with_pattern("out", Pattern::Always);
        n.connect(src, 0, a, 0).unwrap();
        n.connect(a, 0, sink, 0).unwrap();
        let rep = check_liveness(&n, 100, 100).unwrap();
        assert!(!rep.is_live());
        assert_eq!(rep.dead_shells, vec![a]);
    }

    #[test]
    fn period_detector_survives_forced_hash_collision() {
        // Regression: the previous detector kept one state per hash, so
        // a colliding state *replaced* the earlier one and the earlier
        // state's genuine recurrence was never recognised. Force the
        // collision by feeding distinct states under one hash value.
        let mut d: PeriodDetector = PeriodDetector::new();
        let a = [1u64, 2, 3];
        let b = [9u64, 9, 9]; // different state, same (forced) hash
        assert_eq!(d.observe(0, 42, &a, ()), None);
        assert_eq!(
            d.observe(1, 42, &b, ()),
            None,
            "collision must record, not shadow"
        );
        assert_eq!(d.states(), 2, "both states must survive under one hash");
        let (p, ()) = d
            .observe(2, 42, &a, ())
            .expect("recurrence of the shadowed state");
        assert_eq!(
            p,
            Periodicity {
                transient: 0,
                period: 2
            }
        );
        // And the collided state's own recurrence is found too.
        let (p, ()) = d
            .observe(5, 42, &b, ())
            .expect("recurrence of the colliding state");
        assert_eq!(
            p,
            Periodicity {
                transient: 1,
                period: 4
            }
        );
    }

    #[test]
    fn period_detector_payload_returns_first_occurrence_snapshot() {
        let mut d: PeriodDetector<u64> = PeriodDetector::new();
        assert_eq!(d.observe(3, 7, &[1], 100), None);
        let (p, payload) = d.observe(8, 7, &[1], 999).expect("recurrence");
        assert_eq!(
            p,
            Periodicity {
                transient: 3,
                period: 5
            }
        );
        assert_eq!(
            payload, 100,
            "payload must be the first-occurrence snapshot"
        );
    }

    #[test]
    fn batch_periodic_early_exit_keeps_exact_fig1_throughput() {
        let f = generate::fig1();
        let prog = SettleProgram::compile(&f.netlist).unwrap();
        let pats = LanePatterns::broadcast(&prog);
        let budget = 10_000;
        let m = measure_batch_periodic(&f.netlist, &pats, budget).unwrap();
        assert!(m.all_converged(), "fig1 lanes are all periodic");
        // Early exit must save the bulk of the budget…
        assert!(
            m.cycles_saved() * 100 >= budget * 40,
            "saved only {} of {budget}",
            m.cycles_saved()
        );
        // …at unchanged exact throughputs and periodicity.
        let scalar = measure(&f.netlist).unwrap();
        let sp = scalar.periodicity.expect("fig1 periodic");
        for lane in 0..LANES {
            assert_eq!(
                m.system_throughput(lane),
                Some(Ratio::new(4, 5)),
                "lane {lane}"
            );
            assert_eq!(m.periodicity[lane].expect("converged").period, sp.period);
        }
    }

    #[test]
    fn batch_periodic_lanes_match_scalar_measure_exactly() {
        // Lane l stops fig1's sink every (l % 6 + 2)-th cycle; the same
        // pattern applied to a scalar netlist must yield the *same exact
        // rational* steady-state throughput as the early-exiting batch.
        let f = generate::fig1();
        let prog = SettleProgram::compile(&f.netlist).unwrap();
        let mut pats = LanePatterns::broadcast(&prog);
        let lane_pattern = |lane: usize| Pattern::EveryNth {
            period: (lane % 6 + 2) as u32,
            phase: 0,
        };
        for lane in 0..LANES {
            pats.set_sink(0, lane, lane_pattern(lane));
        }
        let m = measure_batch_periodic(&f.netlist, &pats, 20_000).unwrap();
        assert!(m.all_converged());
        for lane in [0, 1, 3, 5, 17, 40, 63] {
            let mut scalar_net = f.netlist.clone();
            assert!(scalar_net.set_sink_pattern(f.sink, lane_pattern(lane)));
            let scalar = measure(&scalar_net).unwrap();
            assert_eq!(
                m.system_throughput(lane),
                scalar.system_throughput(),
                "lane {lane} diverged from the scalar path"
            );
        }
    }

    #[test]
    fn observed_batch_periodic_matches_null_path_and_reconciles() {
        use lip_obs::{FlightRecorder, MemoryProgress};
        let f = generate::fig1();
        let prog = SettleProgram::compile(&f.netlist).unwrap();
        let mut pats = LanePatterns::broadcast(&prog);
        // An aperiodic lane keeps the sweep running to the full budget,
        // so progress snapshots and kernel counters cover real work.
        pats.set_sink(
            0,
            5,
            Pattern::Random {
                num: 1,
                denom: 3,
                seed: 3,
            },
        );
        let budget = 3_000;
        let baseline = measure_batch_periodic(&f.netlist, &pats, budget).unwrap();

        let rec = FlightRecorder::new();
        let mut progress = MemoryProgress::new();
        let (observed, kc) = measure_batch_periodic_obs::<u64, _, _>(
            &f.netlist,
            &pats,
            budget,
            "fig1",
            &rec,
            &mut progress,
        )
        .unwrap();

        // Observation must not perturb measurement.
        assert_eq!(observed.cycles, baseline.cycles);
        assert_eq!(observed.periodicity, baseline.periodicity);
        assert_eq!(observed.throughput, baseline.throughput);

        // Kernel counters: one settle per executed cycle, reconciled.
        let kc = kc.expect("enabled recorder yields counters");
        assert_eq!(kc.settles, observed.cycles);
        assert_eq!(
            kc.expected_ops,
            observed.cycles * prog.kernel_op_count() as u64
        );
        assert!(kc.reconciles());

        // Spans: the whole-measure span with its compile child, plus
        // sampled phase counters.
        let dump = rec.drain();
        assert!(dump.total_ns("measure", 0) > 0);
        assert!(dump
            .spans
            .iter()
            .any(|s| s.cat == "compile" && s.name == "fig1"));
        assert!(dump.counters.contains_key("measure.sampled_cycles"));
        assert!(dump.counters["measure.sampled_step_ns"] > 0);

        // Progress: periodic snapshots plus the final one.
        let last = progress.latest("fig1").expect("published");
        assert_eq!(last.cycles_executed, observed.cycles);
        assert_eq!(last.lanes, 64);
        assert!(last.lanes_converged >= 63, "only the random lane is open");
        assert!(progress.snaps.len() >= 2, "periodic + final snapshots");
    }

    #[test]
    fn disabled_recorder_yields_no_counters() {
        use lip_obs::{FlightRecorder, NullProgress};
        let f = generate::fig1();
        let prog = SettleProgram::compile(&f.netlist).unwrap();
        let pats = LanePatterns::broadcast(&prog);
        let rec = FlightRecorder::disabled();
        let (m, kc) = measure_batch_periodic_obs::<u64, _, _>(
            &f.netlist,
            &pats,
            2_000,
            "fig1",
            &rec,
            &mut NullProgress,
        )
        .unwrap();
        assert!(kc.is_none(), "runtime-disabled recorder must not count");
        assert_eq!(
            m.system_throughput(0),
            Some(Ratio::new(4, 5)),
            "measurement unchanged"
        );
        assert!(rec.drain().spans.is_empty());
    }

    #[test]
    fn batch_periodic_aperiodic_lanes_fall_back_to_estimates() {
        let f = generate::fig1();
        let prog = SettleProgram::compile(&f.netlist).unwrap();
        let mut pats = LanePatterns::broadcast(&prog);
        // Lane 1 gets an aperiodic environment: it can never converge.
        pats.set_sink(
            0,
            1,
            Pattern::Random {
                num: 1,
                denom: 4,
                seed: 7,
            },
        );
        let budget = 2_000;
        let m = measure_batch_periodic(&f.netlist, &pats, budget).unwrap();
        assert!(!m.all_converged());
        assert!(!m.lane_converged(1), "random lane must not converge");
        assert!(m.lane_converged(0), "periodic lane must converge");
        assert_eq!(m.cycles, budget, "an unconverged lane disables early exit");
        assert_eq!(m.periodicity[1], None);
        // Lane 0 still reports the exact figure.
        assert_eq!(m.system_throughput(0), Some(Ratio::new(4, 5)));
        // Lane 1's estimate is plausible (sink admits 3/4 of cycles).
        let est = m.system_throughput(1).unwrap().to_f64();
        assert!((0.55..0.95).contains(&est), "estimate {est}");
    }

    use lip_graph::Netlist;
}
