//! The branch-free streaming settle kernel.
//!
//! [`SettleProgram`]'s settle phase is a fixed sequence of lane-word
//! boolean assignments whose *structure* never changes between cycles —
//! only the lane words do. This module compiles that structure once
//! into a flat, stratum-ordered **op tape**: every settle assignment
//! becomes one three-address op (`dst ← f(a, b)`) over a cell arena
//! that holds the engine's entire bit-state, and consecutive ops of the
//! same opcode are grouped into **segments**. Execution then matches on
//! the opcode once per segment and runs a tight homogeneous loop over
//! the ops inside — no per-op dispatch in the hot path, so the compiler
//! auto-vectorizes the inner loop across the `u64` sub-words of wide
//! [`LaneWord`] shapes. This is the stream-processor shape (simple ops
//! over a scheduled op stream) that makes the many-lane engine scale.
//!
//! The tape is *data*: it is compiled from (and owned by) the
//! [`SettleProgram`], shared via `Arc` with every engine clone, and is
//! deliberately **excluded** from `stable_structural_hash` — the cache
//! key fingerprints the netlist structure, not this execution schedule.
//!
//! # Arena layout
//!
//! Cells are `u32` indices into one `Vec<W>` per engine:
//!
//! | region       | cells                 | contents                    |
//! |--------------|-----------------------|-----------------------------|
//! | constants    | `0`, `1`              | all-zero, all-ones          |
//! | `fwd`        | per channel           | settled valid bits          |
//! | `stop`       | per channel           | settled stop bits           |
//! | `src_valid`  | per source            | offered validity (state)    |
//! | `shell_out`  | per shell out port    | output-register validity    |
//! | `in_buf`     | per shell in port     | input-buffer occupancy      |
//! | `fire`       | per shell             | settled fire condition      |
//! | `full_main`  | per full relay        | main register validity      |
//! | `full_aux`   | per full relay        | aux register validity       |
//! | `half_occ`   | per half relay        | half-relay occupancy        |
//! | `fifo`       | per FIFO bit-plane    | bit-sliced occupancy        |
//! | `snk_stop`   | per sink              | this cycle's stop (staged)  |
//!
//! State regions (`src_valid` through `fifo`) persist across cycles —
//! the engine's clock phase mutates them in place; `fwd`/`stop`/`fire`
//! are recomputed by every tape run.

use lip_obs::KernelCounters;

use crate::lane::LaneWord;
use crate::program::SettleProgram;

/// All-lanes-zero constant cell.
pub(crate) const CELL_ZERO: u32 = 0;

/// Bit-planes a capacity-`cap` FIFO occupancy needs (at least one).
pub(crate) fn fifo_planes(cap: u32) -> u32 {
    (64 - u64::from(cap).leading_zeros()).max(1)
}
/// All-lanes-one constant cell. Engines must initialise this cell to
/// [`LaneWord::ONES`] (and [`CELL_ZERO`] to zero) when allocating the
/// arena; the tape reads but never writes the constant cells.
pub(crate) const CELL_ONES: u32 = 1;

/// One op kind of the tape. Three-address over arena cells `d`, `a`,
/// `b`; `AndOr`/`NandAcc` additionally read `d` (accumulator forms, so
/// a shell's fire condition folds without scratch cells).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Opcode {
    /// `d = a`
    Copy,
    /// `d = a | b`
    Or,
    /// `d = a & b`
    And,
    /// `d = a & !b`
    AndNot,
    /// `d &= a | b`
    AndOr,
    /// `d &= !(a & b)`
    NandAcc,
}

/// Opcode names in [`Opcode::index`] order — the row layout of the
/// kernel execution counters ([`lip_obs::KernelCounters`]).
pub(crate) const OP_NAMES: [&str; 6] = ["copy", "or", "and", "andnot", "andor", "nandacc"];

/// Settle-stratum labels in tape emission order: the two forward
/// (valid) passes, the registered backward (stop) pass, and the two
/// fire strata (unbuffered shells with their stop writes, then
/// buffered shells).
pub(crate) const STRATA: [&str; 5] = [
    "fwd_registered",
    "fwd_half",
    "bwd_registered",
    "fire",
    "fire_buffered",
];

impl Opcode {
    /// Row of this opcode in [`OP_NAMES`].
    fn index(self) -> usize {
        match self {
            Opcode::Copy => 0,
            Opcode::Or => 1,
            Opcode::And => 2,
            Opcode::AndNot => 3,
            Opcode::AndOr => 4,
            Opcode::NandAcc => 5,
        }
    }
}

/// One three-address op.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Op {
    d: u32,
    a: u32,
    b: u32,
}

/// A maximal run of consecutive same-opcode ops.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Segment {
    op: Opcode,
    start: u32,
    end: u32,
}

/// The compiled settle tape plus the arena layout it addresses (see the
/// [module docs](self)).
///
/// `PartialEq` compares the full tape (layout, ops, segments) — the
/// byte-equality check the incremental patch path is gated on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct StreamKernel {
    /// Total arena cells an engine must allocate.
    pub(crate) cells: usize,
    /// Region bases (cell index of row 0 of each region).
    pub(crate) fwd: u32,
    pub(crate) stop: u32,
    pub(crate) src_valid: u32,
    pub(crate) shell_out: u32,
    pub(crate) in_buf: u32,
    pub(crate) fire: u32,
    pub(crate) full_main: u32,
    pub(crate) full_aux: u32,
    pub(crate) half_occ: u32,
    pub(crate) fifo: u32,
    pub(crate) snk_stop: u32,
    /// FIFO `i` owns planes `fifo + fifo_off[i] .. fifo + fifo_off[i+1]`
    /// (little-endian bit-planes; `len = fifos + 1`).
    pub(crate) fifo_off: Vec<u32>,
    /// Ops per settle stratum, in [`STRATA`] order (fixed at compile:
    /// every settle retires exactly these counts).
    stratum_ops: [u32; STRATA.len()],
    ops: Vec<Op>,
    segments: Vec<Segment>,
}

impl StreamKernel {
    /// Compile the settle tape of `p`. Called once at the end of
    /// [`SettleProgram::compile`]; the emission order mirrors the settle
    /// passes (forward valids, backward stops, fire strata) exactly, so
    /// running the tape is bit-identical to the former inline settle.
    pub(crate) fn compile(p: &SettleProgram) -> Self {
        let mut k = StreamKernel::default();
        k.rebuild(p);
        k
    }

    /// Re-emit the whole tape from `p`'s current tables, reusing this
    /// kernel's allocations (`ops`, `segments`, `fifo_off`). This is the
    /// fallback of the patch path: no netlist walk, no validation, no
    /// Kahn re-stratification and no heap growth on steady-state sizes —
    /// only the emission loops — yet the result is byte-identical to a
    /// from-scratch [`compile`](Self::compile).
    pub(crate) fn rebuild(&mut self, p: &SettleProgram) {
        let n_ch = p.n_channels as u32;
        self.ops.clear();
        self.segments.clear();
        self.fifo_off.clear();
        let mut plane_words = 0u32;
        self.fifo_off.push(plane_words);
        for &cap in &p.fifo_cap {
            plane_words += fifo_planes(cap);
            self.fifo_off.push(plane_words);
        }
        let mut next = 2u32;
        let mut region = |len: usize| {
            let base = next;
            next += len as u32;
            base
        };
        self.fwd = region(p.n_channels);
        self.stop = region(p.n_channels);
        self.src_valid = region(p.src_out_ch.len());
        self.shell_out = region(p.shell_out_ch.len());
        self.in_buf = region(p.shell_in_ch.len());
        self.fire = region(p.shell_buffered.len());
        self.full_main = region(p.full_in_ch.len());
        self.full_aux = region(p.full_in_ch.len());
        self.half_occ = region(p.half_in_ch.len());
        self.fifo = region(plane_words as usize);
        self.snk_stop = region(p.snk_in_ch.len());
        self.stratum_ops = [0; STRATA.len()];
        self.cells = next as usize;
        let k = self;
        debug_assert!(k.fwd + n_ch == k.stop);
        let mut stratum_end = [0u32; STRATA.len()];

        // Forward pass 1: registered producers, any order — one long
        // Copy segment (sources, shell outputs, full relays, FIFO
        // plane 0), then the FIFO nonzero-fold Ors.
        for (i, &ch) in p.src_out_ch.iter().enumerate() {
            k.push(Opcode::Copy, k.fwd + ch, k.src_valid + i as u32, CELL_ZERO);
        }
        for (j, &ch) in p.shell_out_ch.iter().enumerate() {
            k.push(Opcode::Copy, k.fwd + ch, k.shell_out + j as u32, CELL_ZERO);
        }
        for (i, &ch) in p.full_out_ch.iter().enumerate() {
            k.push(Opcode::Copy, k.fwd + ch, k.full_main + i as u32, CELL_ZERO);
        }
        for (i, &ch) in p.fifo_out_ch.iter().enumerate() {
            k.push(Opcode::Copy, k.fwd + ch, k.fifo + k.fifo_off[i], CELL_ZERO);
        }
        for (i, &ch) in p.fifo_out_ch.iter().enumerate() {
            for plane in k.fifo_off[i] + 1..k.fifo_off[i + 1] {
                k.push(Opcode::Or, k.fwd + ch, k.fwd + ch, k.fifo + plane);
            }
        }
        stratum_end[0] = k.ops.len() as u32;
        // Forward pass 2: half-relay chains, upstream first (the order
        // matters; all Or, so the segment continues).
        for &h in &p.fwd_half_order {
            let h = h as usize;
            k.push(
                Opcode::Or,
                k.fwd + p.half_out_ch[h],
                k.half_occ + h as u32,
                k.fwd + p.half_in_ch[h],
            );
        }

        stratum_end[1] = k.ops.len() as u32;
        // Backward pass 1: registered stops, any order — sinks, full
        // aux, half occupancy, buffered-shell input buffers (Copy), then
        // the FIFO at-capacity comparisons (plane-wise And/AndNot).
        for (j, &ch) in p.snk_in_ch.iter().enumerate() {
            k.push(Opcode::Copy, k.stop + ch, k.snk_stop + j as u32, CELL_ZERO);
        }
        for (i, &ch) in p.full_in_ch.iter().enumerate() {
            k.push(Opcode::Copy, k.stop + ch, k.full_aux + i as u32, CELL_ZERO);
        }
        for (h, &ch) in p.half_in_ch.iter().enumerate() {
            k.push(Opcode::Copy, k.stop + ch, k.half_occ + h as u32, CELL_ZERO);
        }
        for &s in &p.buffered_shells {
            for j in p.shell_in_range(s as usize) {
                k.push(
                    Opcode::Copy,
                    k.stop + p.shell_in_ch[j],
                    k.in_buf + j as u32,
                    CELL_ZERO,
                );
            }
        }
        for (i, &ch) in p.fifo_in_ch.iter().enumerate() {
            // stop = AND over planes of (plane == capacity bit):
            // capacity bit 1 contributes `plane`, bit 0 contributes
            // `!plane`.
            let cap = u64::from(p.fifo_cap[i]);
            let d = k.stop + ch;
            for (b, plane) in (k.fifo_off[i]..k.fifo_off[i + 1]).enumerate() {
                let pl = k.fifo + plane;
                let first = b == 0;
                match ((cap >> b) & 1 == 1, first) {
                    (true, true) => k.push(Opcode::Copy, d, pl, CELL_ZERO),
                    (true, false) => k.push(Opcode::And, d, d, pl),
                    (false, true) => k.push(Opcode::AndNot, d, CELL_ONES, pl),
                    (false, false) => k.push(Opcode::AndNot, d, d, pl),
                }
            }
        }

        stratum_end[2] = k.ops.len() as u32;
        // Backward pass 2: unbuffered shells, downstream first. Each
        // shell folds its fire condition into its fire cell, then
        // writes its input stops — the ordering the stop stratification
        // requires, so segments necessarily break per shell here.
        for &s in &p.bwd_shell_order {
            let s = s as usize;
            k.emit_fire(p, s, false);
            for j in p.shell_in_range(s) {
                let ch = p.shell_in_ch[j];
                // stop = !fire, masked to informative lanes under the
                // refined variant (stop-on-void discard).
                let a = if p.discards { k.fwd + ch } else { CELL_ONES };
                k.push(Opcode::AndNot, k.stop + ch, a, k.fire + s as u32);
            }
        }
        stratum_end[3] = k.ops.len() as u32;
        // Pass 3: buffered shells fire once every stop has settled
        // (their input stops are registered — nothing more to write).
        for &s in &p.buffered_shells {
            k.emit_fire(p, s as usize, true);
        }
        stratum_end[4] = k.ops.len() as u32;
        let mut prev = 0u32;
        for (slot, &end) in k.stratum_ops.iter_mut().zip(&stratum_end) {
            *slot = end - prev;
            prev = end;
        }
    }

    /// Splice the tape after FIFO `row`'s capacity changed from
    /// `old_cap` to `p.fifo_cap[row]` (the tables are already updated).
    ///
    /// When the bit-plane count is unchanged the settle order — and
    /// every cell and op position — is unchanged too: only the
    /// at-capacity compare run of this one FIFO re-encodes (its opcodes
    /// spell the capacity bits), so the run is rewritten in place and
    /// the segment list re-derived. A plane-count change shifts arena
    /// regions and op counts, so it falls back to the in-place
    /// [`rebuild`](Self::rebuild).
    pub(crate) fn patch_fifo_capacity(&mut self, p: &SettleProgram, row: usize, old_cap: u32) {
        let new_cap = p.fifo_cap[row];
        if fifo_planes(old_cap) != fifo_planes(new_cap) {
            self.rebuild(p);
            return;
        }
        // The compare run sits in the registered backward stratum, after
        // the sink / full-aux / half-occ / buffered-input copies and the
        // compare runs of every earlier FIFO.
        let buffered_inputs: usize = p
            .buffered_shells
            .iter()
            .map(|&s| p.shell_in_range(s as usize).len())
            .sum();
        let lo = (self.stratum_ops[0] + self.stratum_ops[1] + self.fifo_off[row]) as usize
            + p.snk_in_ch.len()
            + p.full_in_ch.len()
            + p.half_in_ch.len()
            + buffered_inputs;
        let cap = u64::from(new_cap);
        let d = self.stop + p.fifo_in_ch[row];
        let mut repl = Vec::with_capacity((self.fifo_off[row + 1] - self.fifo_off[row]) as usize);
        for (b, plane) in (self.fifo_off[row]..self.fifo_off[row + 1]).enumerate() {
            let pl = self.fifo + plane;
            let first = b == 0;
            repl.push(match ((cap >> b) & 1 == 1, first) {
                (true, true) => (
                    Opcode::Copy,
                    Op {
                        d,
                        a: pl,
                        b: CELL_ZERO,
                    },
                ),
                (true, false) => (Opcode::And, Op { d, a: d, b: pl }),
                (false, true) => (
                    Opcode::AndNot,
                    Op {
                        d,
                        a: CELL_ONES,
                        b: pl,
                    },
                ),
                (false, false) => (Opcode::AndNot, Op { d, a: d, b: pl }),
            });
        }
        self.splice_ops(lo, &repl);
    }

    /// Overwrite ops `lo..lo + repl.len()` (opcode and operands) and
    /// re-derive the segment list *locally*. Segments are the maximal
    /// same-opcode run decomposition of the opcode sequence — exactly
    /// what [`push`](Self::push) builds incrementally — and a
    /// same-length overwrite can only change runs that overlap the
    /// patched window: the untouched remainder of the boundary
    /// segments keeps its opcode, so changes cannot cascade further.
    /// The window's runs are restitched from the unchanged prefix, the
    /// replacement opcodes and the unchanged suffix, then absorbed
    /// into the neighbouring segments where opcodes now agree —
    /// reproducing a fresh compile's segments byte-for-byte at
    /// O(replacement) cost instead of O(tape), the difference between
    /// a capacity patch and a recompile on large programs.
    fn splice_ops(&mut self, lo: usize, repl: &[(Opcode, Op)]) {
        let hi = lo + repl.len();
        debug_assert!(!repl.is_empty() && hi <= self.ops.len());
        // First and last segments overlapping [lo, hi).
        let i0 = self.segments.partition_point(|s| s.end as usize <= lo);
        let i1 = self.segments.partition_point(|s| (s.end as usize) < hi);
        for (i, &(_, o)) in repl.iter().enumerate() {
            self.ops[lo + i] = o;
        }
        let mut runs: Vec<Segment> = Vec::new();
        let s0 = self.segments[i0];
        if (s0.start as usize) < lo {
            runs.push(Segment {
                op: s0.op,
                start: s0.start,
                end: lo as u32,
            });
        }
        for (i, &(op, _)) in repl.iter().enumerate() {
            let at = (lo + i) as u32;
            match runs.last_mut() {
                Some(seg) if seg.op == op => seg.end += 1,
                _ => runs.push(Segment {
                    op,
                    start: at,
                    end: at + 1,
                }),
            }
        }
        let s1 = self.segments[i1];
        if hi < s1.end as usize {
            match runs.last_mut() {
                Some(seg) if seg.op == s1.op => seg.end = s1.end,
                _ => runs.push(Segment {
                    op: s1.op,
                    start: hi as u32,
                    end: s1.end,
                }),
            }
        }
        // Absorb untouched neighbours whose opcode now matches a
        // boundary run. (If part of a boundary segment survived inside
        // `runs`, its opcode is unchanged and still maximal against the
        // neighbour, so these checks fail exactly when they must.)
        let mut w0 = i0;
        if w0 > 0 && self.segments[w0 - 1].op == runs[0].op {
            w0 -= 1;
            runs[0].start = self.segments[w0].start;
        }
        let mut w1 = i1;
        let last = runs.last_mut().expect("window is non-empty");
        if w1 + 1 < self.segments.len() && self.segments[w1 + 1].op == last.op {
            w1 += 1;
            last.end = self.segments[w1].end;
        }
        self.segments.splice(w0..=w1, runs);
    }

    /// Fold shell `s`'s fire condition into its fire cell: AND over
    /// available inputs (`in_buf | fwd` when buffered), then clear
    /// lanes where an output port blocks (`stop`, masked by the output
    /// register under the refined variant).
    fn emit_fire(&mut self, p: &SettleProgram, s: usize, buffered: bool) {
        let d = self.fire + s as u32;
        let mut first = true;
        for j in p.shell_in_range(s) {
            let v = self.fwd + p.shell_in_ch[j];
            match (buffered, first) {
                (false, true) => self.push(Opcode::Copy, d, v, CELL_ZERO),
                (false, false) => self.push(Opcode::And, d, d, v),
                (true, true) => self.push(Opcode::Or, d, self.in_buf + j as u32, v),
                (true, false) => self.push(Opcode::AndOr, d, self.in_buf + j as u32, v),
            }
            first = false;
        }
        if first {
            self.push(Opcode::Copy, d, CELL_ONES, CELL_ZERO);
        }
        for j in p.shell_out_range(s) {
            let stp = self.stop + p.shell_out_ch[j];
            let gate = if p.discards {
                self.shell_out + j as u32
            } else {
                CELL_ONES
            };
            self.push(Opcode::NandAcc, d, stp, gate);
        }
    }

    fn push(&mut self, op: Opcode, d: u32, a: u32, b: u32) {
        match self.segments.last_mut() {
            Some(seg) if seg.op == op => seg.end += 1,
            _ => self.segments.push(Segment {
                op,
                start: self.ops.len() as u32,
                end: self.ops.len() as u32 + 1,
            }),
        }
        self.ops.push(Op { d, a, b });
    }

    /// Ops on the tape.
    pub(crate) fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Check every kernel invariant against `p`'s current tables: the
    /// arena region layout, the FIFO plane CSR, stratum tiling, segment
    /// maximality, cell bounds, constant-cell immutability — and, the
    /// strongest check, byte-equality with a fresh emission. Called by
    /// [`SettleProgram::verify`]; errors are strings so the caller can
    /// wrap them in its own error type.
    pub(crate) fn verify(&self, p: &SettleProgram) -> Result<(), String> {
        // Recompute the arena layout from the tables.
        let mut plane_words = 0u32;
        let mut fifo_off = vec![0u32];
        for &cap in &p.fifo_cap {
            plane_words += fifo_planes(cap);
            fifo_off.push(plane_words);
        }
        if self.fifo_off != fifo_off {
            return Err(format!(
                "fifo_off {:?} != plane CSR {fifo_off:?} from capacities",
                self.fifo_off
            ));
        }
        let mut next = 2u32;
        let mut region = |len: usize| {
            let base = next;
            next += len as u32;
            base
        };
        let bases = [
            ("fwd", self.fwd, region(p.n_channels)),
            ("stop", self.stop, region(p.n_channels)),
            ("src_valid", self.src_valid, region(p.src_out_ch.len())),
            ("shell_out", self.shell_out, region(p.shell_out_ch.len())),
            ("in_buf", self.in_buf, region(p.shell_in_ch.len())),
            ("fire", self.fire, region(p.shell_buffered.len())),
            ("full_main", self.full_main, region(p.full_in_ch.len())),
            ("full_aux", self.full_aux, region(p.full_in_ch.len())),
            ("half_occ", self.half_occ, region(p.half_in_ch.len())),
            ("fifo", self.fifo, region(plane_words as usize)),
            ("snk_stop", self.snk_stop, region(p.snk_in_ch.len())),
        ];
        for (name, got, want) in bases {
            if got != want {
                return Err(format!("{name} region base {got}, layout says {want}"));
            }
        }
        if self.cells != next as usize {
            return Err(format!("{} arena cells, layout says {next}", self.cells));
        }

        // Strata tile the tape.
        let total: u32 = self.stratum_ops.iter().sum();
        if total as usize != self.ops.len() {
            return Err(format!(
                "stratum_ops {:?} sum to {total}, tape has {} ops",
                self.stratum_ops,
                self.ops.len()
            ));
        }

        // Segments are a maximal same-opcode tiling of the tape.
        let mut prev_end = 0u32;
        let mut prev_op: Option<Opcode> = None;
        for seg in &self.segments {
            if seg.start != prev_end || seg.end <= seg.start {
                return Err(format!("segment {seg:?} breaks the tiling at {prev_end}"));
            }
            if prev_op == Some(seg.op) {
                return Err(format!(
                    "segment {seg:?} not maximal (same opcode as prior)"
                ));
            }
            prev_end = seg.end;
            prev_op = Some(seg.op);
        }
        if prev_end as usize != self.ops.len() {
            return Err(format!(
                "segments end at {prev_end}, tape has {} ops",
                self.ops.len()
            ));
        }

        // Cell bounds; the constant cells are read-only.
        for (i, o) in self.ops.iter().enumerate() {
            let cells = self.cells as u32;
            if o.d >= cells || o.a >= cells || o.b >= cells {
                return Err(format!("op {i} {o:?} addresses beyond {cells} cells"));
            }
            if o.d == CELL_ZERO || o.d == CELL_ONES {
                return Err(format!("op {i} {o:?} writes a constant cell"));
            }
        }

        // Byte-equality with a fresh emission from the same tables.
        if *self != StreamKernel::compile(p) {
            return Err("tape differs from a fresh emission of the current tables".into());
        }
        Ok(())
    }

    /// Homogeneous segments on the tape.
    #[cfg(test)]
    fn segment_count(&self) -> usize {
        self.segments.len()
    }

    /// Run the tape over `arena` (length [`StreamKernel::cells`]). One
    /// opcode match per segment; the inner loops are homogeneous
    /// three-address lane-word ops.
    #[inline]
    pub(crate) fn execute<W: LaneWord>(&self, arena: &mut [W]) {
        for seg in &self.segments {
            let ops = &self.ops[seg.start as usize..seg.end as usize];
            match seg.op {
                Opcode::Copy => {
                    for o in ops {
                        arena[o.d as usize] = arena[o.a as usize];
                    }
                }
                Opcode::Or => {
                    for o in ops {
                        let v = arena[o.a as usize].or(arena[o.b as usize]);
                        arena[o.d as usize] = v;
                    }
                }
                Opcode::And => {
                    for o in ops {
                        let v = arena[o.a as usize].and(arena[o.b as usize]);
                        arena[o.d as usize] = v;
                    }
                }
                Opcode::AndNot => {
                    for o in ops {
                        let v = arena[o.a as usize].andnot(arena[o.b as usize]);
                        arena[o.d as usize] = v;
                    }
                }
                Opcode::AndOr => {
                    for o in ops {
                        let v = arena[o.a as usize].or(arena[o.b as usize]);
                        arena[o.d as usize] = arena[o.d as usize].and(v);
                    }
                }
                Opcode::NandAcc => {
                    for o in ops {
                        let v = arena[o.a as usize].and(arena[o.b as usize]);
                        arena[o.d as usize] = arena[o.d as usize].andnot(v);
                    }
                }
            }
        }
    }

    /// [`execute`](Self::execute) with kernel execution counters:
    /// bit-identical arena effect, plus per-opcode ops retired /
    /// lane-words processed, per-stratum retirement, and the
    /// `expected_ops` accumulator the reconciliation invariant checks
    /// against. Kept separate from the hot path so the uncounted
    /// settle pays nothing.
    ///
    /// Destination-occupancy popcounting is the dominant cost of the
    /// counted path (it defeats the homogeneous three-address inner
    /// loops), so it only runs when `sample_occupancy` is set; the
    /// caller samples a subset of settles and the per-row `occ_ops`
    /// denominator keeps the occupancy statistic exact over the
    /// sampled ops. Retirement counters are exact on every settle
    /// either way.
    pub(crate) fn execute_counted<W: LaneWord>(
        &self,
        arena: &mut [W],
        kc: &mut KernelCounters,
        sample_occupancy: bool,
    ) {
        if !sample_occupancy {
            self.execute(arena);
            for seg in &self.segments {
                let ops = seg.end as u64 - seg.start as u64;
                let row = &mut kc.by_op[seg.op.index()];
                row.ops_retired += ops;
                row.lane_words += ops * W::WORDS as u64;
            }
            for (slot, &n) in kc.by_stratum.iter_mut().zip(&self.stratum_ops) {
                slot.1 += u64::from(n);
            }
            kc.expected_ops += self.ops.len() as u64;
            kc.settles += 1;
            return;
        }
        for seg in &self.segments {
            let ops = &self.ops[seg.start as usize..seg.end as usize];
            let mut active = 0u64;
            match seg.op {
                Opcode::Copy => {
                    for o in ops {
                        let v = arena[o.a as usize];
                        active += u64::from(v.count_ones());
                        arena[o.d as usize] = v;
                    }
                }
                Opcode::Or => {
                    for o in ops {
                        let v = arena[o.a as usize].or(arena[o.b as usize]);
                        active += u64::from(v.count_ones());
                        arena[o.d as usize] = v;
                    }
                }
                Opcode::And => {
                    for o in ops {
                        let v = arena[o.a as usize].and(arena[o.b as usize]);
                        active += u64::from(v.count_ones());
                        arena[o.d as usize] = v;
                    }
                }
                Opcode::AndNot => {
                    for o in ops {
                        let v = arena[o.a as usize].andnot(arena[o.b as usize]);
                        active += u64::from(v.count_ones());
                        arena[o.d as usize] = v;
                    }
                }
                Opcode::AndOr => {
                    for o in ops {
                        let v = arena[o.a as usize].or(arena[o.b as usize]);
                        let v = arena[o.d as usize].and(v);
                        active += u64::from(v.count_ones());
                        arena[o.d as usize] = v;
                    }
                }
                Opcode::NandAcc => {
                    for o in ops {
                        let v = arena[o.a as usize].and(arena[o.b as usize]);
                        let v = arena[o.d as usize].andnot(v);
                        active += u64::from(v.count_ones());
                        arena[o.d as usize] = v;
                    }
                }
            }
            let row = &mut kc.by_op[seg.op.index()];
            row.ops_retired += ops.len() as u64;
            row.lane_words += (ops.len() * W::WORDS) as u64;
            row.active_lanes += active;
            row.occ_ops += ops.len() as u64;
        }
        for (slot, &n) in kc.by_stratum.iter_mut().zip(&self.stratum_ops) {
            slot.1 += u64::from(n);
        }
        kc.expected_ops += self.ops.len() as u64;
        kc.settles += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_graph::generate;

    #[test]
    fn fig1_tape_is_segmented() {
        let f = generate::fig1();
        let p = SettleProgram::compile(&f.netlist).unwrap();
        let k = &p.kernel;
        assert!(k.op_count() > 0);
        // The tape batches far better than one segment per op — the
        // forward/backward register passes each fuse into long
        // homogeneous runs.
        assert!(
            k.segment_count() < k.op_count(),
            "{} segments over {} ops",
            k.segment_count(),
            k.op_count()
        );
        // The arena covers both constants and every region.
        assert!(k.cells >= 2 + 2 * p.channel_count());
    }

    #[test]
    fn constants_hold_after_execution() {
        let f = generate::fig1();
        let p = SettleProgram::compile(&f.netlist).unwrap();
        let k = &p.kernel;
        let mut arena = vec![0u64; k.cells];
        arena[CELL_ONES as usize] = !0;
        k.execute(&mut arena);
        assert_eq!(arena[CELL_ZERO as usize], 0);
        assert_eq!(arena[CELL_ONES as usize], !0);
    }

    #[test]
    fn stratum_ops_partition_the_tape() {
        use lip_core::RelayKind;
        // Cover every stratum: fig1 (registered + fire), a half-relay
        // ring (fwd_half) and a FIFO ring (bit-plane compares).
        for netlist in [
            generate::fig1().netlist,
            generate::ring(2, 2, RelayKind::Half).netlist,
            generate::ring(2, 1, RelayKind::Fifo(3)).netlist,
        ] {
            let p = SettleProgram::compile(&netlist).unwrap();
            let k = &p.kernel;
            let total: u32 = k.stratum_ops.iter().sum();
            assert_eq!(total as usize, k.op_count(), "strata must tile the tape");
            assert!(k.stratum_ops[0] > 0, "registered forward pass never empty");
        }
    }

    #[test]
    fn counted_execution_matches_plain_and_reconciles() {
        let f = generate::fig1();
        let p = SettleProgram::compile(&f.netlist).unwrap();
        let k = &p.kernel;
        let mut plain = vec![0u64; k.cells];
        plain[CELL_ONES as usize] = !0;
        // Offer tokens on every source so the tape moves live lanes
        // (an all-zero arena legitimately writes only zero words).
        for i in 0..p.source_count() {
            plain[k.src_valid as usize + i] = !0;
        }
        let mut counted = plain.clone();
        let mut kc = lip_obs::KernelCounters::new(64, &OP_NAMES, &STRATA);
        // Alternate sampled and unsampled settles: retirement stays
        // exact on every settle, occupancy accrues only when sampled.
        for i in 0..4 {
            k.execute(&mut plain);
            k.execute_counted(&mut counted, &mut kc, i % 2 == 0);
        }
        assert_eq!(plain, counted, "counting must not perturb the arena");
        assert_eq!(kc.settles, 4);
        assert_eq!(kc.expected_ops, 4 * k.op_count() as u64);
        assert!(kc.reconciles(), "opcode and stratum totals must tile");
        // Lane-words: every op touched exactly one u64 word here.
        assert_eq!(kc.total_lane_words(), kc.total_ops());
        // The all-ones constant feeds real work: some lanes are active.
        assert!(kc.occupancy() > 0.0);
        // Exactly half the settles sampled occupancy.
        let sampled: u64 = kc.by_op.iter().map(|r| r.occ_ops).sum();
        assert_eq!(sampled, 2 * k.op_count() as u64);
    }
}
