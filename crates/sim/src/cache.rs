//! Memoized throughput measurement for analysis searches.
//!
//! Equalization and queue-sizing searches (see `lip-analysis`) evaluate
//! many candidate netlists, and different candidates frequently
//! elaborate to the *same* compiled structure — inserting a relay on a
//! channel that already has one, or re-visiting a capacity assignment
//! reached along two search paths. [`ThroughputCache`] keys full
//! [`Measurement`]s by the compiled program's
//! [structural fingerprint](SettleProgram::stable_structural_hash)
//! (plus the measurement options), so each distinct structure is
//! simulated exactly once per search.
//!
//! The fingerprint covers everything observable behaviour depends on —
//! channel wiring, relay kinds and capacities, shell geometry, protocol
//! variant, and source/sink environment patterns — so a cache hit is
//! guaranteed to return the measurement the simulator would have
//! produced. Compiling the fingerprint is linear in netlist size and
//! orders of magnitude cheaper than simulating to steady state.

use std::collections::HashMap;

use lip_graph::{Netlist, NetlistError};

use crate::measure::{measure_with, MeasureOptions, Measurement};
use crate::program::SettleProgram;

/// Key: structural fingerprint + the three measurement knobs (different
/// budgets can legitimately produce different fallback estimates for
/// aperiodic systems, so they must not alias).
type Key = (u64, u64, u64, u64);

/// A memo table of [`Measurement`]s keyed by compiled-netlist structure.
///
/// # Example
///
/// ```
/// use lip_graph::generate;
/// use lip_sim::{Ratio, ThroughputCache};
///
/// # fn main() -> Result<(), lip_graph::NetlistError> {
/// let mut cache = ThroughputCache::new();
/// let fig1 = generate::fig1();
/// let a = cache.measure(&fig1.netlist)?;
/// let b = cache.measure(&fig1.netlist)?; // memoized: no simulation
/// assert_eq!(a, b);
/// assert_eq!(a.system_throughput(), Some(Ratio::new(4, 5)));
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ThroughputCache {
    map: HashMap<Key, Measurement>,
    hits: u64,
    misses: u64,
}

impl ThroughputCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Memoized [`measure`](crate::measure::measure) (default options).
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from elaboration.
    pub fn measure(&mut self, netlist: &Netlist) -> Result<Measurement, NetlistError> {
        self.measure_with(netlist, MeasureOptions::default())
    }

    /// Memoized [`measure_with`]: on a structural hit the stored
    /// [`Measurement`] is cloned back without any simulation.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from elaboration (a failing netlist
    /// is never cached).
    pub fn measure_with(
        &mut self,
        netlist: &Netlist,
        opts: MeasureOptions,
    ) -> Result<Measurement, NetlistError> {
        let program = SettleProgram::compile(netlist)?;
        let key = (
            program.stable_structural_hash(),
            opts.max_transient,
            opts.measure_periods,
            opts.fallback_cycles,
        );
        if let Some(m) = self.map.get(&key) {
            self.hits += 1;
            lip_obs::flight::global_add("cache.hits", 1);
            return Ok(m.clone());
        }
        let m = {
            // The miss is the expensive path — span it so sweeps can
            // attribute wall-clock to cold measurements.
            let _miss_span = lip_obs::flight::global_span("cache", "measure_miss");
            measure_with(netlist, opts)?
        };
        self.misses += 1;
        lip_obs::flight::global_add("cache.misses", 1);
        self.map.insert(key, m.clone());
        Ok(m)
    }

    /// Lookups answered from the memo table.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that fell through to simulation.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Distinct structures measured so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing has been measured yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::Ratio;
    use lip_graph::generate;

    #[test]
    fn hit_returns_identical_measurement() {
        let mut cache = ThroughputCache::new();
        let fig1 = generate::fig1();
        let cold = cache.measure(&fig1.netlist).expect("measure");
        let warm = cache.measure(&fig1.netlist).expect("measure");
        assert_eq!(cold, warm);
        assert_eq!(cold.system_throughput(), Some(Ratio::new(4, 5)));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_structures_do_not_alias() {
        let mut cache = ThroughputCache::new();
        let fig1 = generate::fig1();
        let ring = generate::ring(4, 2, lip_core::RelayKind::Full);
        let a = cache.measure(&fig1.netlist).expect("measure");
        let b = cache.measure(&ring.netlist).expect("measure");
        assert_ne!(a.system_throughput(), b.system_throughput());
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn options_are_part_of_the_key() {
        let mut cache = ThroughputCache::new();
        let fig1 = generate::fig1();
        let _ = cache.measure(&fig1.netlist).expect("measure");
        let opts = MeasureOptions {
            measure_periods: 8,
            ..MeasureOptions::default()
        };
        let _ = cache.measure_with(&fig1.netlist, opts).expect("measure");
        assert_eq!(cache.misses(), 2, "different options must re-measure");
    }

    #[test]
    fn structural_hash_is_stable_across_compiles() {
        let fig1 = generate::fig1();
        let a = SettleProgram::compile(&fig1.netlist).expect("compile");
        let b = SettleProgram::compile(&fig1.netlist).expect("compile");
        assert_eq!(a.stable_structural_hash(), b.stable_structural_hash());
    }
}
