//! Memoized throughput measurement for analysis searches.
//!
//! Equalization and queue-sizing searches (see `lip-analysis`) evaluate
//! many candidate netlists, and different candidates frequently
//! elaborate to the *same* compiled structure — inserting a relay on a
//! channel that already has one, or re-visiting a capacity assignment
//! reached along two search paths. [`ThroughputCache`] keys full
//! [`Measurement`]s by the compiled program's
//! [structural fingerprint](SettleProgram::stable_structural_hash)
//! (plus the measurement options), so each distinct structure is
//! simulated exactly once per search.
//!
//! The fingerprint covers everything observable behaviour depends on —
//! channel wiring, relay kinds and capacities, shell geometry, protocol
//! variant, and source/sink environment patterns — so a cache hit is
//! guaranteed to return the measurement the simulator would have
//! produced. Compiling the fingerprint is linear in netlist size and
//! orders of magnitude cheaper than simulating to steady state — and
//! with the incremental patch path (see [`crate::patch`]) a search can
//! skip even that: [`measure_program_with`](ThroughputCache::measure_program_with)
//! keys on an already-patched program, so a hit costs one hash lookup
//! and a miss only then materialises the netlist to simulate.
//!
//! Service-style sweeps run unbounded numbers of candidates through one
//! cache, so it can be bounded:
//! [`with_capacity`](ThroughputCache::with_capacity) caps the table and
//! evicts the least-recently-used entry on overflow (an eviction can
//! only cost a re-measurement, never change a result).

use std::collections::{BTreeMap, HashMap};

use lip_graph::{Netlist, NetlistError};

use crate::measure::{measure_with, MeasureOptions, Measurement};
use crate::program::SettleProgram;

/// Key: structural fingerprint + the three measurement knobs (different
/// budgets can legitimately produce different fallback estimates for
/// aperiodic systems, so they must not alias).
type Key = (u64, u64, u64, u64);

/// A memo table of [`Measurement`]s keyed by compiled-netlist structure.
///
/// # Example
///
/// ```
/// use lip_graph::generate;
/// use lip_sim::{Ratio, ThroughputCache};
///
/// # fn main() -> Result<(), lip_graph::NetlistError> {
/// let mut cache = ThroughputCache::new();
/// let fig1 = generate::fig1();
/// let a = cache.measure(&fig1.netlist)?;
/// let b = cache.measure(&fig1.netlist)?; // memoized: no simulation
/// assert_eq!(a, b);
/// assert_eq!(a.system_throughput(), Some(Ratio::new(4, 5)));
/// assert_eq!((cache.hits(), cache.misses()), (1, 1));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ThroughputCache {
    /// Value carries its recency stamp (the `order` key).
    map: HashMap<Key, (u64, Measurement)>,
    /// Recency index: stamp → key, oldest first. Stamps are unique
    /// (`tick` only grows), so a `BTreeMap` gives O(log n) LRU updates
    /// without an unsafe linked list.
    order: BTreeMap<u64, Key>,
    /// Monotonic recency clock.
    tick: u64,
    /// Maximum resident entries; `None` = unbounded.
    capacity: Option<usize>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ThroughputCache {
    /// An empty, unbounded cache.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache bounded to at most `capacity` resident
    /// measurements; inserting past the bound evicts the
    /// least-recently-used entry. A `capacity` of zero disables
    /// memoization entirely (every lookup misses).
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity: Some(capacity),
            ..Self::default()
        }
    }

    /// Memoized [`measure`](crate::measure::measure) (default options).
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from elaboration.
    pub fn measure(&mut self, netlist: &Netlist) -> Result<Measurement, NetlistError> {
        self.measure_with(netlist, MeasureOptions::default())
    }

    /// Memoized [`measure_with`]: on a structural hit the stored
    /// [`Measurement`] is cloned back without any simulation.
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] from elaboration (a failing netlist
    /// is never cached).
    pub fn measure_with(
        &mut self,
        netlist: &Netlist,
        opts: MeasureOptions,
    ) -> Result<Measurement, NetlistError> {
        let program = SettleProgram::compile(netlist)?;
        let key = Self::key(&program, opts);
        if let Some(m) = self.lookup(key) {
            return Ok(m);
        }
        let m = Self::measure_miss(netlist, opts)?;
        self.insert(key, m.clone());
        Ok(m)
    }

    /// Memoized measurement keyed on an **already compiled** program —
    /// the incremental edit loop's entry point (see [`crate::patch`]).
    /// A hit costs one hash lookup: no netlist clone, no compile, no
    /// simulation. Only a miss calls `netlist` to materialise the
    /// matching [`Netlist`] (which **must** be the one `program` was
    /// compiled / patched from — the fingerprint is trusted).
    ///
    /// # Errors
    ///
    /// Propagates [`NetlistError`] if the materialised netlist fails
    /// elaboration (nothing is cached in that case).
    pub fn measure_program_with(
        &mut self,
        program: &SettleProgram,
        opts: MeasureOptions,
        netlist: impl FnOnce() -> Netlist,
    ) -> Result<Measurement, NetlistError> {
        let key = Self::key(program, opts);
        if let Some(m) = self.lookup(key) {
            return Ok(m);
        }
        let m = Self::measure_miss(&netlist(), opts)?;
        self.insert(key, m.clone());
        Ok(m)
    }

    fn key(program: &SettleProgram, opts: MeasureOptions) -> Key {
        (
            program.stable_structural_hash(),
            opts.max_transient,
            opts.measure_periods,
            opts.fallback_cycles,
        )
    }

    /// Hit path: clone the stored measurement and refresh its recency.
    fn lookup(&mut self, key: Key) -> Option<Measurement> {
        let (stamp, m) = self.map.get_mut(&key)?;
        let new = self.tick;
        self.tick += 1;
        let old = std::mem::replace(stamp, new);
        self.order.remove(&old);
        self.order.insert(new, key);
        self.hits += 1;
        lip_obs::flight::global_add("cache.hits", 1);
        Some(m.clone())
    }

    fn measure_miss(netlist: &Netlist, opts: MeasureOptions) -> Result<Measurement, NetlistError> {
        // The miss is the expensive path — span it so sweeps can
        // attribute wall-clock to cold measurements.
        let _miss_span = lip_obs::flight::global_span("cache", "measure_miss");
        measure_with(netlist, opts)
    }

    fn insert(&mut self, key: Key, m: Measurement) {
        self.misses += 1;
        lip_obs::flight::global_add("cache.misses", 1);
        if let Some(cap) = self.capacity {
            if cap == 0 {
                return;
            }
            // Evict the least-recently-used entry to stay within the
            // bound. Costs at most a future re-measurement; the
            // fingerprint keying keeps every answer exact regardless.
            while self.map.len() >= cap {
                let (_, victim) = self.order.pop_first().expect("map non-empty implies order");
                self.map.remove(&victim);
                self.evictions += 1;
                lip_obs::flight::global_add("cache.evictions", 1);
            }
        }
        let stamp = self.tick;
        self.tick += 1;
        self.map.insert(key, (stamp, m));
        self.order.insert(stamp, key);
    }

    /// Lookups answered from the memo table.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lookups that fell through to simulation.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries dropped by the LRU bound so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Fraction of lookups answered from the table (`None` before the
    /// first lookup).
    #[must_use]
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.hits + self.misses;
        #[allow(clippy::cast_precision_loss)]
        (total > 0).then(|| self.hits as f64 / total as f64)
    }

    /// Measurements currently resident (≤ the capacity bound).
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether nothing is currently resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::Ratio;
    use lip_graph::generate;

    #[test]
    fn hit_returns_identical_measurement() {
        let mut cache = ThroughputCache::new();
        let fig1 = generate::fig1();
        let cold = cache.measure(&fig1.netlist).expect("measure");
        let warm = cache.measure(&fig1.netlist).expect("measure");
        assert_eq!(cold, warm);
        assert_eq!(cold.system_throughput(), Some(Ratio::new(4, 5)));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hit_rate(), Some(0.5));
    }

    #[test]
    fn distinct_structures_do_not_alias() {
        let mut cache = ThroughputCache::new();
        let fig1 = generate::fig1();
        let ring = generate::ring(4, 2, lip_core::RelayKind::Full);
        let a = cache.measure(&fig1.netlist).expect("measure");
        let b = cache.measure(&ring.netlist).expect("measure");
        assert_ne!(a.system_throughput(), b.system_throughput());
        assert_eq!(cache.misses(), 2);
        assert_eq!(cache.hits(), 0);
    }

    #[test]
    fn options_are_part_of_the_key() {
        let mut cache = ThroughputCache::new();
        let fig1 = generate::fig1();
        let _ = cache.measure(&fig1.netlist).expect("measure");
        let opts = MeasureOptions {
            measure_periods: 8,
            ..MeasureOptions::default()
        };
        let _ = cache.measure_with(&fig1.netlist, opts).expect("measure");
        assert_eq!(cache.misses(), 2, "different options must re-measure");
    }

    #[test]
    fn structural_hash_is_stable_across_compiles() {
        let fig1 = generate::fig1();
        let a = SettleProgram::compile(&fig1.netlist).expect("compile");
        let b = SettleProgram::compile(&fig1.netlist).expect("compile");
        assert_eq!(a.stable_structural_hash(), b.stable_structural_hash());
    }

    #[test]
    fn program_keyed_hit_skips_netlist_materialisation() {
        let mut cache = ThroughputCache::new();
        let fig1 = generate::fig1();
        let program = SettleProgram::compile(&fig1.netlist).expect("compile");
        let opts = MeasureOptions::default();
        let cold = cache
            .measure_program_with(&program, opts, || fig1.netlist.clone())
            .expect("measure");
        let warm = cache
            .measure_program_with(&program, opts, || {
                panic!("hit must not materialise the netlist")
            })
            .expect("measure");
        assert_eq!(cold, warm);
        // And the netlist-keyed entry point aliases onto the same slot.
        let again = cache.measure(&fig1.netlist).expect("measure");
        assert_eq!(cold, again);
        assert_eq!((cache.hits(), cache.misses()), (2, 1));
    }

    #[test]
    fn lru_bound_evicts_oldest_and_stays_correct() {
        let mut cache = ThroughputCache::with_capacity(2);
        let fig1 = generate::fig1();
        let ring = generate::ring(4, 2, lip_core::RelayKind::Full);
        let chain = generate::chain(3, 1, lip_core::RelayKind::Full);
        let a0 = cache.measure(&fig1.netlist).expect("measure");
        let _ = cache.measure(&ring.netlist).expect("measure");
        // Touch fig1 so the ring becomes the LRU victim.
        let _ = cache.measure(&fig1.netlist).expect("measure");
        let _ = cache.measure(&chain.netlist).expect("measure");
        assert_eq!(cache.len(), 2, "bound holds");
        assert_eq!(cache.evictions(), 1, "ring evicted");
        // Evicted entry re-measures — and still answers identically.
        let before = cache.misses();
        let a1 = cache.measure(&fig1.netlist).expect("measure");
        assert_eq!(a0, a1, "fig1 still resident");
        let r1 = cache.measure(&ring.netlist).expect("measure");
        assert_eq!(
            cache.misses(),
            before + 1,
            "ring re-measured after eviction"
        );
        assert_eq!(r1.system_throughput(), {
            let mut fresh = ThroughputCache::new();
            fresh
                .measure(&ring.netlist)
                .expect("measure")
                .system_throughput()
        });
    }

    #[test]
    fn zero_capacity_disables_memoization() {
        let mut cache = ThroughputCache::with_capacity(0);
        let fig1 = generate::fig1();
        let a = cache.measure(&fig1.netlist).expect("measure");
        let b = cache.measure(&fig1.netlist).expect("measure");
        assert_eq!(a, b);
        assert_eq!(cache.hits(), 0);
        assert_eq!(cache.misses(), 2);
        assert!(cache.is_empty());
    }
}
