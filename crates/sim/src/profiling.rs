//! One-call causal profiling of a netlist on the skeleton engines.
//!
//! Ties the pieces together: compile the netlist, detect its periodic
//! steady state, attach a [`CausalProfiler`] from reset so relay
//! occupancy tracks exactly, [`rebase`](CausalProfiler::rebase) the
//! window at the end of the transient, and profile a whole number of
//! steady-state periods with a [`MetricsRegistry`] teed over the same
//! window for cross-checking. Profiling whole periods is what makes the
//! blame counts *exact*: on Fig. 1 the report charges precisely one
//! lost cycle per 5 to the short-branch relay (`T = (m−i)/m = 4/5`),
//! and on a ring every loop relay collects `R + S − S` =
//! `den − num` blame per period (`T = S/(S+R)`).
//!
//! Used by the `exp_profile` bench bin (EXP-O2), the `waveform_vcd`
//! example, and the profiling equivalence tests.

use std::sync::Arc;

use lip_graph::{Netlist, NetlistError};
use lip_obs::{chrome_trace_json, BlameReport, CausalProfiler, MetricsRegistry, Tee};

use crate::measure::Periodicity;
use crate::program::SettleProgram;
use crate::skeleton::SkeletonSystem;

/// How [`profile_netlist`] sizes its observation window.
#[derive(Debug, Clone, Copy)]
pub struct ProfileOptions {
    /// Whole steady-state periods to profile.
    pub periods: u64,
    /// Cycle budget for periodicity detection.
    pub max_probe: u64,
    /// Fallback `(warmup, pseudo_period)` when no periodicity is found
    /// within the budget (aperiodic environments, budget too small).
    pub fallback: (u64, u64),
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions {
            periods: 8,
            max_probe: 4096,
            fallback: (256, 256),
        }
    }
}

/// The outcome of [`profile_netlist`]: the blame report, the teed
/// cross-check counters, and the rendered Chrome trace.
#[derive(Debug)]
pub struct ProfiledRun {
    /// The profiler's blame/latency report over the steady window.
    pub report: BlameReport,
    /// Counters over exactly the same window (attached after warmup),
    /// for `channel_stalls`/`channel_voids` cross-checks.
    pub metrics: MetricsRegistry,
    /// Chrome-trace JSON of the window's spans.
    pub trace_json: String,
    /// Detected periodicity, `None` if the budget ran out.
    pub periodicity: Option<Periodicity>,
    /// Cycles run before the window opened.
    pub warmup: u64,
    /// Window length in cycles (a whole multiple of the period when one
    /// was found).
    pub window: u64,
}

/// Profile `netlist`'s steady state on the scalar skeleton engine.
///
/// # Errors
///
/// Propagates any [`NetlistError`] from compilation.
pub fn profile_netlist(
    netlist: &Netlist,
    opts: ProfileOptions,
) -> Result<ProfiledRun, NetlistError> {
    let prog = Arc::new(SettleProgram::compile(netlist)?);
    let graph = prog.channel_graph(netlist);

    // Detect the steady state on a scratch system.
    let periodicity =
        SkeletonSystem::from_program(Arc::clone(&prog)).find_periodicity(opts.max_probe);
    let (warmup, window) = match &periodicity {
        Some(p) => (p.transient, opts.periods.max(1) * p.period),
        None => (opts.fallback.0, opts.periods.max(1) * opts.fallback.1),
    };

    // Profile from reset so relay occupancy tracking is exact, then
    // restrict the window to the steady state.
    let mut sys = SkeletonSystem::from_program(Arc::clone(&prog));
    let mut profiler = CausalProfiler::new(graph);
    sys.run_probed(warmup, &mut profiler);
    profiler.rebase(sys.cycle());

    let mut metrics = MetricsRegistry::new(prog.topology());
    sys.run_probed(window, &mut Tee(&mut profiler, &mut metrics));

    let report = profiler.report();
    let trace_json = chrome_trace_json(&profiler, sys.cycle());
    Ok(ProfiledRun {
        report,
        metrics,
        trace_json,
        periodicity,
        warmup,
        window,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_graph::generate;

    #[test]
    fn fig1_blames_the_short_branch_one_in_five() {
        let f = generate::fig1();
        let run = profile_netlist(&f.netlist, ProfileOptions::default()).unwrap();
        let p = run.periodicity.expect("fig1 is periodic");
        assert_eq!(p.period % 5, 0, "fig1 steady period is a multiple of 5");
        // The imbalanced (short) branch's relay is charged exactly one
        // lost cycle per 5 — the paper's (m−i)/m = 4/5.
        let short = f.short_relays[0].index() as u32;
        assert_eq!(run.report.blame_of_node(short), run.window / 5);
        // The dominant causal loop contains the short-branch relay and
        // the top-blamed entity — it is the binding cycle.
        assert!(run.report.top_cycle_nodes().contains(&short));
        let top = run.report.entries.first().expect("some blame");
        assert!(run.report.top_cycle.contains(&top.entity));
        // And the sink observes exactly 4 tokens per 5 cycles.
        assert_eq!(run.report.consumed, run.window * 4 / 5);
        assert_eq!(run.report.lost_cycles, run.window / 5);
    }

    #[test]
    fn ring_blames_every_loop_relay_den_minus_num_per_period() {
        use lip_core::RelayKind;
        let r = generate::ring(2, 3, RelayKind::Full); // T = 2/5
        let run = profile_netlist(&r.netlist, ProfileOptions::default()).unwrap();
        let p = run.periodicity.expect("ring is periodic");
        assert_eq!(p.period % 5, 0);
        let periods = run.window / 5;
        // Every relay on the loop is charged (den - num) = 3 lost
        // cycles per period of 5.
        for &relay in &r.relays {
            let node = relay.index() as u32;
            assert_eq!(
                run.report.blame_of_node(node),
                3 * periods,
                "loop relay under-blamed"
            );
        }
        assert_eq!(run.report.consumed, periods * 2);
    }

    #[test]
    fn blame_totals_match_teed_metrics_exactly() {
        let f = generate::fig1();
        let run = profile_netlist(&f.netlist, ProfileOptions::default()).unwrap();
        for ch in 0..run.report.channel_stalls.len() {
            assert_eq!(run.report.channel_stalls[ch], run.metrics.stalls(ch));
            assert_eq!(run.report.channel_voids[ch], run.metrics.voids(ch));
        }
    }

    #[test]
    fn scalar_and_batch_lane_blame_agree() {
        let f = generate::fig1();
        let prog = Arc::new(SettleProgram::compile(&f.netlist).unwrap());
        let graph = prog.channel_graph(&f.netlist);
        let cycles = 200;

        let mut scalar = SkeletonSystem::from_program(Arc::clone(&prog));
        let mut sp = CausalProfiler::new(graph.clone());
        scalar.run_probed(cycles, &mut sp);

        let pats = crate::LanePatterns::broadcast(&prog);
        let mut batch = crate::BatchSkeleton::from_program(Arc::clone(&prog));
        // Lane 17, arbitrarily: broadcast patterns make every lane
        // identical, so its profile must equal the scalar lane-0 one.
        let mut bp = CausalProfiler::for_lane(graph, 17);
        batch.run_patterns_probed(&pats, cycles, &mut bp);

        let (sr, br) = (sp.report(), bp.report());
        assert_eq!(sr.channel_stalls, br.channel_stalls);
        assert_eq!(sr.channel_voids, br.channel_voids);
        assert_eq!(sr.consumed, br.consumed);
        assert_eq!(sr.lost_cycles, br.lost_cycles);
        assert_eq!(
            sr.entries
                .iter()
                .map(|e| (e.entity, e.blamed))
                .collect::<Vec<_>>(),
            br.entries
                .iter()
                .map(|e| (e.entity, e.blamed))
                .collect::<Vec<_>>()
        );
        assert_eq!(sr.top_cycle, br.top_cycle);
        assert_eq!(
            sr.relay_occupancy, br.relay_occupancy,
            "occupancy histograms diverge between engines"
        );
    }

    #[test]
    fn trace_json_has_a_span_per_delivered_token() {
        let f = generate::fig1();
        let run = profile_netlist(&f.netlist, ProfileOptions::default()).unwrap();
        let begins = run.trace_json.matches("\"ph\":\"b\"").count() as u64;
        let ends = run.trace_json.matches("\"ph\":\"e\"").count() as u64;
        assert_eq!(begins, ends);
        assert!(begins >= run.report.consumed);
    }
}
