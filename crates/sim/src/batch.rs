//! Bit-parallel batched skeleton simulation: 64 independent scenarios
//! per step.
//!
//! The skeleton carries one bit of state per signal (validities,
//! occupancies) plus small counters — which makes it a perfect fit for
//! SWAR evaluation: a [`BatchSkeleton`] packs the valid/stop state of 64
//! *independent* scenarios (lanes) into `u64` words, one bit per lane,
//! and settles all 64 per pass using pure bitwise transfer functions.
//! Every lane is bit-identical to a scalar
//! [`SkeletonSystem`](crate::SkeletonSystem) run of the same scenario (a
//! property test asserts this over the topology corpus).
//!
//! Lanes may differ only in their *environment* — source void patterns,
//! sink stop patterns, or externally driven stall schedules — the
//! netlist and protocol variant are shared, as is the compiled
//! [`SettleProgram`] the engine executes. That is exactly the shape of
//! the paper's experiments: sweep many stall probabilities / schedules
//! over one topology and measure sustained throughput, or universally
//! quantify over environments when hunting deadlocks.
//!
//! Non-boolean state is bit-sliced: FIFO occupancies live as little-
//! endian bit-planes with masked ripple-carry increment/decrement, and
//! per-lane token/firing counters use the same plane representation
//! ([`LaneCounters`]-style, internal) so counting costs O(1) amortised
//! word ops per cycle.

use std::sync::Arc;

use lip_core::Pattern;
use lip_graph::{Netlist, NetlistError, NodeId};
use lip_obs::{NullProbe, Probe};

use crate::program::{CompSlot, SettleProgram};

/// Number of scenarios a [`BatchSkeleton`] advances per step.
pub const LANES: usize = 64;

/// Per-lane unsigned counters stored as little-endian bit-planes.
///
/// `planes[b]` holds bit `b` of every lane's count. Incrementing a
/// subset of lanes is a masked ripple-carry: O(live planes) word ops,
/// and the carry chain dies out after the first zero plane, so the
/// amortised cost per increment is ~2 word ops.
#[derive(Debug, Clone, Default)]
struct LaneCounters {
    planes: Vec<u64>,
}

impl LaneCounters {
    /// Add 1 to every lane set in `mask`.
    fn add(&mut self, mask: u64) {
        let mut carry = mask;
        let mut b = 0;
        while carry != 0 {
            if b == self.planes.len() {
                self.planes.push(0);
            }
            let p = self.planes[b];
            self.planes[b] = p ^ carry;
            carry &= p;
            b += 1;
        }
    }

    /// Current count of `lane`.
    fn get(&self, lane: usize) -> u64 {
        let mut v = 0u64;
        for (b, &p) in self.planes.iter().enumerate() {
            v |= ((p >> lane) & 1) << b;
        }
        v
    }
}

/// One row of 64 per-lane environment patterns (for a single source or
/// sink), with a fast path when every lane shares the same pattern.
#[derive(Debug, Clone)]
struct PatternRow {
    lanes: Vec<Pattern>,
    /// All lanes identical — evaluate once, broadcast.
    uniform: bool,
}

impl PatternRow {
    fn broadcast(p: &Pattern) -> Self {
        PatternRow {
            lanes: vec![p.clone(); LANES],
            uniform: true,
        }
    }

    fn set(&mut self, lane: usize, p: Pattern) {
        self.lanes[lane] = p;
        self.uniform = false;
    }

    /// Word with bit `l` set iff lane `l`'s pattern is high at `cycle`.
    fn word(&self, cycle: u64) -> u64 {
        if self.uniform {
            if self.lanes[0].at(cycle) {
                !0
            } else {
                0
            }
        } else {
            let mut w = 0u64;
            for (l, p) in self.lanes.iter().enumerate() {
                if p.at(cycle) {
                    w |= 1 << l;
                }
            }
            w
        }
    }
}

/// Per-lane environment for a [`BatchSkeleton`]: one void pattern per
/// source per lane, one stop pattern per sink per lane.
///
/// Start from [`LanePatterns::broadcast`] (every lane gets the
/// netlist's own patterns) and specialise individual lanes with
/// [`set_source`](LanePatterns::set_source) /
/// [`set_sink`](LanePatterns::set_sink) — the natural shape for a
/// 64-point parameter sweep.
#[derive(Debug, Clone)]
pub struct LanePatterns {
    src: Vec<PatternRow>,
    snk: Vec<PatternRow>,
}

impl LanePatterns {
    /// Every lane runs the environment compiled into `prog` (the
    /// netlist's own patterns).
    #[must_use]
    pub fn broadcast(prog: &SettleProgram) -> Self {
        LanePatterns {
            src: prog.src_pattern.iter().map(PatternRow::broadcast).collect(),
            snk: prog.snk_pattern.iter().map(PatternRow::broadcast).collect(),
        }
    }

    /// Number of sources per lane.
    #[must_use]
    pub fn source_count(&self) -> usize {
        self.src.len()
    }

    /// Number of sinks per lane.
    #[must_use]
    pub fn sink_count(&self) -> usize {
        self.snk.len()
    }

    /// Give `lane`'s `source`-th source (in
    /// [`Netlist::sources`](lip_graph::Netlist::sources) order) the void
    /// pattern `p`.
    ///
    /// # Panics
    ///
    /// Panics if `source` or `lane` is out of range.
    pub fn set_source(&mut self, source: usize, lane: usize, p: Pattern) {
        self.src[source].set(lane, p);
    }

    /// Give `lane`'s `sink`-th sink (in
    /// [`Netlist::sinks`](lip_graph::Netlist::sinks) order) the stop
    /// pattern `p`.
    ///
    /// # Panics
    ///
    /// Panics if `sink` or `lane` is out of range.
    pub fn set_sink(&mut self, sink: usize, lane: usize, p: Pattern) {
        self.snk[sink].set(lane, p);
    }

    /// The void pattern of `lane`'s `source`-th source.
    #[must_use]
    pub fn source_pattern(&self, source: usize, lane: usize) -> &Pattern {
        &self.src[source].lanes[lane]
    }

    /// The stop pattern of `lane`'s `sink`-th sink.
    #[must_use]
    pub fn sink_pattern(&self, sink: usize, lane: usize) -> &Pattern {
        &self.snk[sink].lanes[lane]
    }
}

/// 64 independent skeleton simulations advancing in lock-step, one bit
/// per lane per signal.
///
/// # Example
///
/// Sweep is the typical use: run the same netlist under 64 different
/// environments at once.
///
/// ```
/// use lip_graph::generate;
/// use lip_sim::{BatchSkeleton, LanePatterns};
///
/// # fn main() -> Result<(), lip_graph::NetlistError> {
/// let fig1 = generate::fig1();
/// let mut batch = BatchSkeleton::new(&fig1.netlist)?;
/// let pats = LanePatterns::broadcast(batch.program());
/// batch.run_patterns(&pats, 500);
/// // Every lane ran the same environment here, so every lane sees the
/// // steady-state 4-of-5 throughput.
/// let (valid, voids) = batch.sink_counts_lane(fig1.sink, 17).expect("sink");
/// assert!(valid > 390 && valid + voids == 500);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchSkeleton {
    prog: Arc<SettleProgram>,
    /// Settled valid bits per channel (bit = lane).
    fwd: Vec<u64>,
    /// Settled stop bits per channel.
    stop: Vec<u64>,
    /// Validity currently offered by each source.
    src_valid: Vec<u64>,
    /// Output-register validity, flat by the program's shell CSR.
    shell_out: Vec<u64>,
    /// Input-buffer occupancy, flat by the program's shell CSR.
    in_buf: Vec<u64>,
    /// Per shell: fire condition of the last settle.
    fire: Vec<u64>,
    /// Per shell: per-lane firing counters.
    fires: Vec<LaneCounters>,
    /// Full relay register validities.
    full_main: Vec<u64>,
    full_aux: Vec<u64>,
    /// Half relay occupancy.
    half_occ: Vec<u64>,
    /// FIFO occupancies, bit-sliced: FIFO `i` owns planes
    /// `fifo_planes[fifo_off[i]..fifo_off[i + 1]]` (little-endian).
    fifo_off: Vec<u32>,
    fifo_planes: Vec<u64>,
    /// Per sink: per-lane informative / void token counters.
    snk_valid: Vec<LaneCounters>,
    snk_voids: Vec<LaneCounters>,
    /// Lanes in which any shell fired since the last
    /// [`reset_fired_mask`](Self::reset_fired_mask).
    fired: u64,
    cycle: u64,
}

impl BatchSkeleton {
    /// Validate `netlist`, compile its settle program and reset all 64
    /// lanes to the netlist's own initial state.
    ///
    /// # Errors
    ///
    /// Propagates any [`NetlistError`] from [`Netlist::validate`].
    pub fn new(netlist: &Netlist) -> Result<Self, NetlistError> {
        Ok(Self::from_program(Arc::new(SettleProgram::compile(
            netlist,
        )?)))
    }

    /// All 64 lanes reset under the program's own environment patterns
    /// (each source initially offers `!pattern.at(0)`, broadcast).
    #[must_use]
    pub fn from_program(prog: Arc<SettleProgram>) -> Self {
        let src_valid = prog
            .src_pattern
            .iter()
            .map(|p| if p.at(0) { 0 } else { !0 })
            .collect();
        Self::with_initial(prog, src_valid)
    }

    /// Lanes reset under *per-lane* environments: each source initially
    /// offers `!pats.source_pattern(i, lane).at(0)` in its lane — the
    /// batched equivalent of building 64 netlists with different
    /// patterns and constructing a scalar skeleton for each.
    #[must_use]
    pub fn from_patterns(prog: Arc<SettleProgram>, pats: &LanePatterns) -> Self {
        let src_valid = (0..prog.src_pattern.len())
            .map(|i| {
                let mut w = 0u64;
                for lane in 0..LANES {
                    if !pats.source_pattern(i, lane).at(0) {
                        w |= 1 << lane;
                    }
                }
                w
            })
            .collect();
        Self::with_initial(prog, src_valid)
    }

    fn with_initial(prog: Arc<SettleProgram>, src_valid: Vec<u64>) -> Self {
        let mut fifo_off = Vec::with_capacity(prog.fifo_cap.len() + 1);
        let mut plane_words = 0u32;
        fifo_off.push(plane_words);
        for &cap in &prog.fifo_cap {
            let bits = 64 - u64::from(cap).leading_zeros();
            plane_words += bits.max(1);
            fifo_off.push(plane_words);
        }
        BatchSkeleton {
            fwd: vec![0; prog.n_channels],
            stop: vec![0; prog.n_channels],
            src_valid,
            shell_out: vec![!0; prog.shell_out_ch.len()],
            in_buf: vec![0; prog.shell_in_ch.len()],
            fire: vec![0; prog.shell_buffered.len()],
            fires: vec![LaneCounters::default(); prog.shell_buffered.len()],
            full_main: vec![0; prog.full_in_ch.len()],
            full_aux: vec![0; prog.full_in_ch.len()],
            half_occ: vec![0; prog.half_in_ch.len()],
            fifo_planes: vec![0; plane_words as usize],
            fifo_off,
            snk_valid: vec![LaneCounters::default(); prog.snk_in_ch.len()],
            snk_voids: vec![LaneCounters::default(); prog.snk_in_ch.len()],
            fired: 0,
            cycle: 0,
            prog,
        }
    }

    /// The compiled settle program all lanes execute.
    #[must_use]
    pub fn program(&self) -> &Arc<SettleProgram> {
        &self.prog
    }

    /// Cycles executed so far (identical across lanes).
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Settle all 64 lanes' valid/stop bits against this cycle's sink
    /// stop words (`sink_stop[j]` bit `l` = lane `l`'s stop on sink
    /// `j`). Probe hooks receive the word-wide `*_mask` form — one call
    /// covers all 64 lanes — and are guarded by [`Probe::ENABLED`].
    fn settle_probed<P: Probe>(&mut self, sink_stop: &[u64], probe: &mut P) {
        let Self {
            prog,
            fwd,
            stop,
            src_valid,
            shell_out,
            in_buf,
            fire,
            full_main,
            full_aux,
            half_occ,
            fifo_off,
            fifo_planes,
            cycle,
            ..
        } = self;
        let p: &SettleProgram = prog;

        // Forward pass 1: registered producers, any order.
        for (i, &ch) in p.src_out_ch.iter().enumerate() {
            fwd[ch as usize] = src_valid[i];
        }
        for (k, &ch) in p.shell_out_ch.iter().enumerate() {
            fwd[ch as usize] = shell_out[k];
        }
        for (i, &ch) in p.full_out_ch.iter().enumerate() {
            fwd[ch as usize] = full_main[i];
        }
        for (i, &ch) in p.fifo_out_ch.iter().enumerate() {
            let planes = &fifo_planes[fifo_off[i] as usize..fifo_off[i + 1] as usize];
            fwd[ch as usize] = planes.iter().fold(0u64, |acc, &w| acc | w);
        }
        // Forward pass 2: half-relay chains, upstream first.
        for &h in &p.fwd_half_order {
            let h = h as usize;
            fwd[p.half_out_ch[h] as usize] = half_occ[h] | fwd[p.half_in_ch[h] as usize];
        }

        // Backward pass 1: registered stops, any order.
        for (j, &ch) in p.snk_in_ch.iter().enumerate() {
            stop[ch as usize] = sink_stop[j];
        }
        for (i, &ch) in p.full_in_ch.iter().enumerate() {
            stop[ch as usize] = full_aux[i];
        }
        for (h, &ch) in p.half_in_ch.iter().enumerate() {
            stop[ch as usize] = half_occ[h];
        }
        for (i, &ch) in p.fifo_in_ch.iter().enumerate() {
            stop[ch as usize] = fifo_full(p, fifo_off, fifo_planes, i);
        }
        for &s in &p.buffered_shells {
            for k in p.shell_in_range(s as usize) {
                stop[p.shell_in_ch[k] as usize] = in_buf[k];
            }
        }
        // Backward pass 2: unbuffered shells, downstream first.
        for &s in &p.bwd_shell_order {
            let s = s as usize;
            let f = shell_fire_word(p, fwd, stop, shell_out, in_buf, s);
            fire[s] = f;
            for k in p.shell_in_range(s) {
                let ch = p.shell_in_ch[k] as usize;
                if P::ENABLED && p.discards {
                    // Lanes where the baseline stop is suppressed
                    // against a void input (the refinement).
                    let discarded = !f & !fwd[ch];
                    if discarded != 0 {
                        probe.void_discard_mask(*cycle, ch as u32, discarded);
                    }
                }
                stop[ch] = !f & if p.discards { fwd[ch] } else { !0 };
            }
        }
        // Pass 3: buffered shells fire once every stop has settled.
        for &s in &p.buffered_shells {
            let s = s as usize;
            fire[s] = shell_fire_word(p, fwd, stop, shell_out, in_buf, s);
        }
        if P::ENABLED {
            for ch in 0..p.n_channels {
                if stop[ch] != 0 {
                    probe.stall_mask(*cycle, ch as u32, stop[ch]);
                }
                if fwd[ch] != !0 {
                    probe.channel_void_mask(*cycle, ch as u32, !fwd[ch]);
                }
            }
        }
    }

    /// Settle and clock one cycle with the environment driven by masks:
    /// `sink_stop[j]` is sink `j`'s stop word for this cycle and
    /// `source_next[i]` the validity word of source `i`'s next offer (a
    /// held token stays held, per lane). Bit `l` of each word belongs to
    /// lane `l`; indices follow
    /// [`Netlist::sources`](lip_graph::Netlist::sources) /
    /// [`Netlist::sinks`](lip_graph::Netlist::sinks) order.
    ///
    /// Lane `l` of this call is bit-identical to
    /// [`SkeletonSystem::step_with`](crate::SkeletonSystem::step_with)
    /// invoked with bit `l` of every word.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the source/sink counts.
    pub fn step_with_masks(&mut self, source_next: &[u64], sink_stop: &[u64]) {
        self.step_with_masks_probed(source_next, sink_stop, &mut NullProbe);
    }

    /// [`step_with_masks`](Self::step_with_masks) with observation: the
    /// word-wide analogue of
    /// [`SkeletonSystem::step_probed`](crate::SkeletonSystem::step_probed),
    /// delivering `*_mask` hooks (bit `l` = lane `l`) for stalls, voids,
    /// discards, sink consumption, shell firings and relay traffic, then
    /// [`end_cycle`](Probe::end_cycle). With [`NullProbe`] this
    /// monomorphizes to the unobserved step.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the source/sink counts.
    pub fn step_with_masks_probed<P: Probe>(
        &mut self,
        source_next: &[u64],
        sink_stop: &[u64],
        probe: &mut P,
    ) {
        assert_eq!(
            source_next.len(),
            self.prog.source_count(),
            "source mask arity"
        );
        assert_eq!(sink_stop.len(), self.prog.sink_count(), "sink mask arity");
        self.settle_probed(sink_stop, probe);
        let Self {
            prog,
            fwd,
            stop,
            src_valid,
            shell_out,
            in_buf,
            fire,
            fires,
            full_main,
            full_aux,
            half_occ,
            fifo_off,
            fifo_planes,
            snk_valid,
            snk_voids,
            fired,
            cycle,
            ..
        } = self;
        let p: &SettleProgram = prog;

        // Sources: a stopped valid offer is held; everyone else loads
        // the next offer.
        for i in 0..src_valid.len() {
            let held = src_valid[i] & stop[p.src_out_ch[i] as usize];
            src_valid[i] = held | (source_next[i] & !held);
        }
        // Sinks: lanes not stopping consume; count informative vs void.
        for j in 0..snk_valid.len() {
            let consumed = !sink_stop[j];
            let v = fwd[p.snk_in_ch[j] as usize];
            snk_valid[j].add(consumed & v);
            snk_voids[j].add(consumed & !v);
            if P::ENABLED {
                if consumed & v != 0 {
                    probe.consume_mask(*cycle, p.snk_in_ch[j], consumed & v);
                }
                if consumed & !v != 0 {
                    probe.void_in_mask(*cycle, p.snk_in_ch[j], consumed & !v);
                }
            }
        }
        // Shells: firing lanes revalidate every output register and
        // drain buffers; stalled lanes latch arrivals and deassert
        // unheld outputs.
        for s in 0..p.shell_buffered.len() {
            let f = fire[s];
            *fired |= f;
            fires[s].add(f);
            if P::ENABLED && f != 0 {
                probe.fire_mask(*cycle, s as u32, f);
            }
            if p.shell_buffered[s] {
                for k in p.shell_in_range(s) {
                    in_buf[k] = !f & (in_buf[k] | fwd[p.shell_in_ch[k] as usize]);
                }
            }
            for k in p.shell_out_range(s) {
                shell_out[k] = f | (shell_out[k] & stop[p.shell_out_ch[k] as usize]);
            }
        }
        // Full relays: two registers, aux absorbs one token under stop.
        for i in 0..full_main.len() {
            let input = fwd[p.full_in_ch[i] as usize];
            let stopped = stop[p.full_out_ch[i] as usize];
            let main = full_main[i];
            let aux = full_aux[i];
            let released = main & !stopped;
            if P::ENABLED {
                // Token movement (see the scalar step for the rationale):
                // enters where offered and aux free, leaves where main
                // releases.
                let fill = input & !aux;
                if fill != 0 {
                    probe.relay_fill_mask(*cycle, p.full_relay_row(i), fill);
                }
                if released != 0 {
                    probe.relay_drain_mask(*cycle, p.full_relay_row(i), released);
                }
            }
            full_main[i] = aux | (main & !released) | (input & (!main | released));
            full_aux[i] = !released & (aux | (main & input));
        }
        // Half relays: occupied while stopped.
        for h in 0..half_occ.len() {
            let input = fwd[p.half_in_ch[h] as usize];
            let stopped = stop[p.half_out_ch[h] as usize];
            if P::ENABLED {
                let fill = stopped & input & !half_occ[h];
                let drain = half_occ[h] & !stopped;
                if fill != 0 {
                    probe.relay_fill_mask(*cycle, p.half_relay_row(h), fill);
                }
                if drain != 0 {
                    probe.relay_drain_mask(*cycle, p.half_relay_row(h), drain);
                }
            }
            half_occ[h] = stopped & (half_occ[h] | input);
        }
        // FIFOs: masked ripple-carry decrement (drain) then increment
        // (accept); a full FIFO refuses the arrival.
        for i in 0..fifo_off.len() - 1 {
            let input = fwd[p.fifo_in_ch[i] as usize];
            let stopped = stop[p.fifo_out_ch[i] as usize];
            let planes = &mut fifo_planes[fifo_off[i] as usize..fifo_off[i + 1] as usize];
            let mut nonzero = 0u64;
            for &pl in planes.iter() {
                nonzero |= pl;
            }
            let was_full = {
                let cap = u64::from(p.fifo_cap[i]);
                let mut eq = !0u64;
                for (b, &pl) in planes.iter().enumerate() {
                    let cap_bit = if (cap >> b) & 1 == 1 { !0 } else { 0 };
                    eq &= !(pl ^ cap_bit);
                }
                eq
            };
            let drain = !stopped & nonzero;
            let fill = !was_full & input;
            if P::ENABLED {
                if fill != 0 {
                    probe.relay_fill_mask(*cycle, p.fifo_relay_row(i), fill);
                }
                if drain != 0 {
                    probe.relay_drain_mask(*cycle, p.fifo_relay_row(i), drain);
                }
            }
            let mut borrow = drain;
            for pl in planes.iter_mut() {
                let next = *pl ^ borrow;
                borrow &= !*pl;
                *pl = next;
            }
            let mut carry = fill;
            for pl in planes.iter_mut() {
                let next = *pl ^ carry;
                carry &= *pl;
                *pl = next;
            }
        }
        if P::ENABLED {
            probe.end_cycle(*cycle);
        }
        *cycle += 1;
    }

    /// Settle and clock one cycle with each lane's environment drawn
    /// from `pats` — lane `l` is bit-identical to a scalar
    /// [`SkeletonSystem::step`](crate::SkeletonSystem::step) under lane
    /// `l`'s patterns.
    ///
    /// # Panics
    ///
    /// Panics if `pats` arity does not match the netlist.
    pub fn step_patterns(&mut self, pats: &LanePatterns) {
        self.step_patterns_probed(pats, &mut NullProbe);
    }

    /// [`step_patterns`](Self::step_patterns) with observation (see
    /// [`step_with_masks_probed`](Self::step_with_masks_probed)).
    ///
    /// # Panics
    ///
    /// Panics if `pats` arity does not match the netlist.
    pub fn step_patterns_probed<P: Probe>(&mut self, pats: &LanePatterns, probe: &mut P) {
        let cycle = self.cycle;
        let sink_stop: Vec<u64> = pats.snk.iter().map(|row| row.word(cycle)).collect();
        let source_next: Vec<u64> = pats.src.iter().map(|row| !row.word(cycle + 1)).collect();
        self.step_with_masks_probed(&source_next, &sink_stop, probe);
    }

    /// Run `n` cycles under `pats`.
    pub fn run_patterns(&mut self, pats: &LanePatterns, n: u64) {
        for _ in 0..n {
            self.step_patterns(pats);
        }
    }

    /// Run `n` cycles under `pats` with observation.
    pub fn run_patterns_probed<P: Probe>(&mut self, pats: &LanePatterns, n: u64, probe: &mut P) {
        for _ in 0..n {
            self.step_patterns_probed(pats, probe);
        }
    }

    /// Settled valid word of channel `ch` (bit = lane). Reflects the
    /// last settle; call after a step.
    #[must_use]
    pub fn channel_valid(&self, ch: usize) -> u64 {
        self.fwd[ch]
    }

    /// Settled stop word of channel `ch` (bit = lane).
    #[must_use]
    pub fn channel_stop(&self, ch: usize) -> u64 {
        self.stop[ch]
    }

    /// Lanes in which at least one shell fired since the last
    /// [`reset_fired_mask`](Self::reset_fired_mask) — the batched wedge
    /// probe: a lane still clear after a deep run has made no progress
    /// anywhere in the system.
    #[must_use]
    pub fn fired_mask(&self) -> u64 {
        self.fired
    }

    /// Clear the fired mask (start a new progress observation window).
    pub fn reset_fired_mask(&mut self) {
        self.fired = 0;
    }

    /// `(valid, voids)` consumed so far by the sink at `node` in `lane`.
    #[must_use]
    pub fn sink_counts_lane(&self, node: NodeId, lane: usize) -> Option<(u64, u64)> {
        match self.prog.comp_slots[node.index()] {
            CompSlot::Sink(j) => Some((
                self.snk_valid[j as usize].get(lane),
                self.snk_voids[j as usize].get(lane),
            )),
            _ => None,
        }
    }

    /// Firings so far of the shell at `node` in `lane`.
    #[must_use]
    pub fn shell_fires_lane(&self, node: NodeId, lane: usize) -> Option<u64> {
        match self.prog.comp_slots[node.index()] {
            CompSlot::Shell(s) => Some(self.fires[s as usize].get(lane)),
            _ => None,
        }
    }

    /// Total shell firings so far in `lane`, summed over all shells.
    #[must_use]
    pub fn total_fires_lane(&self, lane: usize) -> u64 {
        self.fires.iter().map(|c| c.get(lane)).sum()
    }

    /// Lane `lane`'s component control state, in exactly the format of
    /// [`SkeletonSystem::component_state`](crate::SkeletonSystem::component_state)
    /// — the explorer's state key.
    #[must_use]
    pub fn lane_component_state(&self, lane: usize) -> Vec<u64> {
        let p = &*self.prog;
        let bit = |w: u64| (w >> lane) & 1;
        let mut out = Vec::with_capacity(p.comp_slots.len());
        for slot in &p.comp_slots {
            match *slot {
                CompSlot::Source(i) => out.push(bit(self.src_valid[i as usize])),
                CompSlot::Sink(_) => {}
                CompSlot::Shell(s) => {
                    let s = s as usize;
                    let mut bits = 0u64;
                    let mut j = 0;
                    for k in p.shell_out_range(s) {
                        bits |= bit(self.shell_out[k]) << (j % 64);
                        j += 1;
                    }
                    if p.shell_buffered[s] {
                        for k in p.shell_in_range(s) {
                            bits |= bit(self.in_buf[k]) << (j % 64);
                            j += 1;
                        }
                    }
                    out.push(bits);
                }
                CompSlot::Full(i) => {
                    let i = i as usize;
                    out.push(bit(self.full_main[i]) + 2 * bit(self.full_aux[i]));
                }
                CompSlot::Half(h) => out.push(bit(self.half_occ[h as usize])),
                CompSlot::Fifo(i) => {
                    let i = i as usize;
                    let mut v = 0u64;
                    for (b, plane) in (self.fifo_off[i]..self.fifo_off[i + 1]).enumerate() {
                        v |= bit(self.fifo_planes[plane as usize]) << b;
                    }
                    out.push(v);
                }
            }
        }
        out
    }
}

/// Word-wide fire condition of shell `s` (see the scalar
/// `shell_fire` in `skeleton.rs`): lanes where every input is available
/// and no output port is blocked.
#[inline]
fn shell_fire_word(
    p: &SettleProgram,
    fwd: &[u64],
    stop: &[u64],
    shell_out: &[u64],
    in_buf: &[u64],
    s: usize,
) -> u64 {
    let buffered = p.shell_buffered[s];
    let mut all_valid = !0u64;
    for k in p.shell_in_range(s) {
        let v = fwd[p.shell_in_ch[k] as usize];
        all_valid &= if buffered { in_buf[k] | v } else { v };
    }
    let mut blocked = 0u64;
    for k in p.shell_out_range(s) {
        let stp = stop[p.shell_out_ch[k] as usize];
        blocked |= stp & if p.discards { shell_out[k] } else { !0 };
    }
    all_valid & !blocked
}

/// Lanes where FIFO `i` is at capacity: bit-plane equality against the
/// capacity's binary encoding.
#[inline]
fn fifo_full(p: &SettleProgram, fifo_off: &[u32], fifo_planes: &[u64], i: usize) -> u64 {
    let cap = u64::from(p.fifo_cap[i]);
    let mut eq = !0u64;
    for (b, plane) in (fifo_off[i]..fifo_off[i + 1]).enumerate() {
        let cap_bit = if (cap >> b) & 1 == 1 { !0 } else { 0 };
        eq &= !(fifo_planes[plane as usize] ^ cap_bit);
    }
    eq
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SkeletonSystem;
    use lip_core::RelayKind;
    use lip_graph::generate;

    #[test]
    fn lane_counters_count() {
        let mut c = LaneCounters::default();
        for i in 0..137u64 {
            // Lane 0 every time, lane 3 on even rounds, lane 63 never.
            let mask = 1 | (u64::from(i % 2 == 0) << 3);
            c.add(mask);
        }
        assert_eq!(c.get(0), 137);
        assert_eq!(c.get(3), 69);
        assert_eq!(c.get(63), 0);
    }

    #[test]
    fn broadcast_lanes_match_scalar_run_on_fig1() {
        let f = generate::fig1();
        let mut batch = BatchSkeleton::new(&f.netlist).unwrap();
        let pats = LanePatterns::broadcast(batch.program());
        let mut scalar = SkeletonSystem::new(&f.netlist).unwrap();
        for _ in 0..200 {
            batch.step_patterns(&pats);
            scalar.step();
        }
        let scalar_state = scalar.component_state();
        for lane in [0, 1, 31, 63] {
            assert_eq!(
                batch.lane_component_state(lane),
                scalar_state,
                "lane {lane}"
            );
            assert_eq!(
                batch.sink_counts_lane(f.sink, lane),
                scalar.sink_counts(f.sink),
                "lane {lane}"
            );
            assert_eq!(batch.total_fires_lane(lane), scalar.total_fires());
        }
    }

    #[test]
    fn fifo_bitslice_matches_scalar_on_fifo_ring() {
        let r = generate::ring(2, 2, RelayKind::Fifo(3));
        let mut batch = BatchSkeleton::new(&r.netlist).unwrap();
        let pats = LanePatterns::broadcast(batch.program());
        let mut scalar = SkeletonSystem::new(&r.netlist).unwrap();
        for _ in 0..100 {
            batch.step_patterns(&pats);
            scalar.step();
        }
        let scalar_state = scalar.component_state();
        for lane in [0, 42, 63] {
            assert_eq!(
                batch.lane_component_state(lane),
                scalar_state,
                "lane {lane}"
            );
        }
    }

    #[test]
    fn fired_mask_tracks_progress() {
        let f = generate::fig1();
        let mut batch = BatchSkeleton::new(&f.netlist).unwrap();
        let pats = LanePatterns::broadcast(batch.program());
        assert_eq!(batch.fired_mask(), 0);
        batch.run_patterns(&pats, 20);
        assert_eq!(batch.fired_mask(), !0, "all lanes progress on fig1");
        batch.reset_fired_mask();
        assert_eq!(batch.fired_mask(), 0);
    }

    #[test]
    fn per_lane_patterns_diverge() {
        use lip_core::Pattern;
        let f = generate::fig1();
        let mut batch = BatchSkeleton::new(&f.netlist).unwrap();
        let mut pats = LanePatterns::broadcast(batch.program());
        // Lane 7's sink stops every other cycle; lane 0 never stops.
        pats.set_sink(
            0,
            7,
            Pattern::EveryNth {
                period: 2,
                phase: 0,
            },
        );
        batch.run_patterns(&pats, 400);
        let (v0, n0) = batch.sink_counts_lane(f.sink, 0).unwrap();
        let (v7, n7) = batch.sink_counts_lane(f.sink, 7).unwrap();
        assert_eq!(v0 + n0, 400);
        assert!(v7 + n7 <= 200, "stopped lane consumes at most half");
        assert!(v0 > v7, "throttled sink sees fewer tokens");
    }
}
