//! Bit-parallel batched skeleton simulation: up to 1024 independent
//! scenarios per step.
//!
//! The skeleton carries one bit of state per signal (validities,
//! occupancies) plus small counters — which makes it a perfect fit for
//! SWAR evaluation: a [`BatchEngine`] packs the valid/stop state of
//! `W::LANES` *independent* scenarios (lanes) into [`LaneWord`]s, one
//! bit per lane, and settles all of them per pass using pure bitwise
//! transfer functions. [`BatchSkeleton`] is the 64-lane `u64`
//! instantiation — exactly the engine this module always had — and the
//! wider shapes (`[u64; 2]` … `[u64; 16]`, 128–1024 lanes) run the same
//! code over multi-word lane words. Every lane of every width is
//! bit-identical to a scalar [`SkeletonSystem`](crate::SkeletonSystem)
//! run of the same scenario (property tests assert this over the
//! topology corpus and across widths).
//!
//! Lanes may differ only in their *environment* — source void patterns,
//! sink stop patterns, or externally driven stall schedules — the
//! netlist and protocol variant are shared, as is the compiled
//! [`SettleProgram`] the engine executes. That is exactly the shape of
//! the paper's experiments: sweep many stall probabilities / schedules
//! over one topology and measure sustained throughput, or universally
//! quantify over environments when hunting deadlocks.
//!
//! The settle phase runs on the program's streaming kernel (see
//! `crate::stream`): the engine's entire bit-state lives in one flat
//! cell arena and each settle is a branch-free pass over a precompiled
//! op tape — no per-component dispatch, and the homogeneous inner loops
//! auto-vectorize across the `u64` sub-words of wide lane words.
//!
//! Non-boolean state is bit-sliced: FIFO occupancies live as little-
//! endian bit-planes with masked ripple-carry increment/decrement, and
//! per-lane token/firing counters use the same plane representation
//! (`LaneCounters`-style, internal) so counting costs O(1) amortised
//! word ops per cycle.

use std::sync::Arc;

use lip_core::Pattern;
use lip_graph::{Netlist, NetlistError, NodeId};
use lip_obs::{KernelCounters, NullProbe, Probe};

use crate::lane::LaneWord;
use crate::program::{lcm, CompSlot, SettleProgram};
use crate::stream::CELL_ONES;

/// Number of scenarios the default-width [`BatchSkeleton`] advances per
/// step (wider engines advance [`LaneWord::LANES`]).
pub const LANES: usize = 64;

/// Environment tables longer than this fall back to per-lane pattern
/// evaluation instead of a precomputed word table.
const MAX_TABLE_PERIOD: u64 = 16_384;

/// Counted settles between destination-occupancy popcount samples.
/// Retirement/stratum counters are exact on every counted settle; only
/// the occupancy statistic is sampled (its `occ_ops` denominator keeps
/// it exact over the sampled ops). 8 keeps the enabled-recorder
/// overhead low while still sampling every topology in a sweep many
/// times over.
pub const OCC_SAMPLE_EVERY: u64 = 8;

/// Per-lane unsigned counters stored as little-endian bit-planes.
///
/// `planes[b]` holds bit `b` of every lane's count. Incrementing a
/// subset of lanes is a masked ripple-carry: O(live planes) word ops,
/// and the carry chain dies out after the first zero plane, so the
/// amortised cost per increment is ~2 word ops.
#[derive(Debug, Clone)]
struct LaneCounters<W> {
    planes: Vec<W>,
}

impl<W> Default for LaneCounters<W> {
    fn default() -> Self {
        LaneCounters { planes: Vec::new() }
    }
}

impl<W: LaneWord> LaneCounters<W> {
    /// Add 1 to every lane set in `mask`.
    fn add(&mut self, mask: W) {
        let mut carry = mask;
        let mut b = 0;
        while carry.any() {
            if b == self.planes.len() {
                self.planes.push(W::ZERO);
            }
            let p = self.planes[b];
            self.planes[b] = p.xor(carry);
            carry = carry.and(p);
            b += 1;
        }
    }

    /// Current count of `lane`.
    fn get(&self, lane: usize) -> u64 {
        let mut v = 0u64;
        for (b, &p) in self.planes.iter().enumerate() {
            v |= u64::from(p.lane(lane)) << b;
        }
        v
    }
}

/// One row of per-lane environment patterns (for a single source or
/// sink), with a fast path when every lane shares the same pattern.
#[derive(Debug, Clone)]
struct PatternRow {
    lanes: Vec<Pattern>,
    /// All lanes identical — evaluate once, broadcast.
    uniform: bool,
}

impl PatternRow {
    fn broadcast(p: &Pattern, width: usize) -> Self {
        PatternRow {
            lanes: vec![p.clone(); width],
            uniform: true,
        }
    }

    fn set(&mut self, lane: usize, p: Pattern) {
        self.lanes[lane] = p;
        self.uniform = false;
    }

    /// Word with lane `l` set iff lane `l`'s pattern is high at `cycle`.
    fn word<W: LaneWord>(&self, cycle: u64) -> W {
        if self.uniform {
            W::splat(self.lanes[0].at(cycle))
        } else {
            W::from_fn(|l| self.lanes[l].at(cycle))
        }
    }
}

/// Per-lane environment for a [`BatchEngine`]: one void pattern per
/// source per lane, one stop pattern per sink per lane.
///
/// Start from [`LanePatterns::broadcast`] (64 lanes, every lane running
/// the netlist's own patterns) or
/// [`broadcast_wide`](LanePatterns::broadcast_wide) for another width,
/// then specialise individual lanes with
/// [`set_source`](LanePatterns::set_source) /
/// [`set_sink`](LanePatterns::set_sink) — the natural shape for a
/// many-point parameter sweep.
#[derive(Debug, Clone)]
pub struct LanePatterns {
    src: Vec<PatternRow>,
    snk: Vec<PatternRow>,
    width: usize,
}

impl LanePatterns {
    /// Every one of 64 lanes runs the environment compiled into `prog`
    /// (the netlist's own patterns).
    #[must_use]
    pub fn broadcast(prog: &SettleProgram) -> Self {
        Self::broadcast_wide(prog, LANES)
    }

    /// Every one of `width` lanes runs the environment compiled into
    /// `prog`. `width` must match the engine's [`LaneWord::LANES`] when
    /// the patterns are used.
    #[must_use]
    pub fn broadcast_wide(prog: &SettleProgram, width: usize) -> Self {
        LanePatterns {
            src: prog
                .src_pattern
                .iter()
                .map(|p| PatternRow::broadcast(p, width))
                .collect(),
            snk: prog
                .snk_pattern
                .iter()
                .map(|p| PatternRow::broadcast(p, width))
                .collect(),
            width,
        }
    }

    /// Number of lanes these patterns drive.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of sources per lane.
    #[must_use]
    pub fn source_count(&self) -> usize {
        self.src.len()
    }

    /// Number of sinks per lane.
    #[must_use]
    pub fn sink_count(&self) -> usize {
        self.snk.len()
    }

    /// Give `lane`'s `source`-th source (in
    /// [`Netlist::sources`](lip_graph::Netlist::sources) order) the void
    /// pattern `p`.
    ///
    /// # Panics
    ///
    /// Panics if `source` or `lane` is out of range.
    pub fn set_source(&mut self, source: usize, lane: usize, p: Pattern) {
        self.src[source].set(lane, p);
    }

    /// Give `lane`'s `sink`-th sink (in
    /// [`Netlist::sinks`](lip_graph::Netlist::sinks) order) the stop
    /// pattern `p`.
    ///
    /// # Panics
    ///
    /// Panics if `sink` or `lane` is out of range.
    pub fn set_sink(&mut self, sink: usize, lane: usize, p: Pattern) {
        self.snk[sink].set(lane, p);
    }

    /// The void pattern of `lane`'s `source`-th source.
    #[must_use]
    pub fn source_pattern(&self, source: usize, lane: usize) -> &Pattern {
        &self.src[source].lanes[lane]
    }

    /// The stop pattern of `lane`'s `sink`-th sink.
    #[must_use]
    pub fn sink_pattern(&self, sink: usize, lane: usize) -> &Pattern {
        &self.snk[sink].lanes[lane]
    }
}

/// One compiled environment row: the cheapest faithful evaluation
/// strategy for a [`PatternRow`] in the per-cycle hot loop.
#[derive(Debug, Clone)]
enum CompiledRow<W> {
    /// All lanes share one pattern: one scalar `at()` per cycle, splat.
    Uniform(Pattern),
    /// All lanes periodic with a small joint period: precomputed word
    /// table indexed by `cycle % len`.
    Table(Vec<W>),
    /// Mixed/aperiodic lanes: gather lane by lane.
    PerLane(Vec<Pattern>),
}

impl<W: LaneWord> CompiledRow<W> {
    fn compile(row: &PatternRow) -> Self {
        if row.uniform {
            return CompiledRow::Uniform(row.lanes[0].clone());
        }
        let mut period = 1u64;
        for p in &row.lanes {
            match p.period() {
                Some(pp) => period = lcm(period, pp),
                None => return CompiledRow::PerLane(row.lanes.clone()),
            }
            if period > MAX_TABLE_PERIOD {
                return CompiledRow::PerLane(row.lanes.clone());
            }
        }
        let words = (0..period)
            .map(|c| W::from_fn(|l| row.lanes[l].at(c)))
            .collect();
        CompiledRow::Table(words)
    }

    fn word(&self, cycle: u64) -> W {
        match self {
            CompiledRow::Uniform(p) => W::splat(p.at(cycle)),
            CompiledRow::Table(words) => {
                let idx = cycle % words.len() as u64;
                words[usize::try_from(idx).expect("table index fits usize")]
            }
            CompiledRow::PerLane(ps) => W::from_fn(|l| ps[l].at(cycle)),
        }
    }
}

/// [`LanePatterns`] compiled for the per-cycle hot loop: uniform rows
/// splat one scalar evaluation, fully periodic rows become precomputed
/// word tables, and only genuinely irregular rows pay the per-lane
/// gather. Compile once per run ([`BatchEngine::run_patterns`] does),
/// not per cycle.
#[derive(Debug, Clone)]
pub(crate) struct CompiledPatterns<W> {
    src: Vec<CompiledRow<W>>,
    snk: Vec<CompiledRow<W>>,
    width: usize,
}

impl<W: LaneWord> CompiledPatterns<W> {
    pub(crate) fn compile(pats: &LanePatterns) -> Self {
        assert_eq!(
            pats.width(),
            W::LANES,
            "pattern width must match the engine's lane count"
        );
        CompiledPatterns {
            src: pats.src.iter().map(CompiledRow::compile).collect(),
            snk: pats.snk.iter().map(CompiledRow::compile).collect(),
            width: pats.width,
        }
    }
}

/// `W::LANES` independent skeleton simulations advancing in lock-step,
/// one bit per lane per signal. See the [module docs](self); the
/// 64-lane `u64` instantiation is [`BatchSkeleton`].
///
/// # Example
///
/// Sweep is the typical use: run the same netlist under many different
/// environments at once.
///
/// ```
/// use lip_graph::generate;
/// use lip_sim::{BatchSkeleton, LanePatterns};
///
/// # fn main() -> Result<(), lip_graph::NetlistError> {
/// let fig1 = generate::fig1();
/// let mut batch = BatchSkeleton::new(&fig1.netlist)?;
/// let pats = LanePatterns::broadcast(batch.program());
/// batch.run_patterns(&pats, 500);
/// // Every lane ran the same environment here, so every lane sees the
/// // steady-state 4-of-5 throughput.
/// let (valid, voids) = batch.sink_counts_lane(fig1.sink, 17).expect("sink");
/// assert!(valid > 390 && valid + voids == 500);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BatchEngine<W: LaneWord> {
    prog: Arc<SettleProgram>,
    /// The streaming kernel's cell arena — all per-lane bit-state
    /// (settled valids/stops, source offers, shell registers and
    /// buffers, relay occupancies, FIFO bit-planes) lives here, laid out
    /// per [`crate::stream::StreamKernel`].
    arena: Vec<W>,
    /// Per shell: per-lane firing counters.
    fires: Vec<LaneCounters<W>>,
    /// Per sink: per-lane informative / void token counters.
    snk_valid: Vec<LaneCounters<W>>,
    snk_voids: Vec<LaneCounters<W>>,
    /// Lanes in which any shell fired since the last
    /// [`reset_fired_mask`](Self::reset_fired_mask).
    fired: W,
    cycle: u64,
    /// Reused environment-word buffers (sources / sinks), so pattern
    /// stepping never allocates per cycle.
    src_scratch: Vec<W>,
    snk_scratch: Vec<W>,
}

/// The 64-lane batch engine: [`BatchEngine`] over `u64` lane words.
/// Compiles to exactly the code the dedicated 64-lane engine had before
/// the width generalisation.
pub type BatchSkeleton = BatchEngine<u64>;

impl<W: LaneWord> BatchEngine<W> {
    /// Validate `netlist`, compile its settle program and reset all
    /// lanes to the netlist's own initial state.
    ///
    /// # Errors
    ///
    /// Propagates any [`NetlistError`] from [`Netlist::validate`].
    pub fn new(netlist: &Netlist) -> Result<Self, NetlistError> {
        Ok(Self::from_program(Arc::new(SettleProgram::compile(
            netlist,
        )?)))
    }

    /// All lanes reset under the program's own environment patterns
    /// (each source initially offers `!pattern.at(0)`, broadcast).
    #[must_use]
    pub fn from_program(prog: Arc<SettleProgram>) -> Self {
        let src_valid = prog
            .src_pattern
            .iter()
            .map(|p| W::splat(!p.at(0)))
            .collect();
        Self::with_initial(prog, src_valid)
    }

    /// Lanes reset under *per-lane* environments: each source initially
    /// offers `!pats.source_pattern(i, lane).at(0)` in its lane — the
    /// batched equivalent of building `W::LANES` netlists with different
    /// patterns and constructing a scalar skeleton for each.
    ///
    /// # Panics
    ///
    /// Panics if `pats` was built for a different lane width.
    #[must_use]
    pub fn from_patterns(prog: Arc<SettleProgram>, pats: &LanePatterns) -> Self {
        assert_eq!(
            pats.width(),
            W::LANES,
            "pattern width must match the engine's lane count"
        );
        let src_valid = (0..prog.src_pattern.len())
            .map(|i| W::from_fn(|lane| !pats.source_pattern(i, lane).at(0)))
            .collect();
        Self::with_initial(prog, src_valid)
    }

    fn with_initial(prog: Arc<SettleProgram>, src_valid: Vec<W>) -> Self {
        let k = &prog.kernel;
        let mut arena = vec![W::ZERO; k.cells];
        arena[CELL_ONES as usize] = W::ONES;
        for (i, v) in src_valid.into_iter().enumerate() {
            arena[k.src_valid as usize + i] = v;
        }
        // Shell output registers start valid (they hold the reset
        // token), exactly as the scalar skeleton resets them.
        for j in 0..prog.shell_out_ch.len() {
            arena[k.shell_out as usize + j] = W::ONES;
        }
        BatchEngine {
            arena,
            fires: vec![LaneCounters::default(); prog.shell_buffered.len()],
            snk_valid: vec![LaneCounters::default(); prog.snk_in_ch.len()],
            snk_voids: vec![LaneCounters::default(); prog.snk_in_ch.len()],
            fired: W::ZERO,
            cycle: 0,
            src_scratch: Vec::new(),
            snk_scratch: Vec::new(),
            prog,
        }
    }

    /// The compiled settle program all lanes execute.
    #[must_use]
    pub fn program(&self) -> &Arc<SettleProgram> {
        &self.prog
    }

    /// Adopt a patched settle program (see [`crate::patch`]) without
    /// rebuilding the engine: every lane keeps the state slices the
    /// patch left alone. Channels, source offers, shell registers,
    /// buffers and all counters carry over; relay occupancies map by
    /// node identity (rows may have moved between kind tables), with
    /// FIFO occupancies clamped into a shrunk capacity; kind-changed or
    /// newly inserted relays restart from reset, as do sources whose
    /// environment pattern changed. Adopting at reset is
    /// indistinguishable from [`from_program`](Self::from_program) on
    /// the new program.
    ///
    /// # Panics
    ///
    /// Panics if `new_prog` disagrees with the current program on
    /// source, sink or shell structure — patches never change those;
    /// anything that does requires a fresh engine.
    pub fn adopt(&mut self, new_prog: Arc<SettleProgram>) {
        let old_prog = std::mem::replace(&mut self.prog, new_prog);
        let (p1, p2) = (&*old_prog, &*self.prog);
        assert_eq!(p1.src_out_ch, p2.src_out_ch, "adopt cannot change sources");
        assert_eq!(
            p1.snk_in_ch.len(),
            p2.snk_in_ch.len(),
            "adopt cannot change sinks"
        );
        assert_eq!(
            (&p1.shell_buffered, &p1.shell_in_off, &p1.shell_out_off),
            (&p2.shell_buffered, &p2.shell_in_off, &p2.shell_out_off),
            "adopt cannot change shells"
        );
        let (k1, k2) = (&p1.kernel, &p2.kernel);
        let old_arena = std::mem::take(&mut self.arena);
        let mut arena = vec![W::ZERO; k2.cells];
        arena[CELL_ONES as usize] = W::ONES;
        let mut copy = |dst: u32, src: u32, n: usize| {
            arena[dst as usize..dst as usize + n]
                .copy_from_slice(&old_arena[src as usize..src as usize + n]);
        };
        // Channel ids are stable under patches (insertions append), as
        // are source / sink / shell rows.
        copy(k2.fwd, k1.fwd, p1.n_channels);
        copy(k2.stop, k1.stop, p1.n_channels);
        copy(k2.src_valid, k1.src_valid, p1.src_out_ch.len());
        copy(k2.shell_out, k1.shell_out, p1.shell_out_ch.len());
        copy(k2.in_buf, k1.in_buf, p1.shell_in_ch.len());
        copy(k2.fire, k1.fire, p1.shell_buffered.len());
        copy(k2.snk_stop, k1.snk_stop, p1.snk_in_ch.len());
        // Relay state maps by node identity — same-kind rows carry
        // over, kind changes reset (the new rows stay zeroed).
        for (node, &s1) in p1.comp_slots.iter().enumerate() {
            match (s1, p2.comp_slots[node]) {
                (CompSlot::Full(r1), CompSlot::Full(r2)) => {
                    arena[(k2.full_main + r2) as usize] = old_arena[(k1.full_main + r1) as usize];
                    arena[(k2.full_aux + r2) as usize] = old_arena[(k1.full_aux + r1) as usize];
                }
                (CompSlot::Half(r1), CompSlot::Half(r2)) => {
                    arena[(k2.half_occ + r2) as usize] = old_arena[(k1.half_occ + r1) as usize];
                }
                (CompSlot::Fifo(r1), CompSlot::Fifo(r2)) => {
                    let (r1, r2) = (r1 as usize, r2 as usize);
                    let planes1 = (k1.fifo_off[r1 + 1] - k1.fifo_off[r1]) as usize;
                    let planes2 = (k2.fifo_off[r2 + 1] - k2.fifo_off[r2]) as usize;
                    let cap = u64::from(p2.fifo_cap[r2]);
                    let occ = |b: usize| {
                        if b < planes1 {
                            old_arena[(k1.fifo + k1.fifo_off[r1]) as usize + b]
                        } else {
                            W::ZERO
                        }
                    };
                    // Lanes whose occupancy exceeds the new capacity
                    // (bit-sliced MSB-down compare) get clamped to it:
                    // occ' = min(occ, cap).
                    let mut gt = W::ZERO;
                    let mut eq = W::ONES;
                    for b in (0..planes1.max(planes2)).rev() {
                        let o = occ(b);
                        if (cap >> b) & 1 == 1 {
                            eq = eq.and(o);
                        } else {
                            gt = gt.or(eq.and(o));
                            eq = eq.andnot(o);
                        }
                    }
                    for b in 0..planes2 {
                        let cap_b = if (cap >> b) & 1 == 1 { gt } else { W::ZERO };
                        arena[(k2.fifo + k2.fifo_off[r2]) as usize + b] =
                            occ(b).andnot(gt).or(cap_b);
                    }
                }
                _ => {}
            }
        }
        // A patched environment pattern restarts that source's offer
        // from the pattern at the current cycle (broadcast; per-lane
        // environments are driven through the step calls anyway).
        for (i, p) in p2.src_pattern.iter().enumerate() {
            if p1.src_pattern[i] != *p {
                arena[k2.src_valid as usize + i] = W::splat(!p.at(self.cycle));
            }
        }
        self.arena = arena;
    }

    /// Cycles executed so far (identical across lanes).
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Lanes this engine advances per step.
    #[must_use]
    pub fn lanes(&self) -> usize {
        W::LANES
    }

    /// Settle every lane's valid/stop bits against this cycle's sink
    /// stop words (`sink_stop[j]` lane `l` = lane `l`'s stop on sink
    /// `j`): stage the sink stops into the arena and run the streaming
    /// op tape. Probe hooks receive the word-wide `*_mask` form — one
    /// call covers all lanes — and are guarded by [`Probe::ENABLED`].
    fn settle_probed<P: Probe>(&mut self, sink_stop: &[W], probe: &mut P) {
        let k = &self.prog.kernel;
        for (j, &s) in sink_stop.iter().enumerate() {
            self.arena[k.snk_stop as usize + j] = s;
        }
        k.execute(&mut self.arena);

        if P::ENABLED {
            let p = &*self.prog;
            let arena = &self.arena;
            let cycle = self.cycle;
            let mut buf = [0u64; 16];
            if p.discards {
                for &s in &p.bwd_shell_order {
                    let s = s as usize;
                    let f = arena[k.fire as usize + s];
                    for kk in p.shell_in_range(s) {
                        let ch = p.shell_in_ch[kk] as usize;
                        // Lanes where the baseline stop is suppressed
                        // against a void input (the refinement):
                        // `!fire & !fwd`.
                        let discarded = f.or(arena[k.fwd as usize + ch]).not();
                        if discarded.any() {
                            discarded.write_words(&mut buf[..W::WORDS]);
                            probe.void_discard_mask(cycle, ch as u32, &buf[..W::WORDS]);
                        }
                    }
                }
            }
            for ch in 0..p.n_channels {
                let stop = arena[k.stop as usize + ch];
                if stop.any() {
                    stop.write_words(&mut buf[..W::WORDS]);
                    probe.stall_mask(cycle, ch as u32, &buf[..W::WORDS]);
                }
                let fwd = arena[k.fwd as usize + ch];
                if fwd != W::ONES {
                    fwd.not().write_words(&mut buf[..W::WORDS]);
                    probe.channel_void_mask(cycle, ch as u32, &buf[..W::WORDS]);
                }
            }
        }
    }

    /// Settle and clock one cycle with the environment driven by masks:
    /// `sink_stop[j]` is sink `j`'s stop word for this cycle and
    /// `source_next[i]` the validity word of source `i`'s next offer (a
    /// held token stays held, per lane). Lane `l` of each word belongs
    /// to lane `l`; indices follow
    /// [`Netlist::sources`](lip_graph::Netlist::sources) /
    /// [`Netlist::sinks`](lip_graph::Netlist::sinks) order.
    ///
    /// Lane `l` of this call is bit-identical to
    /// [`SkeletonSystem::step_with`](crate::SkeletonSystem::step_with)
    /// invoked with lane `l` of every word.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the source/sink counts.
    pub fn step_with_masks(&mut self, source_next: &[W], sink_stop: &[W]) {
        self.step_with_masks_probed(source_next, sink_stop, &mut NullProbe);
    }

    /// [`step_with_masks`](Self::step_with_masks) with observation: the
    /// word-wide analogue of
    /// [`SkeletonSystem::step_probed`](crate::SkeletonSystem::step_probed),
    /// delivering `*_mask` hooks (`&[u64]` sub-word slices, bit `l` of
    /// word `w` = lane `64·w + l`) for stalls, voids, discards, sink
    /// consumption, shell firings and relay traffic, then
    /// [`end_cycle`](Probe::end_cycle). With [`NullProbe`] this
    /// monomorphizes to the unobserved step.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the source/sink counts.
    pub fn step_with_masks_probed<P: Probe>(
        &mut self,
        source_next: &[W],
        sink_stop: &[W],
        probe: &mut P,
    ) {
        assert_eq!(
            source_next.len(),
            self.prog.source_count(),
            "source mask arity"
        );
        assert_eq!(sink_stop.len(), self.prog.sink_count(), "sink mask arity");
        self.settle_probed(sink_stop, probe);
        self.clock_probed(source_next, sink_stop, probe);
    }

    /// The clock phase of one step: commit this cycle's settled state
    /// into the registered regions (source offers, sink counters, shell
    /// registers and buffers, relay occupancies, FIFO bit-planes) and
    /// deliver the clock-edge probe hooks. Callers must have settled
    /// against the same `sink_stop` words first.
    fn clock_probed<P: Probe>(&mut self, source_next: &[W], sink_stop: &[W], probe: &mut P) {
        let Self {
            prog,
            arena,
            fires,
            snk_valid,
            snk_voids,
            fired,
            cycle,
            ..
        } = self;
        let p: &SettleProgram = prog;
        let k = &p.kernel;
        let mut buf = [0u64; 16];

        // Sources: a stopped valid offer is held; everyone else loads
        // the next offer.
        for (i, &next) in source_next.iter().enumerate() {
            let sv = arena[k.src_valid as usize + i];
            let held = sv.and(arena[k.stop as usize + p.src_out_ch[i] as usize]);
            arena[k.src_valid as usize + i] = held.or(next.andnot(held));
        }
        // Sinks: lanes not stopping consume; count informative vs void.
        for (j, &stopping) in sink_stop.iter().enumerate() {
            let consumed = stopping.not();
            let v = arena[k.fwd as usize + p.snk_in_ch[j] as usize];
            snk_valid[j].add(consumed.and(v));
            snk_voids[j].add(consumed.andnot(v));
            if P::ENABLED {
                let informative = consumed.and(v);
                if informative.any() {
                    informative.write_words(&mut buf[..W::WORDS]);
                    probe.consume_mask(*cycle, p.snk_in_ch[j], &buf[..W::WORDS]);
                }
                let void = consumed.andnot(v);
                if void.any() {
                    void.write_words(&mut buf[..W::WORDS]);
                    probe.void_in_mask(*cycle, p.snk_in_ch[j], &buf[..W::WORDS]);
                }
            }
        }
        // Shells: firing lanes revalidate every output register and
        // drain buffers; stalled lanes latch arrivals and deassert
        // unheld outputs.
        for s in 0..p.shell_buffered.len() {
            let f = arena[k.fire as usize + s];
            *fired = fired.or(f);
            fires[s].add(f);
            if P::ENABLED && f.any() {
                f.write_words(&mut buf[..W::WORDS]);
                probe.fire_mask(*cycle, s as u32, &buf[..W::WORDS]);
            }
            if p.shell_buffered[s] {
                for kk in p.shell_in_range(s) {
                    let v = arena[k.fwd as usize + p.shell_in_ch[kk] as usize];
                    let ib = arena[k.in_buf as usize + kk];
                    arena[k.in_buf as usize + kk] = ib.or(v).andnot(f);
                }
            }
            for kk in p.shell_out_range(s) {
                let stp = arena[k.stop as usize + p.shell_out_ch[kk] as usize];
                let so = arena[k.shell_out as usize + kk];
                arena[k.shell_out as usize + kk] = f.or(so.and(stp));
            }
        }
        // Full relays: two registers, aux absorbs one token under stop.
        for i in 0..p.full_in_ch.len() {
            let input = arena[k.fwd as usize + p.full_in_ch[i] as usize];
            let stopped = arena[k.stop as usize + p.full_out_ch[i] as usize];
            let main = arena[k.full_main as usize + i];
            let aux = arena[k.full_aux as usize + i];
            let released = main.andnot(stopped);
            if P::ENABLED {
                // Token movement (see the scalar step for the rationale):
                // enters where offered and aux free, leaves where main
                // releases.
                let fill = input.andnot(aux);
                if fill.any() {
                    fill.write_words(&mut buf[..W::WORDS]);
                    probe.relay_fill_mask(*cycle, p.full_relay_row(i), &buf[..W::WORDS]);
                }
                if released.any() {
                    released.write_words(&mut buf[..W::WORDS]);
                    probe.relay_drain_mask(*cycle, p.full_relay_row(i), &buf[..W::WORDS]);
                }
            }
            arena[k.full_main as usize + i] = aux
                .or(main.andnot(released))
                .or(input.and(main.not().or(released)));
            arena[k.full_aux as usize + i] = aux.or(main.and(input)).andnot(released);
        }
        // Half relays: occupied while stopped.
        for h in 0..p.half_in_ch.len() {
            let input = arena[k.fwd as usize + p.half_in_ch[h] as usize];
            let stopped = arena[k.stop as usize + p.half_out_ch[h] as usize];
            let occ = arena[k.half_occ as usize + h];
            if P::ENABLED {
                let fill = stopped.and(input).andnot(occ);
                let drain = occ.andnot(stopped);
                if fill.any() {
                    fill.write_words(&mut buf[..W::WORDS]);
                    probe.relay_fill_mask(*cycle, p.half_relay_row(h), &buf[..W::WORDS]);
                }
                if drain.any() {
                    drain.write_words(&mut buf[..W::WORDS]);
                    probe.relay_drain_mask(*cycle, p.half_relay_row(h), &buf[..W::WORDS]);
                }
            }
            arena[k.half_occ as usize + h] = stopped.and(occ.or(input));
        }
        // FIFOs: masked ripple-carry decrement (drain) then increment
        // (accept); a full FIFO refuses the arrival. The settle already
        // computed emptiness (the forwarded valid) and fullness (the
        // backward stop on the input channel) — reuse both.
        for i in 0..p.fifo_in_ch.len() {
            let input = arena[k.fwd as usize + p.fifo_in_ch[i] as usize];
            let stopped = arena[k.stop as usize + p.fifo_out_ch[i] as usize];
            let nonzero = arena[k.fwd as usize + p.fifo_out_ch[i] as usize];
            let was_full = arena[k.stop as usize + p.fifo_in_ch[i] as usize];
            let drain = nonzero.andnot(stopped);
            let fill = input.andnot(was_full);
            if P::ENABLED {
                if fill.any() {
                    fill.write_words(&mut buf[..W::WORDS]);
                    probe.relay_fill_mask(*cycle, p.fifo_relay_row(i), &buf[..W::WORDS]);
                }
                if drain.any() {
                    drain.write_words(&mut buf[..W::WORDS]);
                    probe.relay_drain_mask(*cycle, p.fifo_relay_row(i), &buf[..W::WORDS]);
                }
            }
            let planes = (k.fifo + k.fifo_off[i]) as usize..(k.fifo + k.fifo_off[i + 1]) as usize;
            let mut borrow = drain;
            for c in planes.clone() {
                let pl = arena[c];
                arena[c] = pl.xor(borrow);
                borrow = borrow.andnot(pl);
            }
            let mut carry = fill;
            for c in planes {
                let pl = arena[c];
                arena[c] = pl.xor(carry);
                carry = carry.and(pl);
            }
        }
        if P::ENABLED {
            probe.end_cycle(*cycle);
        }
        *cycle += 1;
    }

    /// Settle and clock one cycle with each lane's environment drawn
    /// from `pats` — lane `l` is bit-identical to a scalar
    /// [`SkeletonSystem::step`](crate::SkeletonSystem::step) under lane
    /// `l`'s patterns.
    ///
    /// # Panics
    ///
    /// Panics if `pats` arity or width does not match.
    pub fn step_patterns(&mut self, pats: &LanePatterns) {
        self.step_patterns_probed(pats, &mut NullProbe);
    }

    /// [`step_patterns`](Self::step_patterns) with observation (see
    /// [`step_with_masks_probed`](Self::step_with_masks_probed)).
    ///
    /// # Panics
    ///
    /// Panics if `pats` arity or width does not match.
    pub fn step_patterns_probed<P: Probe>(&mut self, pats: &LanePatterns, probe: &mut P) {
        assert_eq!(
            pats.width(),
            W::LANES,
            "pattern width must match the engine's lane count"
        );
        let cycle = self.cycle;
        let mut src = std::mem::take(&mut self.src_scratch);
        let mut snk = std::mem::take(&mut self.snk_scratch);
        src.clear();
        snk.clear();
        snk.extend(pats.snk.iter().map(|row| row.word::<W>(cycle)));
        src.extend(pats.src.iter().map(|row| row.word::<W>(cycle + 1).not()));
        self.step_with_masks_probed(&src, &snk, probe);
        self.src_scratch = src;
        self.snk_scratch = snk;
    }

    /// One cycle under a precompiled environment (see
    /// [`CompiledPatterns`]): the hot-loop form `run_patterns` and the
    /// measurement drivers use — word tables instead of per-lane
    /// pattern evaluation.
    pub(crate) fn step_compiled_probed<P: Probe>(
        &mut self,
        pats: &CompiledPatterns<W>,
        probe: &mut P,
    ) {
        debug_assert_eq!(pats.width, W::LANES);
        let cycle = self.cycle;
        let mut src = std::mem::take(&mut self.src_scratch);
        let mut snk = std::mem::take(&mut self.snk_scratch);
        src.clear();
        snk.clear();
        snk.extend(pats.snk.iter().map(|row| row.word(cycle)));
        src.extend(pats.src.iter().map(|row| row.word(cycle + 1).not()));
        self.step_with_masks_probed(&src, &snk, probe);
        self.src_scratch = src;
        self.snk_scratch = snk;
    }

    /// One cycle under a precompiled environment with kernel execution
    /// counters: the settle runs through
    /// [`StreamKernel::execute_counted`](crate::stream::StreamKernel),
    /// so `kc` accrues per-opcode/per-stratum retirement for this
    /// settle; the clock phase is the plain unprobed one. Lane
    /// behaviour is bit-identical to
    /// [`step_compiled_probed`](Self::step_compiled_probed).
    ///
    /// Destination-occupancy popcounts run on one settle in
    /// [`OCC_SAMPLE_EVERY`] (keyed off `kc.settles`, so the first
    /// counted settle always samples); the sampled `occ_ops`
    /// denominator keeps the statistic exact while the retirement
    /// counters stay exact on every settle.
    pub(crate) fn step_compiled_counted(
        &mut self,
        pats: &CompiledPatterns<W>,
        kc: &mut KernelCounters,
    ) {
        debug_assert_eq!(pats.width, W::LANES);
        let cycle = self.cycle;
        let mut src = std::mem::take(&mut self.src_scratch);
        let mut snk = std::mem::take(&mut self.snk_scratch);
        src.clear();
        snk.clear();
        snk.extend(pats.snk.iter().map(|row| row.word(cycle)));
        src.extend(pats.src.iter().map(|row| row.word(cycle + 1).not()));
        let k = &self.prog.kernel;
        for (j, &s) in snk.iter().enumerate() {
            self.arena[k.snk_stop as usize + j] = s;
        }
        k.execute_counted(
            &mut self.arena,
            kc,
            kc.settles.is_multiple_of(OCC_SAMPLE_EVERY),
        );
        self.clock_probed(&src, &snk, &mut NullProbe);
        self.src_scratch = src;
        self.snk_scratch = snk;
    }

    /// Run `n` cycles under `pats`, accumulating kernel execution
    /// counters into `kc` — the counted twin of
    /// [`run_patterns`](Self::run_patterns). `kc` must be laid out by
    /// [`kernel_counters`](Self::kernel_counters) (or merge-compatible
    /// with it); after the run, `kc` gains exactly `n` settles of `n ×`
    /// [`SettleProgram::kernel_op_count`] retired ops, reconciled per
    /// stratum.
    ///
    /// # Panics
    ///
    /// Panics if `pats` arity or width does not match.
    pub fn run_patterns_counted(&mut self, pats: &LanePatterns, n: u64, kc: &mut KernelCounters) {
        let compiled = CompiledPatterns::compile(pats);
        for _ in 0..n {
            self.step_compiled_counted(&compiled, kc);
        }
    }

    /// A zeroed [`KernelCounters`] laid out for this engine:
    /// `W::LANES` lanes, the streaming kernel's six opcodes and five
    /// settle strata. Counters from engines of the same width merge
    /// even across different netlists.
    #[must_use]
    pub fn kernel_counters(&self) -> KernelCounters {
        KernelCounters::new(
            W::LANES as u32,
            &crate::stream::OP_NAMES,
            &crate::stream::STRATA,
        )
    }

    /// Run `n` cycles under `pats`.
    ///
    /// # Panics
    ///
    /// Panics if `pats` arity or width does not match.
    pub fn run_patterns(&mut self, pats: &LanePatterns, n: u64) {
        self.run_patterns_probed(pats, n, &mut NullProbe);
    }

    /// Run `n` cycles under `pats` with observation. The environment is
    /// compiled once up front (uniform rows splat, periodic rows become
    /// word tables), so the per-cycle cost is a handful of word ops even
    /// at 1024 lanes.
    ///
    /// # Panics
    ///
    /// Panics if `pats` arity or width does not match.
    pub fn run_patterns_probed<P: Probe>(&mut self, pats: &LanePatterns, n: u64, probe: &mut P) {
        let compiled = CompiledPatterns::compile(pats);
        for _ in 0..n {
            self.step_compiled_probed(&compiled, probe);
        }
    }

    /// Settled valid word of channel `ch` (one bit per lane). Reflects
    /// the last settle; call after a step.
    #[must_use]
    pub fn channel_valid(&self, ch: usize) -> W {
        self.arena[self.prog.kernel.fwd as usize + ch]
    }

    /// Settled stop word of channel `ch` (one bit per lane).
    #[must_use]
    pub fn channel_stop(&self, ch: usize) -> W {
        self.arena[self.prog.kernel.stop as usize + ch]
    }

    /// Lanes in which at least one shell fired since the last
    /// [`reset_fired_mask`](Self::reset_fired_mask) — the batched wedge
    /// probe: a lane still clear after a deep run has made no progress
    /// anywhere in the system.
    #[must_use]
    pub fn fired_mask(&self) -> W {
        self.fired
    }

    /// Clear the fired mask (start a new progress observation window).
    pub fn reset_fired_mask(&mut self) {
        self.fired = W::ZERO;
    }

    /// `(valid, voids)` consumed so far by the sink at `node` in `lane`.
    #[must_use]
    pub fn sink_counts_lane(&self, node: NodeId, lane: usize) -> Option<(u64, u64)> {
        match self.prog.comp_slots[node.index()] {
            CompSlot::Sink(j) => Some((
                self.snk_valid[j as usize].get(lane),
                self.snk_voids[j as usize].get(lane),
            )),
            _ => None,
        }
    }

    /// Firings so far of the shell at `node` in `lane`.
    #[must_use]
    pub fn shell_fires_lane(&self, node: NodeId, lane: usize) -> Option<u64> {
        match self.prog.comp_slots[node.index()] {
            CompSlot::Shell(s) => Some(self.fires[s as usize].get(lane)),
            _ => None,
        }
    }

    /// Total shell firings so far in `lane`, summed over all shells.
    #[must_use]
    pub fn total_fires_lane(&self, lane: usize) -> u64 {
        self.fires.iter().map(|c| c.get(lane)).sum()
    }

    /// Lane `lane`'s component control state, in exactly the format of
    /// [`SkeletonSystem::component_state`](crate::SkeletonSystem::component_state)
    /// — the explorer's state key.
    #[must_use]
    pub fn lane_component_state(&self, lane: usize) -> Vec<u64> {
        let p = &*self.prog;
        let k = &p.kernel;
        let bit = |base: u32, i: usize| u64::from(self.arena[base as usize + i].lane(lane));
        let mut out = Vec::with_capacity(p.comp_slots.len());
        for slot in &p.comp_slots {
            match *slot {
                CompSlot::Source(i) => out.push(bit(k.src_valid, i as usize)),
                CompSlot::Sink(_) => {}
                CompSlot::Shell(s) => {
                    let s = s as usize;
                    let mut bits = 0u64;
                    let mut j = 0;
                    for kk in p.shell_out_range(s) {
                        bits |= bit(k.shell_out, kk) << (j % 64);
                        j += 1;
                    }
                    if p.shell_buffered[s] {
                        for kk in p.shell_in_range(s) {
                            bits |= bit(k.in_buf, kk) << (j % 64);
                            j += 1;
                        }
                    }
                    out.push(bits);
                }
                CompSlot::Full(i) => {
                    let i = i as usize;
                    out.push(bit(k.full_main, i) + 2 * bit(k.full_aux, i));
                }
                CompSlot::Half(h) => out.push(bit(k.half_occ, h as usize)),
                CompSlot::Fifo(i) => {
                    let i = i as usize;
                    let mut v = 0u64;
                    for (b, plane) in (k.fifo_off[i]..k.fifo_off[i + 1]).enumerate() {
                        v |= bit(k.fifo, plane as usize) << b;
                    }
                    out.push(v);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lane::{Lanes1024, Lanes256};
    use crate::SkeletonSystem;
    use lip_core::RelayKind;
    use lip_graph::generate;

    #[test]
    fn lane_counters_count() {
        let mut c = LaneCounters::<u64>::default();
        for i in 0..137u64 {
            // Lane 0 every time, lane 3 on even rounds, lane 63 never.
            let mask = 1 | (u64::from(i % 2 == 0) << 3);
            c.add(mask);
        }
        assert_eq!(c.get(0), 137);
        assert_eq!(c.get(3), 69);
        assert_eq!(c.get(63), 0);
    }

    #[test]
    fn wide_lane_counters_count_past_word_boundaries() {
        let mut c = LaneCounters::<Lanes256>::default();
        for i in 0..200u64 {
            let mut m = Lanes256::ZERO.with_lane(0).with_lane(200);
            if i % 2 == 0 {
                m = m.with_lane(70);
            }
            c.add(m);
        }
        assert_eq!(c.get(0), 200);
        assert_eq!(c.get(70), 100);
        assert_eq!(c.get(200), 200);
        assert_eq!(c.get(255), 0);
    }

    #[test]
    fn broadcast_lanes_match_scalar_run_on_fig1() {
        let f = generate::fig1();
        let mut batch = BatchSkeleton::new(&f.netlist).unwrap();
        let pats = LanePatterns::broadcast(batch.program());
        let mut scalar = SkeletonSystem::new(&f.netlist).unwrap();
        for _ in 0..200 {
            batch.step_patterns(&pats);
            scalar.step();
        }
        let scalar_state = scalar.component_state();
        for lane in [0, 1, 31, 63] {
            assert_eq!(
                batch.lane_component_state(lane),
                scalar_state,
                "lane {lane}"
            );
            assert_eq!(
                batch.sink_counts_lane(f.sink, lane),
                scalar.sink_counts(f.sink),
                "lane {lane}"
            );
            assert_eq!(batch.total_fires_lane(lane), scalar.total_fires());
        }
    }

    #[test]
    fn wide_engine_lanes_match_scalar_run_on_fig1() {
        let f = generate::fig1();
        let mut batch = BatchEngine::<Lanes1024>::new(&f.netlist).unwrap();
        let pats = LanePatterns::broadcast_wide(batch.program(), 1024);
        let mut scalar = SkeletonSystem::new(&f.netlist).unwrap();
        for _ in 0..200 {
            batch.step_patterns(&pats);
            scalar.step();
        }
        let scalar_state = scalar.component_state();
        for lane in [0, 63, 64, 511, 1023] {
            assert_eq!(
                batch.lane_component_state(lane),
                scalar_state,
                "lane {lane}"
            );
            assert_eq!(
                batch.sink_counts_lane(f.sink, lane),
                scalar.sink_counts(f.sink),
                "lane {lane}"
            );
        }
    }

    #[test]
    fn fifo_bitslice_matches_scalar_on_fifo_ring() {
        let r = generate::ring(2, 2, RelayKind::Fifo(3));
        let mut batch = BatchSkeleton::new(&r.netlist).unwrap();
        let pats = LanePatterns::broadcast(batch.program());
        let mut scalar = SkeletonSystem::new(&r.netlist).unwrap();
        for _ in 0..100 {
            batch.step_patterns(&pats);
            scalar.step();
        }
        let scalar_state = scalar.component_state();
        for lane in [0, 42, 63] {
            assert_eq!(
                batch.lane_component_state(lane),
                scalar_state,
                "lane {lane}"
            );
        }
    }

    #[test]
    fn fired_mask_tracks_progress() {
        let f = generate::fig1();
        let mut batch = BatchSkeleton::new(&f.netlist).unwrap();
        let pats = LanePatterns::broadcast(batch.program());
        assert_eq!(batch.fired_mask(), 0);
        batch.run_patterns(&pats, 20);
        assert_eq!(batch.fired_mask(), !0, "all lanes progress on fig1");
        batch.reset_fired_mask();
        assert_eq!(batch.fired_mask(), 0);
    }

    #[test]
    fn per_lane_patterns_diverge() {
        use lip_core::Pattern;
        let f = generate::fig1();
        let mut batch = BatchSkeleton::new(&f.netlist).unwrap();
        let mut pats = LanePatterns::broadcast(batch.program());
        // Lane 7's sink stops every other cycle; lane 0 never stops.
        pats.set_sink(
            0,
            7,
            Pattern::EveryNth {
                period: 2,
                phase: 0,
            },
        );
        batch.run_patterns(&pats, 400);
        let (v0, n0) = batch.sink_counts_lane(f.sink, 0).unwrap();
        let (v7, n7) = batch.sink_counts_lane(f.sink, 7).unwrap();
        assert_eq!(v0 + n0, 400);
        assert!(v7 + n7 <= 200, "stopped lane consumes at most half");
        assert!(v0 > v7, "throttled sink sees fewer tokens");
    }

    #[test]
    fn counted_run_matches_plain_run_and_reconciles() {
        let f = generate::fig1();
        let mut plain = BatchEngine::<Lanes256>::new(&f.netlist).unwrap();
        let mut counted = plain.clone();
        let pats = LanePatterns::broadcast_wide(plain.program(), 256);
        let mut kc = counted.kernel_counters();
        plain.run_patterns(&pats, 300);
        counted.run_patterns_counted(&pats, 300, &mut kc);
        for lane in [0usize, 63, 64, 200, 255] {
            assert_eq!(
                plain.lane_component_state(lane),
                counted.lane_component_state(lane),
                "lane {lane}"
            );
            assert_eq!(
                plain.sink_counts_lane(f.sink, lane),
                counted.sink_counts_lane(f.sink, lane),
                "lane {lane}"
            );
        }
        // One settle per cycle, the whole tape retired each time.
        assert_eq!(kc.lanes, 256);
        assert_eq!(kc.settles, 300);
        assert_eq!(
            kc.expected_ops,
            300 * plain.program().kernel_op_count() as u64
        );
        assert!(kc.reconciles());
        // Wide words: 4 u64 words per lane value.
        assert_eq!(kc.total_lane_words(), kc.total_ops() * 4);
        let occ = kc.occupancy();
        assert!(occ > 0.0 && occ <= 1.0, "occupancy {occ}");
    }

    #[test]
    fn compiled_patterns_match_direct_evaluation() {
        use lip_core::Pattern;
        let f = generate::fig1();
        let prog = Arc::new(SettleProgram::compile(&f.netlist).unwrap());
        let mut pats = LanePatterns::broadcast_wide(&prog, 128);
        // A mixed row: periodic lanes of different periods plus a
        // random (aperiodic-classified) lane.
        pats.set_sink(
            0,
            3,
            Pattern::EveryNth {
                period: 3,
                phase: 1,
            },
        );
        pats.set_sink(
            0,
            100,
            Pattern::EveryNth {
                period: 5,
                phase: 0,
            },
        );
        pats.set_source(
            0,
            64,
            Pattern::Random {
                num: 1,
                denom: 3,
                seed: 7,
            },
        );
        let mut direct = BatchEngine::<crate::lane::Lanes128>::from_patterns(prog.clone(), &pats);
        let mut compiled = BatchEngine::<crate::lane::Lanes128>::from_patterns(prog, &pats);
        let cp = CompiledPatterns::compile(&pats);
        for _ in 0..300 {
            direct.step_patterns(&pats);
            compiled.step_compiled_probed(&cp, &mut NullProbe);
        }
        for lane in [0, 3, 64, 100, 127] {
            assert_eq!(
                direct.lane_component_state(lane),
                compiled.lane_component_state(lane),
                "lane {lane}"
            );
            assert_eq!(
                direct.sink_counts_lane(f.sink, lane),
                compiled.sink_counts_lane(f.sink, lane),
                "lane {lane}"
            );
        }
    }
}
