//! RTL elaboration: the netlist as a register-transfer-level circuit on
//! the [`lip_kernel`] substrate.
//!
//! The paper validated its blocks with "a VHDL description of all blocks
//! and an event-driven simulator". [`elaborate_rtl`] plays the part of
//! that VHDL: every channel becomes three signals (`valid`, `data`,
//! `stop`), every block a handful of registers plus combinational and
//! sequential processes, exactly as the FMGALS'03 FSMs describe. The
//! result runs on either kernel engine — the levelised
//! [`CycleEngine`](lip_kernel::CycleEngine) or the delta-cycle
//! [`EventEngine`](lip_kernel::EventEngine) — and the test-suite checks
//! it against the direct [`System`](crate::System) interpreter
//! sink-for-sink, making three independent implementations of the
//! protocol that must agree.

use std::collections::HashMap;

use lip_core::{Pattern, ProtocolVariant, RelayKind};
use lip_graph::{Netlist, NetlistError, NodeId, NodeKind};
use lip_kernel::{Circuit, CircuitBuilder, Engine, SignalId, Trace};
use lip_obs::Probe;

/// Probes into an elaborated RTL design.
#[derive(Debug, Clone)]
pub struct RtlProbes {
    /// Per sink: `(valid_count, void_count)` counter registers.
    sink_counts: Vec<(NodeId, SignalId, SignalId)>,
    /// Per channel: `(valid, data, stop)` signals, indexed by channel.
    channels: Vec<(SignalId, SignalId, SignalId)>,
}

impl RtlProbes {
    /// Counter registers of the sink at `node`:
    /// `(informative_tokens, voids)`.
    #[must_use]
    pub fn sink_counters(&self, node: NodeId) -> Option<(SignalId, SignalId)> {
        self.sink_counts
            .iter()
            .find(|(id, _, _)| *id == node)
            .map(|(_, v, n)| (*v, *n))
    }

    /// `(valid, data, stop)` signals of channel index `ch`.
    #[must_use]
    pub fn channel_signals(&self, ch: usize) -> Option<(SignalId, SignalId, SignalId)> {
        self.channels.get(ch).copied()
    }

    /// Number of probed channels.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Read a sink's informative-token count from a running engine.
    #[must_use]
    pub fn read_sink_valid(&self, engine: &dyn Engine, node: NodeId) -> Option<u64> {
        let (v, _) = self.sink_counters(node)?;
        Some(engine.value(v))
    }

    /// Read a sink's void count from a running engine.
    #[must_use]
    pub fn read_sink_voids(&self, engine: &dyn Engine, node: NodeId) -> Option<u64> {
        let (_, n) = self.sink_counters(node)?;
        Some(engine.value(n))
    }
}

/// Replay a recorded RTL [`Trace`] into protocol events on `probe`.
///
/// The kernel engines clock plain circuits and know nothing of the
/// valid/stop protocol, so RTL observability hooks the recorded waveform
/// rather than the clock loop: for every recorded cycle, each channel
/// whose `stop` signal settled high yields a [`Probe::stall`] and each
/// whose `valid` signal settled low a [`Probe::channel_void`] (lane 0),
/// followed by [`Probe::end_cycle`]. Run the engine with
/// `enable_trace()` and feed the resulting trace here together with the
/// [`RtlProbes`] from [`elaborate_rtl`]; the per-channel stall/void
/// counters match the skeleton engine's settle sweep cycle for cycle.
pub fn replay_trace_events<P: Probe>(trace: &Trace, probes: &RtlProbes, probe: &mut P) {
    let mut values: HashMap<SignalId, u64> = HashMap::new();
    for (cycle, changes) in trace.iter() {
        for c in changes {
            values.insert(c.signal, c.value);
        }
        for ch in 0..probes.channel_count() {
            let (valid, _, stop) = probes.channel_signals(ch).expect("indexed channel");
            if values.get(&stop).copied().unwrap_or(0) != 0 {
                probe.stall(cycle, ch as u32, 0);
            }
            if values.get(&valid).copied().unwrap_or(0) == 0 {
                probe.channel_void(cycle, ch as u32, 0);
            }
        }
        probe.end_cycle(cycle);
    }
}

/// Elaborate `netlist` into a kernel [`Circuit`] plus probes.
///
/// # Errors
///
/// Propagates [`NetlistError`] from validation, or panics are avoided by
/// the same structural guarantees the direct simulator relies on.
pub fn elaborate_rtl(netlist: &Netlist) -> Result<(Circuit, RtlProbes), NetlistError> {
    netlist.validate()?;
    let mut b = CircuitBuilder::new();
    let variant = netlist.variant();

    // Channel signals.
    let mut channels = Vec::with_capacity(netlist.channel_count());
    for (id, _) in netlist.channels() {
        let v = b.wire(format!("c{}_valid", id.index()), 1, 0);
        let d = b.wire(format!("c{}_data", id.index()), 64, 0);
        let s = b.wire(format!("c{}_stop", id.index()), 1, 0);
        channels.push((v, d, s));
    }

    let mut sink_counts = Vec::new();

    for (id, node) in netlist.nodes() {
        let name = node.name().to_owned();
        let in_sig: Vec<(SignalId, SignalId, SignalId)> = (0..node.kind().num_inputs())
            .map(|p| channels[netlist.in_channel(id, p).expect("validated").index()])
            .collect();
        let out_sig: Vec<(SignalId, SignalId, SignalId)> = (0..node.kind().num_outputs())
            .map(|p| channels[netlist.out_channel(id, p).expect("validated").index()])
            .collect();

        match node.kind() {
            NodeKind::Source { void_pattern } => {
                elaborate_source(&mut b, &name, void_pattern.clone(), out_sig[0]);
            }
            NodeKind::Sink { stop_pattern } => {
                let counters = elaborate_sink(&mut b, &name, stop_pattern.clone(), in_sig[0]);
                sink_counts.push((id, counters.0, counters.1));
            }
            NodeKind::Shell {
                pearl,
                buffered: false,
            } => {
                elaborate_shell(&mut b, &name, pearl.clone(), variant, &in_sig, &out_sig);
            }
            NodeKind::Shell {
                pearl,
                buffered: true,
            } => {
                elaborate_buffered_shell(&mut b, &name, pearl.clone(), variant, &in_sig, &out_sig);
            }
            NodeKind::Relay {
                kind: RelayKind::Full,
            } => {
                elaborate_full_relay(&mut b, &name, in_sig[0], out_sig[0]);
            }
            NodeKind::Relay {
                kind: RelayKind::Half,
            } => {
                elaborate_half_relay(&mut b, &name, in_sig[0], out_sig[0]);
            }
            NodeKind::Relay {
                kind: RelayKind::Fifo(k),
            } => {
                elaborate_fifo_relay(&mut b, &name, *k as usize, in_sig[0], out_sig[0]);
            }
        }
    }

    let circuit = b.build().expect("LID elaboration is structurally sound");
    Ok((
        circuit,
        RtlProbes {
            sink_counts,
            channels,
        },
    ))
}

type ChannelSignals = (SignalId, SignalId, SignalId);

fn elaborate_source(b: &mut CircuitBuilder, name: &str, pattern: Pattern, out: ChannelSignals) {
    let (ov, od, ostop) = out;
    let first_valid = !pattern.at(0);
    let valid_r = b.register(format!("{name}_valid"), 1, u64::from(first_valid));
    let data_r = b.register(format!("{name}_data"), 64, 0);
    let seq_r = b.register(format!("{name}_seq"), 64, u64::from(first_valid));
    let cycle_r = b.register(format!("{name}_cycle"), 64, 0);
    b.comb(
        format!("{name}_drive"),
        &[valid_r, data_r],
        &[ov, od],
        move |ctx| {
            let v = ctx.get(valid_r);
            let d = ctx.get(data_r);
            ctx.set(ov, v);
            ctx.set(od, d);
        },
    );
    b.seq(
        format!("{name}_clk"),
        &[valid_r, data_r, seq_r, cycle_r, ostop],
        &[valid_r, data_r, seq_r, cycle_r],
        move |ctx| {
            let next_cycle = ctx.get(cycle_r) + 1;
            ctx.set_next(cycle_r, next_cycle);
            let held = ctx.get_bool(valid_r) && ctx.get_bool(ostop);
            if held {
                return;
            }
            if pattern.at(next_cycle) {
                ctx.set_next_bool(valid_r, false);
            } else {
                let seq = ctx.get(seq_r);
                ctx.set_next_bool(valid_r, true);
                ctx.set_next(data_r, seq);
                ctx.set_next(seq_r, seq + 1);
            }
        },
    );
}

/// Returns the `(valid_count, void_count)` registers.
fn elaborate_sink(
    b: &mut CircuitBuilder,
    name: &str,
    pattern: Pattern,
    input: ChannelSignals,
) -> (SignalId, SignalId) {
    let (iv, _id, istop) = input;
    let cycle_r = b.register(format!("{name}_cycle"), 64, 0);
    let valid_c = b.register(format!("{name}_valid_count"), 64, 0);
    let void_c = b.register(format!("{name}_void_count"), 64, 0);
    let pat = pattern.clone();
    b.comb(format!("{name}_stop"), &[cycle_r], &[istop], move |ctx| {
        let c = ctx.get(cycle_r);
        ctx.set_bool(istop, pat.at(c));
    });
    b.seq(
        format!("{name}_clk"),
        &[cycle_r, valid_c, void_c, iv],
        &[cycle_r, valid_c, void_c],
        move |ctx| {
            let c = ctx.get(cycle_r);
            ctx.set_next(cycle_r, c + 1);
            if !pattern.at(c) {
                if ctx.get_bool(iv) {
                    ctx.set_next(valid_c, ctx.get(valid_c) + 1);
                } else {
                    ctx.set_next(void_c, ctx.get(void_c) + 1);
                }
            }
        },
    );
    (valid_c, void_c)
}

fn elaborate_shell(
    b: &mut CircuitBuilder,
    name: &str,
    mut pearl: Box<dyn lip_core::Pearl>,
    variant: ProtocolVariant,
    ins: &[ChannelSignals],
    outs: &[ChannelSignals],
) {
    let n_in = ins.len();
    let n_out = outs.len();
    // Initial outputs: the pearl fired once over zeros (paper footnote:
    // shell outputs initialise valid).
    let mut init = vec![0u64; n_out];
    pearl.eval(&vec![0u64; n_in], &mut init);

    let ov_r: Vec<SignalId> = (0..n_out)
        .map(|j| b.register(format!("{name}_ov{j}"), 1, 1))
        .collect();
    let od_r: Vec<SignalId> = (0..n_out)
        .map(|j| b.register(format!("{name}_od{j}"), 64, init[j]))
        .collect();

    // Drive output wires from the registers.
    for (j, out) in outs.iter().enumerate() {
        let (wv, wd, _) = *out;
        let rv = ov_r[j];
        let rd = od_r[j];
        b.comb(
            format!("{name}_drive{j}"),
            &[rv, rd],
            &[wv, wd],
            move |ctx| {
                let v = ctx.get(rv);
                let d = ctx.get(rd);
                ctx.set(wv, v);
                ctx.set(wd, d);
            },
        );
    }

    // Shared firing condition, used by the stop process and the edge.
    let in_valid: Vec<SignalId> = ins.iter().map(|(v, _, _)| *v).collect();
    let out_stop: Vec<SignalId> = outs.iter().map(|(_, _, s)| *s).collect();
    let fire_of = {
        let in_valid = in_valid.clone();
        let out_stop = out_stop.clone();
        let ov_r = ov_r.clone();
        move |get: &dyn Fn(SignalId) -> u64| -> bool {
            let all_valid = in_valid.iter().all(|s| get(*s) != 0);
            let blocked = out_stop
                .iter()
                .zip(&ov_r)
                .any(|(s, ov)| get(*s) != 0 && (get(*ov) != 0 || !variant.discards_stop_on_void()));
            all_valid && !blocked
        }
    };

    // Back-pressure: one combinational process drives every input stop.
    {
        let fire_of = fire_of.clone();
        let in_valid = in_valid.clone();
        let in_stop: Vec<SignalId> = ins.iter().map(|(_, _, s)| *s).collect();
        let mut reads = in_valid.clone();
        reads.extend(&out_stop);
        reads.extend(&ov_r);
        let writes = in_stop.clone();
        b.comb(
            format!("{name}_backpressure"),
            &reads,
            &writes,
            move |ctx| {
                let fire = fire_of(&|s| ctx.get(s));
                for (i, stop) in in_stop.iter().enumerate() {
                    let asserted = if fire {
                        false
                    } else if variant.discards_stop_on_void() {
                        ctx.get(in_valid[i]) != 0
                    } else {
                        true
                    };
                    ctx.set_bool(*stop, asserted);
                }
            },
        );
    }

    // Clock edge: fire the pearl or gate it.
    {
        let in_data: Vec<SignalId> = ins.iter().map(|(_, d, _)| *d).collect();
        let mut reads = in_valid.clone();
        reads.extend(&in_data);
        reads.extend(&out_stop);
        reads.extend(&ov_r);
        let mut writes = ov_r.clone();
        writes.extend(&od_r);
        let ov_r = ov_r.clone();
        let od_r = od_r.clone();
        let mut in_buf = vec![0u64; n_in];
        let mut out_buf = vec![0u64; n_out];
        b.seq(format!("{name}_clk"), &reads, &writes, move |ctx| {
            let fire = fire_of(&|s| ctx.get(s));
            if fire {
                for (slot, d) in in_buf.iter_mut().zip(&in_data) {
                    *slot = ctx.get(*d);
                }
                pearl.eval(&in_buf, &mut out_buf);
                for j in 0..out_buf.len() {
                    ctx.set_next_bool(ov_r[j], true);
                    ctx.set_next(od_r[j], out_buf[j]);
                }
            } else {
                for (j, ov) in ov_r.iter().enumerate() {
                    let valid = ctx.get_bool(*ov);
                    let stopped = ctx.get_bool(out_stop[j]);
                    if valid && !stopped {
                        ctx.set_next_bool(*ov, false);
                    }
                }
            }
        });
    }
}

/// Buffered shell: like [`elaborate_shell`], plus a one-place skid
/// buffer register pair per input whose occupancy drives the registered
/// input stop (the "saved" stop of earlier proposals).
fn elaborate_buffered_shell(
    b: &mut CircuitBuilder,
    name: &str,
    mut pearl: Box<dyn lip_core::Pearl>,
    variant: ProtocolVariant,
    ins: &[ChannelSignals],
    outs: &[ChannelSignals],
) {
    let n_in = ins.len();
    let n_out = outs.len();
    let mut init = vec![0u64; n_out];
    pearl.eval(&vec![0u64; n_in], &mut init);

    let ov_r: Vec<SignalId> = (0..n_out)
        .map(|j| b.register(format!("{name}_ov{j}"), 1, 1))
        .collect();
    let od_r: Vec<SignalId> = (0..n_out)
        .map(|j| b.register(format!("{name}_od{j}"), 64, init[j]))
        .collect();
    let bv_r: Vec<SignalId> = (0..n_in)
        .map(|i| b.register(format!("{name}_bv{i}"), 1, 0))
        .collect();
    let bd_r: Vec<SignalId> = (0..n_in)
        .map(|i| b.register(format!("{name}_bd{i}"), 64, 0))
        .collect();

    for (j, out) in outs.iter().enumerate() {
        let (wv, wd, _) = *out;
        let rv = ov_r[j];
        let rd = od_r[j];
        b.comb(
            format!("{name}_drive{j}"),
            &[rv, rd],
            &[wv, wd],
            move |ctx| {
                let v = ctx.get(rv);
                let d = ctx.get(rd);
                ctx.set(wv, v);
                ctx.set(wd, d);
            },
        );
    }
    // Registered input stops: one comb copy per input.
    for (i, input) in ins.iter().enumerate() {
        let (_, _, istop) = *input;
        let bv = bv_r[i];
        b.comb(format!("{name}_stop{i}"), &[bv], &[istop], move |ctx| {
            let v = ctx.get(bv);
            ctx.set(istop, v);
        });
    }

    let in_valid: Vec<SignalId> = ins.iter().map(|(v, _, _)| *v).collect();
    let in_data: Vec<SignalId> = ins.iter().map(|(_, d, _)| *d).collect();
    let out_stop: Vec<SignalId> = outs.iter().map(|(_, _, s)| *s).collect();

    let mut reads = in_valid.clone();
    reads.extend(&in_data);
    reads.extend(&out_stop);
    reads.extend(&ov_r);
    reads.extend(&bv_r);
    reads.extend(&bd_r);
    let mut writes = ov_r.clone();
    writes.extend(&od_r);
    writes.extend(&bv_r);
    writes.extend(&bd_r);
    let mut in_buf = vec![0u64; n_in];
    let mut out_buf = vec![0u64; n_out];
    b.seq(format!("{name}_clk"), &reads, &writes, move |ctx| {
        // Effective inputs: buffer wins over channel.
        let eff_valid: Vec<bool> = (0..in_buf.len())
            .map(|i| ctx.get_bool(bv_r[i]) || ctx.get_bool(in_valid[i]))
            .collect();
        let all_valid = eff_valid.iter().all(|v| *v);
        let blocked = out_stop.iter().zip(&ov_r).any(|(s, ov)| {
            ctx.get_bool(*s) && (ctx.get_bool(*ov) || !variant.discards_stop_on_void())
        });
        let fire = all_valid && !blocked;
        if fire {
            for i in 0..in_buf.len() {
                in_buf[i] = if ctx.get_bool(bv_r[i]) {
                    ctx.get(bd_r[i])
                } else {
                    ctx.get(in_data[i])
                };
                ctx.set_next_bool(bv_r[i], false);
            }
            pearl.eval(&in_buf, &mut out_buf);
            for j in 0..out_buf.len() {
                ctx.set_next_bool(ov_r[j], true);
                ctx.set_next(od_r[j], out_buf[j]);
            }
        } else {
            for i in 0..in_buf.len() {
                if !ctx.get_bool(bv_r[i]) && ctx.get_bool(in_valid[i]) {
                    ctx.set_next_bool(bv_r[i], true);
                    ctx.set_next(bd_r[i], ctx.get(in_data[i]));
                }
            }
            for (j, ov) in ov_r.iter().enumerate() {
                if ctx.get_bool(*ov) && !ctx.get_bool(out_stop[j]) {
                    ctx.set_next_bool(*ov, false);
                }
            }
        }
    });
}

fn elaborate_full_relay(
    b: &mut CircuitBuilder,
    name: &str,
    input: ChannelSignals,
    output: ChannelSignals,
) {
    let (iv, idt, istop) = input;
    let (ov, od, ostop) = output;
    let mv = b.register(format!("{name}_mv"), 1, 0);
    let md = b.register(format!("{name}_md"), 64, 0);
    let av = b.register(format!("{name}_av"), 1, 0);
    let ad = b.register(format!("{name}_ad"), 64, 0);
    b.comb(
        format!("{name}_drive"),
        &[mv, md, av],
        &[ov, od, istop],
        move |ctx| {
            let v = ctx.get(mv);
            let d = ctx.get(md);
            let full = ctx.get(av);
            ctx.set(ov, v);
            ctx.set(od, d);
            ctx.set(istop, full);
        },
    );
    b.seq(
        format!("{name}_clk"),
        &[mv, md, av, ad, iv, idt, ostop],
        &[mv, md, av, ad],
        move |ctx| {
            let main_v = ctx.get_bool(mv);
            let aux_v = ctx.get_bool(av);
            let stop = ctx.get_bool(ostop);
            let in_v = ctx.get_bool(iv);
            let released = main_v && !stop;
            if aux_v {
                if released {
                    ctx.set_next(md, ctx.get(ad));
                    ctx.set_next_bool(mv, true);
                    ctx.set_next_bool(av, false);
                }
            } else if main_v {
                if released {
                    ctx.set_next_bool(mv, in_v);
                    ctx.set_next(md, ctx.get(idt));
                } else if in_v {
                    ctx.set_next_bool(av, true);
                    ctx.set_next(ad, ctx.get(idt));
                }
            } else {
                ctx.set_next_bool(mv, in_v);
                ctx.set_next(md, ctx.get(idt));
            }
        },
    );
}

fn elaborate_half_relay(
    b: &mut CircuitBuilder,
    name: &str,
    input: ChannelSignals,
    output: ChannelSignals,
) {
    let (iv, idt, istop) = input;
    let (ov, od, ostop) = output;
    let rv = b.register(format!("{name}_rv"), 1, 0);
    let rd = b.register(format!("{name}_rd"), 64, 0);
    // Bypass: out = occupied ? reg : in. The backward stop is registered.
    b.comb(
        format!("{name}_drive"),
        &[rv, rd, iv, idt],
        &[ov, od, istop],
        move |ctx| {
            let occ = ctx.get_bool(rv);
            if occ {
                ctx.set_bool(ov, true);
                ctx.set(od, ctx.get(rd));
            } else {
                ctx.set(ov, ctx.get(iv));
                ctx.set(od, ctx.get(idt));
            }
            ctx.set_bool(istop, occ);
        },
    );
    b.seq(
        format!("{name}_clk"),
        &[rv, rd, iv, idt, ostop, ov],
        &[rv, rd],
        move |ctx| {
            let occ = ctx.get_bool(rv);
            let stop = ctx.get_bool(ostop);
            if occ {
                if !stop {
                    ctx.set_next_bool(rv, false);
                }
            } else if stop && ctx.get_bool(iv) {
                ctx.set_next_bool(rv, true);
                ctx.set_next(rd, ctx.get(idt));
            }
        },
    );
}

/// Sized FIFO station: `k` data registers managed as a shift queue,
/// occupancy counter, registered stop while full.
fn elaborate_fifo_relay(
    b: &mut CircuitBuilder,
    name: &str,
    capacity: usize,
    input: ChannelSignals,
    output: ChannelSignals,
) {
    let (iv, idt, istop) = input;
    let (ov, od, ostop) = output;
    let occ = b.register(format!("{name}_occ"), 8, 0);
    let slots: Vec<SignalId> = (0..capacity)
        .map(|i| b.register(format!("{name}_q{i}"), 64, 0))
        .collect();
    {
        let slots0 = slots[0];
        b.comb(
            format!("{name}_drive"),
            &[occ, slots0],
            &[ov, od, istop],
            move |ctx| {
                let n = ctx.get(occ);
                ctx.set_bool(ov, n > 0);
                ctx.set(od, ctx.get(slots0));
                ctx.set_bool(istop, n as usize == capacity);
            },
        );
    }
    {
        let slots = slots.clone();
        let mut reads = vec![occ, iv, idt, ostop];
        reads.extend(&slots);
        let mut writes = vec![occ];
        writes.extend(&slots);
        b.seq(format!("{name}_clk"), &reads, &writes, move |ctx| {
            let mut q: Vec<u64> = slots.iter().map(|s| ctx.get(*s)).collect();
            let mut n = ctx.get(occ) as usize;
            let was_full = n == capacity;
            if !ctx.get_bool(ostop) && n > 0 {
                q.rotate_left(1);
                n -= 1;
            }
            if !was_full && ctx.get_bool(iv) {
                q[n] = ctx.get(idt);
                n += 1;
            }
            for (slot, v) in slots.iter().zip(&q) {
                ctx.set_next(*slot, *v);
            }
            ctx.set_next(occ, n as u64);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::System;
    use lip_graph::generate;
    use lip_kernel::{CycleEngine, EventEngine};

    /// Run the RTL on `engine` and the interpreter side by side; sink
    /// counters must agree every cycle.
    fn assert_rtl_matches(netlist: &Netlist, cycles: u64, event_driven: bool) {
        let (circuit, probes) = elaborate_rtl(netlist).unwrap();
        let mut engine: Box<dyn Engine> = if event_driven {
            Box::new(EventEngine::new(circuit))
        } else {
            Box::new(CycleEngine::new(circuit))
        };
        let mut sys = System::new(netlist).unwrap();
        for t in 0..cycles {
            engine.step();
            sys.step();
            for sink in netlist.sinks() {
                let rtl_valid = probes.read_sink_valid(engine.as_ref(), sink).unwrap();
                let rtl_voids = probes.read_sink_voids(engine.as_ref(), sink).unwrap();
                let s = sys.sink(sink).unwrap();
                assert_eq!(rtl_valid, s.received().len() as u64, "cycle {t} valid");
                assert_eq!(rtl_voids, s.voids_seen(), "cycle {t} voids");
            }
        }
    }

    #[test]
    fn rtl_matches_interpreter_on_fig1() {
        assert_rtl_matches(&generate::fig1().netlist, 40, false);
        assert_rtl_matches(&generate::fig1().netlist, 40, true);
    }

    #[test]
    fn rtl_matches_interpreter_on_rings() {
        use lip_core::RelayKind;
        for kind in [RelayKind::Full, RelayKind::Half] {
            let r = generate::ring(2, 2, kind);
            assert_rtl_matches(&r.netlist, 40, false);
            assert_rtl_matches(&r.netlist, 40, true);
        }
    }

    #[test]
    fn rtl_matches_interpreter_on_corpus() {
        let mut checked = 0;
        for seed in 0..25u64 {
            let (_, netlist) = generate::random_family(seed);
            if netlist.validate().is_ok() {
                assert_rtl_matches(&netlist, 30, seed % 2 == 0);
                checked += 1;
            }
        }
        assert!(checked >= 15);
    }

    #[test]
    fn both_engines_agree_on_rtl() {
        let f = generate::fig1();
        let (c1, p1) = elaborate_rtl(&f.netlist).unwrap();
        let (c2, p2) = elaborate_rtl(&f.netlist).unwrap();
        let mut a = CycleEngine::new(c1);
        let mut b = EventEngine::new(c2);
        a.run(100);
        b.run(100);
        assert_eq!(
            p1.read_sink_valid(&a, f.sink).unwrap(),
            p2.read_sink_valid(&b, f.sink).unwrap()
        );
    }

    #[test]
    fn probes_expose_channels() {
        let f = generate::fig1();
        let (_, probes) = elaborate_rtl(&f.netlist).unwrap();
        assert!(probes.channel_signals(0).is_some());
        assert!(probes.channel_signals(999).is_none());
        assert!(probes.sink_counters(f.fork).is_none());
    }
}
