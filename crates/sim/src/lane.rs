//! Lane words: the bit-plane storage unit of the many-lane batch
//! engine.
//!
//! A [`LaneWord`] packs one bit per simulated scenario (lane). The
//! original engine hard-coded `u64` (64 lanes); this trait generalises
//! the layout to `u128` and `[u64; W]` word shapes up to
//! [`Lanes1024`] (1024 lanes per settle pass) while keeping every
//! operation a wrapper-free inlined bitwise op — the `u64`
//! instantiation monomorphizes to exactly the code the 64-lane engine
//! had, so width 64 is zero-regression by construction.
//!
//! The array shapes are deliberately plain `[u64; W]`: the streaming
//! kernel (see `crate::stream`) executes homogeneous op segments over
//! these words in tight loops, which the compiler auto-vectorizes; no
//! explicit SIMD (and no `unsafe`) is involved.
//!
//! Runtime width selection goes through [`dispatch_lane_width`], a
//! visitor-based monomorphization switch over the supported widths in
//! [`LANE_WIDTHS`].

/// One bit per lane, `LANES` lanes per word.
///
/// All ops are lane-wise boolean algebra; the engine only ever needs
/// AND/OR/NOT/XOR compositions plus lane extraction. Implementations
/// must satisfy the obvious bitwise identities (each lane behaves as an
/// independent `bool`).
pub trait LaneWord:
    Copy + Clone + PartialEq + Eq + Send + Sync + std::fmt::Debug + 'static
{
    /// Lanes carried per word.
    const LANES: usize;
    /// `u64` sub-words per word (`LANES / 64`) — the length of the
    /// slice handed to `lip_obs` mask hooks.
    const WORDS: usize;
    /// All lanes clear.
    const ZERO: Self;
    /// All lanes set.
    const ONES: Self;

    /// Every lane set to `bit`.
    #[inline]
    #[must_use]
    fn splat(bit: bool) -> Self {
        if bit {
            Self::ONES
        } else {
            Self::ZERO
        }
    }

    /// Lane-wise AND.
    #[must_use]
    fn and(self, o: Self) -> Self;
    /// Lane-wise OR.
    #[must_use]
    fn or(self, o: Self) -> Self;
    /// Lane-wise XOR.
    #[must_use]
    fn xor(self, o: Self) -> Self;
    /// Lane-wise NOT.
    #[must_use]
    fn not(self) -> Self;

    /// `self & !o` — the and-not every stop/fire formula needs.
    #[inline]
    #[must_use]
    fn andnot(self, o: Self) -> Self {
        self.and(o.not())
    }

    /// `true` if any lane is set.
    #[must_use]
    fn any(self) -> bool;

    /// Set lanes across the whole word.
    #[must_use]
    fn count_ones(self) -> u32;

    /// The bit of lane `l` (`l < LANES`).
    #[must_use]
    fn lane(self, l: usize) -> bool;

    /// `self` with lane `l` set.
    #[must_use]
    fn with_lane(self, l: usize) -> Self;

    /// The `w`-th `u64` sub-word (lane `64·w + b` is bit `b`).
    #[must_use]
    fn word(self, w: usize) -> u64;

    /// Write all sub-words into `out` (`out.len() == WORDS`).
    fn write_words(self, out: &mut [u64]);

    /// Build a word lane by lane.
    #[inline]
    #[must_use]
    fn from_fn(mut f: impl FnMut(usize) -> bool) -> Self {
        let mut w = Self::ZERO;
        for l in 0..Self::LANES {
            if f(l) {
                w = w.with_lane(l);
            }
        }
        w
    }
}

impl LaneWord for u64 {
    const LANES: usize = 64;
    const WORDS: usize = 1;
    const ZERO: Self = 0;
    const ONES: Self = !0;

    #[inline]
    fn and(self, o: Self) -> Self {
        self & o
    }

    #[inline]
    fn or(self, o: Self) -> Self {
        self | o
    }

    #[inline]
    fn xor(self, o: Self) -> Self {
        self ^ o
    }

    #[inline]
    fn not(self) -> Self {
        !self
    }

    #[inline]
    fn any(self) -> bool {
        self != 0
    }

    #[inline]
    fn count_ones(self) -> u32 {
        u64::count_ones(self)
    }

    #[inline]
    fn lane(self, l: usize) -> bool {
        (self >> l) & 1 == 1
    }

    #[inline]
    fn with_lane(self, l: usize) -> Self {
        self | (1 << l)
    }

    #[inline]
    fn word(self, w: usize) -> u64 {
        debug_assert_eq!(w, 0);
        self
    }

    #[inline]
    fn write_words(self, out: &mut [u64]) {
        out[0] = self;
    }
}

impl LaneWord for u128 {
    const LANES: usize = 128;
    const WORDS: usize = 2;
    const ZERO: Self = 0;
    const ONES: Self = !0;

    #[inline]
    fn and(self, o: Self) -> Self {
        self & o
    }

    #[inline]
    fn or(self, o: Self) -> Self {
        self | o
    }

    #[inline]
    fn xor(self, o: Self) -> Self {
        self ^ o
    }

    #[inline]
    fn not(self) -> Self {
        !self
    }

    #[inline]
    fn any(self) -> bool {
        self != 0
    }

    #[inline]
    fn count_ones(self) -> u32 {
        u128::count_ones(self)
    }

    #[inline]
    fn lane(self, l: usize) -> bool {
        (self >> l) & 1 == 1
    }

    #[inline]
    fn with_lane(self, l: usize) -> Self {
        self | (1 << l)
    }

    #[inline]
    #[allow(clippy::cast_possible_truncation)]
    fn word(self, w: usize) -> u64 {
        (self >> (64 * w)) as u64
    }

    #[inline]
    #[allow(clippy::cast_possible_truncation)]
    fn write_words(self, out: &mut [u64]) {
        out[0] = self as u64;
        out[1] = (self >> 64) as u64;
    }
}

impl<const W: usize> LaneWord for [u64; W] {
    const LANES: usize = 64 * W;
    const WORDS: usize = W;
    const ZERO: Self = [0; W];
    const ONES: Self = [!0; W];

    #[inline]
    fn and(mut self, o: Self) -> Self {
        for (a, b) in self.iter_mut().zip(o) {
            *a &= b;
        }
        self
    }

    #[inline]
    fn or(mut self, o: Self) -> Self {
        for (a, b) in self.iter_mut().zip(o) {
            *a |= b;
        }
        self
    }

    #[inline]
    fn xor(mut self, o: Self) -> Self {
        for (a, b) in self.iter_mut().zip(o) {
            *a ^= b;
        }
        self
    }

    #[inline]
    fn not(mut self) -> Self {
        for a in &mut self {
            *a = !*a;
        }
        self
    }

    #[inline]
    fn andnot(mut self, o: Self) -> Self {
        for (a, b) in self.iter_mut().zip(o) {
            *a &= !b;
        }
        self
    }

    #[inline]
    fn any(self) -> bool {
        self.iter().any(|&w| w != 0)
    }

    #[inline]
    fn count_ones(self) -> u32 {
        self.iter().map(|w| w.count_ones()).sum()
    }

    #[inline]
    fn lane(self, l: usize) -> bool {
        (self[l / 64] >> (l % 64)) & 1 == 1
    }

    #[inline]
    fn with_lane(mut self, l: usize) -> Self {
        self[l / 64] |= 1 << (l % 64);
        self
    }

    #[inline]
    fn word(self, w: usize) -> u64 {
        self[w]
    }

    #[inline]
    fn write_words(self, out: &mut [u64]) {
        out[..W].copy_from_slice(&self);
    }
}

/// 128 lanes as two `u64` sub-words.
pub type Lanes128 = [u64; 2];
/// 256 lanes as four `u64` sub-words.
pub type Lanes256 = [u64; 4];
/// 512 lanes as eight `u64` sub-words.
pub type Lanes512 = [u64; 8];
/// 1024 lanes as sixteen `u64` sub-words — the widest supported word.
pub type Lanes1024 = [u64; 16];

/// Every lane width the runtime dispatcher supports, narrowest first.
pub const LANE_WIDTHS: [usize; 5] = [64, 128, 256, 512, 1024];

/// Monomorphization visitor for [`dispatch_lane_width`]: `visit` is
/// instantiated once per supported [`LaneWord`] shape.
pub trait LaneWidthVisitor {
    /// What the visit produces.
    type Out;

    /// Run the width-generic computation at word shape `W`.
    fn visit<W: LaneWord>(&mut self) -> Self::Out;
}

/// Run `v` at the word shape carrying exactly `lanes` lanes.
///
/// Width 128 dispatches to the `[u64; 2]` shape (the `u128` impl
/// exists for callers that prefer it and is equivalence-tested, but the
/// array shapes keep the kernel loops uniform).
///
/// # Panics
///
/// Panics if `lanes` is not one of [`LANE_WIDTHS`].
pub fn dispatch_lane_width<V: LaneWidthVisitor>(lanes: usize, v: &mut V) -> V::Out {
    match lanes {
        64 => v.visit::<u64>(),
        128 => v.visit::<Lanes128>(),
        256 => v.visit::<Lanes256>(),
        512 => v.visit::<Lanes512>(),
        1024 => v.visit::<Lanes1024>(),
        _ => panic!("unsupported lane width {lanes}; supported widths: {LANE_WIDTHS:?}"),
    }
}

/// Lane widths the test/CI matrix asks for: if `LIP_LANE_WORDS` is set
/// to a word count `N` with `64·N` a supported width, only that width;
/// otherwise every width in [`LANE_WIDTHS`]. This is the CI lever that
/// runs the cross-width equivalence suite once per matrix leg instead
/// of five times per job.
#[must_use]
pub fn lane_words_under_test() -> Vec<usize> {
    if let Ok(s) = std::env::var("LIP_LANE_WORDS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            let width = n.saturating_mul(64);
            if LANE_WIDTHS.contains(&width) {
                return vec![width];
            }
        }
    }
    LANE_WIDTHS.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise<W: LaneWord>() {
        assert_eq!(W::LANES, W::WORDS * 64);
        assert!(!W::ZERO.any());
        assert!(W::ONES.any());
        assert_eq!(W::ONES.count_ones() as usize, W::LANES);
        assert_eq!(W::splat(true), W::ONES);
        assert_eq!(W::splat(false), W::ZERO);
        // A pseudo-random pattern and its algebra.
        let a = W::from_fn(|l| l % 3 == 0);
        let b = W::from_fn(|l| l % 5 == 0);
        assert_eq!(a.and(b), W::from_fn(|l| l % 15 == 0));
        assert_eq!(a.or(b), W::from_fn(|l| l % 3 == 0 || l % 5 == 0));
        assert_eq!(a.xor(b), W::from_fn(|l| (l % 3 == 0) != (l % 5 == 0)));
        assert_eq!(a.not().not(), a);
        assert_eq!(a.andnot(b), W::from_fn(|l| l % 3 == 0 && l % 5 != 0));
        for l in 0..W::LANES {
            assert_eq!(a.lane(l), l % 3 == 0, "lane {l}");
        }
        // Sub-word extraction round-trips through write_words.
        let mut buf = vec![0u64; W::WORDS];
        a.write_words(&mut buf);
        for (w, &sub) in buf.iter().enumerate() {
            assert_eq!(a.word(w), sub);
            for bit in 0..64 {
                assert_eq!((sub >> bit) & 1 == 1, a.lane(64 * w + bit));
            }
        }
    }

    #[test]
    fn all_word_shapes_behave_identically() {
        exercise::<u64>();
        exercise::<u128>();
        exercise::<Lanes128>();
        exercise::<Lanes256>();
        exercise::<Lanes512>();
        exercise::<Lanes1024>();
    }

    #[test]
    fn u128_matches_two_word_array() {
        let f = |l: usize| l % 7 == 2;
        let a = <u128 as LaneWord>::from_fn(f);
        let b = <Lanes128 as LaneWord>::from_fn(f);
        for w in 0..2 {
            assert_eq!(a.word(w), b.word(w));
        }
    }

    #[test]
    fn dispatch_reaches_every_width() {
        struct Lanes;
        impl LaneWidthVisitor for Lanes {
            type Out = usize;
            fn visit<W: LaneWord>(&mut self) -> usize {
                W::LANES
            }
        }
        for width in LANE_WIDTHS {
            assert_eq!(dispatch_lane_width(width, &mut Lanes), width);
        }
    }

    #[test]
    #[should_panic(expected = "unsupported lane width")]
    fn dispatch_rejects_unknown_widths() {
        struct Lanes;
        impl LaneWidthVisitor for Lanes {
            type Out = usize;
            fn visit<W: LaneWord>(&mut self) -> usize {
                W::LANES
            }
        }
        let _ = dispatch_lane_width(96, &mut Lanes);
    }
}
