//! System-level simulation of latency-insensitive designs.
//!
//! This crate turns a [`lip_graph::Netlist`] into an executable system
//! and provides the measurement machinery behind every experiment in the
//! reproduction:
//!
//! * [`System`] — full cycle-accurate simulation of tokens, stops, pearls
//!   and clock gating;
//! * [`SkeletonSystem`] — the paper's data-free valid/stop simulation,
//!   control-equivalent to the full system but "absolutely negligible"
//!   in cost, used for deadlock analysis;
//! * [`measure`](mod@crate::measure) — periodicity detection (transient + period) via control
//!   state hashing, exact rational steady-state throughput, and the
//!   skeleton-based liveness check;
//! * [`Evolution`] — cycle-by-cycle tables in the style of the paper's
//!   Fig. 1 and Fig. 2.
//!
//! Every engine also has `*_probed` entry points taking a
//! [`lip_obs::Probe`] — counters, event streams and telemetry hook in
//! there at zero cost to the unprobed paths (see the [`lip_obs`] crate).
//!
//! # Example
//!
//! Reproduce the headline number of Fig. 1 (`T = 4/5`, period 5):
//!
//! ```
//! use lip_graph::generate;
//! use lip_sim::measure::{measure, Ratio};
//!
//! # fn main() -> Result<(), lip_graph::NetlistError> {
//! let fig1 = generate::fig1();
//! let m = measure(&fig1.netlist)?;
//! assert_eq!(m.periodicity.expect("periodic").period, 5);
//! assert_eq!(m.system_throughput(), Some(Ratio::new(4, 5)));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod cache;
pub mod evolution;
pub mod lane;
pub mod measure;
pub mod patch;
pub mod profiling;
pub mod program;
pub mod rtl;
mod skeleton;
mod stream;
mod system;

pub use batch::{BatchEngine, BatchSkeleton, LanePatterns, LANES, OCC_SAMPLE_EVERY};
pub use cache::ThroughputCache;
pub use evolution::Evolution;
pub use lane::{
    dispatch_lane_width, lane_words_under_test, LaneWidthVisitor, LaneWord, Lanes1024, Lanes128,
    Lanes256, Lanes512, LANE_WIDTHS,
};
pub use measure::{
    measure, measure_activity, measure_batch, measure_batch_periodic, measure_batch_periodic_obs,
    measure_batch_periodic_wide, measure_batch_probed, measure_batch_probed_wide,
    measure_batch_wide, BatchMeasurement, BatchPeriodicMeasurement, LivenessReport, Measurement,
    PeriodDetector, Periodicity, Ratio, ShellActivity,
};
pub use patch::{NetlistDelta, ProgramPatch};
pub use profiling::{profile_netlist, ProfileOptions, ProfiledRun};
pub use program::{SettleProgram, VerifyError};
pub use skeleton::SkeletonSystem;
pub use system::System;
