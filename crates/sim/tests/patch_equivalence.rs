//! Property suite for the incremental-compilation layer: random
//! netlists under random single-relay edit sequences.
//!
//! Three invariants, checked after *every committed edit* and again at
//! the end of each sequence:
//!
//! 1. **Structural** — the patched [`SettleProgram`] compares equal
//!    (tables, op tape — `PartialEq`) to a from-scratch compile of the
//!    identically edited netlist, and the incrementally maintained
//!    [`stable_structural_hash`](SettleProgram::stable_structural_hash)
//!    equals the full recompute.
//! 2. **Measured** — a [`ThroughputCache`] keyed by the patched
//!    program reports the same exact Ratio and Periodicity as a direct
//!    measurement of the edited netlist.
//! 3. **Behavioural across widths** — a [`BatchEngine`] that *adopts*
//!    the patched program at reset steps identically to one built
//!    from the fresh compile, at widths 64 (`u64`) and 1024
//!    ([`Lanes1024`]): same per-lane sink consumption/void counts and
//!    the same total fire count.
//!
//! Edits that would make the netlist invalid (e.g. rewriting every
//! relay of a feedback loop to half) are skipped — the netlist mutation
//! API allows them, but neither path can compile the result.

use std::sync::Arc;

use lip_core::RelayKind;
use lip_graph::{generate, Netlist, NodeKind};
use lip_sim::{
    measure, BatchEngine, LanePatterns, LaneWord, Lanes1024, NetlistDelta, SettleProgram,
    ThroughputCache,
};
use proptest::prelude::*;

const RUN_CYCLES: u64 = 200;

/// Decode one edit from two raw proptest words against the *current*
/// netlist shape. Returns `None` when the netlist has no relay to edit.
fn decode_edit(netlist: &Netlist, sel: u16, raw_kind: u8) -> Option<NetlistDelta> {
    let kind = match raw_kind % 8 {
        0 => RelayKind::Full,
        1 => RelayKind::Half,
        k => RelayKind::Fifo(k), // capacities 2..=7
    };
    if sel % 4 == 3 {
        // Insertion: split an existing channel.
        let channels: Vec<_> = netlist.channels().map(|(id, _)| id).collect();
        let channel = channels[(sel as usize / 4) % channels.len()];
        return Some(NetlistDelta::InsertRelay { channel, kind });
    }
    let relays = netlist.relays();
    if relays.is_empty() {
        return None;
    }
    let node = relays[(sel as usize / 4) % relays.len()];
    Some(NetlistDelta::SetRelayKind { node, kind })
}

/// Current kind of `node`, for reporting.
fn relay_kind(netlist: &Netlist, delta: &NetlistDelta) -> Option<RelayKind> {
    if let NetlistDelta::SetRelayKind { node, .. } = delta {
        if let NodeKind::Relay { kind } = netlist.node(*node).kind() {
            return Some(*kind);
        }
    }
    None
}

/// Step engines built from the patched and the fresh program in
/// lockstep at width `W`; every lane must agree on sink counts and
/// total fires. The patched engine takes the *adopt* path: built from
/// the pre-edit program, then re-pointed at the patched program, the
/// state-preserving invalidation the edit loop performs.
fn assert_engines_agree<W: LaneWord>(
    base: &Arc<SettleProgram>,
    patched: &Arc<SettleProgram>,
    fresh: &Arc<SettleProgram>,
    netlist: &Netlist,
) {
    let pats = LanePatterns::broadcast_wide(patched, W::LANES);
    let mut adopted = BatchEngine::<W>::from_program(Arc::clone(base));
    adopted.adopt(Arc::clone(patched));
    let mut scratch = BatchEngine::<W>::from_program(Arc::clone(fresh));
    adopted.run_patterns(&pats, RUN_CYCLES);
    scratch.run_patterns(&pats, RUN_CYCLES);
    for lane in [0, W::LANES / 2, W::LANES - 1] {
        assert_eq!(
            adopted.total_fires_lane(lane),
            scratch.total_fires_lane(lane),
            "width {} lane {lane} fires diverged",
            W::LANES
        );
        for (id, node) in netlist.nodes() {
            if matches!(node.kind(), NodeKind::Sink { .. }) {
                assert_eq!(
                    adopted.sink_counts_lane(id, lane),
                    scratch.sink_counts_lane(id, lane),
                    "width {} lane {lane} sink {id} diverged",
                    W::LANES
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random edit sequences keep the patched program byte-equal,
    /// hash-equal, measurement-equal and behaviourally equal (widths
    /// 64 and 1024) to from-scratch compiles.
    #[test]
    fn random_edit_sequences_match_fresh_compiles(
        family_seed in 0u64..64,
        edits in proptest::collection::vec((any::<u16>(), any::<u8>()), 1..7),
    ) {
        let (_, mut netlist) = generate::random_family(family_seed);
        if netlist.validate().is_err() {
            return Ok(());
        }
        let base = Arc::new(SettleProgram::compile(&netlist).unwrap());
        let mut prog = (*base).clone();
        let mut committed = 0u32;
        for (sel, raw_kind) in edits {
            let Some(delta) = decode_edit(&netlist, sel, raw_kind) else {
                continue;
            };
            // A kind edit that is a structural no-op or would break
            // validation is skipped, like the edit loop itself would.
            if relay_kind(&netlist, &delta)
                == match &delta {
                    NetlistDelta::SetRelayKind { kind, .. } => Some(*kind),
                    _ => None,
                }
            {
                continue;
            }
            let mut trial = netlist.clone();
            delta.apply_to(&mut trial);
            if trial.validate().is_err() {
                continue;
            }
            netlist = trial;
            prog.recompile_delta(&delta);
            committed += 1;
            let fresh = SettleProgram::compile(&netlist).unwrap();
            prop_assert!(prog == fresh, "patched != fresh after {delta:?}");
            prop_assert_eq!(
                prog.stable_structural_hash(),
                fresh.stable_structural_hash(),
                "incremental hash != full recompute after {:?}", delta
            );
            // The IR verifier must accept every patched program — it
            // runs here unconditionally (not just under
            // debug_assertions), so release-mode CI still exercises it.
            if let Err(e) = prog.verify() {
                prop_assert!(false, "IR verifier rejected patched program after {:?}: {}", delta, e);
            }
        }
        if committed == 0 {
            return Ok(());
        }
        let fresh = Arc::new(SettleProgram::compile(&netlist).unwrap());

        // Measurement equivalence: the program-keyed cache path on the
        // patched program vs a direct measurement of the netlist.
        let mut cache = ThroughputCache::new();
        let via_patched = cache
            .measure_program_with(&prog, Default::default(), || netlist.clone())
            .unwrap();
        let direct = measure(&netlist).unwrap();
        prop_assert_eq!(via_patched.periodicity, direct.periodicity);
        prop_assert_eq!(via_patched.system_throughput(), direct.system_throughput());

        // Behavioural equivalence of the engine adopt path, narrow and
        // widest word shapes.
        let patched = Arc::new(prog);
        assert_engines_agree::<u64>(&base, &patched, &fresh, &netlist);
        assert_engines_agree::<Lanes1024>(&base, &patched, &fresh, &netlist);
    }
}
