//! Property tests: the three protocol implementations (interpreter,
//! skeleton, RTL-on-kernel) are observationally equivalent, and
//! measurement is deterministic and stable.

use lip_core::{Pattern, RelayKind};
use lip_graph::{generate, Netlist};
use lip_kernel::{CycleEngine, Engine, EventEngine};
use lip_sim::measure::{measure, measure_with, MeasureOptions};
use lip_sim::rtl::elaborate_rtl;
use lip_sim::{SkeletonSystem, System};
use proptest::prelude::*;

fn sink_counts_interp(netlist: &Netlist, cycles: u64) -> Vec<(u64, u64)> {
    let mut sys = System::new(netlist).unwrap();
    sys.run(cycles);
    netlist
        .sinks()
        .iter()
        .map(|s| {
            let k = sys.sink(*s).unwrap();
            (k.received().len() as u64, k.voids_seen())
        })
        .collect()
}

fn sink_counts_skeleton(netlist: &Netlist, cycles: u64) -> Vec<(u64, u64)> {
    let mut sk = SkeletonSystem::new(netlist).unwrap();
    sk.run(cycles);
    netlist
        .sinks()
        .iter()
        .map(|s| sk.sink_counts(*s).unwrap())
        .collect()
}

fn sink_counts_rtl(netlist: &Netlist, cycles: u64, event: bool) -> Vec<(u64, u64)> {
    let (circuit, probes) = elaborate_rtl(netlist).unwrap();
    let mut engine: Box<dyn Engine> = if event {
        Box::new(EventEngine::new(circuit))
    } else {
        Box::new(CycleEngine::new(circuit))
    };
    engine.run(cycles);
    netlist
        .sinks()
        .iter()
        .map(|s| {
            (
                probes.read_sink_valid(engine.as_ref(), *s).unwrap(),
                probes.read_sink_voids(engine.as_ref(), *s).unwrap(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Interpreter == skeleton == RTL(cycle) == RTL(event), sink for
    /// sink, on the random corpus.
    #[test]
    fn four_way_equivalence(seed in 0u64..400, cycles in 10u64..60) {
        let (_, netlist) = generate::random_family(seed);
        if netlist.validate().is_err() {
            return Ok(());
        }
        let a = sink_counts_interp(&netlist, cycles);
        let b = sink_counts_skeleton(&netlist, cycles);
        let c = sink_counts_rtl(&netlist, cycles, false);
        let d = sink_counts_rtl(&netlist, cycles, true);
        prop_assert_eq!(&a, &b, "skeleton diverges");
        prop_assert_eq!(&a, &c, "rtl(cycle) diverges");
        prop_assert_eq!(&a, &d, "rtl(event) diverges");
    }

    /// Measurement is deterministic and invariant under the number of
    /// averaged periods.
    #[test]
    fn measurement_is_stable(seed in 0u64..200, periods in 1u64..6) {
        let (_, netlist) = generate::random_family(seed);
        if netlist.validate().is_err() {
            return Ok(());
        }
        let base = measure(&netlist).unwrap();
        if base.periodicity.is_none() {
            return Ok(());
        }
        let other = measure_with(
            &netlist,
            MeasureOptions { max_transient: 10_000, measure_periods: periods, fallback_cycles: 1 },
        )
        .unwrap();
        prop_assert_eq!(base.system_throughput(), other.system_throughput());
    }

    /// Simulation of patterned environments respects the pattern rates:
    /// a sink stopping k of p cycles consumes at most (p-k)/p.
    #[test]
    fn stop_patterns_bound_consumption(period in 2u32..6, phase_count in 1u32..3, cycles in 60u64..200) {
        let phase_count = phase_count.min(period - 1);
        let mut n = Netlist::new();
        let src = n.add_source("in");
        let bits: Vec<bool> = (0..period).map(|c| c < phase_count).collect();
        let sink = n.add_sink_with_pattern("out", Pattern::Cyclic(bits));
        n.connect(src, 0, sink, 0).unwrap();
        let mut sys = System::new(&n).unwrap();
        sys.run(cycles);
        let consumed = sys.sink(sink).unwrap().received().len() as u64;
        let accept_rate = u64::from(period - phase_count);
        let bound = cycles * accept_rate / u64::from(period) + u64::from(period);
        prop_assert!(consumed <= bound, "{} > {}", consumed, bound);
        prop_assert!(consumed + u64::from(period) >= cycles * accept_rate / u64::from(period));
    }

    /// Evolution tables never disagree with direct channel inspection.
    #[test]
    fn evolution_matches_system(seed in 0u64..100, cycles in 5u64..20) {
        use lip_sim::Evolution;
        let (_, netlist) = generate::random_family(seed);
        if netlist.validate().is_err() {
            return Ok(());
        }
        let shells = netlist.shells();
        if shells.is_empty() {
            return Ok(());
        }
        let ev = Evolution::record(&netlist, &shells, cycles).unwrap();
        // Re-simulate and compare outputs cycle by cycle.
        let mut sys = System::new(&netlist).unwrap();
        for (r, row) in ev.rows().iter().enumerate() {
            sys.settle();
            for (k, id) in shells.iter().enumerate() {
                prop_assert_eq!(
                    &row.outputs[k].0,
                    &sys.node_outputs(*id),
                    "row {} shell {}", r, id
                );
            }
            sys.step();
        }
    }

    /// Relay-chain delivery invariants hold under random mixed chains
    /// driven by patterned environments: tokens arrive in order with no
    /// duplicates (end-to-end, via sequence-numbered sources).
    #[test]
    fn chains_deliver_in_order(
        shells in 1usize..4,
        relays in 0usize..3,
        half in any::<bool>(),
        stop_period in 2u32..5,
        cycles in 40u64..150,
    ) {
        let kind = if half { RelayKind::Half } else { RelayKind::Full };
        let c = generate::chain(shells, relays, kind);
        // Replace the sink with a stopping one by rebuilding: simpler to
        // re-drive via patterns on a fresh netlist.
        let mut n = Netlist::new();
        let src = n.add_source("in");
        let mut prev = (src, 0usize);
        for i in 0..shells {
            let sh = n.add_shell(format!("s{i}"), lip_core::pearl::IdentityPearl::new());
            n.connect_via_relays(prev.0, prev.1, sh, 0, relays, kind).unwrap();
            prev = (sh, 0);
        }
        let sink = n.add_sink_with_pattern(
            "out",
            Pattern::EveryNth { period: stop_period, phase: 0 },
        );
        n.connect_via_relays(prev.0, prev.1, sink, 0, relays, kind).unwrap();
        let mut sys = System::new(&n).unwrap();
        sys.run(cycles);
        let got = sys.sink(sink).unwrap().received();
        // Identity shells inject their initial zeros; after those, the
        // stream must be 0,1,2,...
        // Leading zeros: one initial token per identity shell plus the
        // source's own 0; afterwards the stream must be 1,2,3,...
        let zeros = got.iter().take_while(|v| **v == 0).count();
        prop_assert!(zeros <= shells + 1, "too many zeros in {:?}", got);
        for (i, v) in got.iter().skip(zeros).enumerate() {
            prop_assert_eq!(*v, i as u64 + 1, "corrupted stream {:?}", got);
        }
        let _ = c;
    }
}
