//! Edge-case coverage of measurement and evolution recording.

use lip_core::{Pattern, RelayKind};
use lip_graph::{generate, Netlist};
use lip_sim::measure::{find_periodicity, measure_activity, measure_with, MeasureOptions};
use lip_sim::{Evolution, System};

#[test]
fn record_from_skips_the_transient() {
    let f = generate::fig1();
    let mut sys = System::new(&f.netlist).unwrap();
    // Skip past the transient, then record a steady window: every row
    // must already be periodic (period 5).
    sys.run(10);
    let ev = Evolution::record_from(&mut sys, &f.netlist, &[f.join], 10).unwrap();
    assert_eq!(ev.rows().first().unwrap().cycle, 10);
    let voids: Vec<usize> = (0..10)
        .filter(|&r| ev.rows()[r].outputs[0].0[0].is_void())
        .collect();
    assert_eq!(voids.len(), 2, "{voids:?}");
    assert_eq!(voids[1] - voids[0], 5);
}

#[test]
fn measure_options_control_the_window() {
    let ring = generate::ring(2, 1, RelayKind::Full);
    let opts = MeasureOptions {
        max_transient: 100,
        measure_periods: 7,
        fallback_cycles: 1,
    };
    let m = measure_with(&ring.netlist, opts).unwrap();
    let p = m.periodicity.unwrap();
    // cycles = transient-search cycles + 7 periods.
    assert!(m.cycles >= p.transient + 7 * p.period);
    assert_eq!(m.system_throughput().unwrap().to_string(), "2/3");
}

#[test]
fn periodicity_budget_is_respected() {
    let ring = generate::ring(3, 2, RelayKind::Full);
    let mut sys = System::new(&ring.netlist).unwrap();
    // A budget of 1 cycle cannot find the period.
    assert_eq!(find_periodicity(&mut sys, 1), None);
    assert!(sys.cycle() <= 1);
}

#[test]
fn activity_of_starved_shells_is_zero() {
    let mut n = Netlist::new();
    let src = n.add_source_with_pattern("in", Pattern::Always); // only voids
    let a = n.add_shell("a", lip_core::pearl::IdentityPearl::new());
    let out = n.add_sink("out");
    n.connect(src, 0, a, 0).unwrap();
    n.connect(a, 0, out, 0).unwrap();
    let acts = measure_activity(&n).unwrap();
    assert_eq!(acts.len(), 1);
    assert_eq!(acts[0].utilisation.num(), 0);
}

#[test]
fn evolution_of_single_cycle_is_initial_state() {
    let f = generate::fig1();
    let ev = Evolution::record(&f.netlist, &[f.fork, f.mid, f.join], 1).unwrap();
    assert_eq!(ev.rows().len(), 1);
    // At cycle 0 every shell output is its initial valid token.
    for col in 0..3 {
        assert!(ev.rows()[0].outputs[col].0[0].is_valid(), "col {col}");
    }
}

#[test]
fn aperiodic_ring_still_measures_by_fallback() {
    let ring = generate::ring_with_entry(
        2,
        1,
        RelayKind::Full,
        Pattern::Random {
            num: 1,
            denom: 3,
            seed: 5,
        },
        Pattern::Never,
    );
    let opts = MeasureOptions {
        max_transient: 50,
        measure_periods: 1,
        fallback_cycles: 3000,
    };
    let m = measure_with(&ring.netlist, opts).unwrap();
    assert!(m.periodicity.is_none());
    let t = m.system_throughput().unwrap().to_f64();
    // Bounded by both the loop (2/3) and the voidy source (2/3 data
    // rate feeding the entry): strictly positive, at most 2/3.
    assert!(t > 0.2 && t <= 2.0 / 3.0 + 0.05, "t = {t}");
}

#[test]
fn skeleton_periodicity_agrees_with_full() {
    use lip_sim::SkeletonSystem;
    for netlist in [
        generate::fig1().netlist,
        generate::ring(2, 2, RelayKind::Full).netlist,
        generate::fork_join(2, 1, 1).netlist,
    ] {
        let mut full = System::new(&netlist).unwrap();
        let full_p = find_periodicity(&mut full, 10_000).unwrap();
        let mut sk = SkeletonSystem::new(&netlist).unwrap();
        let sk_p = sk.find_periodicity(10_000).unwrap();
        assert_eq!(full_p.period, sk_p.period);
        assert_eq!(full_p.transient, sk_p.transient);
    }
}
