//! Lane-equivalence property tests: every lane of the many-lane
//! [`BatchEngine`] — at every supported word shape from `u64` (64
//! lanes) to `[u64; 16]` (1024 lanes) — must be cycle-for-cycle
//! bit-identical to a scalar [`SkeletonSystem`] run of the same
//! scenario — over the topology corpus (fig1 fork/join, fig2 feedback
//! rings of every relay kind, random netlists), under both protocol
//! variants, driven both by external stall schedules and by per-lane
//! environment patterns. The cross-width half of the suite honours
//! `LIP_LANE_WORDS` (see [`lane_words_under_test`]) so CI can matrix
//! over widths.

use std::sync::Arc;

use lip_core::{Pattern, ProtocolVariant, RelayKind};
use lip_graph::{generate, Netlist};
use lip_obs::{Event, MetricsRegistry, NullProbe, Probe};
use lip_sim::{
    dispatch_lane_width, lane_words_under_test, measure_batch, measure_batch_periodic_wide,
    BatchEngine, BatchSkeleton, LanePatterns, LaneWidthVisitor, LaneWord, SettleProgram,
    SkeletonSystem, LANES,
};
use proptest::prelude::*;

/// Deterministic schedule words from a splitmix64 stream.
fn schedule_words(seed: u64, n: usize) -> Vec<u64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        })
        .collect()
}

/// Drive the batch engine with random external schedules and check the
/// sampled lanes against scalar replicas every cycle.
fn assert_lanes_match_scalar(netlist: &Netlist, cycles: u64, seed: u64) {
    assert_lanes_match_scalar_probed(netlist, cycles, seed, &mut NullProbe);
}

/// [`assert_lanes_match_scalar`], with the batch engine additionally
/// driving `probe` — probing must never change behaviour.
fn assert_lanes_match_scalar_probed<P: Probe>(
    netlist: &Netlist,
    cycles: u64,
    seed: u64,
    probe: &mut P,
) {
    let prog = Arc::new(SettleProgram::compile(netlist).unwrap());
    let n_src = prog.source_count();
    let n_snk = prog.sink_count();
    let mut batch = BatchSkeleton::from_program(Arc::clone(&prog));
    let check_lanes = [0usize, 1, 31, 62, 63];
    let mut scalars: Vec<SkeletonSystem> = check_lanes
        .iter()
        .map(|_| SkeletonSystem::from_program(Arc::clone(&prog)))
        .collect();

    for t in 0..cycles {
        let srcs = schedule_words(seed ^ (t << 1), n_src);
        let snks = schedule_words(seed ^ (t << 1) ^ 1, n_snk);
        batch.step_with_masks_probed(&srcs, &snks, probe);
        for (scalar, &lane) in scalars.iter_mut().zip(&check_lanes) {
            let valids: Vec<bool> = srcs.iter().map(|w| (w >> lane) & 1 == 1).collect();
            let stops: Vec<bool> = snks.iter().map(|w| (w >> lane) & 1 == 1).collect();
            scalar.step_with(&valids, &stops);
            assert_eq!(
                batch.lane_component_state(lane),
                scalar.component_state(),
                "lane {lane} diverged at cycle {t}"
            );
        }
    }
    for (scalar, &lane) in scalars.iter().zip(&check_lanes) {
        assert_eq!(
            batch.total_fires_lane(lane),
            scalar.total_fires(),
            "lane {lane} fires"
        );
        for s in netlist.sinks() {
            assert_eq!(
                batch.sink_counts_lane(s, lane),
                scalar.sink_counts(s),
                "lane {lane} sink {s}"
            );
        }
        for sh in netlist.shells() {
            assert_eq!(
                batch.shell_fires_lane(sh, lane),
                scalar.shell_fires(sh),
                "lane {lane} shell {sh}"
            );
        }
    }
}

/// Per-lane *pattern* environments: the batch run must produce exactly
/// the counts of 64 scalar runs over netlists rebuilt with each lane's
/// patterns (exercising `from_patterns` and the pattern mutators).
fn assert_pattern_lanes_match_scalar(netlist: &Netlist, cycles: u64, seed: u64) {
    let prog = Arc::new(SettleProgram::compile(netlist).unwrap());
    let sources = netlist.sources();
    let sinks = netlist.sinks();
    let mut pats = LanePatterns::broadcast(&prog);
    for lane in 0..LANES {
        for (j, _) in sinks.iter().enumerate() {
            let denom = 4 + (lane as u32 % 5);
            pats.set_sink(
                j,
                lane,
                Pattern::Random {
                    num: lane as u32 % denom,
                    denom,
                    seed: seed ^ lane as u64,
                },
            );
        }
        if lane % 3 == 0 {
            for (i, _) in sources.iter().enumerate() {
                pats.set_source(
                    i,
                    lane,
                    Pattern::EveryNth {
                        period: 2 + lane as u32 % 4,
                        phase: 0,
                    },
                );
            }
        }
    }
    let m = measure_batch(netlist, &pats, cycles).unwrap();
    for lane in [0usize, 3, 17, 63] {
        let mut reference = netlist.clone();
        for (i, &s) in sources.iter().enumerate() {
            assert!(reference.set_source_pattern(s, pats.source_pattern(i, lane).clone()));
        }
        for (j, &s) in sinks.iter().enumerate() {
            assert!(reference.set_sink_pattern(s, pats.sink_pattern(j, lane).clone()));
        }
        let mut scalar = SkeletonSystem::new(&reference).unwrap();
        scalar.run(cycles);
        for (j, &s) in sinks.iter().enumerate() {
            assert_eq!(
                Some(m.counts[j][lane]),
                scalar.sink_counts(s),
                "lane {lane} sink {s} counts"
            );
        }
    }
}

/// Every topology in the deterministic corpus, under both variants.
fn corpus() -> Vec<Netlist> {
    let mut out = Vec::new();
    let base: Vec<Netlist> = vec![
        generate::fig1().netlist,
        generate::tree(2, 2, 1).netlist,
        generate::reconvergent(2, 3).netlist,
        generate::ring(2, 1, RelayKind::Full).netlist,
        generate::ring(2, 2, RelayKind::Half).netlist,
        generate::ring(2, 2, RelayKind::Fifo(3)).netlist,
        generate::buffered_ring(2, 0).netlist,
        generate::composed_coupled(1, 1, 1, 2, 1).netlist,
    ];
    for n in base {
        for variant in ProtocolVariant::ALL {
            let mut m = n.clone();
            m.set_variant(variant);
            out.push(m);
        }
    }
    out
}

#[test]
fn lanes_match_scalar_over_corpus_both_variants() {
    // The corpus items are independent, so they fan out over the
    // deterministic executor (per-item seeds derive from the corpus
    // index, never from scheduling).
    lip_par::par_map_indexed(&corpus(), |i, netlist| {
        assert_lanes_match_scalar(netlist, 60, 0xC0FFEE ^ (i as u64) << 8);
    });
}

#[test]
fn probed_lanes_still_match_scalar_over_corpus() {
    // A live MetricsRegistry on the batch engine must not perturb any
    // lane, and its popcount totals must agree with the per-lane reads.
    // Each corpus item owns its registry, so the fan-out needs no
    // shared mutable state.
    lip_par::par_map_indexed(&corpus(), |i, netlist| {
        let prog = SettleProgram::compile(netlist).unwrap();
        let mut metrics = MetricsRegistry::with_lanes(prog.topology(), LANES as u32);
        assert_lanes_match_scalar_probed(netlist, 60, 0xC0FFEE ^ (i as u64) << 8, &mut metrics);
        assert_eq!(metrics.cycles(), 60, "one end_cycle per step");

        // Replay unprobed and compare the aggregate fire count.
        let prog = Arc::new(prog);
        let mut batch = BatchSkeleton::from_program(Arc::clone(&prog));
        for t in 0..60u64 {
            let srcs = schedule_words(0xC0FFEE ^ (i as u64) << 8 ^ (t << 1), prog.source_count());
            let snks = schedule_words(0xC0FFEE ^ (i as u64) << 8 ^ (t << 1) ^ 1, prog.sink_count());
            batch.step_with_masks(&srcs, &snks);
        }
        let all_lanes: u64 = (0..LANES).map(|l| batch.total_fires_lane(l)).sum();
        assert_eq!(metrics.total_fires(), all_lanes, "netlist {i} fire totals");
    });
}

#[test]
fn early_exit_matches_full_budget_over_random_corpus() {
    // The periodicity early-exit must be invisible in the *numbers*: a
    // converged sweep reports the same exact rational throughputs as
    // burning the whole (here, doubled) budget, and the same exact
    // rationals as the scalar measurement path, over a random topology
    // corpus. Items fan out over the deterministic executor.
    let mut items: Vec<Netlist> = Vec::new();
    let mut seed = 0u64;
    while items.len() < 12 {
        let (_, netlist) = generate::random_family(seed);
        if netlist.validate().is_ok() && !netlist.shells().is_empty() {
            items.push(netlist);
        }
        seed += 1;
    }
    lip_par::par_map_indexed(&items, |i, netlist| {
        let prog = SettleProgram::compile(netlist).unwrap();
        let pats = LanePatterns::broadcast(&prog);
        let short = lip_sim::measure_batch_periodic(netlist, &pats, 4096).unwrap();
        let long = lip_sim::measure_batch_periodic(netlist, &pats, 8192).unwrap();
        assert!(short.all_converged(), "netlist {i} did not converge");
        assert!(
            short.cycles_saved() > 0,
            "netlist {i}: no cycles saved on a converged corpus"
        );
        let scalar = lip_sim::measure(netlist).unwrap();
        let scalar_t = scalar.system_throughput().unwrap();
        for lane in 0..LANES {
            let t = short.system_throughput(lane);
            assert_eq!(t, long.system_throughput(lane), "netlist {i} lane {lane}");
            assert_eq!(t, Some(scalar_t), "netlist {i} lane {lane} vs scalar");
        }
    });
}

#[test]
fn pattern_lanes_match_scalar_on_fig1_and_ring() {
    for netlist in [
        generate::fig1().netlist,
        generate::ring(2, 1, RelayKind::Full).netlist,
        generate::ring(2, 2, RelayKind::Fifo(2)).netlist,
    ] {
        assert_pattern_lanes_match_scalar(&netlist, 300, 99);
    }
}

// ---------------------------------------------------------------------
// Cross-width half of the suite: every lane of every word shape.
// ---------------------------------------------------------------------

/// Probe that records every event it sees.
#[derive(Default)]
struct EventLog(Vec<Event>);

impl Probe for EventLog {
    fn event(&mut self, ev: Event) {
        self.0.push(ev);
    }
}

/// Sortable per-lane fingerprint of an event: engines may emit a
/// cycle's events in different entity orders, so streams compare as
/// sorted `(cycle, kind, entity)` sequences.
fn fingerprint(ev: &Event) -> (u64, u8, u32) {
    (ev.cycle, ev.kind as u8, ev.entity)
}

/// Per-lane periodic environments at `lanes` lanes: lane `l` replicates
/// base scenario `l % 64`, so a lane of any width has an exact 64-wide
/// and scalar counterpart.
fn wide_patterns(prog: &SettleProgram, lanes: usize, seed: u64) -> LanePatterns {
    let mut pats = LanePatterns::broadcast_wide(prog, lanes);
    for lane in 0..lanes {
        let base = (lane % LANES) as u32;
        for j in 0..prog.sink_count() {
            let period = 2 + (base + seed as u32 % 5) % 7;
            pats.set_sink(
                j,
                lane,
                Pattern::EveryNth {
                    period,
                    phase: base % period,
                },
            );
        }
        if base.is_multiple_of(3) {
            for i in 0..prog.source_count() {
                pats.set_source(
                    i,
                    lane,
                    Pattern::EveryNth {
                        period: 2 + base % 4,
                        phase: 0,
                    },
                );
            }
        }
    }
    pats
}

/// Rebuild `netlist` with `lane`'s patterns from `pats`.
fn rebuild_for_lane(netlist: &Netlist, pats: &LanePatterns, lane: usize) -> Netlist {
    let mut reference = netlist.clone();
    for (i, &s) in netlist.sources().iter().enumerate() {
        assert!(reference.set_source_pattern(s, pats.source_pattern(i, lane).clone()));
    }
    for (j, &s) in netlist.sinks().iter().enumerate() {
        assert!(reference.set_sink_pattern(s, pats.sink_pattern(j, lane).clone()));
    }
    reference
}

/// Lanes to spot-check at width `lanes`: both word boundaries, the
/// middle, and the extremes.
fn sample_lanes(lanes: usize) -> Vec<usize> {
    let mut out = vec![0, 1, 63 % lanes, lanes / 2, lanes - 2, lanes - 1];
    out.sort_unstable();
    out.dedup();
    out
}

/// Width-generic check: the full fire/stall/void event stream of every
/// sampled lane is identical to a scalar probed run of that lane's
/// scenario, and the final counters agree.
fn assert_wide_event_streams_match_scalar<W: LaneWord>(netlist: &Netlist, cycles: u64, seed: u64) {
    let prog = Arc::new(SettleProgram::compile(netlist).unwrap());
    let pats = wide_patterns(&prog, W::LANES, seed);
    let mut batch = BatchEngine::<W>::from_patterns(Arc::clone(&prog), &pats);
    let mut log = EventLog::default();
    batch.run_patterns_probed(&pats, cycles, &mut log);

    for lane in sample_lanes(W::LANES) {
        let reference = rebuild_for_lane(netlist, &pats, lane);
        let mut scalar = SkeletonSystem::new(&reference).unwrap();
        let mut slog = EventLog::default();
        scalar.run_probed(cycles, &mut slog);

        let mut got: Vec<_> = log
            .0
            .iter()
            .filter(|e| e.lane as usize == lane)
            .map(fingerprint)
            .collect();
        let mut want: Vec<_> = slog.0.iter().map(fingerprint).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "lane {lane} of {} event stream", W::LANES);
        assert_eq!(
            batch.total_fires_lane(lane),
            scalar.total_fires(),
            "lane {lane} of {} fires",
            W::LANES
        );
        for s in netlist.sinks() {
            assert_eq!(
                batch.sink_counts_lane(s, lane),
                scalar.sink_counts(s),
                "lane {lane} of {} sink {s}",
                W::LANES
            );
        }
    }
}

/// Width-generic check under external random stall schedules: sampled
/// lanes track scalar replicas' full component state every cycle.
fn assert_wide_masked_lanes_match_scalar<W: LaneWord>(netlist: &Netlist, cycles: u64, seed: u64) {
    let prog = Arc::new(SettleProgram::compile(netlist).unwrap());
    let n_src = prog.source_count();
    let n_snk = prog.sink_count();
    let mut batch = BatchEngine::<W>::from_program(Arc::clone(&prog));
    let check_lanes = sample_lanes(W::LANES);
    let mut scalars: Vec<SkeletonSystem> = check_lanes
        .iter()
        .map(|_| SkeletonSystem::from_program(Arc::clone(&prog)))
        .collect();

    let word = |salt: u64, idx: usize| -> W {
        let words = schedule_words(salt ^ ((idx as u64) << 32), W::WORDS);
        W::from_fn(|l| (words[l / 64] >> (l % 64)) & 1 == 1)
    };
    for t in 0..cycles {
        let srcs: Vec<W> = (0..n_src).map(|i| word(seed ^ (t << 1), i)).collect();
        let snks: Vec<W> = (0..n_snk).map(|j| word(seed ^ (t << 1) ^ 1, j)).collect();
        batch.step_with_masks(&srcs, &snks);
        for (scalar, &lane) in scalars.iter_mut().zip(&check_lanes) {
            let valids: Vec<bool> = srcs.iter().map(|w| w.lane(lane)).collect();
            let stops: Vec<bool> = snks.iter().map(|w| w.lane(lane)).collect();
            scalar.step_with(&valids, &stops);
            assert_eq!(
                batch.lane_component_state(lane),
                scalar.component_state(),
                "lane {lane} of {} diverged at cycle {t}",
                W::LANES
            );
        }
    }
}

#[test]
fn wide_event_streams_match_scalar_over_corpus() {
    struct Check<'a> {
        netlist: &'a Netlist,
        seed: u64,
    }
    impl LaneWidthVisitor for Check<'_> {
        type Out = ();
        fn visit<W: LaneWord>(&mut self) {
            assert_wide_event_streams_match_scalar::<W>(self.netlist, 80, self.seed);
        }
    }
    let widths = lane_words_under_test();
    lip_par::par_map_indexed(&corpus(), |i, netlist| {
        for &lanes in &widths {
            dispatch_lane_width(
                lanes,
                &mut Check {
                    netlist,
                    seed: 0xABCD ^ (i as u64) << 4,
                },
            );
        }
    });
}

#[test]
fn wide_masked_lanes_match_scalar_over_corpus() {
    struct Check<'a> {
        netlist: &'a Netlist,
        seed: u64,
    }
    impl LaneWidthVisitor for Check<'_> {
        type Out = ();
        fn visit<W: LaneWord>(&mut self) {
            assert_wide_masked_lanes_match_scalar::<W>(self.netlist, 50, self.seed);
        }
    }
    let widths = lane_words_under_test();
    lip_par::par_map_indexed(&corpus(), |i, netlist| {
        for &lanes in &widths {
            dispatch_lane_width(
                lanes,
                &mut Check {
                    netlist,
                    seed: 0xFACE ^ (i as u64) << 6,
                },
            );
        }
    });
}

#[test]
fn wide_periodic_measurement_matches_scalar_exact_rationals() {
    // Exact Periodicity and Ratio at every width: lane `l` of width `w`
    // must report the same detected (transient, period) pair as lane
    // `l % 64` of the 64-lane engine, and the same exact steady-state
    // throughput as the scalar measurement of its rebuilt netlist —
    // covering every relay kind around the feedback rings.
    struct Measure<'a> {
        netlist: &'a Netlist,
        base: &'a lip_sim::BatchPeriodicMeasurement,
    }
    impl LaneWidthVisitor for Measure<'_> {
        type Out = ();
        fn visit<W: LaneWord>(&mut self) {
            let prog = Arc::new(SettleProgram::compile(self.netlist).unwrap());
            let pats = wide_patterns(&prog, W::LANES, 5);
            let m = measure_batch_periodic_wide::<W>(self.netlist, &pats, 4096).unwrap();
            assert!(m.all_converged(), "width {} did not converge", W::LANES);
            for lane in sample_lanes(W::LANES) {
                assert_eq!(
                    m.periodicity[lane],
                    self.base.periodicity[lane % LANES],
                    "lane {lane} of {} periodicity vs 64-lane base",
                    W::LANES
                );
                assert_eq!(
                    m.system_throughput(lane),
                    self.base.system_throughput(lane % LANES),
                    "lane {lane} of {} ratio vs 64-lane base",
                    W::LANES
                );
                let reference = rebuild_for_lane(self.netlist, &pats, lane);
                let scalar = lip_sim::measure(&reference).unwrap();
                assert!(scalar.periodicity.is_some(), "scalar lane {lane} periodic");
                assert_eq!(
                    m.system_throughput(lane),
                    scalar.system_throughput(),
                    "lane {lane} of {} exact ratio vs scalar",
                    W::LANES
                );
            }
        }
    }
    let items: Vec<Netlist> = vec![
        generate::fig1().netlist,
        generate::ring(2, 1, RelayKind::Full).netlist,
        generate::ring(2, 2, RelayKind::Half).netlist,
        generate::ring(2, 2, RelayKind::Fifo(3)).netlist,
    ];
    let widths = lane_words_under_test();
    lip_par::par_map_indexed(&items, |_, netlist| {
        let prog = Arc::new(SettleProgram::compile(netlist).unwrap());
        let pats64 = wide_patterns(&prog, LANES, 5);
        let base = measure_batch_periodic_wide::<u64>(netlist, &pats64, 4096).unwrap();
        assert!(base.all_converged(), "64-lane base did not converge");
        for &lanes in &widths {
            dispatch_lane_width(
                lanes,
                &mut Measure {
                    netlist,
                    base: &base,
                },
            );
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random netlist family x random schedule seed: every sampled lane
    /// bit-identical to its scalar replica, in whichever variant the
    /// family generator picked.
    #[test]
    fn lanes_match_scalar_on_random_netlists(family_seed in 0u64..200, seed in any::<u64>()) {
        let (_, netlist) = generate::random_family(family_seed);
        if netlist.validate().is_ok() {
            assert_lanes_match_scalar(&netlist, 40, seed);
        }
    }

    /// Random netlists, opposite variant forced: the discard-on-void
    /// refinement must stay lane-exact too.
    #[test]
    fn lanes_match_scalar_on_random_netlists_flipped_variant(
        family_seed in 0u64..120,
        seed in any::<u64>(),
    ) {
        let (_, mut netlist) = generate::random_family(family_seed);
        let flipped = match netlist.variant() {
            ProtocolVariant::Refined => ProtocolVariant::Carloni,
            ProtocolVariant::Carloni => ProtocolVariant::Refined,
        };
        netlist.set_variant(flipped);
        if netlist.validate().is_ok() {
            assert_lanes_match_scalar(&netlist, 40, seed);
        }
    }

    /// Batched throughput sweep equals 64 scalar pattern runs on random
    /// feed-forward netlists.
    #[test]
    fn batched_throughput_matches_scalar_on_random_netlists(family_seed in 0u64..60) {
        let (_, netlist) = generate::random_family(family_seed);
        if netlist.validate().is_ok() {
            assert_pattern_lanes_match_scalar(&netlist, 120, family_seed);
        }
    }
}
