//! Observability-layer integration tests on the paper's Fig. 1: counter
//! correctness (one void per 5 cycles, T = 4/5), probed/unprobed
//! equivalence, event streams, and RTL trace replay.

use std::sync::Arc;

use lip_graph::{generate, topology};
use lip_kernel::{CycleEngine, Engine};
use lip_obs::{
    EventKind, EventStreamProbe, JsonlSink, MetricsRegistry, RingBufferSink, Tee, TraceSink,
    TransientDetector,
};
use lip_sim::rtl::{elaborate_rtl, replay_trace_events};
use lip_sim::{SettleProgram, SkeletonSystem};

const CYCLES: u64 = 100;

/// Run Fig. 1 on the scalar skeleton with a [`MetricsRegistry`].
fn fig1_metrics() -> (MetricsRegistry, Arc<SettleProgram>) {
    let fig1 = generate::fig1();
    let mut sys = SkeletonSystem::new(&fig1.netlist).unwrap();
    let prog = sys.program().clone();
    let mut metrics = MetricsRegistry::new(prog.topology());
    sys.run_probed(CYCLES, &mut metrics);
    (metrics, prog)
}

#[test]
fn fig1_sink_counters_show_one_void_per_period() {
    let (metrics, prog) = fig1_metrics();
    let sink_ch = prog.sink_input_channel(0) as usize;
    let consumed = metrics.consumed(sink_ch);
    let voids = metrics.void_ins(sink_ch);
    // The sink sees a token every cycle; after the 2-cycle transient
    // exactly one in five is void (T = 4/5).
    assert_eq!(consumed + voids, CYCLES);
    assert_eq!(consumed, 79);
    assert_eq!(voids, 21);
    assert_eq!(metrics.sink_throughput(sink_ch), Some((79, CYCLES)));
    assert_eq!(metrics.cycles(), CYCLES);
}

#[test]
fn fig1_transient_settles_within_relay_path_bound() {
    let fig1 = generate::fig1();
    let mut sys = SkeletonSystem::new(&fig1.netlist).unwrap();
    let prog = sys.program().clone();
    let sink_ch = prog.sink_input_channel(0);

    struct Det {
        det: TransientDetector,
        informative: bool,
        sink_ch: u32,
    }
    impl lip_obs::Probe for Det {
        fn event(&mut self, _ev: lip_obs::Event) {}
        fn consume(&mut self, _cycle: u64, ch: u32, _lane: u16) {
            if ch == self.sink_ch {
                self.informative = true;
            }
        }
        fn end_cycle(&mut self, _cycle: u64) {
            self.det.push(self.informative);
            self.informative = false;
        }
    }
    let mut probe = Det {
        det: TransientDetector::new(4, 5),
        informative: false,
        sink_ch,
    };
    sys.run_probed(CYCLES, &mut probe);

    let settle = probe.det.transient().expect("fig1 settles");
    let bound = topology::longest_latency(&fig1.netlist).expect("fig1 is acyclic");
    assert!(settle <= bound, "transient {settle} > bound {bound}");
    let (num, den) = probe.det.steady_measured().expect("settled");
    assert_eq!(num * 5, den * 4, "steady state is exactly 4/5");
}

#[test]
fn probing_does_not_change_skeleton_behaviour() {
    let fig1 = generate::fig1();
    let mut probed = SkeletonSystem::new(&fig1.netlist).unwrap();
    let mut plain = SkeletonSystem::new(&fig1.netlist).unwrap();
    let mut metrics = MetricsRegistry::new(probed.program().topology());
    for _ in 0..CYCLES {
        probed.step_probed(&mut metrics);
        plain.step();
        assert_eq!(probed.component_state(), plain.component_state());
    }
    assert_eq!(probed.total_fires(), plain.total_fires());
    assert_eq!(metrics.total_fires(), plain.total_fires());
    for s in fig1.netlist.sinks() {
        assert_eq!(probed.sink_counts(s), plain.sink_counts(s));
    }
}

#[test]
fn event_stream_agrees_with_counters() {
    let fig1 = generate::fig1();
    let mut sys = SkeletonSystem::new(&fig1.netlist).unwrap();
    let topo = sys.program().topology();
    let mut probe = Tee(
        MetricsRegistry::new(topo),
        EventStreamProbe::new(RingBufferSink::new(100_000)),
    );
    sys.run_probed(CYCLES, &mut probe);
    let Tee(metrics, stream) = probe;
    let ring = stream.into_sink();
    assert_eq!(ring.dropped(), 0, "buffer sized for the whole run");

    let count = |kind: EventKind| ring.events().filter(|e| e.kind == kind).count() as u64;
    assert_eq!(count(EventKind::Fire), metrics.total_fires());
    let void_ins: u64 = (0..metrics.topology().channels as usize)
        .map(|ch| metrics.void_ins(ch))
        .sum();
    assert_eq!(count(EventKind::VoidIn), void_ins);
    let fills: u64 = (0..metrics.topology().relays())
        .map(|r| metrics.relay_traffic(r).0)
        .sum();
    assert_eq!(count(EventKind::RelayFill), fills);
}

#[test]
fn jsonl_sink_writes_one_object_per_event() {
    let fig1 = generate::fig1();
    let mut sys = SkeletonSystem::new(&fig1.netlist).unwrap();
    let mut probe = EventStreamProbe::new(JsonlSink::new(Vec::new()));
    sys.run_probed(20, &mut probe);
    let mut sink = probe.into_sink();
    assert!(sink.take_error().is_none());
    let written = sink.written();
    let buf = sink.finish().unwrap();
    let text = String::from_utf8(buf).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len() as u64, written);
    assert!(!lines.is_empty());
    for line in lines {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"kind\":"), "{line}");
        assert!(line.contains("\"cycle\":"), "{line}");
    }
}

#[test]
fn trace_sink_captures_protocol_waveform() {
    let fig1 = generate::fig1();
    let mut sys = SkeletonSystem::new(&fig1.netlist).unwrap();
    let topo = sys.program().topology();
    let mut probe = EventStreamProbe::new(TraceSink::new(&topo));
    sys.run_probed(30, &mut probe);
    let sink = probe.into_sink();
    assert_eq!(sink.trace().len(), 30, "one capture per cycle");
    let vcd = sink.to_vcd();
    assert!(vcd.contains("ch0_void_in"));
    assert!(vcd.contains("shell0_fire"));
    assert!(vcd.contains("relay0_occ"));
}

#[test]
fn rtl_trace_replay_matches_skeleton_stall_void_counts() {
    let fig1 = generate::fig1();

    // Skeleton side: per-channel stall/void counters from the probed
    // settle sweep.
    let mut sys = SkeletonSystem::new(&fig1.netlist).unwrap();
    let topo = sys.program().topology();
    let mut skel = MetricsRegistry::new(topo.clone());
    sys.run_probed(CYCLES, &mut skel);

    // RTL side: run the elaborated circuit with tracing, then replay
    // the waveform into the same counters.
    let (circuit, probes) = elaborate_rtl(&fig1.netlist).unwrap();
    let mut engine = CycleEngine::new(circuit);
    engine.enable_trace();
    engine.run(CYCLES);
    let mut rtl = MetricsRegistry::new(topo);
    replay_trace_events(engine.trace().unwrap(), &probes, &mut rtl);

    assert_eq!(rtl.cycles(), CYCLES);
    for ch in 0..probes.channel_count() {
        assert_eq!(
            skel.voids(ch),
            rtl.voids(ch),
            "channel {ch} void-cycle count"
        );
        assert_eq!(skel.stalls(ch), rtl.stalls(ch), "channel {ch} stall count");
    }
}
