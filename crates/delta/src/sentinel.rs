//! The statistical regression sentinel for timing metrics.
//!
//! Wall-clock numbers (`*_ns`, `*_per_sec`, speedups, overhead
//! percentages) are not exactly reproducible, so the differ cannot
//! hard-fail on them the way it does on proved `Ratio`s and kernel
//! counters. The old answer was ad-hoc absolute thresholds in
//! `run_experiments.sh` — which either flap (threshold too tight for a
//! noisy host) or go stale (threshold so loose a real regression walks
//! through). The sentinel replaces them with *noise bands estimated
//! from stored run history*: each metric's band is
//! `median ± k·max(MAD, rel_floor·median)`, i.e. a robust spread
//! estimate with a relative floor so a perfectly quiet history still
//! tolerates scheduler jitter. A current value outside the band in the
//! harmful direction is a regression; outside in the helpful direction
//! is an improvement worth re-baselining.

/// Which way a metric is supposed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better (latencies, overhead percentages).
    LowerIsBetter,
    /// Larger is better (speedups, rates).
    HigherIsBetter,
}

/// Classify a metric key's preferred direction. Timing-domain keys
/// only; exact-domain keys have no direction (any change is a diff).
#[must_use]
pub fn direction_of(key: &str) -> Direction {
    let higher = [
        "per_sec",
        "speedup",
        "throughput",
        "rate",
        "coverage",
        "hits",
    ];
    if higher.iter().any(|m| key.contains(m)) {
        Direction::HigherIsBetter
    } else {
        Direction::LowerIsBetter
    }
}

/// The sentinel's judgement of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Inside the noise band.
    Pass {
        /// The estimated `(lo, hi)` band.
        band: (f64, f64),
    },
    /// Outside the band in the helpful direction.
    Improved {
        /// The estimated `(lo, hi)` band.
        band: (f64, f64),
    },
    /// Outside the band in the harmful direction.
    Regressed {
        /// The estimated `(lo, hi)` band.
        band: (f64, f64),
    },
    /// Not enough stored history to estimate a band.
    NoHistory {
        /// Samples available.
        have: usize,
        /// Samples required.
        need: usize,
    },
}

impl Verdict {
    /// True for the only verdict that should fail a gate.
    #[must_use]
    pub fn is_regression(&self) -> bool {
        matches!(self, Verdict::Regressed { .. })
    }
}

/// Noise-band estimator over stored run history.
#[derive(Debug, Clone, Copy)]
pub struct Sentinel {
    /// Minimum history samples before a band is trusted.
    pub min_history: usize,
    /// Band half-width in robust spread units.
    pub k: f64,
    /// Relative spread floor (fraction of the median) so a quiet
    /// history still tolerates normal jitter.
    pub rel_floor: f64,
}

impl Default for Sentinel {
    fn default() -> Self {
        Sentinel {
            min_history: 3,
            k: 4.0,
            rel_floor: 0.05,
        }
    }
}

fn median(sorted: &[f64]) -> f64 {
    let n = sorted.len();
    if n % 2 == 1 {
        sorted[n / 2]
    } else {
        f64::midpoint(sorted[n / 2 - 1], sorted[n / 2])
    }
}

impl Sentinel {
    /// The noise band estimated from `history`, or `None` when history
    /// is shorter than [`Sentinel::min_history`].
    #[must_use]
    pub fn band(&self, history: &[f64]) -> Option<(f64, f64)> {
        if history.len() < self.min_history {
            return None;
        }
        let mut sorted: Vec<f64> = history.to_vec();
        sorted.sort_by(f64::total_cmp);
        let m = median(&sorted);
        let mut devs: Vec<f64> = sorted.iter().map(|v| (v - m).abs()).collect();
        devs.sort_by(f64::total_cmp);
        let mad = median(&devs);
        let spread = mad.max(self.rel_floor * m.abs());
        Some((self.k.mul_add(-spread, m), self.k.mul_add(spread, m)))
    }

    /// Judge `current` against the band estimated from `history`.
    #[must_use]
    pub fn judge(&self, history: &[f64], current: f64, dir: Direction) -> Verdict {
        let Some(band) = self.band(history) else {
            return Verdict::NoHistory {
                have: history.len(),
                need: self.min_history,
            };
        };
        let (lo, hi) = band;
        if current >= lo && current <= hi {
            return Verdict::Pass { band };
        }
        let harmful = match dir {
            Direction::LowerIsBetter => current > hi,
            Direction::HigherIsBetter => current < lo,
        };
        if harmful {
            Verdict::Regressed { band }
        } else {
            Verdict::Improved { band }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn short_history_gives_no_verdict() {
        let s = Sentinel::default();
        let v = s.judge(&[10.0, 11.0], 100.0, Direction::LowerIsBetter);
        assert_eq!(v, Verdict::NoHistory { have: 2, need: 3 });
    }

    #[test]
    fn band_catches_harmful_moves_only() {
        let s = Sentinel::default();
        let hist = [100.0, 102.0, 98.0, 101.0, 99.0];
        // Well outside the band, slower: regression.
        assert!(s
            .judge(&hist, 200.0, Direction::LowerIsBetter)
            .is_regression());
        // Well outside the band, faster: improvement, not a failure.
        assert!(matches!(
            s.judge(&hist, 10.0, Direction::LowerIsBetter),
            Verdict::Improved { .. }
        ));
        // Within noise: pass.
        assert!(matches!(
            s.judge(&hist, 103.0, Direction::LowerIsBetter),
            Verdict::Pass { .. }
        ));
        // Higher-is-better flips the harmful side.
        assert!(s
            .judge(&hist, 10.0, Direction::HigherIsBetter)
            .is_regression());
        assert!(matches!(
            s.judge(&hist, 200.0, Direction::HigherIsBetter),
            Verdict::Improved { .. }
        ));
    }

    #[test]
    fn quiet_history_keeps_a_jitter_floor() {
        let s = Sentinel::default();
        // Identical history: MAD is zero, the relative floor keeps the
        // band open so normal jitter does not flap the gate.
        let hist = [100.0, 100.0, 100.0];
        assert!(matches!(
            s.judge(&hist, 104.0, Direction::LowerIsBetter),
            Verdict::Pass { .. }
        ));
        assert!(s
            .judge(&hist, 150.0, Direction::LowerIsBetter)
            .is_regression());
    }

    #[test]
    fn direction_classifier_reads_key_names() {
        assert_eq!(direction_of("settle_ns"), Direction::LowerIsBetter);
        assert_eq!(
            direction_of("overhead_enabled_pct"),
            Direction::LowerIsBetter
        );
        assert_eq!(direction_of("states_per_sec"), Direction::HigherIsBetter);
        assert_eq!(direction_of("min_patch_speedup"), Direction::HigherIsBetter);
    }
}
