//! A minimal JSON value model, parser and printer.
//!
//! Every artifact in the workspace is hand-serialized JSON (the
//! workspace takes no serialisation dependency); this is the matching
//! hand-rolled *reader* the differ uses to load those artifacts back
//! into a structural form. Integers parse losslessly into [`Json::Int`]
//! so exact-domain comparisons (schema versions, `Ratio` numerators,
//! kernel counters) never round-trip through floating point.

use std::fmt::Write as _;

/// A parsed JSON value. Object member order is preserved so printed
/// output is stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number with no fractional or exponent part, kept exact.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects; `None` on anything else.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an exact integer, if it is one.
    #[must_use]
    pub fn as_int(&self) -> Option<i64> {
        match *self {
            Json::Int(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a float (integers widen losslessly enough for
    /// telemetry fields).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Int(v) => {
                #[allow(clippy::cast_precision_loss)]
                {
                    Some(v as f64)
                }
            }
            Json::Float(v) => Some(v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The object members, if it is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// Compact single-line rendering (stable member order).
    #[must_use]
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(members) => {
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse a JSON document. Errors carry a byte offset and a short
/// description.
///
/// # Errors
///
/// Returns a message when `src` is not a single well-formed JSON value.
pub fn parse(src: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: src.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing bytes after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("json parse error at byte {}: {}", self.pos, what)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate pairs: decode the low half when
                            // present; lone surrogates degrade to the
                            // replacement character.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                    char::from_u32(combined).unwrap_or('\u{FFFD}')
                                } else {
                                    '\u{FFFD}'
                                }
                            } else {
                                char::from_u32(cp).unwrap_or('\u{FFFD}')
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: the source is a &str, so the
                    // sequence is valid; copy it through.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    self.pos = start + len;
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8"))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if integral {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_exactly() {
        assert_eq!(parse("42").unwrap(), Json::Int(42));
        assert_eq!(parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
    }

    #[test]
    fn round_trips_real_artifacts() {
        let src = r#"{"schema_version": 2, "ratio": {"num": 4, "den": 5},
                      "lane_widths": [64, 128], "ok": true,
                      "name": "fig1 \"quoted\"", "t_ns": 12.75}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.get("schema_version").unwrap().as_int(), Some(2));
        assert_eq!(
            v.get("ratio").unwrap().get("num").unwrap().as_int(),
            Some(4)
        );
        let again = parse(&v.to_compact()).unwrap();
        assert_eq!(v, again, "print→parse is a fixpoint");
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("01x").is_err());
        assert!(parse("\"open").is_err());
        assert!(parse("{} trailing").is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".into()));
    }
}
