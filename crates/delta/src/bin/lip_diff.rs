//! `lip_diff` — capture sweep artifacts into the run store, diff runs,
//! and gate CI on committed baselines.
//!
//! ```text
//! lip_diff capture [--store DIR] [--label L] FILE...
//! lip_diff list [--store DIR]
//! lip_diff compare [--store DIR] [--json] <run_a> <run_b>
//! lip_diff baseline check [--baselines DIR]
//! lip_diff baseline accept [--baselines DIR] [FILE...]
//! lip_diff schema [KEY]
//! ```
//!
//! * `capture` — commit the given artifact files as one run
//!   (content-addressed: an identical artifact set re-commits under
//!   the same id). Prints the run id.
//! * `list` — the stored runs, oldest first.
//! * `compare` — diff two runs (ids or unique prefixes); `--json`
//!   prints the versioned document instead of the human rendering.
//! * `baseline check` — re-extract the exact-domain subset of every
//!   artifact named by a committed baseline under `baselines/` and
//!   fail on any divergence (timing is never baselined).
//! * `baseline accept` — rewrite the baselines from the current
//!   artifacts: all of them, or just the files given.
//! * `schema` — print `key=version` for every artifact schema (or one
//!   version given its key), so shell gates read versions from the
//!   binary instead of hardcoding them.
//!
//! Exit codes: 0 clean, 1 diff/regression/check failure, 2 usage or
//! I/O error.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use lip_delta::{baseline_doc, check_one, diff_runs, parse, Json, RunBuilder, RunStore, Sentinel};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(clean) => {
            if clean {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(msg) => {
            eprintln!("lip_diff: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<bool, String> {
    let Some(cmd) = args.first() else {
        return Err(usage());
    };
    let rest = &args[1..];
    match cmd.as_str() {
        "capture" => capture(rest),
        "list" => list(rest),
        "compare" => compare(rest),
        "baseline" => baseline(rest),
        "schema" => schema(rest),
        "--help" | "-h" | "help" => {
            println!("{}", usage());
            Ok(true)
        }
        other => Err(format!("unknown subcommand '{other}'\n{}", usage())),
    }
}

fn usage() -> String {
    "usage: lip_diff capture [--store DIR] [--label L] FILE...\n\
     \u{20}      lip_diff list [--store DIR]\n\
     \u{20}      lip_diff compare [--store DIR] [--json] <run_a> <run_b>\n\
     \u{20}      lip_diff baseline check|accept [--baselines DIR] [FILE...]\n\
     \u{20}      lip_diff schema [KEY]"
        .to_owned()
}

/// `(valued options, flag hits, positionals)` from [`parse_opts`].
type ParsedArgs<'a> = (Vec<(&'a str, &'a str)>, Vec<bool>, Vec<&'a str>);

/// Split `--store DIR` / `--label L` / `--json` style options from
/// positional arguments.
fn parse_opts<'a>(
    args: &'a [String],
    valued: &[&str],
    flags: &[&str],
) -> Result<ParsedArgs<'a>, String> {
    let mut values = Vec::new();
    let mut flag_hits = vec![false; flags.len()];
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(i) = flags.iter().position(|f| f == a) {
            flag_hits[i] = true;
        } else if valued.contains(&a.as_str()) {
            let v = it
                .next()
                .ok_or_else(|| format!("option {a} needs a value"))?;
            values.push((a.as_str(), v.as_str()));
        } else if a.starts_with("--") {
            return Err(format!("unknown option {a}"));
        } else {
            positional.push(a.as_str());
        }
    }
    Ok((values, flag_hits, positional))
}

fn opt<'a>(values: &[(&'a str, &'a str)], name: &str) -> Option<&'a str> {
    values.iter().find(|(k, _)| *k == name).map(|&(_, v)| v)
}

fn store_from(values: &[(&str, &str)]) -> RunStore {
    RunStore::open(opt(values, "--store").map_or_else(RunStore::default_root, PathBuf::from))
}

fn capture(args: &[String]) -> Result<bool, String> {
    let (values, _, files) = parse_opts(args, &["--store", "--label"], &[])?;
    if files.is_empty() {
        return Err("capture needs at least one artifact file".into());
    }
    let store = store_from(&values);
    let mut b = RunBuilder::new(opt(&values, "--label").unwrap_or("sweep"));
    for f in &files {
        b.add_file(Path::new(f)).map_err(|e| format!("{f}: {e}"))?;
    }
    let id = b.commit(&store).map_err(|e| e.to_string())?;
    println!("{id}");
    Ok(true)
}

fn list(args: &[String]) -> Result<bool, String> {
    let (values, _, positional) = parse_opts(args, &["--store"], &[])?;
    if !positional.is_empty() {
        return Err("list takes no positional arguments".into());
    }
    let store = store_from(&values);
    let runs = store.list().map_err(|e| e.to_string())?;
    if runs.is_empty() {
        println!("no runs in {}", store.root().display());
        return Ok(true);
    }
    for m in runs {
        println!(
            "{}  {:>4} artifact(s)  git {}  lanes {}  jobs {}  {}",
            m.run_id,
            m.artifacts.len(),
            &m.git_sha[..m.git_sha.len().min(12)],
            m.lane_words,
            m.lip_jobs,
            m.label
        );
    }
    Ok(true)
}

fn compare(args: &[String]) -> Result<bool, String> {
    let (values, flags, runs) = parse_opts(args, &["--store"], &["--json"])?;
    let json = flags[0];
    let [id_a, id_b] = runs.as_slice() else {
        return Err("compare needs exactly two run ids".into());
    };
    let store = store_from(&values);
    let a = store.load(id_a).map_err(|e| e.to_string())?;
    let b = store.load(id_b).map_err(|e| e.to_string())?;
    let diff = diff_runs(&store, &a, &b, &Sentinel::default());
    if json {
        println!("{}", diff.to_json().to_compact());
    } else {
        print!("{}", diff.render_human());
    }
    Ok(diff.clean())
}

/// Where a baselined artifact may live now: as given, repo root, or
/// the report directory.
fn resolve_artifact(name: &str) -> Result<PathBuf, String> {
    let report_dir =
        std::env::var("LIP_REPORT_DIR").unwrap_or_else(|_| "target/reports".to_owned());
    let candidates = [PathBuf::from(name), Path::new(&report_dir).join(name)];
    candidates
        .iter()
        .find(|p| p.exists())
        .cloned()
        .ok_or_else(|| format!("artifact {name} not found (looked in . and {report_dir})"))
}

fn baseline(args: &[String]) -> Result<bool, String> {
    let Some(verb) = args.first() else {
        return Err("baseline needs 'check' or 'accept'".into());
    };
    let (values, _, files) = parse_opts(&args[1..], &["--baselines"], &[])?;
    let dir = PathBuf::from(opt(&values, "--baselines").unwrap_or("baselines"));
    match verb.as_str() {
        "check" => baseline_check(&dir),
        "accept" => baseline_accept(&dir, &files),
        other => Err(format!("unknown baseline verb '{other}'")),
    }
}

fn baseline_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let p = entry.map_err(|e| e.to_string())?.path();
        if p.extension().is_some_and(|x| x == "json") {
            out.push(p);
        }
    }
    out.sort();
    Ok(out)
}

fn load_json(path: &Path) -> Result<Json, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn baseline_check(dir: &Path) -> Result<bool, String> {
    let files = baseline_files(dir)?;
    if files.is_empty() {
        return Err(format!("no baselines under {}", dir.display()));
    }
    let mut clean = true;
    for f in &files {
        let base = load_json(f)?;
        let Some(source) = base.get("source").and_then(Json::as_str) else {
            return Err(format!("{}: missing 'source'", f.display()));
        };
        let current = load_json(&resolve_artifact(source)?)?;
        let diffs = check_one(source, &base, &current);
        if diffs.is_empty() {
            println!("baseline ok: {source}");
        } else {
            clean = false;
            println!("baseline DIVERGED: {source}");
            for d in &diffs {
                let show =
                    |v: &Option<Json>| v.as_ref().map_or_else(|| "∅".to_owned(), Json::to_compact);
                println!("  {}: {} → {}", d.path, show(&d.before), show(&d.after));
            }
        }
    }
    if !clean {
        println!(
            "baseline check failed — if the change is intentional, run \
             'cargo run --release --bin lip_diff -- baseline accept' and commit"
        );
    }
    Ok(clean)
}

fn baseline_accept(dir: &Path, files: &[&str]) -> Result<bool, String> {
    // With explicit files: (re)create those baselines. Without:
    // refresh every committed baseline from its current artifact.
    let sources: Vec<String> = if files.is_empty() {
        baseline_files(dir)?
            .iter()
            .map(|f| {
                let base = load_json(f)?;
                base.get("source")
                    .and_then(Json::as_str)
                    .map(str::to_owned)
                    .ok_or_else(|| format!("{}: missing 'source'", f.display()))
            })
            .collect::<Result<_, _>>()?
    } else {
        files.iter().map(|&f| f.to_owned()).collect()
    };
    if sources.is_empty() {
        return Err(format!(
            "no baselines under {} and no artifact files given",
            dir.display()
        ));
    }
    fs::create_dir_all(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for source in &sources {
        let path = resolve_artifact(source)?;
        let doc = load_json(&path)?;
        let name = Path::new(source)
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| format!("bad artifact name {source}"))?;
        let out = dir.join(name);
        fs::write(&out, baseline_doc(name, &doc).to_compact() + "\n")
            .map_err(|e| format!("{}: {e}", out.display()))?;
        println!("accepted {name} → {}", out.display());
    }
    Ok(true)
}

fn schema(args: &[String]) -> Result<bool, String> {
    match args {
        [] => {
            for &(k, v) in lip_obs::schema::ALL {
                println!("{k}={v}");
            }
            Ok(true)
        }
        [key] => match lip_obs::schema::version(key) {
            Some(v) => {
                println!("{v}");
                Ok(true)
            }
            None => Err(format!("unknown schema key '{key}'")),
        },
        _ => Err("schema takes at most one key".into()),
    }
}
