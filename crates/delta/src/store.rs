//! The content-addressed run-artifact store.
//!
//! A *run* is one sweep's worth of artifacts — `BENCH_*.json` reports,
//! `BLAME_*.json` profiles, the `BENCH_check.json` proof matrix —
//! captured together under `target/runs/<run_id>/` with a manifest
//! recording where they came from (git SHA, lane width, `LIP_JOBS`,
//! host fingerprint) and which schema versions were current. The run
//! id is a digest of the artifact contents, so committing the same
//! sweep twice is idempotent and two runs with the same id are
//! byte-identical by construction.
//!
//! Layout:
//!
//! ```text
//! <root>/                      # default target/runs, $LIP_RUN_STORE override
//!   <run_id>/
//!     manifest.json            # schema lip_obs::schema::MANIFEST
//!     artifacts/
//!       BENCH_check.json
//!       BLAME_fig1.json
//!       …
//! ```

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json::{parse, Json};

/// 64-bit FNV-1a, the workspace's standard cheap content digest.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One captured artifact in a run manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArtifactRef {
    /// File name under `artifacts/` (the artifact's repo-root name).
    pub name: String,
    /// Size in bytes.
    pub bytes: u64,
    /// FNV-1a digest of the contents, zero-padded hex.
    pub hash: String,
}

/// The provenance record written next to every run's artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Manifest layout version ([`lip_obs::schema::MANIFEST`]).
    pub schema_version: i64,
    /// Content-derived run id (digest of the artifact set).
    pub run_id: String,
    /// Free-form label (`sweep`, `exp_delta baseline`, …).
    pub label: String,
    /// Capture time, nanoseconds since the Unix epoch.
    pub created_ns: i64,
    /// `git rev-parse HEAD` at capture time, or `unknown`.
    pub git_sha: String,
    /// `LIP_LANE_WORDS` at capture time, or `default`.
    pub lane_words: String,
    /// `LIP_JOBS` at capture time, or `default`.
    pub lip_jobs: String,
    /// Host fingerprint (`os-arch-hostname`).
    pub host: String,
    /// Every artifact schema version current at capture time.
    pub schemas: Vec<(String, i64)>,
    /// The captured artifacts, sorted by name.
    pub artifacts: Vec<ArtifactRef>,
}

impl Manifest {
    fn to_json(&self) -> Json {
        let schemas = self
            .schemas
            .iter()
            .map(|(k, v)| (k.clone(), Json::Int(*v)))
            .collect();
        let artifacts = self
            .artifacts
            .iter()
            .map(|a| {
                Json::Obj(vec![
                    ("name".into(), Json::Str(a.name.clone())),
                    ("bytes".into(), Json::Int(a.bytes as i64)),
                    ("hash".into(), Json::Str(a.hash.clone())),
                ])
            })
            .collect();
        Json::Obj(vec![
            ("schema_version".into(), Json::Int(self.schema_version)),
            ("kind".into(), Json::Str("run_manifest".into())),
            ("run_id".into(), Json::Str(self.run_id.clone())),
            ("label".into(), Json::Str(self.label.clone())),
            ("created_ns".into(), Json::Int(self.created_ns)),
            ("git_sha".into(), Json::Str(self.git_sha.clone())),
            ("lane_words".into(), Json::Str(self.lane_words.clone())),
            ("lip_jobs".into(), Json::Str(self.lip_jobs.clone())),
            ("host".into(), Json::Str(self.host.clone())),
            ("schemas".into(), Json::Obj(schemas)),
            ("artifacts".into(), Json::Arr(artifacts)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let str_field = |k: &str| -> Result<String, String> {
            v.get(k)
                .and_then(Json::as_str)
                .map(str::to_owned)
                .ok_or_else(|| format!("manifest missing string field {k}"))
        };
        let int_field = |k: &str| -> Result<i64, String> {
            v.get(k)
                .and_then(Json::as_int)
                .ok_or_else(|| format!("manifest missing integer field {k}"))
        };
        let schemas = v
            .get("schemas")
            .and_then(Json::as_obj)
            .ok_or("manifest missing schemas")?
            .iter()
            .map(|(k, ver)| {
                ver.as_int()
                    .map(|n| (k.clone(), n))
                    .ok_or_else(|| format!("schema {k} is not an integer"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let artifacts = v
            .get("artifacts")
            .and_then(Json::as_arr)
            .ok_or("manifest missing artifacts")?
            .iter()
            .map(|a| {
                Ok(ArtifactRef {
                    name: a
                        .get("name")
                        .and_then(Json::as_str)
                        .ok_or("artifact missing name")?
                        .to_owned(),
                    bytes: a
                        .get("bytes")
                        .and_then(Json::as_int)
                        .ok_or("artifact missing bytes")? as u64,
                    hash: a
                        .get("hash")
                        .and_then(Json::as_str)
                        .ok_or("artifact missing hash")?
                        .to_owned(),
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(Manifest {
            schema_version: int_field("schema_version")?,
            run_id: str_field("run_id")?,
            label: str_field("label")?,
            created_ns: int_field("created_ns")?,
            git_sha: str_field("git_sha")?,
            lane_words: str_field("lane_words")?,
            lip_jobs: str_field("lip_jobs")?,
            host: str_field("host")?,
            schemas,
            artifacts,
        })
    }
}

/// A run loaded back from the store.
#[derive(Debug, Clone)]
pub struct Run {
    /// The provenance manifest.
    pub manifest: Manifest,
    dir: PathBuf,
}

impl Run {
    /// Raw contents of a captured artifact.
    ///
    /// # Errors
    ///
    /// I/O errors reading the artifact file.
    pub fn artifact(&self, name: &str) -> io::Result<String> {
        fs::read_to_string(self.dir.join("artifacts").join(name))
    }

    /// A captured artifact parsed as JSON.
    ///
    /// # Errors
    ///
    /// I/O errors, or a parse error message for malformed JSON.
    pub fn artifact_json(&self, name: &str) -> Result<Json, String> {
        let text = self.artifact(name).map_err(|e| format!("{name}: {e}"))?;
        parse(&text).map_err(|e| format!("{name}: {e}"))
    }

    /// Names of every captured artifact, sorted.
    #[must_use]
    pub fn artifact_names(&self) -> Vec<String> {
        self.manifest
            .artifacts
            .iter()
            .map(|a| a.name.clone())
            .collect()
    }
}

/// A directory of runs.
#[derive(Debug, Clone)]
pub struct RunStore {
    root: PathBuf,
}

impl RunStore {
    /// Open (without creating) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Self {
        RunStore { root: root.into() }
    }

    /// The conventional store root: `$LIP_RUN_STORE`, else
    /// `target/runs`.
    #[must_use]
    pub fn default_root() -> PathBuf {
        std::env::var_os("LIP_RUN_STORE")
            .map_or_else(|| PathBuf::from("target/runs"), PathBuf::from)
    }

    /// The store's root directory.
    #[must_use]
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Manifests of every run, oldest first (by capture time, then id).
    ///
    /// # Errors
    ///
    /// I/O errors walking the store; a run directory with a malformed
    /// manifest is an error, not silently skipped.
    pub fn list(&self) -> io::Result<Vec<Manifest>> {
        let mut out = Vec::new();
        let entries = match fs::read_dir(&self.root) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(e),
        };
        for entry in entries {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let manifest_path = entry.path().join("manifest.json");
            if !manifest_path.exists() {
                continue;
            }
            let text = fs::read_to_string(&manifest_path)?;
            let doc = parse(&text).map_err(io::Error::other)?;
            out.push(Manifest::from_json(&doc).map_err(io::Error::other)?);
        }
        out.sort_by(|a, b| {
            a.created_ns
                .cmp(&b.created_ns)
                .then_with(|| a.run_id.cmp(&b.run_id))
        });
        Ok(out)
    }

    /// Load one run by id (unique prefixes are accepted).
    ///
    /// # Errors
    ///
    /// `NotFound` for an unknown id, `InvalidInput` for an ambiguous
    /// prefix, plus underlying I/O errors.
    pub fn load(&self, id: &str) -> io::Result<Run> {
        let dir = self.root.join(id);
        let dir = if dir.join("manifest.json").exists() {
            dir
        } else {
            // Prefix match.
            let mut matches = Vec::new();
            for m in self.list()? {
                if m.run_id.starts_with(id) {
                    matches.push(m.run_id);
                }
            }
            match matches.len() {
                0 => {
                    return Err(io::Error::new(
                        io::ErrorKind::NotFound,
                        format!("no run {id} in {}", self.root.display()),
                    ))
                }
                1 => self.root.join(&matches[0]),
                _ => {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidInput,
                        format!("run prefix {id} is ambiguous: {}", matches.join(", ")),
                    ))
                }
            }
        };
        let text = fs::read_to_string(dir.join("manifest.json"))?;
        let doc = parse(&text).map_err(io::Error::other)?;
        let manifest = Manifest::from_json(&doc).map_err(io::Error::other)?;
        Ok(Run { manifest, dir })
    }

    /// The most recently captured run, if any.
    ///
    /// # Errors
    ///
    /// I/O errors walking the store.
    pub fn latest(&self) -> io::Result<Option<Manifest>> {
        Ok(self.list()?.pop())
    }
}

/// Accumulates artifacts for one run, then commits them atomically.
#[derive(Debug, Clone, Default)]
pub struct RunBuilder {
    label: String,
    artifacts: Vec<(String, String)>,
}

impl RunBuilder {
    /// A builder for a run labelled `label`.
    #[must_use]
    pub fn new(label: &str) -> Self {
        RunBuilder {
            label: label.to_owned(),
            artifacts: Vec::new(),
        }
    }

    /// Add an artifact by name and contents. Re-adding a name replaces
    /// the previous contents.
    pub fn add_artifact(&mut self, name: &str, contents: &str) {
        if let Some(slot) = self.artifacts.iter_mut().find(|(n, _)| n == name) {
            slot.1 = contents.to_owned();
        } else {
            self.artifacts.push((name.to_owned(), contents.to_owned()));
        }
    }

    /// Add a file from disk, named by its file name.
    ///
    /// # Errors
    ///
    /// I/O errors reading `path`, or `InvalidInput` for a path with no
    /// file name.
    pub fn add_file(&mut self, path: &Path) -> io::Result<()> {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
            .to_owned();
        let contents = fs::read_to_string(path)?;
        self.add_artifact(&name, &contents);
        Ok(())
    }

    /// The content-derived run id this artifact set will commit under.
    #[must_use]
    pub fn run_id(&self) -> String {
        let mut sorted: Vec<_> = self
            .artifacts
            .iter()
            .map(|(n, c)| (n.as_str(), fnv1a(c.as_bytes())))
            .collect();
        sorted.sort_unstable();
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for (name, content_hash) in sorted {
            h = h.wrapping_mul(0x0000_0100_0000_01b3) ^ fnv1a(name.as_bytes());
            h = h.wrapping_mul(0x0000_0100_0000_01b3) ^ content_hash;
        }
        format!("{h:016x}")
    }

    /// Write the run into `store`. Content-addressed: committing an
    /// identical artifact set returns the existing run id without
    /// touching its manifest (first capture's provenance wins).
    ///
    /// # Errors
    ///
    /// I/O errors creating directories or writing files, or
    /// `InvalidInput` when the builder holds no artifacts.
    pub fn commit(&self, store: &RunStore) -> io::Result<String> {
        if self.artifacts.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "refusing to commit a run with no artifacts",
            ));
        }
        let run_id = self.run_id();
        let dir = store.root.join(&run_id);
        if dir.join("manifest.json").exists() {
            return Ok(run_id);
        }
        // Stage under a temp name, then rename: a crashed capture never
        // leaves a half-written run that `list` would trip over.
        let staging = store.root.join(format!(".tmp-{run_id}"));
        let _ = fs::remove_dir_all(&staging);
        fs::create_dir_all(staging.join("artifacts"))?;
        let mut refs: Vec<ArtifactRef> = self
            .artifacts
            .iter()
            .map(|(name, contents)| ArtifactRef {
                name: name.clone(),
                bytes: contents.len() as u64,
                hash: format!("{:016x}", fnv1a(contents.as_bytes())),
            })
            .collect();
        refs.sort_by(|a, b| a.name.cmp(&b.name));
        for (name, contents) in &self.artifacts {
            fs::write(staging.join("artifacts").join(name), contents)?;
        }
        let manifest = Manifest {
            schema_version: i64::from(lip_obs::schema::MANIFEST),
            run_id: run_id.clone(),
            label: self.label.clone(),
            created_ns: now_ns(),
            git_sha: git_sha(),
            lane_words: env_or("LIP_LANE_WORDS", "default"),
            lip_jobs: env_or("LIP_JOBS", "default"),
            host: host_fingerprint(),
            schemas: lip_obs::schema::ALL
                .iter()
                .map(|&(k, v)| (k.to_owned(), i64::from(v)))
                .collect(),
            artifacts: refs,
        };
        fs::write(
            staging.join("manifest.json"),
            manifest.to_json().to_compact() + "\n",
        )?;
        match fs::rename(&staging, &dir) {
            Ok(()) => {}
            // A concurrent capture of the same content won the rename;
            // both sides wrote byte-identical runs.
            Err(_) if dir.join("manifest.json").exists() => {
                let _ = fs::remove_dir_all(&staging);
            }
            Err(e) => return Err(e),
        }
        Ok(run_id)
    }
}

fn now_ns() -> i64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map_or(0, |d| i64::try_from(d.as_nanos()).unwrap_or(i64::MAX))
}

fn env_or(key: &str, fallback: &str) -> String {
    std::env::var(key).unwrap_or_else(|_| fallback.to_owned())
}

fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn host_fingerprint() -> String {
    let host = std::env::var("HOSTNAME")
        .ok()
        .or_else(|| {
            fs::read_to_string("/etc/hostname")
                .ok()
                .map(|s| s.trim().to_owned())
        })
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown-host".to_owned());
    format!(
        "{}-{}-{}",
        std::env::consts::OS,
        std::env::consts::ARCH,
        host
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "lip-delta-store-{tag}-{}-{}",
            std::process::id(),
            now_ns()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn commit_is_content_addressed_and_idempotent() {
        let root = tmp_root("idem");
        let store = RunStore::open(&root);
        let mut b = RunBuilder::new("test");
        b.add_artifact("BENCH_x.json", "{\"schema_version\": 2}\n");
        let id1 = b.commit(&store).unwrap();
        let id2 = b.commit(&store).unwrap();
        assert_eq!(id1, id2, "same content commits under the same id");
        assert_eq!(store.list().unwrap().len(), 1);

        let mut c = RunBuilder::new("test");
        c.add_artifact("BENCH_x.json", "{\"schema_version\": 3}\n");
        let id3 = c.commit(&store).unwrap();
        assert_ne!(id1, id3, "different content gets a different id");
        assert_eq!(store.list().unwrap().len(), 2);

        let run = store.load(&id1).unwrap();
        assert_eq!(run.manifest.label, "test");
        assert_eq!(
            run.artifact("BENCH_x.json").unwrap(),
            "{\"schema_version\": 2}\n"
        );
        assert_eq!(
            run.artifact_json("BENCH_x.json")
                .unwrap()
                .get("schema_version")
                .unwrap()
                .as_int(),
            Some(2)
        );
        assert!(run
            .manifest
            .schemas
            .iter()
            .any(|(k, v)| k == "manifest" && *v == i64::from(lip_obs::schema::MANIFEST)));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn load_accepts_unique_prefixes() {
        let root = tmp_root("prefix");
        let store = RunStore::open(&root);
        let mut b = RunBuilder::new("p");
        b.add_artifact("a.json", "1");
        let id = b.commit(&store).unwrap();
        let run = store.load(&id[..8]).unwrap();
        assert_eq!(run.manifest.run_id, id);
        assert!(store.load("ffffffffffffffff").is_err());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn empty_builder_refuses_commit() {
        let root = tmp_root("empty");
        let store = RunStore::open(&root);
        assert!(RunBuilder::new("x").commit(&store).is_err());
        let _ = fs::remove_dir_all(&root);
    }
}
