//! Cross-run differential observability for latency-insensitive
//! protocol experiments.
//!
//! The paper's results are all *comparative* — throughput before and
//! after relay insertion, queue sizing, topology edits — yet a single
//! sweep only ever describes a single run: every `BENCH_*.json` is
//! overwritten blind and perf gates are hand-tuned absolute
//! thresholds. This crate closes that gap with three layers:
//!
//! * [`store`] — a content-addressed **run-artifact store**
//!   (`target/runs/<run_id>/`) capturing a sweep's `BENCH_*.json`
//!   reports, `BlameReport`s, kernel counters and proof matrices under
//!   a provenance manifest (git SHA, lane width, `LIP_JOBS`, host
//!   fingerprint, schema versions). The run id digests the artifact
//!   contents, so identical sweeps commit idempotently.
//! * [`diff`] — a **differential profiler** that compares two runs
//!   structurally: exact comparison for deterministic leaves (proved
//!   `Ratio`s change ⇒ hard error, no tolerance), per-channel blame
//!   deltas that *attribute* a throughput move to the channel whose
//!   stop/void blame grew ("4/5 → 3/5 because blame moved to w6"),
//!   and per-opcode/per-stratum kernel-counter deltas.
//! * [`sentinel`] — a **statistical regression sentinel** for
//!   wall-clock metrics: noise bands estimated from stored run
//!   history (`median ± k·MAD` with a jitter floor) replace the
//!   ad-hoc absolute thresholds that either flap or go stale.
//!
//! [`baseline`] extracts the machine-independent exact subset of an
//! artifact into committed snapshots, re-checked by CI; [`json`] is
//! the hand-rolled reader matching the workspace's hand-rolled
//! writers (no serialisation dependency either way). The `lip_diff`
//! CLI fronts all of it for `run_experiments.sh` and CI.

#![warn(missing_docs)]

pub mod baseline;
pub mod diff;
pub mod json;
pub mod sentinel;
pub mod store;

pub use baseline::{baseline_doc, check_one, extract_exact};
pub use diff::{diff_docs, diff_runs, BlameShift, DiffEntry, Domain, RunDiff};
pub use json::{parse, Json};
pub use sentinel::{direction_of, Direction, Sentinel, Verdict};
pub use store::{fnv1a, ArtifactRef, Manifest, Run, RunBuilder, RunStore};
