//! The structural run differ.
//!
//! Two runs from the [store](crate::store) are compared artifact by
//! artifact, walking the parsed JSON trees in parallel. Every leaf is
//! classified into one of three domains by its key:
//!
//! * **Exact** — schema versions, `Ratio` numerators/denominators,
//!   kernel counters, booleans, names, structural hashes. These are
//!   deterministic outputs of the engines and the model checker; *any*
//!   change is a reportable diff and fails a gate (no tolerance).
//! * **Timing** — wall-clock metrics (`*_ns`, `*_per_sec`, speedups,
//!   overhead percentages). Never exact-compared; judged by the
//!   [sentinel](crate::sentinel) against noise bands from stored run
//!   history.
//! * **Info** — derived floats (occupancy, blame shares) that follow
//!   exact counters. Changes are reported for the reader but never
//!   fail a gate on their own (their integer sources already do).
//!
//! Arrays of named objects (blame entries, `by_opcode`, `by_stratum`
//! rows) pair by `name`, so a reordered report diffs clean and a
//! renamed channel shows up as remove + add. On top of the generic
//! walk, blame artifacts get a specialized per-channel *blame shift*
//! analysis: when a topology's throughput ratio moves, the differ
//! attributes it to the channel whose stop/void blame grew the most —
//! "throughput went 4/5 → 3/5 *because* stop-blame moved to w6".

use std::fmt::Write as _;

use crate::json::Json;
use crate::sentinel::{direction_of, Sentinel, Verdict};
use crate::store::{Run, RunStore};

/// Which comparison regime a leaf belongs to (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Domain {
    /// Deterministic: any change is a diff.
    Exact,
    /// Wall-clock: judged by the sentinel, never exact-compared.
    Timing,
    /// Derived floats: reported, never gate-failing.
    Info,
}

impl Domain {
    /// Stable lowercase label for JSON output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Domain::Exact => "exact",
            Domain::Timing => "timing",
            Domain::Info => "info",
        }
    }
}

/// Classify a leaf by its key name and value.
#[must_use]
pub fn classify(key: &str, value: &Json) -> Domain {
    if is_timing_key(key) {
        return Domain::Timing;
    }
    match value {
        Json::Float(_) => Domain::Info,
        _ => Domain::Exact,
    }
}

/// True for keys carrying wall-clock-derived numbers.
#[must_use]
pub fn is_timing_key(key: &str) -> bool {
    const SUFFIXES: [&str; 6] = ["_ns", "_ms", "_us", "_pct", "_secs", "_sec"];
    const MARKERS: [&str; 6] = ["per_sec", "speedup", "elapsed", "overhead", "dur_", "wall_"];
    SUFFIXES.iter().any(|s| key.ends_with(s)) || MARKERS.iter().any(|m| key.contains(m))
}

/// One divergent leaf (or structural mismatch) between two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// Artifact file name.
    pub artifact: String,
    /// Dotted path to the leaf (`kernel.by_opcode[or].ops_retired`).
    pub path: String,
    /// Comparison regime the leaf fell under.
    pub domain: Domain,
    /// Value on the A side (`None` when added in B).
    pub before: Option<Json>,
    /// Value on the B side (`None` when removed in B).
    pub after: Option<Json>,
    /// Sentinel verdict, for timing leaves.
    pub verdict: Option<Verdict>,
}

/// A channel whose blame changed between runs, from a blame artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct BlameShift {
    /// Blame artifact the shift came from.
    pub artifact: String,
    /// Blamed entity name (channel / shell / relay label).
    pub name: String,
    /// Lane-cycles blamed on the A side.
    pub before: i64,
    /// Lane-cycles blamed on the B side.
    pub after: i64,
}

impl BlameShift {
    /// Signed blame movement (positive: gained blame in B).
    #[must_use]
    pub fn delta(&self) -> i64 {
        self.after - self.before
    }
}

/// The full comparison of two runs.
#[derive(Debug, Clone)]
pub struct RunDiff {
    /// Run id of the A (old) side.
    pub run_a: String,
    /// Run id of the B (new) side.
    pub run_b: String,
    /// Artifacts present on only one side (`(name, side)` where side
    /// is `"a"` or `"b"`).
    pub missing: Vec<(String, &'static str)>,
    /// Every divergent leaf.
    pub entries: Vec<DiffEntry>,
    /// Per-channel blame movements from blame artifacts.
    pub blame_shifts: Vec<BlameShift>,
    /// Timing leaves judged (including passes), for the summary.
    pub timing_checked: usize,
}

impl RunDiff {
    /// Exact-domain diffs (each one a hard gate failure).
    #[must_use]
    pub fn exact_diffs(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.domain == Domain::Exact)
            .count()
    }

    /// Timing leaves the sentinel flagged as regressed.
    #[must_use]
    pub fn timing_regressions(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| e.verdict.as_ref().is_some_and(Verdict::is_regression))
            .count()
    }

    /// No exact diffs, no timing regressions, no missing artifacts.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.exact_diffs() == 0 && self.timing_regressions() == 0 && self.missing.is_empty()
    }

    /// The channel that gained the most blame in B, per blame artifact
    /// — the attribution for a throughput move.
    #[must_use]
    pub fn attributions(&self) -> Vec<&BlameShift> {
        let mut per_artifact: Vec<&BlameShift> = Vec::new();
        for shift in &self.blame_shifts {
            if shift.delta() <= 0 {
                continue;
            }
            match per_artifact
                .iter_mut()
                .find(|s| s.artifact == shift.artifact)
            {
                Some(slot) if slot.delta() < shift.delta() => *slot = shift,
                Some(_) => {}
                None => per_artifact.push(shift),
            }
        }
        per_artifact
    }

    /// Versioned JSON document (`schema_version` =
    /// [`lip_obs::schema::DELTA`]).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let mut obj = vec![
                    ("artifact".into(), Json::Str(e.artifact.clone())),
                    ("path".into(), Json::Str(e.path.clone())),
                    ("domain".into(), Json::Str(e.domain.label().into())),
                    ("before".into(), e.before.clone().unwrap_or(Json::Null)),
                    ("after".into(), e.after.clone().unwrap_or(Json::Null)),
                ];
                if let Some(v) = &e.verdict {
                    obj.push(("verdict".into(), verdict_json(v)));
                }
                Json::Obj(obj)
            })
            .collect();
        let attributions = self
            .attributions()
            .iter()
            .map(|s| {
                Json::Obj(vec![
                    ("artifact".into(), Json::Str(s.artifact.clone())),
                    ("channel".into(), Json::Str(s.name.clone())),
                    ("blame_before".into(), Json::Int(s.before)),
                    ("blame_after".into(), Json::Int(s.after)),
                ])
            })
            .collect();
        let missing = self
            .missing
            .iter()
            .map(|(name, side)| {
                Json::Obj(vec![
                    ("artifact".into(), Json::Str(name.clone())),
                    ("only_in".into(), Json::Str((*side).into())),
                ])
            })
            .collect();
        Json::Obj(vec![
            (
                "schema_version".into(),
                Json::Int(i64::from(lip_obs::schema::DELTA)),
            ),
            ("kind".into(), Json::Str("run_diff".into())),
            ("run_a".into(), Json::Str(self.run_a.clone())),
            ("run_b".into(), Json::Str(self.run_b.clone())),
            ("clean".into(), Json::Bool(self.clean())),
            ("exact_diffs".into(), Json::Int(self.exact_diffs() as i64)),
            (
                "timing_checked".into(),
                Json::Int(self.timing_checked as i64),
            ),
            (
                "timing_regressions".into(),
                Json::Int(self.timing_regressions() as i64),
            ),
            ("missing".into(), Json::Arr(missing)),
            ("attribution".into(), Json::Arr(attributions)),
            ("entries".into(), Json::Arr(entries)),
        ])
    }

    /// Multi-line human rendering.
    #[must_use]
    pub fn render_human(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "diff {} → {}: {}",
            &self.run_a[..self.run_a.len().min(12)],
            &self.run_b[..self.run_b.len().min(12)],
            if self.clean() { "clean" } else { "DIVERGED" }
        );
        for (name, side) in &self.missing {
            let _ = writeln!(out, "  only in {side}: {name}");
        }
        for e in &self.entries {
            let show =
                |v: &Option<Json>| v.as_ref().map_or_else(|| "∅".to_owned(), Json::to_compact);
            match (&e.domain, &e.verdict) {
                (Domain::Timing, Some(v)) => {
                    let _ = writeln!(
                        out,
                        "  [timing] {}:{} {} → {} ({})",
                        e.artifact,
                        e.path,
                        show(&e.before),
                        show(&e.after),
                        verdict_label(v)
                    );
                }
                _ => {
                    let _ = writeln!(
                        out,
                        "  [{}] {}:{} {} → {}",
                        e.domain.label(),
                        e.artifact,
                        e.path,
                        show(&e.before),
                        show(&e.after)
                    );
                }
            }
        }
        for s in self.attributions() {
            let _ = writeln!(
                out,
                "  attribution: {} blame moved to '{}' ({} → {} lane-cycles)",
                s.artifact, s.name, s.before, s.after
            );
        }
        let _ = writeln!(
            out,
            "  {} exact diff(s), {} timing regression(s) over {} timing metric(s)",
            self.exact_diffs(),
            self.timing_regressions(),
            self.timing_checked
        );
        out
    }
}

fn verdict_label(v: &Verdict) -> String {
    match v {
        Verdict::Pass { .. } => "within noise".into(),
        Verdict::Improved { .. } => "improved".into(),
        Verdict::Regressed { band } => {
            format!("REGRESSED, noise band [{:.1}, {:.1}]", band.0, band.1)
        }
        Verdict::NoHistory { have, need } => {
            format!("no verdict: {have}/{need} history samples")
        }
    }
}

fn verdict_json(v: &Verdict) -> Json {
    let (label, band) = match v {
        Verdict::Pass { band } => ("pass", Some(band)),
        Verdict::Improved { band } => ("improved", Some(band)),
        Verdict::Regressed { band } => ("regressed", Some(band)),
        Verdict::NoHistory { .. } => ("no_history", None),
    };
    let mut obj = vec![("verdict".into(), Json::Str(label.into()))];
    if let Some((lo, hi)) = band {
        obj.push(("band_lo".into(), Json::Float(*lo)));
        obj.push(("band_hi".into(), Json::Float(*hi)));
    }
    Json::Obj(obj)
}

/// Compare two loaded runs. `store` supplies the history the sentinel
/// estimates noise bands from (runs other than `b`, oldest first).
#[must_use]
pub fn diff_runs(store: &RunStore, a: &Run, b: &Run, sentinel: &Sentinel) -> RunDiff {
    let mut diff = RunDiff {
        run_a: a.manifest.run_id.clone(),
        run_b: b.manifest.run_id.clone(),
        missing: Vec::new(),
        entries: Vec::new(),
        blame_shifts: Vec::new(),
        timing_checked: 0,
    };
    let names_a = a.artifact_names();
    let names_b = b.artifact_names();
    for name in &names_a {
        if !names_b.contains(name) {
            diff.missing.push((name.clone(), "a"));
        }
    }
    for name in &names_b {
        if !names_a.contains(name) {
            diff.missing.push((name.clone(), "b"));
        }
    }
    let history = History::gather(store, &b.manifest.run_id);
    for name in names_a.iter().filter(|n| names_b.contains(*n)) {
        let (Ok(doc_a), Ok(doc_b)) = (a.artifact_json(name), b.artifact_json(name)) else {
            diff.entries.push(DiffEntry {
                artifact: name.clone(),
                path: String::new(),
                domain: Domain::Exact,
                before: None,
                after: None,
                verdict: None,
            });
            continue;
        };
        walk(
            name,
            "",
            "",
            Some(&doc_a),
            Some(&doc_b),
            &history,
            sentinel,
            &mut diff,
        );
        collect_blame_shifts(name, &doc_a, &doc_b, &mut diff.blame_shifts);
    }
    diff
}

/// Diff two standalone documents (no store, no timing history): every
/// divergent exact/info leaf, with timing leaves skipped. This is the
/// comparison `baseline check` runs against committed snapshots.
#[must_use]
pub fn diff_docs(artifact: &str, a: &Json, b: &Json) -> Vec<DiffEntry> {
    let mut diff = RunDiff {
        run_a: String::new(),
        run_b: String::new(),
        missing: Vec::new(),
        entries: Vec::new(),
        blame_shifts: Vec::new(),
        timing_checked: 0,
    };
    let history = History { docs: Vec::new() };
    walk(
        artifact,
        "",
        "",
        Some(a),
        Some(b),
        &history,
        &Sentinel {
            // No history is ever available here; timing leaves always
            // judge NoHistory, which diff entries record but gates
            // ignore. Extracted baselines carry no timing leaves at
            // all, so this path is normally untaken.
            min_history: usize::MAX,
            ..Sentinel::default()
        },
        &mut diff,
    );
    diff.entries
}

/// Timing history per `(artifact, path)` across stored runs.
struct History {
    docs: Vec<Vec<(String, Json)>>,
}

impl History {
    fn gather(store: &RunStore, exclude_run: &str) -> History {
        let mut docs = Vec::new();
        let manifests = store.list().unwrap_or_default();
        // Cap history at the most recent 32 runs to bound work.
        for m in manifests.iter().rev().take(32) {
            if m.run_id == exclude_run {
                continue;
            }
            let Ok(run) = store.load(&m.run_id) else {
                continue;
            };
            let mut parsed = Vec::new();
            for name in run.artifact_names() {
                if let Ok(doc) = run.artifact_json(&name) {
                    parsed.push((name, doc));
                }
            }
            docs.push(parsed);
        }
        History { docs }
    }

    fn series(&self, artifact: &str, path: &str) -> Vec<f64> {
        let mut out = Vec::new();
        for parsed in &self.docs {
            if let Some((_, doc)) = parsed.iter().find(|(n, _)| n == artifact) {
                if let Some(v) = lookup(doc, path).and_then(Json::as_f64) {
                    out.push(v);
                }
            }
        }
        out
    }
}

/// Resolve a dotted path (as produced by [`walk`]) inside a document.
fn lookup<'a>(doc: &'a Json, path: &str) -> Option<&'a Json> {
    let mut cur = doc;
    if path.is_empty() {
        return Some(cur);
    }
    for seg in path.split('.') {
        // `name[key]` → member `name`, then the element named `key`.
        let (member, selector) = match seg.find('[') {
            Some(i) => (&seg[..i], Some(&seg[i + 1..seg.len() - 1])),
            None => (seg, None),
        };
        if !member.is_empty() {
            cur = cur.get(member)?;
        }
        if let Some(sel) = selector {
            let items = cur.as_arr()?;
            cur = if let Ok(idx) = sel.parse::<usize>() {
                items.get(idx)?
            } else {
                items
                    .iter()
                    .find(|e| e.get("name").and_then(Json::as_str) == Some(sel))?
            };
        }
    }
    Some(cur)
}

fn join(path: &str, key: &str) -> String {
    if path.is_empty() {
        key.to_owned()
    } else {
        format!("{path}.{key}")
    }
}

#[allow(clippy::too_many_arguments)]
fn walk(
    artifact: &str,
    path: &str,
    key: &str,
    a: Option<&Json>,
    b: Option<&Json>,
    history: &History,
    sentinel: &Sentinel,
    diff: &mut RunDiff,
) {
    match (a, b) {
        (Some(Json::Obj(ma)), Some(Json::Obj(mb))) => {
            for (k, va) in ma {
                walk(
                    artifact,
                    &join(path, k),
                    k,
                    Some(va),
                    mb.iter().find(|(bk, _)| bk == k).map(|(_, v)| v),
                    history,
                    sentinel,
                    diff,
                );
            }
            for (k, vb) in mb {
                if ma.iter().all(|(ak, _)| ak != k) {
                    walk(
                        artifact,
                        &join(path, k),
                        k,
                        None,
                        Some(vb),
                        history,
                        sentinel,
                        diff,
                    );
                }
            }
        }
        (Some(Json::Arr(xs)), Some(Json::Arr(ys))) => {
            if named_rows(xs) && named_rows(ys) {
                for x in xs {
                    let n = x.get("name").and_then(Json::as_str).unwrap_or_default();
                    let y = ys
                        .iter()
                        .find(|e| e.get("name").and_then(Json::as_str) == Some(n));
                    walk(
                        artifact,
                        &format!("{path}[{n}]"),
                        key,
                        Some(x),
                        y,
                        history,
                        sentinel,
                        diff,
                    );
                }
                for y in ys {
                    let n = y.get("name").and_then(Json::as_str).unwrap_or_default();
                    if !xs
                        .iter()
                        .any(|e| e.get("name").and_then(Json::as_str) == Some(n))
                    {
                        walk(
                            artifact,
                            &format!("{path}[{n}]"),
                            key,
                            None,
                            Some(y),
                            history,
                            sentinel,
                            diff,
                        );
                    }
                }
            } else {
                let len = xs.len().max(ys.len());
                for i in 0..len {
                    walk(
                        artifact,
                        &format!("{path}[{i}]"),
                        key,
                        xs.get(i),
                        ys.get(i),
                        history,
                        sentinel,
                        diff,
                    );
                }
            }
        }
        (Some(va), Some(vb)) => {
            let domain = classify(key, vb);
            match domain {
                Domain::Timing => {
                    let (Some(_), Some(cur)) = (va.as_f64(), vb.as_f64()) else {
                        return;
                    };
                    diff.timing_checked += 1;
                    let series = history.series(artifact, path);
                    let verdict = sentinel.judge(&series, cur, direction_of(key));
                    // Only non-pass verdicts are worth an entry.
                    if !matches!(verdict, Verdict::Pass { .. }) {
                        diff.entries.push(DiffEntry {
                            artifact: artifact.to_owned(),
                            path: path.to_owned(),
                            domain,
                            before: Some(va.clone()),
                            after: Some(vb.clone()),
                            verdict: Some(verdict),
                        });
                    }
                }
                Domain::Info => {
                    let close = match (va.as_f64(), vb.as_f64()) {
                        (Some(x), Some(y)) => (x - y).abs() <= 1e-9 * x.abs().max(1.0),
                        _ => va == vb,
                    };
                    if !close {
                        diff.entries.push(DiffEntry {
                            artifact: artifact.to_owned(),
                            path: path.to_owned(),
                            domain,
                            before: Some(va.clone()),
                            after: Some(vb.clone()),
                            verdict: None,
                        });
                    }
                }
                Domain::Exact => {
                    if va != vb {
                        diff.entries.push(DiffEntry {
                            artifact: artifact.to_owned(),
                            path: path.to_owned(),
                            domain,
                            before: Some(va.clone()),
                            after: Some(vb.clone()),
                            verdict: None,
                        });
                    }
                }
            }
        }
        (va, vb) => {
            // Added or removed subtree: always an exact-domain diff,
            // except timing leaves (a new timing metric is not a
            // regression).
            let present = va.or(vb).expect("one side present");
            let domain = classify(key, present);
            if domain != Domain::Timing {
                diff.entries.push(DiffEntry {
                    artifact: artifact.to_owned(),
                    path: path.to_owned(),
                    domain: Domain::Exact,
                    before: va.cloned(),
                    after: vb.cloned(),
                    verdict: None,
                });
            }
        }
    }
}

/// True when every element is an object with a string `name` member —
/// the workspace's row convention (`by_opcode`, blame entries, …).
fn named_rows(items: &[Json]) -> bool {
    !items.is_empty()
        && items
            .iter()
            .all(|e| e.get("name").and_then(Json::as_str).is_some())
}

/// Pull per-entity blame totals out of a blame artifact and pair them
/// by name.
fn collect_blame_shifts(artifact: &str, a: &Json, b: &Json, out: &mut Vec<BlameShift>) {
    let is_blame = |d: &Json| d.get("kind").and_then(Json::as_str) == Some("blame_report");
    if !is_blame(a) || !is_blame(b) {
        return;
    }
    let rows = |d: &Json| -> Vec<(String, i64)> {
        d.get("blame")
            .and_then(Json::as_arr)
            .map(|entries| {
                entries
                    .iter()
                    .filter_map(|e| {
                        let name = e.get("name").and_then(Json::as_str)?;
                        let blamed = e.get("blamed").and_then(Json::as_int)?;
                        Some((name.to_owned(), blamed))
                    })
                    .collect()
            })
            .unwrap_or_default()
    };
    let rows_a = rows(a);
    let rows_b = rows(b);
    for (name, before) in &rows_a {
        let after = rows_b
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v);
        if after != *before {
            out.push(BlameShift {
                artifact: artifact.to_owned(),
                name: name.clone(),
                before: *before,
                after,
            });
        }
    }
    for (name, after) in &rows_b {
        if rows_a.iter().all(|(n, _)| n != name) && *after != 0 {
            out.push(BlameShift {
                artifact: artifact.to_owned(),
                name: name.clone(),
                before: 0,
                after: *after,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{RunBuilder, RunStore};
    use std::fs;
    use std::path::PathBuf;

    fn tmp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lip-delta-diff-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn commit(store: &RunStore, label: &str, artifacts: &[(&str, &str)]) -> String {
        let mut b = RunBuilder::new(label);
        for (n, c) in artifacts {
            b.add_artifact(n, c);
        }
        b.commit(store).unwrap()
    }

    #[test]
    fn identical_runs_diff_clean() {
        let root = tmp_root("clean");
        let store = RunStore::open(&root);
        let doc = r#"{"schema_version": 2, "num": 4, "den": 5, "settle_ns": 120.0}"#;
        let id_a = commit(&store, "a", &[("BENCH_x.json", doc)]);
        // Same content → same run id; diffing a run against itself
        // (the degenerate identical re-run) must be clean.
        let a = store.load(&id_a).unwrap();
        let d = diff_runs(&store, &a, &a, &Sentinel::default());
        assert!(d.clean(), "{}", d.render_human());
        assert_eq!(d.exact_diffs(), 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn exact_ratio_changes_are_hard_diffs() {
        let root = tmp_root("ratio");
        let store = RunStore::open(&root);
        let id_a = commit(
            &store,
            "a",
            &[("BENCH_x.json", r#"{"ratio": {"num": 4, "den": 5}}"#)],
        );
        let id_b = commit(
            &store,
            "b",
            &[("BENCH_x.json", r#"{"ratio": {"num": 3, "den": 5}}"#)],
        );
        let a = store.load(&id_a).unwrap();
        let b = store.load(&id_b).unwrap();
        let d = diff_runs(&store, &a, &b, &Sentinel::default());
        assert!(!d.clean());
        assert_eq!(d.exact_diffs(), 1);
        let e = &d.entries[0];
        assert_eq!(e.path, "ratio.num");
        assert_eq!(e.before, Some(Json::Int(4)));
        assert_eq!(e.after, Some(Json::Int(3)));
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn timing_noise_passes_but_regressions_fail() {
        let root = tmp_root("timing");
        let store = RunStore::open(&root);
        // Build history: four runs with settle_ns around 100.
        for (i, ns) in [100.0f64, 101.0, 99.0, 100.5].iter().enumerate() {
            commit(
                &store,
                &format!("h{i}"),
                &[(
                    "BENCH_x.json",
                    &format!(r#"{{"ok": true, "settle_ns": {ns}}}"#),
                )],
            );
        }
        let runs = store.list().unwrap();
        let base = store.load(&runs[0].run_id).unwrap();
        // Within noise: clean.
        let id_ok = commit(
            &store,
            "ok",
            &[("BENCH_x.json", r#"{"ok": true, "settle_ns": 102.0}"#)],
        );
        let ok = store.load(&id_ok).unwrap();
        let d = diff_runs(&store, &base, &ok, &Sentinel::default());
        assert!(d.clean(), "{}", d.render_human());
        assert_eq!(d.timing_checked, 1);
        // Far outside: regression, and the exact field is untouched.
        let id_bad = commit(
            &store,
            "bad",
            &[("BENCH_x.json", r#"{"ok": true, "settle_ns": 500.0}"#)],
        );
        let bad = store.load(&id_bad).unwrap();
        let d = diff_runs(&store, &base, &bad, &Sentinel::default());
        assert!(!d.clean());
        assert_eq!(d.exact_diffs(), 0);
        assert_eq!(d.timing_regressions(), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn blame_shift_attributes_to_the_gaining_channel() {
        let root = tmp_root("blame");
        let store = RunStore::open(&root);
        let blame = |w5: i64, w6: i64| {
            format!(
                r#"{{"kind": "blame_report", "lost_cycles": {}, "blame": [
                    {{"name": "w5", "blamed": {w5}}},
                    {{"name": "w6", "blamed": {w6}}}
                ]}}"#,
                w5 + w6
            )
        };
        let id_a = commit(&store, "a", &[("BLAME_fig1.json", &blame(10, 2))]);
        let id_b = commit(&store, "b", &[("BLAME_fig1.json", &blame(10, 90))]);
        let a = store.load(&id_a).unwrap();
        let b = store.load(&id_b).unwrap();
        let d = diff_runs(&store, &a, &b, &Sentinel::default());
        let attr = d.attributions();
        assert_eq!(attr.len(), 1);
        assert_eq!(attr[0].name, "w6");
        assert_eq!(attr[0].delta(), 88);
        let doc = d.to_json();
        assert_eq!(
            doc.get("attribution").unwrap().as_arr().unwrap()[0]
                .get("channel")
                .unwrap()
                .as_str(),
            Some("w6")
        );
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn missing_artifacts_are_flagged() {
        let root = tmp_root("missing");
        let store = RunStore::open(&root);
        let id_a = commit(&store, "a", &[("x.json", "{}"), ("y.json", "{}")]);
        let id_b = commit(&store, "b", &[("x.json", "{}")]);
        let a = store.load(&id_a).unwrap();
        let b = store.load(&id_b).unwrap();
        let d = diff_runs(&store, &a, &b, &Sentinel::default());
        assert!(!d.clean());
        assert_eq!(d.missing, vec![("y.json".to_owned(), "a")]);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn lookup_resolves_walk_paths() {
        let doc =
            crate::json::parse(r#"{"kernel": {"by_opcode": [{"name": "or", "ops_retired": 7}]}}"#)
                .unwrap();
        assert_eq!(
            lookup(&doc, "kernel.by_opcode[or].ops_retired")
                .unwrap()
                .as_int(),
            Some(7)
        );
        assert!(lookup(&doc, "kernel.by_opcode[and]").is_none());
    }
}
