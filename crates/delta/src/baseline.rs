//! Committed baseline snapshots and the `baseline check` gate.
//!
//! A baseline is the *exact-domain subset* of one artifact — schema
//! versions, `Ratio` numerators/denominators, counters, booleans,
//! names — with every wall-clock and derived-float leaf stripped. That
//! subset is deterministic across machines (it is exactly what the
//! engines and the model checker prove or count), so it can be
//! committed to the repository under `baselines/` and re-checked on
//! every CI run: `lip_diff baseline check` re-extracts the current
//! artifacts and fails on any divergence; `lip_diff baseline accept`
//! rewrites the snapshots after an intentional change.

use crate::diff::{classify, diff_docs, DiffEntry, Domain};
use crate::json::Json;

/// Extract the exact-domain subset of a document: every leaf the
/// differ would hard-compare, with timing and derived-float leaves
/// removed. Object member order is preserved; objects and arrays left
/// empty by the stripping are kept (their emptiness is structural).
#[must_use]
pub fn extract_exact(doc: &Json) -> Json {
    fn go(key: &str, v: &Json) -> Option<Json> {
        match v {
            Json::Obj(members) => Some(Json::Obj(
                members
                    .iter()
                    .filter_map(|(k, val)| go(k, val).map(|e| (k.clone(), e)))
                    .collect(),
            )),
            Json::Arr(items) => Some(Json::Arr(
                // Elements classify under the array's own key (scalar
                // rows like `channel_stalls` inherit it); object rows
                // classify per member inside the recursion.
                items.iter().filter_map(|e| go(key, e)).collect(),
            )),
            leaf => match classify(key, leaf) {
                Domain::Exact => Some(leaf.clone()),
                Domain::Timing | Domain::Info => None,
            },
        }
    }
    go("", doc).unwrap_or(Json::Obj(Vec::new()))
}

/// Wrap an extraction as a committed baseline document.
#[must_use]
pub fn baseline_doc(source: &str, doc: &Json) -> Json {
    Json::Obj(vec![
        (
            "schema_version".into(),
            Json::Int(i64::from(lip_obs::schema::DELTA)),
        ),
        ("kind".into(), Json::Str("baseline".into())),
        ("source".into(), Json::Str(source.to_owned())),
        ("extracted".into(), extract_exact(doc)),
    ])
}

/// Check one current artifact against its committed baseline document.
/// Returns the divergent leaves (empty = the gate passes).
#[must_use]
pub fn check_one(source: &str, baseline: &Json, current: &Json) -> Vec<DiffEntry> {
    let expected = baseline.get("extracted").cloned().unwrap_or(Json::Null);
    diff_docs(source, &expected, &extract_exact(current))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    const DOC: &str = r#"{
        "schema_version": 2,
        "throughput": {"num": 4, "den": 5},
        "settle_ns": 123.4,
        "occupancy": 0.52,
        "channel_stalls": [0, 7, 0],
        "ok": true
    }"#;

    #[test]
    fn extraction_drops_timing_and_info_leaves() {
        let doc = parse(DOC).unwrap();
        let e = extract_exact(&doc);
        assert!(e.get("settle_ns").is_none(), "timing stripped");
        assert!(e.get("occupancy").is_none(), "derived float stripped");
        assert_eq!(e.get("schema_version").unwrap().as_int(), Some(2));
        assert_eq!(
            e.get("channel_stalls").unwrap().as_arr().unwrap().len(),
            3,
            "exact counter arrays survive"
        );
    }

    #[test]
    fn check_passes_on_identical_exact_subset_and_fails_on_drift() {
        let doc = parse(DOC).unwrap();
        let base = baseline_doc("BENCH_x.json", &doc);
        // Timing may move arbitrarily without tripping the baseline.
        let rerun = parse(&DOC.replace("123.4", "999.9")).unwrap();
        assert!(check_one("BENCH_x.json", &base, &rerun).is_empty());
        // An exact field moving is a failure.
        let drift = parse(&DOC.replace("\"num\": 4", "\"num\": 3")).unwrap();
        let diffs = check_one("BENCH_x.json", &base, &drift);
        assert_eq!(diffs.len(), 1);
        assert_eq!(diffs[0].path, "throughput.num");
    }
}
