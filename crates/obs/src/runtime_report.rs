//! Versioned runtime self-observability report: kernel execution
//! counters and the merged wall-clock span rollup, serialized as the
//! `BENCH_runtime.json` artefact.
//!
//! Two data sources meet here:
//!
//! * [`KernelCounters`] — per-opcode / per-stratum ops retired,
//!   lane-words processed and active-lane occupancy, filled by the
//!   stream kernel's counted execution path in `lip-sim`. The layout
//!   (opcode names, stratum labels) is declared by the kernel side so
//!   this crate stays ignorant of `lip-sim` internals; the counters
//!   reconcile *exactly*: total ops retired must equal the op-tape
//!   length times the number of settles executed
//!   ([`KernelCounters::reconciles`]).
//! * [`FlightDump`] — the drained flight-recorder span log and named
//!   counters (see [`flight`](crate::flight)).
//!
//! [`RuntimeReport`] rolls both into one JSON document carrying the
//! workspace-wide [`SCHEMA_VERSION`](crate::SCHEMA_VERSION), so the
//! `run_experiments.sh` / CI `check_report` gates apply unchanged.

use std::fmt::Write as _;

use crate::flight::{FlightDump, SpanRecord};
use crate::telemetry::escape;

/// Per-opcode execution counters for one stream-kernel opcode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelOpRow {
    /// Opcode name, declared by the kernel side.
    pub name: &'static str,
    /// Tape ops of this opcode retired across all counted settles.
    pub ops_retired: u64,
    /// Lane words processed (`ops_retired × words-per-lane-value`).
    pub lane_words: u64,
    /// Total set destination lanes after each occupancy-sampled op:
    /// the occupancy numerator (how much of the SWAR width carried
    /// live data).
    pub active_lanes: u64,
    /// Ops whose destination occupancy was popcounted — the occupancy
    /// denominator. The counted path samples occupancy on a subset of
    /// settles (popcounting every destination write is the dominant
    /// enabled-recorder cost), so `occ_ops <= ops_retired`; the
    /// retirement counters stay exact on every settle.
    pub occ_ops: u64,
}

impl KernelOpRow {
    /// Fraction of destination lanes set over the occupancy-sampled
    /// ops, `0.0..=1.0` (`NaN`-free: 0 when nothing sampled).
    #[must_use]
    pub fn occupancy(&self, lanes: u32) -> f64 {
        let denom = self.occ_ops.saturating_mul(u64::from(lanes));
        if denom == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.active_lanes as f64 / denom as f64
            }
        }
    }
}

/// Kernel execution counters: per-opcode and per-stratum ops retired,
/// lane-words processed, active-lane occupancy.
///
/// Constructed with a fixed layout ([`KernelCounters::new`]) by the
/// engine that owns the op tape; the counted execution path indexes
/// rows positionally, so accumulation is branch-light. Counters from
/// several measurements (even over different netlists) merge with
/// [`KernelCounters::merge`]: `expected_ops` accumulates each tape's
/// length per settle, keeping the reconciliation invariant exact
/// across heterogeneous corpora.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelCounters {
    /// SWAR lane count of the engine that filled these counters.
    pub lanes: u32,
    /// Kernel executions (settle passes) counted.
    pub settles: u64,
    /// Sum over counted settles of that settle's op-tape length: what
    /// `total_ops` must equal for the counters to reconcile.
    pub expected_ops: u64,
    /// Per-opcode rows, in the kernel's opcode order.
    pub by_op: Vec<KernelOpRow>,
    /// Per-stratum ops retired, in tape order
    /// (`(label, ops_retired)`).
    pub by_stratum: Vec<(&'static str, u64)>,
}

impl KernelCounters {
    /// An empty counter set for an engine with `lanes` SWAR lanes,
    /// opcodes named `op_names` (in opcode-index order) and settle
    /// strata labelled `strata` (in tape order).
    #[must_use]
    pub fn new(lanes: u32, op_names: &[&'static str], strata: &[&'static str]) -> Self {
        KernelCounters {
            lanes,
            settles: 0,
            expected_ops: 0,
            by_op: op_names
                .iter()
                .map(|&name| KernelOpRow {
                    name,
                    ops_retired: 0,
                    lane_words: 0,
                    active_lanes: 0,
                    occ_ops: 0,
                })
                .collect(),
            by_stratum: strata.iter().map(|&s| (s, 0)).collect(),
        }
    }

    /// Total ops retired, summed over opcodes.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.by_op.iter().map(|r| r.ops_retired).sum()
    }

    /// Total lane words processed, summed over opcodes.
    #[must_use]
    pub fn total_lane_words(&self) -> u64 {
        self.by_op.iter().map(|r| r.lane_words).sum()
    }

    /// Exact accounting check: every tape op of every counted settle
    /// was counted exactly once, both per-opcode and per-stratum.
    #[must_use]
    pub fn reconciles(&self) -> bool {
        let strata: u64 = self.by_stratum.iter().map(|&(_, n)| n).sum();
        self.total_ops() == self.expected_ops && strata == self.expected_ops
    }

    /// Overall active-lane occupancy across all opcodes over the
    /// occupancy-sampled ops, `0.0..=1.0`.
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        let sampled: u64 = self.by_op.iter().map(|r| r.occ_ops).sum();
        let denom = sampled.saturating_mul(u64::from(self.lanes));
        if denom == 0 {
            0.0
        } else {
            let active: u64 = self.by_op.iter().map(|r| r.active_lanes).sum();
            #[allow(clippy::cast_precision_loss)]
            {
                active as f64 / denom as f64
            }
        }
    }

    /// Fold `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if the layouts (lane count, opcode names, stratum
    /// labels) differ: counters from engines of different widths or
    /// kernel revisions must not be silently summed.
    pub fn merge(&mut self, other: &KernelCounters) {
        assert_eq!(self.lanes, other.lanes, "merging across lane widths");
        assert_eq!(
            self.by_op.len(),
            other.by_op.len(),
            "merging across opcode layouts"
        );
        assert_eq!(
            self.by_stratum.len(),
            other.by_stratum.len(),
            "merging across stratum layouts"
        );
        self.settles += other.settles;
        self.expected_ops += other.expected_ops;
        for (a, b) in self.by_op.iter_mut().zip(&other.by_op) {
            assert_eq!(a.name, b.name, "merging across opcode layouts");
            a.ops_retired += b.ops_retired;
            a.lane_words += b.lane_words;
            a.active_lanes += b.active_lanes;
            a.occ_ops += b.occ_ops;
        }
        for (a, b) in self.by_stratum.iter_mut().zip(&other.by_stratum) {
            assert_eq!(a.0, b.0, "merging across stratum layouts");
            a.1 += b.1;
        }
    }

    fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"lanes\": {}, \"settles\": {}, \"expected_ops\": {}, \"ops_total\": {}, \
             \"lane_words_total\": {}, \"occupancy\": {:.6}, \"reconciled\": {}",
            self.lanes,
            self.settles,
            self.expected_ops,
            self.total_ops(),
            self.total_lane_words(),
            self.occupancy(),
            self.reconciles()
        );
        s.push_str(", \"by_opcode\": [");
        for (i, r) in self.by_op.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "{{\"name\": \"{}\", \"ops_retired\": {}, \"lane_words\": {}, \
                 \"active_lanes\": {}, \"occ_ops\": {}, \"occupancy\": {:.6}}}",
                escape(r.name),
                r.ops_retired,
                r.lane_words,
                r.active_lanes,
                r.occ_ops,
                r.occupancy(self.lanes)
            );
        }
        s.push_str("], \"by_stratum\": [");
        for (i, &(label, n)) in self.by_stratum.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(
                s,
                "{{\"name\": \"{}\", \"ops_retired\": {}}}",
                escape(label),
                n
            );
        }
        s.push_str("]}");
        s
    }
}

/// One `(category, name)` line of the span rollup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRollup {
    /// Span category.
    pub cat: &'static str,
    /// Span name.
    pub name: String,
    /// Number of spans merged into this line.
    pub count: u64,
    /// Total wall-clock nanoseconds.
    pub total_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
}

/// Aggregate a span log by `(cat, name)`, longest total first.
#[must_use]
pub fn rollup_spans(spans: &[SpanRecord]) -> Vec<SpanRollup> {
    let mut rows: Vec<SpanRollup> = Vec::new();
    for s in spans {
        if let Some(row) = rows.iter_mut().find(|r| r.cat == s.cat && r.name == s.name) {
            row.count += 1;
            row.total_ns += s.dur_ns;
            row.max_ns = row.max_ns.max(s.dur_ns);
        } else {
            rows.push(SpanRollup {
                cat: s.cat,
                name: s.name.clone(),
                count: 1,
                total_ns: s.dur_ns,
                max_ns: s.dur_ns,
            });
        }
    }
    rows.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(&b.name)));
    rows
}

/// Fraction of the root span's wall time covered by its direct
/// children: the "no unexplained time" metric the `exp_runtime_obs`
/// bin gates at ≥ 95%.
///
/// The root is the unique depth-0 span of category `root_cat` (on the
/// root's thread); children are depth-1 spans on the same thread that
/// start inside it. Returns 0 when no root span exists.
#[must_use]
pub fn span_coverage(dump: &FlightDump, root_cat: &str) -> f64 {
    let Some(root) = dump
        .spans
        .iter()
        .find(|s| s.cat == root_cat && s.depth == 0)
    else {
        return 0.0;
    };
    if root.dur_ns == 0 {
        return 0.0;
    }
    let end = root.start_ns + root.dur_ns;
    let covered: u64 = dump
        .spans
        .iter()
        .filter(|s| {
            s.tid == root.tid && s.depth == 1 && s.start_ns >= root.start_ns && s.start_ns < end
        })
        .map(|s| s.dur_ns)
        .sum();
    #[allow(clippy::cast_precision_loss)]
    {
        (covered as f64 / root.dur_ns as f64).min(1.0)
    }
}

/// The versioned runtime self-observability document
/// (`BENCH_runtime.json`).
#[derive(Debug, Clone)]
pub struct RuntimeReport {
    experiment: String,
    dump: FlightDump,
    kernel: Option<KernelCounters>,
    overhead_disabled_pct: Option<f64>,
    overhead_enabled_pct: Option<f64>,
    span_coverage: Option<f64>,
}

impl RuntimeReport {
    /// Wrap a drained flight dump for experiment `experiment`.
    #[must_use]
    pub fn new(experiment: &str, dump: FlightDump) -> Self {
        RuntimeReport {
            experiment: experiment.to_owned(),
            dump,
            kernel: None,
            overhead_disabled_pct: None,
            overhead_enabled_pct: None,
            span_coverage: None,
        }
    }

    /// Attach merged kernel execution counters.
    pub fn set_kernel(&mut self, kernel: KernelCounters) {
        self.kernel = Some(kernel);
    }

    /// Attach the measured recorder overheads (percent vs. the
    /// `NullRecorder` baseline): `disabled` is gate-bearing, `enabled`
    /// informational.
    pub fn set_overhead(&mut self, disabled_pct: f64, enabled_pct: f64) {
        self.overhead_disabled_pct = Some(disabled_pct);
        self.overhead_enabled_pct = Some(enabled_pct);
    }

    /// Attach the computed span-tree coverage (see [`span_coverage`]).
    pub fn set_span_coverage(&mut self, coverage: f64) {
        self.span_coverage = Some(coverage);
    }

    /// The underlying flight dump.
    #[must_use]
    pub fn dump(&self) -> &FlightDump {
        &self.dump
    }

    /// Attached kernel counters, if any.
    #[must_use]
    pub fn kernel(&self) -> Option<&KernelCounters> {
        self.kernel.as_ref()
    }

    /// Serialize as the `BENCH_runtime.json` document. Carries the
    /// workspace [`SCHEMA_VERSION`](crate::SCHEMA_VERSION) so the
    /// shared `check_report` gate applies.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\n  \"schema_version\": {},\n  \"experiment\": \"{}\",\n  \"wall_ns\": {},\n  \
             \"threads\": {},\n  \"dropped_spans\": {}",
            crate::SCHEMA_VERSION,
            escape(&self.experiment),
            self.dump.wall_ns,
            self.dump.threads,
            self.dump.dropped
        );
        if let Some(c) = self.span_coverage {
            let _ = write!(s, ",\n  \"span_coverage\": {c:.4}");
        }
        if let Some(o) = self.overhead_disabled_pct {
            let _ = write!(s, ",\n  \"overhead_pct\": {o:.3}");
        }
        if let Some(o) = self.overhead_enabled_pct {
            let _ = write!(s, ",\n  \"overhead_enabled_pct\": {o:.3}");
        }
        s.push_str(",\n  \"spans\": [");
        for (i, r) in rollup_spans(&self.dump.spans).iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"cat\": \"{}\", \"name\": \"{}\", \"count\": {}, \"total_ns\": {}, \
                 \"max_ns\": {}}}",
                escape(r.cat),
                escape(&r.name),
                r.count,
                r.total_ns,
                r.max_ns
            );
        }
        s.push_str("\n  ],\n  \"counters\": {");
        for (i, (k, v)) in self.dump.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "\n    \"{}\": {v}", escape(k));
        }
        s.push_str("\n  }");
        if let Some(k) = &self.kernel {
            let _ = write!(s, ",\n  \"kernel\": {}", k.to_json());
        }
        s.push_str("\n}\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::{FlightRecorder, Recorder};

    fn sample_counters() -> KernelCounters {
        let mut k = KernelCounters::new(64, &["copy", "or"], &["fwd", "bwd"]);
        k.settles = 2;
        k.expected_ops = 10;
        k.by_op[0].ops_retired = 6;
        k.by_op[0].lane_words = 6;
        k.by_op[0].active_lanes = 6 * 32;
        k.by_op[0].occ_ops = 6;
        k.by_op[1].ops_retired = 4;
        k.by_op[1].lane_words = 4;
        k.by_op[1].active_lanes = 4 * 64;
        k.by_op[1].occ_ops = 4;
        k.by_stratum[0].1 = 7;
        k.by_stratum[1].1 = 3;
        k
    }

    #[test]
    fn counters_reconcile_and_merge() {
        let mut a = sample_counters();
        assert!(a.reconciles());
        assert_eq!(a.total_ops(), 10);
        let occ = a.occupancy();
        assert!((occ - (6.0 * 32.0 + 4.0 * 64.0) / (10.0 * 64.0)).abs() < 1e-12);
        let b = sample_counters();
        a.merge(&b);
        assert!(a.reconciles());
        assert_eq!(a.total_ops(), 20);
        assert_eq!(a.settles, 4);
        assert_eq!(a.by_stratum[0].1, 14);
    }

    #[test]
    fn counters_detect_missing_ops() {
        let mut k = sample_counters();
        k.expected_ops += 1; // one settle's op went uncounted
        assert!(!k.reconciles());
    }

    #[test]
    #[should_panic(expected = "lane widths")]
    fn merge_rejects_mismatched_widths() {
        let mut a = sample_counters();
        let mut b = sample_counters();
        b.lanes = 128;
        a.merge(&b);
    }

    #[test]
    fn rollup_groups_and_sorts() {
        let rec = FlightRecorder::new();
        for _ in 0..3 {
            let _s = rec.span("measure", "fig1");
        }
        {
            let _s = rec.span("compile", "fig1");
        }
        let rows = rollup_spans(&rec.drain().spans);
        assert_eq!(rows.len(), 2);
        let m = rows.iter().find(|r| r.cat == "measure").unwrap();
        assert_eq!(m.count, 3);
        assert!(m.max_ns <= m.total_ns);
    }

    #[test]
    fn coverage_of_fully_spanned_root_is_high() {
        let rec = FlightRecorder::new();
        {
            let _root = rec.span("sweep", "corpus");
            for i in 0..4 {
                let _child = rec.span("measure", &format!("t{i}"));
                // Burn real wall time inside the child span: a
                // constant-foldable sum leaves the children only
                // nanoseconds wide and the coverage ratio at the mercy
                // of per-span bookkeeping noise.
                let t0 = std::time::Instant::now();
                while t0.elapsed() < std::time::Duration::from_micros(200) {
                    std::hint::black_box(0u64);
                }
            }
        }
        let dump = rec.drain();
        let cov = span_coverage(&dump, "sweep");
        assert!(cov > 0.5, "coverage {cov} unexpectedly low");
        assert!(cov <= 1.0);
        // No such root → zero, not a panic.
        assert_eq!(span_coverage(&dump, "nonexistent"), 0.0);
    }

    #[test]
    fn report_json_is_balanced_and_versioned() {
        let rec = FlightRecorder::new();
        {
            let _s = rec.span("measure", "fig1");
            rec.add("cache.hits", 3);
        }
        let mut report = RuntimeReport::new("exp_runtime_obs", rec.drain());
        report.set_kernel(sample_counters());
        report.set_overhead(0.8, 12.0);
        report.set_span_coverage(0.97);
        let json = report.to_json();
        assert!(json.contains(&format!("\"schema_version\": {}", crate::SCHEMA_VERSION)));
        assert!(json.contains("\"overhead_pct\": 0.800"));
        assert!(json.contains("\"span_coverage\": 0.9700"));
        assert!(json.contains("\"by_opcode\""));
        assert!(json.contains("\"reconciled\": true"));
        assert!(json.contains("\"cache.hits\": 3"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }
}
