//! Unified protocol observability for latency-insensitive designs:
//! zero-cost probes, structured cycle events, counters and throughput
//! telemetry.
//!
//! The paper's results are quantitative — closed-form steady-state
//! throughput and bounded transients — but checking them requires
//! *seeing* protocol activity: where stop bits originate, where void
//! tokens enter and get discarded, how relay-station occupancy evolves.
//! This crate is the one observability seam shared by every engine in
//! the workspace (the scalar skeleton interpreter, the many-lane batch
//! engine, and the RTL-on-kernel path):
//!
//! * [`Probe`] — the instrumentation trait engines call from their
//!   settle/clock loops. [`NullProbe`] has `ENABLED = false` and
//!   monomorphizes to nothing: unprobed simulation compiles to exactly
//!   the code it was before this crate existed. Mask hooks carry lane
//!   words as `&[u64]` slices, so probes observe any lane width (64 up
//!   to 1024 lanes) through one signature.
//! * [`Event`] / [`EventKind`] — the eight-kind structured event
//!   vocabulary (`fire`, `stall`, `void_in`, `void_discard`,
//!   `relay_fill`, `relay_drain`, `channel_void`, `consume`),
//!   streamed through [`EventSink`]s: an
//!   in-memory [`RingBufferSink`], a newline-delimited-JSON
//!   [`JsonlSink`], or a [`TraceSink`] rendering onto the kernel's VCD
//!   [`Trace`](lip_kernel::Trace).
//! * [`MetricsRegistry`] — per-channel / per-shell / per-relay counters
//!   and occupancy histograms over a declared [`Topology`].
//! * [`RollingThroughput`], [`TransientDetector`], [`Report`] — derived
//!   telemetry and the versioned JSON document ([`SCHEMA_VERSION`])
//!   every `exp_*` bench bin emits.
//! * [`CausalProfiler`] / [`BlameReport`] — causal stall profiling:
//!   classifies every stalled shell-cycle, charges lost cycles to their
//!   originating channel endpoint over a [`ChannelGraph`], and traces
//!   tokens end-to-end (sequence latency, relay residency, occupancy).
//!   [`chrome_trace_json`] renders the retained spans for
//!   `chrome://tracing` / Perfetto.
//! * [`Recorder`] / [`FlightRecorder`] — the engine flight recorder:
//!   wall-clock self-profiling of the *simulator* (compile, settle,
//!   periodicity detection, cache lookups, pool workers) with the same
//!   compile-away [`NullRecorder`] idiom, rolled up with
//!   [`KernelCounters`] into the versioned [`RuntimeReport`]
//!   (`BENCH_runtime.json`) and rendered by [`runtime_chrome_trace`].
//! * [`ProgressSink`] / [`ProgressSnapshot`] — live sweep telemetry
//!   (lanes converged, cycles/s, cache hit rate) published by
//!   long-running measurement loops, exposed as a Prometheus-style
//!   text file by [`PromFileProgress`] for the `lip-top` dashboard.
//!
//! Layering: this crate depends only on `lip-kernel` (for the VCD
//! trace). The engines in `lip-sim` depend on it; analytic targets from
//! `lip-analysis` are passed in as plain `(num, den)` ratios by the
//! caller, keeping the dependency graph acyclic.

#![warn(missing_docs)]

pub mod event;
pub mod flight;
pub mod metrics;
pub mod probe;
pub mod profile;
pub mod runtime_report;
pub mod schema;
pub mod sink;
pub mod telemetry;
pub mod trace_export;

pub use event::{Event, EventKind};
pub use flight::{
    rec_span, FlightDump, FlightRecorder, FlightSpan, NullRecorder, RecSpan, Recorder, SpanRecord,
    SpanToken,
};
pub use metrics::{MetricsRegistry, Topology};
pub use probe::{
    for_each_lane, for_each_lane_word, mask_count, mask_lane, EventStreamProbe, NullProbe, Probe,
    Tee,
};
pub use profile::{
    BlameEdge, BlameEntry, BlameReport, CausalProfiler, ChannelGraph, Entity, Histogram,
    PairLatency, StallCause, BLAME_SCHEMA_VERSION,
};
pub use runtime_report::{
    rollup_spans, span_coverage, KernelCounters, KernelOpRow, RuntimeReport, SpanRollup,
};
pub use sink::{EventSink, JsonlSink, RingBufferSink, TraceSink};
pub use telemetry::{
    MemoryProgress, NullProgress, ProgressSink, ProgressSnapshot, PromFileProgress, Report,
    RollingThroughput, TransientDetector, SCHEMA_VERSION,
};
pub use trace_export::{
    chrome_trace_json, runtime_chrome_trace, schedule_chrome_trace, ScheduleSlice, ScheduleTrack,
};
