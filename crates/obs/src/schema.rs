//! Single source of truth for every versioned artifact schema in the
//! workspace.
//!
//! Each JSON document we emit (`BENCH_*.json` reports, `BLAME_*.json`
//! profiles, lint findings, model-checker verdicts, run-store
//! manifests, diff documents) carries a `schema_version` field so
//! downstream tooling can evolve safely. Before this module the
//! constants were scattered across crates and duplicated as literal
//! numbers inside `run_experiments.sh` / CI jq strings — a bump in one
//! place silently desynced the others. Emitters now read the constants
//! here, and the shell gates read them back out of the `lip_diff
//! schema` subcommand, so there is exactly one place to bump.

/// `Report` JSON layout (`BENCH_*.json` bench reports).
///
/// Version 2: the JSONL cycle-event stream gained `channel_void` and
/// `consume` records (post-hoc replay blame now equals live blame) and
/// batch reports may carry per-width `lane_widths` arrays.
pub const REPORT: u32 = 2;

/// `BlameReport` JSON layout (`BLAME_*.json` causal stall profiles).
pub const BLAME: u32 = 1;

/// `lip-lint` JSON findings document.
pub const LINT: u32 = 1;

/// `lip_mc` CLI JSON verdict document.
pub const MC: u32 = 1;

/// Run-store manifest (`target/runs/<run_id>/manifest.json`).
pub const MANIFEST: u32 = 1;

/// `lip_diff` comparison document and `BENCH_delta.json`.
pub const DELTA: u32 = 1;

/// Every `(key, version)` pair, in stable order. `lip_diff schema`
/// prints this table so shell scripts can source the expected versions
/// from the binary instead of hardcoding them.
pub const ALL: &[(&str, u32)] = &[
    ("report", REPORT),
    ("blame", BLAME),
    ("lint", LINT),
    ("mc", MC),
    ("manifest", MANIFEST),
    ("delta", DELTA),
];

/// Look up a schema version by its key in [`ALL`].
#[must_use]
pub fn version(key: &str) -> Option<u32> {
    ALL.iter().find(|(k, _)| *k == key).map(|&(_, v)| v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_finds_every_key() {
        for &(k, v) in ALL {
            assert_eq!(version(k), Some(v), "key {k}");
        }
        assert_eq!(version("nope"), None);
    }

    #[test]
    fn keys_are_unique() {
        for (i, &(k, _)) in ALL.iter().enumerate() {
            assert!(
                ALL.iter().skip(i + 1).all(|&(other, _)| other != k),
                "duplicate schema key {k}"
            );
        }
    }
}
