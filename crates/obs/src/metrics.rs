//! Per-channel / per-shell / per-relay counters and occupancy
//! histograms.
//!
//! A [`MetricsRegistry`] is the counting probe: attach it to any probed
//! engine run and read back, per channel, how many cycles the stop bit
//! was asserted, how many stops the refined variant discarded against
//! voids, how many voids were carried and consumed; per shell, how often
//! it fired; per relay, fill/drain totals and the full occupancy
//! histogram. These are exactly the quantities the paper's closed forms
//! predict (`T = (m − i)/m`, `T = S/(S+R)`), so a registry turns any run
//! into a checkable throughput report.
//!
//! The registry aggregates over lanes: counters sum events from all
//! lanes (a scalar run only ever reports lane 0). The `*_mask` hooks are
//! overridden with popcounts, so counting a lane word costs one word op
//! per 64 lanes regardless of width.

use crate::event::Event;
use crate::probe::{for_each_lane_word, mask_count, Probe};

/// The shape of the observed system: how many channels, shells and
/// relays there are, and each relay's capacity (histogram range).
///
/// Engines provide this (e.g. `SettleProgram::topology()` in `lip-sim`);
/// relay rows are numbered full relays first, then half, then FIFO, each
/// in compiled-table order, and `relay_capacities[row]` is the row's
/// token capacity (2 for full, 1 for half, `k` for `Fifo(k)`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    /// Number of channels.
    pub channels: u32,
    /// Number of shells.
    pub shells: u32,
    /// Per relay row: its capacity.
    pub relay_capacities: Vec<u32>,
}

impl Topology {
    /// Number of relay rows.
    #[must_use]
    pub fn relays(&self) -> usize {
        self.relay_capacities.len()
    }
}

/// Counters and histograms accumulated from probe hooks.
///
/// See the [module docs](self) for the meaning of each family. Build
/// with [`MetricsRegistry::new`] for scalar engines or
/// [`MetricsRegistry::with_lanes`] for the batch engine (the lane count
/// sizes the per-lane relay occupancy tracking; counters always
/// aggregate across lanes).
#[derive(Debug, Clone)]
pub struct MetricsRegistry {
    topo: Topology,
    lanes: u32,
    /// Steps observed (`end_cycle` calls).
    cycles: u64,
    /// Per channel: lane-cycles with the stop bit asserted.
    stalls: Vec<u64>,
    /// Per channel: stops suppressed against a void (refined variant).
    stall_discards: Vec<u64>,
    /// Per channel: lane-cycles the channel carried a void.
    voids: Vec<u64>,
    /// Per channel: void tokens consumed by a sink.
    void_ins: Vec<u64>,
    /// Per channel: informative tokens consumed by a sink.
    consumed: Vec<u64>,
    /// Per shell: firings.
    fires: Vec<u64>,
    /// Per relay: occupancy increments / decrements.
    relay_fills: Vec<u64>,
    relay_drains: Vec<u64>,
    /// Per relay × lane: current occupancy (tracked from fills/drains).
    cur_occ: Vec<u32>,
    /// Per relay: histogram over occupancy `0..=capacity`, in
    /// lane-cycles (folded once per `end_cycle` per lane).
    occupancy: Vec<Vec<u64>>,
}

impl MetricsRegistry {
    /// Registry for a scalar (single-lane) engine.
    #[must_use]
    pub fn new(topo: Topology) -> Self {
        Self::with_lanes(topo, 1)
    }

    /// Registry observing `lanes` batch lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or greater than 1024 (the widest lane
    /// word).
    #[must_use]
    pub fn with_lanes(topo: Topology, lanes: u32) -> Self {
        assert!((1..=1024).contains(&lanes), "lanes must be in 1..=1024");
        let nch = topo.channels as usize;
        let nsh = topo.shells as usize;
        let nre = topo.relays();
        MetricsRegistry {
            lanes,
            cycles: 0,
            stalls: vec![0; nch],
            stall_discards: vec![0; nch],
            voids: vec![0; nch],
            void_ins: vec![0; nch],
            consumed: vec![0; nch],
            fires: vec![0; nsh],
            relay_fills: vec![0; nre],
            relay_drains: vec![0; nre],
            cur_occ: vec![0; nre * lanes as usize],
            occupancy: topo
                .relay_capacities
                .iter()
                .map(|&cap| vec![0; cap as usize + 1])
                .collect(),
            topo,
        }
    }

    /// The topology this registry was sized for.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Steps observed so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Lanes observed per step.
    #[must_use]
    pub fn lanes(&self) -> u32 {
        self.lanes
    }

    /// Lane-cycles channel `ch` had its stop bit asserted.
    #[must_use]
    pub fn stalls(&self, ch: usize) -> u64 {
        self.stalls[ch]
    }

    /// Stops the refined variant discarded against a void on `ch`.
    #[must_use]
    pub fn stall_discards(&self, ch: usize) -> u64 {
        self.stall_discards[ch]
    }

    /// Lane-cycles channel `ch` carried a void.
    #[must_use]
    pub fn voids(&self, ch: usize) -> u64 {
        self.voids[ch]
    }

    /// Void tokens consumed by a sink from channel `ch`.
    #[must_use]
    pub fn void_ins(&self, ch: usize) -> u64 {
        self.void_ins[ch]
    }

    /// Informative tokens consumed by a sink from channel `ch`.
    #[must_use]
    pub fn consumed(&self, ch: usize) -> u64 {
        self.consumed[ch]
    }

    /// Firings of shell row `shell`.
    #[must_use]
    pub fn fires(&self, shell: usize) -> u64 {
        self.fires[shell]
    }

    /// `(fills, drains)` of relay row `relay`.
    #[must_use]
    pub fn relay_traffic(&self, relay: usize) -> (u64, u64) {
        (self.relay_fills[relay], self.relay_drains[relay])
    }

    /// Occupancy histogram of relay row `relay`: entry `o` is the number
    /// of lane-cycles the relay held exactly `o` tokens.
    #[must_use]
    pub fn occupancy_histogram(&self, relay: usize) -> &[u64] {
        &self.occupancy[relay]
    }

    /// Measured throughput at the sink fed by channel `ch`: informative
    /// tokens per observed lane-cycle, as a `(num, den)` pair (den =
    /// cycles × lanes). `None` before the first cycle.
    #[must_use]
    pub fn sink_throughput(&self, ch: usize) -> Option<(u64, u64)> {
        let den = self.cycles.checked_mul(u64::from(self.lanes))?;
        if den == 0 {
            return None;
        }
        Some((self.consumed[ch], den))
    }

    /// Total shell firings, summed over shells and lanes.
    #[must_use]
    pub fn total_fires(&self) -> u64 {
        self.fires.iter().sum()
    }

    /// The counters as one JSON object (used inside `Report`s).
    #[must_use]
    pub fn to_json(&self) -> String {
        let list = |v: &[u64]| {
            let items: Vec<String> = v.iter().map(u64::to_string).collect();
            format!("[{}]", items.join(","))
        };
        let hists: Vec<String> = self.occupancy.iter().map(|h| list(h)).collect();
        format!(
            "{{\"cycles\":{},\"lanes\":{},\"stalls\":{},\"stall_discards\":{},\"voids\":{},\
             \"void_ins\":{},\"consumed\":{},\"fires\":{},\"relay_fills\":{},\
             \"relay_drains\":{},\"relay_occupancy\":[{}]}}",
            self.cycles,
            self.lanes,
            list(&self.stalls),
            list(&self.stall_discards),
            list(&self.voids),
            list(&self.void_ins),
            list(&self.consumed),
            list(&self.fires),
            list(&self.relay_fills),
            list(&self.relay_drains),
            hists.join(",")
        )
    }

    /// Fold another registry's counters into this one — the reduction
    /// step when a sweep fans out one registry per worker and the
    /// aggregate must look as if a single registry observed every run.
    /// Commutative and associative over counters, but callers should
    /// merge in a fixed (input) order anyway so any order-sensitive
    /// consumer of the combined report stays deterministic.
    ///
    /// Cycles and histogram lane-cycles sum; the transient `cur_occ`
    /// tracking is deliberately *not* merged (it is per-run state, and a
    /// merged registry represents finished runs).
    ///
    /// # Panics
    ///
    /// Panics if the two registries observe different topologies.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        assert_eq!(
            self.topo, other.topo,
            "cannot merge metrics from different topologies"
        );
        let add = |dst: &mut Vec<u64>, src: &[u64]| {
            for (d, s) in dst.iter_mut().zip(src) {
                *d += s;
            }
        };
        self.cycles += other.cycles;
        add(&mut self.stalls, &other.stalls);
        add(&mut self.stall_discards, &other.stall_discards);
        add(&mut self.voids, &other.voids);
        add(&mut self.void_ins, &other.void_ins);
        add(&mut self.consumed, &other.consumed);
        add(&mut self.fires, &other.fires);
        add(&mut self.relay_fills, &other.relay_fills);
        add(&mut self.relay_drains, &other.relay_drains);
        for (dst, src) in self.occupancy.iter_mut().zip(&other.occupancy) {
            add(dst, src);
        }
    }

    #[inline]
    fn occ_slot(&mut self, relay: u32, lane: u16) -> &mut u32 {
        &mut self.cur_occ[relay as usize * self.lanes as usize + lane as usize]
    }
}

impl Probe for MetricsRegistry {
    /// Raw events route to the same counters as the dedicated hooks.
    fn event(&mut self, ev: Event) {
        use crate::event::EventKind as K;
        match ev.kind {
            K::Fire => self.fires[ev.entity as usize] += 1,
            K::Stall => self.stalls[ev.entity as usize] += 1,
            K::VoidIn => self.void_ins[ev.entity as usize] += 1,
            K::VoidDiscard => self.stall_discards[ev.entity as usize] += 1,
            K::RelayFill => {
                self.relay_fills[ev.entity as usize] += 1;
                *self.occ_slot(ev.entity, ev.lane) += 1;
            }
            K::RelayDrain => {
                self.relay_drains[ev.entity as usize] += 1;
                let slot = self.occ_slot(ev.entity, ev.lane);
                *slot = slot.saturating_sub(1);
            }
            K::ChannelVoid => self.voids[ev.entity as usize] += 1,
            K::Consume => self.consumed[ev.entity as usize] += 1,
        }
    }

    #[inline]
    fn channel_void(&mut self, _cycle: u64, ch: u32, _lane: u16) {
        self.voids[ch as usize] += 1;
    }

    #[inline]
    fn consume(&mut self, _cycle: u64, ch: u32, _lane: u16) {
        self.consumed[ch as usize] += 1;
    }

    fn end_cycle(&mut self, _cycle: u64) {
        self.cycles += 1;
        for relay in 0..self.occupancy.len() {
            for lane in 0..self.lanes as usize {
                let occ = self.cur_occ[relay * self.lanes as usize + lane] as usize;
                let hist = &mut self.occupancy[relay];
                let slot = occ.min(hist.len() - 1);
                hist[slot] += 1;
            }
        }
    }

    // Aggregate counters only need popcounts for word-wide hooks; relay
    // hooks still need per-lane decomposition for the occupancy model.

    #[inline]
    fn fire_mask(&mut self, _cycle: u64, shell: u32, masks: &[u64]) {
        self.fires[shell as usize] += mask_count(masks);
    }

    #[inline]
    fn stall_mask(&mut self, _cycle: u64, ch: u32, masks: &[u64]) {
        self.stalls[ch as usize] += mask_count(masks);
    }

    #[inline]
    fn channel_void_mask(&mut self, _cycle: u64, ch: u32, masks: &[u64]) {
        self.voids[ch as usize] += mask_count(masks);
    }

    #[inline]
    fn consume_mask(&mut self, _cycle: u64, ch: u32, masks: &[u64]) {
        self.consumed[ch as usize] += mask_count(masks);
    }

    #[inline]
    fn void_in_mask(&mut self, _cycle: u64, ch: u32, masks: &[u64]) {
        self.void_ins[ch as usize] += mask_count(masks);
    }

    #[inline]
    fn void_discard_mask(&mut self, _cycle: u64, ch: u32, masks: &[u64]) {
        self.stall_discards[ch as usize] += mask_count(masks);
    }

    #[inline]
    fn relay_fill_mask(&mut self, _cycle: u64, relay: u32, masks: &[u64]) {
        self.relay_fills[relay as usize] += mask_count(masks);
        for_each_lane_word(masks, |lane| *self.occ_slot(relay, lane) += 1);
    }

    #[inline]
    fn relay_drain_mask(&mut self, _cycle: u64, relay: u32, masks: &[u64]) {
        self.relay_drains[relay as usize] += mask_count(masks);
        for_each_lane_word(masks, |lane| {
            let slot = self.occ_slot(relay, lane);
            *slot = slot.saturating_sub(1);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology {
            channels: 3,
            shells: 2,
            relay_capacities: vec![2, 1],
        }
    }

    #[test]
    fn counters_accumulate_via_scalar_hooks() {
        let mut m = MetricsRegistry::new(topo());
        m.stall(0, 1, 0);
        m.stall(1, 1, 0);
        m.channel_void(0, 2, 0);
        m.void_in(1, 2, 0);
        m.void_discard(1, 0, 0);
        m.fire(1, 1, 0);
        m.consume(1, 2, 0);
        m.end_cycle(0);
        m.end_cycle(1);
        assert_eq!(m.stalls(1), 2);
        assert_eq!(m.voids(2), 1);
        assert_eq!(m.void_ins(2), 1);
        assert_eq!(m.stall_discards(0), 1);
        assert_eq!(m.fires(1), 1);
        assert_eq!(m.consumed(2), 1);
        assert_eq!(m.cycles(), 2);
        assert_eq!(m.sink_throughput(2), Some((1, 2)));
    }

    #[test]
    fn mask_hooks_count_lanes() {
        let mut m = MetricsRegistry::with_lanes(topo(), 64);
        m.fire_mask(0, 0, &[0xFF]);
        m.stall_mask(0, 2, &[!0]);
        m.consume_mask(0, 1, &[0b111]);
        assert_eq!(m.fires(0), 8);
        assert_eq!(m.stalls(2), 64);
        assert_eq!(m.consumed(1), 3);
    }

    #[test]
    fn multi_word_mask_hooks_count_all_words() {
        let mut m = MetricsRegistry::with_lanes(topo(), 256);
        m.fire_mask(0, 1, &[!0, 0, 0b11, 1 << 63]);
        m.relay_fill_mask(0, 1, &[0, 0, 0, 1 << 10]);
        m.end_cycle(0);
        assert_eq!(m.fires(1), 64 + 2 + 1);
        assert_eq!(m.relay_traffic(1), (1, 0));
        // Lane 202 (word 3, bit 10) is at occupancy 1; the other 255
        // lanes are empty.
        assert_eq!(m.occupancy_histogram(1), &[255, 1]);
    }

    #[test]
    fn occupancy_histogram_tracks_fills_and_drains() {
        let mut m = MetricsRegistry::new(topo());
        // Relay 0 (cap 2): fill, fill -> occ 2 for one cycle, then drain.
        m.relay_fill(0, 0, 0);
        m.end_cycle(0); // occ 1
        m.relay_fill(1, 0, 0);
        m.end_cycle(1); // occ 2
        m.relay_drain(2, 0, 0);
        m.end_cycle(2); // occ 1
        assert_eq!(m.occupancy_histogram(0), &[0, 2, 1]);
        assert_eq!(m.relay_traffic(0), (2, 1));
        // Relay 1 never touched: all cycles at occupancy 0.
        assert_eq!(m.occupancy_histogram(1), &[3, 0]);
    }

    #[test]
    fn merge_sums_counters_and_histograms() {
        let mut a = MetricsRegistry::new(topo());
        a.fire(0, 0, 0);
        a.stall(0, 1, 0);
        a.relay_fill(0, 0, 0);
        a.end_cycle(0);
        let mut b = MetricsRegistry::new(topo());
        b.fire(0, 0, 0);
        b.fire(0, 1, 0);
        b.consume(0, 2, 0);
        b.end_cycle(0);
        b.end_cycle(1);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.cycles(), 3);
        assert_eq!(merged.fires(0), 2);
        assert_eq!(merged.fires(1), 1);
        assert_eq!(merged.stalls(1), 1);
        assert_eq!(merged.consumed(2), 1);
        assert_eq!(merged.relay_traffic(0), (1, 0));
        // Histogram lane-cycles sum: a spent 1 cycle at occ 1, b spent
        // 2 cycles at occ 0.
        assert_eq!(merged.occupancy_histogram(0), &[2, 1, 0]);
        // Merge order does not change the totals.
        let mut other_way = b.clone();
        other_way.merge(&a);
        assert_eq!(other_way.to_json(), merged.to_json());
    }

    #[test]
    #[should_panic(expected = "different topologies")]
    fn merge_rejects_mismatched_topologies() {
        let mut a = MetricsRegistry::new(topo());
        let b = MetricsRegistry::new(Topology {
            channels: 1,
            shells: 1,
            relay_capacities: vec![],
        });
        a.merge(&b);
    }

    #[test]
    fn json_snapshot_is_object() {
        let mut m = MetricsRegistry::new(topo());
        m.fire(0, 0, 0);
        m.end_cycle(0);
        let j = m.to_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"fires\":[1,0]"));
        assert!(j.contains("\"relay_occupancy\":[[1,0,0],[1,0]]"));
    }
}
