//! Event sinks: where the cycle-event stream goes.
//!
//! [`EventSink`] is the one API behind which waveforms and skeleton
//! telemetry unify. Three implementations ship here:
//!
//! * [`RingBufferSink`] — bounded in-memory buffer for tests and
//!   interactive inspection (oldest events drop first);
//! * [`JsonlSink`] — one JSON object per event, newline-delimited, for
//!   offline tooling;
//! * [`TraceSink`] — renders events onto a wires-only
//!   [`lip_kernel::Circuit`] and records them into the kernel's
//!   [`Trace`], so skeleton-engine activity can be viewed in the same
//!   VCD viewer as RTL waveforms.

use std::collections::VecDeque;
use std::io::{self, Write};

use lip_kernel::{Circuit, CircuitBuilder, SignalId, Trace};

use crate::event::{Event, EventKind};
use crate::metrics::Topology;

/// Receives the event stream produced by an
/// [`EventStreamProbe`](crate::probe::EventStreamProbe).
pub trait EventSink {
    /// Receive one event. Events of a cycle arrive before that cycle's
    /// [`EventSink::end_cycle`], in engine order (not sorted).
    fn accept(&mut self, ev: &Event);

    /// The engine finished clocking `cycle`.
    fn end_cycle(&mut self, _cycle: u64) {}

    /// Flush buffered output (meaningful for I/O-backed sinks).
    fn flush(&mut self) {}
}

/// A bounded in-memory event buffer; the oldest events drop first.
#[derive(Debug, Clone)]
pub struct RingBufferSink {
    buf: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

impl RingBufferSink {
    /// Buffer at most `capacity` events (must be non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring buffer capacity must be non-zero");
        RingBufferSink {
            buf: VecDeque::with_capacity(capacity),
            capacity,
            dropped: 0,
        }
    }

    /// Events currently buffered, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Number of buffered events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` if no events are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted because the buffer was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Remove and return all buffered events, oldest first.
    pub fn drain(&mut self) -> Vec<Event> {
        self.buf.drain(..).collect()
    }
}

impl EventSink for RingBufferSink {
    fn accept(&mut self, ev: &Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(*ev);
    }
}

/// Writes one JSON object per event, newline-delimited (JSONL).
///
/// I/O errors are latched rather than panicking mid-simulation: the
/// first error stops further writes and is retrievable via
/// [`JsonlSink::take_error`].
///
/// Dropping the sink flushes the writer (best effort, errors ignored):
/// a sink that goes out of scope mid-experiment — early return, panic
/// unwind, forgotten [`JsonlSink::finish`] — must not leave records
/// stranded in a `BufWriter`, where a truncated-but-well-formed prefix
/// would silently pass downstream `jq` schema checks. Call
/// [`JsonlSink::finish`] to *observe* flush errors.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    /// `Some` until `finish` takes the writer; `Drop` flushes what
    /// remains.
    writer: Option<W>,
    written: u64,
    error: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// Stream records into `writer`.
    pub fn new(writer: W) -> Self {
        JsonlSink {
            writer: Some(writer),
            written: 0,
            error: None,
        }
    }

    /// Records successfully written so far.
    #[must_use]
    pub fn written(&self) -> u64 {
        self.written
    }

    /// The first I/O error hit, if any (clears it).
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }

    /// Flush and return the underlying writer.
    ///
    /// # Errors
    ///
    /// Returns the latched write error or the final flush error.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error.take() {
            return Err(e);
        }
        let mut writer = self.writer.take().expect("writer present until finish");
        writer.flush()?;
        Ok(writer)
    }
}

impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        if let Some(writer) = self.writer.as_mut() {
            let _ = writer.flush();
        }
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn accept(&mut self, ev: &Event) {
        if self.error.is_some() {
            return;
        }
        let writer = self.writer.as_mut().expect("writer present until finish");
        match writeln!(writer, "{}", ev.to_json()) {
            Ok(()) => self.written += 1,
            Err(e) => self.error = Some(e),
        }
    }

    fn flush(&mut self) {
        if self.error.is_none() {
            let writer = self.writer.as_mut().expect("writer present until finish");
            if let Err(e) = writer.flush() {
                self.error = Some(e);
            }
        }
    }
}

/// Renders lane 0 of the event stream as waveforms in the kernel's VCD
/// [`Trace`].
///
/// The sink elaborates a wires-only [`Circuit`] from the observed
/// [`Topology`] — per channel `chN_stall` / `chN_void_in` /
/// `chN_void_discard` / `chN_void` / `chN_consume` pulse bits, per
/// shell `shellN_fire` pulse bits, per relay an occupancy level
/// `relayN_occ` — and records one trace entry per `end_cycle`. Pulse
/// wires read 1 exactly in the cycles the event occurred; occupancy
/// wires integrate fill/drain events. Other lanes are ignored: a
/// multi-lane run traces its lane-0 "scalar twin".
#[derive(Debug)]
pub struct TraceSink {
    circuit: Circuit,
    trace: Trace,
    values: Vec<u64>,
    /// Indices of pulse wires to clear after each recorded cycle.
    pulses: Vec<SignalId>,
    stall: Vec<SignalId>,
    void_in: Vec<SignalId>,
    void_discard: Vec<SignalId>,
    void: Vec<SignalId>,
    consume: Vec<SignalId>,
    fire: Vec<SignalId>,
    occ: Vec<SignalId>,
}

impl TraceSink {
    /// Build the observer circuit for `topo`.
    ///
    /// # Panics
    ///
    /// Panics if a relay capacity exceeds 255 (the occupancy wires are
    /// 8 bits wide).
    #[must_use]
    pub fn new(topo: &Topology) -> Self {
        let mut b = CircuitBuilder::new();
        let mut pulses = Vec::new();
        let mut pulse = |b: &mut CircuitBuilder, name: String| {
            let sig = b.wire(name, 1, 0);
            pulses.push(sig);
            sig
        };
        let mut stall = Vec::new();
        let mut void_in = Vec::new();
        let mut void_discard = Vec::new();
        let mut void = Vec::new();
        let mut consume = Vec::new();
        for ch in 0..topo.channels {
            stall.push(pulse(&mut b, format!("ch{ch}_stall")));
            void_in.push(pulse(&mut b, format!("ch{ch}_void_in")));
            void_discard.push(pulse(&mut b, format!("ch{ch}_void_discard")));
            void.push(pulse(&mut b, format!("ch{ch}_void")));
            consume.push(pulse(&mut b, format!("ch{ch}_consume")));
        }
        let mut fire = Vec::new();
        for sh in 0..topo.shells {
            fire.push(pulse(&mut b, format!("shell{sh}_fire")));
        }
        let mut occ = Vec::new();
        for (i, &cap) in topo.relay_capacities.iter().enumerate() {
            assert!(cap <= 255, "relay capacity exceeds occupancy wire width");
            occ.push(b.wire(format!("relay{i}_occ"), 8, 0));
        }
        let circuit = b.build().expect("wires-only observer circuit");
        let values = vec![0; circuit.signal_count()];
        TraceSink {
            circuit,
            trace: Trace::new(),
            values,
            pulses,
            stall,
            void_in,
            void_discard,
            void,
            consume,
            fire,
            occ,
        }
    }

    /// The recorded trace.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// The observer circuit (needed to serialise the trace).
    #[must_use]
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Serialise the recorded waveform as a VCD document.
    #[must_use]
    pub fn to_vcd(&self) -> String {
        self.trace.to_vcd(&self.circuit)
    }
}

impl EventSink for TraceSink {
    fn accept(&mut self, ev: &Event) {
        if ev.lane != 0 {
            return;
        }
        let entity = ev.entity as usize;
        match ev.kind {
            EventKind::Fire => self.values[self.fire[entity].index()] = 1,
            EventKind::Stall => self.values[self.stall[entity].index()] = 1,
            EventKind::VoidIn => self.values[self.void_in[entity].index()] = 1,
            EventKind::VoidDiscard => self.values[self.void_discard[entity].index()] = 1,
            EventKind::ChannelVoid => self.values[self.void[entity].index()] = 1,
            EventKind::Consume => self.values[self.consume[entity].index()] = 1,
            EventKind::RelayFill => {
                let v = &mut self.values[self.occ[entity].index()];
                *v = (*v + 1).min(255);
            }
            EventKind::RelayDrain => {
                let v = &mut self.values[self.occ[entity].index()];
                *v = v.saturating_sub(1);
            }
        }
    }

    fn end_cycle(&mut self, cycle: u64) {
        self.trace
            .record(cycle, &self.circuit, &self.values)
            .expect("observer circuit and values are consistent");
        for &sig in &self.pulses {
            self.values[sig.index()] = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycle: u64, kind: EventKind, entity: u32) -> Event {
        Event::new(cycle, kind, entity, 0)
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let mut s = RingBufferSink::new(2);
        s.accept(&ev(0, EventKind::Fire, 0));
        s.accept(&ev(1, EventKind::Fire, 0));
        s.accept(&ev(2, EventKind::Fire, 0));
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 1);
        let drained = s.drain();
        assert_eq!(drained[0].cycle, 1);
        assert_eq!(drained[1].cycle, 2);
        assert!(s.is_empty());
    }

    #[test]
    fn ring_buffer_wraparound_over_many_laps() {
        let mut s = RingBufferSink::new(3);
        for c in 0..10 {
            s.accept(&ev(c, EventKind::Stall, 0));
        }
        // Capacity holds, eviction count is exact, and the survivors
        // are the newest three in oldest-first order.
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 7);
        let cycles: Vec<u64> = s.events().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![7, 8, 9]);
        // Draining empties the buffer but keeps the eviction history;
        // the sink then refills from scratch without further drops.
        let drained = s.drain();
        assert_eq!(drained.len(), 3);
        assert!(s.is_empty());
        assert_eq!(s.dropped(), 7);
        s.accept(&ev(10, EventKind::Fire, 1));
        assert_eq!(s.len(), 1);
        assert_eq!(s.dropped(), 7);
    }

    /// A writer that fails after accepting a fixed number of bytes.
    struct FailAfter {
        remaining: usize,
    }

    impl Write for FailAfter {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            if self.remaining < buf.len() {
                return Err(io::Error::other("disk full"));
            }
            self.remaining -= buf.len();
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_latches_the_first_io_error() {
        let first = ev(0, EventKind::Fire, 0).to_json();
        let mut s = JsonlSink::new(FailAfter {
            remaining: first.len() + 1, // exactly one record + newline
        });
        s.accept(&ev(0, EventKind::Fire, 0));
        s.accept(&ev(1, EventKind::Fire, 0)); // hits the error
        s.accept(&ev(2, EventKind::Fire, 0)); // silently skipped
        assert_eq!(s.written(), 1);
        assert!(s.finish().is_err());
    }

    #[test]
    fn json_string_escaping_of_unusual_netlist_names() {
        // Netlist names flow into JSON documents (telemetry reports,
        // blame reports, Chrome-trace track names) through one shared
        // escaper; quotes, backslashes, control characters and
        // non-ASCII must all survive as valid JSON string content.
        let escape = crate::telemetry::escape;
        assert_eq!(escape(r#"a"b"#), r#"a\"b"#);
        assert_eq!(escape(r"a\b"), r"a\\b");
        assert_eq!(escape("a\nb\tc"), r"a\nb\tc");
        assert_eq!(escape("\u{1}"), r"\u0001");
        // Non-ASCII passes through unescaped (JSON is UTF-8).
        assert_eq!(escape("fifo·π→Ω"), "fifo·π→Ω");
        // End to end: a report field with a hostile name round-trips
        // into a syntactically balanced JSON document.
        let mut report = crate::Report::new("escape_test");
        report.push_str("name", "w\\6\"\n·π");
        let json = report.to_json();
        assert!(json.contains(r#""w\\6\"\n·π""#));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    /// A writer whose flushes are visible after the sink is gone.
    struct FlushWitness {
        buffered: Vec<u8>,
        flushed: std::rc::Rc<std::cell::RefCell<Vec<u8>>>,
    }

    impl Write for FlushWitness {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.buffered.extend_from_slice(buf);
            Ok(buf.len())
        }

        fn flush(&mut self) -> io::Result<()> {
            self.flushed.borrow_mut().append(&mut self.buffered);
            Ok(())
        }
    }

    #[test]
    fn jsonl_sink_flushes_buffered_records_on_drop() {
        let flushed = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        {
            let mut s = JsonlSink::new(FlushWitness {
                buffered: Vec::new(),
                flushed: std::rc::Rc::clone(&flushed),
            });
            s.accept(&ev(0, EventKind::Fire, 0));
            s.accept(&ev(1, EventKind::Stall, 1));
            // No explicit flush/finish: the sink is simply dropped, as
            // happens on early return or panic unwind.
        }
        let out = String::from_utf8(flushed.borrow().clone()).unwrap();
        assert_eq!(out.lines().count(), 2, "drop must flush buffered records");
        assert!(out.ends_with('\n'));
    }

    #[test]
    fn jsonl_sink_finish_does_not_double_flush() {
        let flushed = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
        let mut s = JsonlSink::new(FlushWitness {
            buffered: Vec::new(),
            flushed: std::rc::Rc::clone(&flushed),
        });
        s.accept(&ev(0, EventKind::Fire, 0));
        let writer = s.finish().unwrap();
        drop(writer);
        assert_eq!(flushed.borrow().iter().filter(|&&b| b == b'\n').count(), 1);
    }

    #[test]
    fn jsonl_sink_writes_one_record_per_line() {
        let mut s = JsonlSink::new(Vec::new());
        s.accept(&ev(3, EventKind::VoidIn, 1));
        s.accept(&ev(4, EventKind::Stall, 2));
        s.flush();
        assert_eq!(s.written(), 2);
        let out = String::from_utf8(s.finish().unwrap()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"cycle\":3,\"kind\":\"void_in\",\"entity\":1,\"lane\":0}"
        );
    }

    #[test]
    fn trace_sink_pulses_and_integrates_occupancy() {
        let topo = Topology {
            channels: 1,
            shells: 1,
            relay_capacities: vec![2],
        };
        let mut s = TraceSink::new(&topo);
        // Cycle 0: a fire and a relay fill.
        s.accept(&ev(0, EventKind::Fire, 0));
        s.accept(&ev(0, EventKind::RelayFill, 0));
        s.end_cycle(0);
        // Cycle 1: quiet (pulse must fall, occupancy must hold).
        s.end_cycle(1);
        // Cycle 2: drain.
        s.accept(&ev(2, EventKind::RelayDrain, 0));
        s.end_cycle(2);
        let fire = s.fire[0];
        let occ = s.occ[0];
        assert_eq!(s.trace().value_at(fire, 0), Some(1));
        assert_eq!(s.trace().value_at(fire, 1), Some(0));
        assert_eq!(s.trace().value_at(occ, 0), Some(1));
        assert_eq!(s.trace().value_at(occ, 1), Some(1));
        assert_eq!(s.trace().value_at(occ, 2), Some(0));
        let vcd = s.to_vcd();
        assert!(vcd.contains("shell0_fire"));
        assert!(vcd.contains("relay0_occ"));
    }

    #[test]
    fn trace_sink_pulses_void_and_consume_wires() {
        let topo = Topology {
            channels: 2,
            shells: 1,
            relay_capacities: vec![],
        };
        let mut s = TraceSink::new(&topo);
        s.accept(&ev(0, EventKind::ChannelVoid, 1));
        s.accept(&ev(0, EventKind::Consume, 0));
        s.end_cycle(0);
        s.end_cycle(1);
        assert_eq!(s.trace().value_at(s.void[1], 0), Some(1));
        assert_eq!(s.trace().value_at(s.void[1], 1), Some(0));
        assert_eq!(s.trace().value_at(s.consume[0], 0), Some(1));
        assert_eq!(s.trace().value_at(s.consume[0], 1), Some(0));
        let vcd = s.to_vcd();
        assert!(vcd.contains("ch1_void"));
        assert!(vcd.contains("ch0_consume"));
    }

    #[test]
    fn trace_sink_ignores_other_lanes() {
        let topo = Topology {
            channels: 1,
            shells: 1,
            relay_capacities: vec![],
        };
        let mut s = TraceSink::new(&topo);
        s.accept(&Event::new(0, EventKind::Fire, 0, 3));
        s.end_cycle(0);
        assert_eq!(s.trace().value_at(s.fire[0], 0), Some(0));
    }
}
