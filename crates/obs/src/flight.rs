//! Engine flight recorder: wall-clock self-profiling for the simulator
//! itself.
//!
//! Every observability layer so far watches the *simulated protocol*
//! (probes, events, blame). This module watches the *engine*: where
//! wall time goes between netlist compilation, settle passes,
//! periodicity hashing, throughput-cache lookups and pool workers.
//!
//! The design mirrors [`Probe`](crate::Probe)/[`NullProbe`](crate::NullProbe):
//!
//! * [`Recorder`] is the monomorphization seam. Hot loops are generic
//!   over `R: Recorder`; instantiated with [`NullRecorder`]
//!   (`ENABLED = false`) every recording branch is dead code and the
//!   loop compiles to exactly what it was before this module existed.
//! * [`FlightRecorder`] is the live implementation: a cloneable handle
//!   around shared per-thread span logs and named counters. Spans are
//!   timestamped against one common origin, so logs from pool workers
//!   and the driving thread merge into a single coherent timeline.
//!   A recorder can also be constructed *runtime-disabled*
//!   ([`FlightRecorder::disabled`]) — same monomorphization, one
//!   predictable branch per instrumentation site — which is what the
//!   `exp_runtime_obs` overhead gate measures.
//! * A process-global **ambient** recorder ([`install`] /
//!   [`uninstall`] / [`global_span`] / [`global_add`]) lets cold paths
//!   that cannot thread a recorder parameter (settle-program
//!   compilation, throughput-cache lookups, `lip-par` workers) publish
//!   spans and counters. When nothing is installed the cost is one
//!   relaxed atomic load.
//!
//! The recorded data drains into a [`FlightDump`], which
//! [`RuntimeReport`](crate::RuntimeReport) rolls up into the versioned
//! `BENCH_runtime.json` artefact and
//! [`runtime_chrome_trace`](crate::runtime_chrome_trace) renders for
//! `chrome://tracing` / Perfetto.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::ThreadId;
use std::time::Instant;

/// Closed spans retained per recorder before newcomers are counted as
/// dropped instead of stored. Spans are coarse (per measurement, per
/// compile, per worker), so this bound is generous; it exists so a
/// misbehaving caller cannot grow the log without limit.
pub const MAX_SPANS: usize = 1 << 16;

/// The self-profiling seam hot loops are generic over.
///
/// Like [`Probe`](crate::Probe), the `ENABLED` associated constant
/// lets the [`NullRecorder`] instantiation compile every recording
/// branch away. Implementations with `ENABLED = true` may still be
/// *runtime*-disabled ([`Recorder::active`] returns `false`): that is
/// the configuration whose overhead the `exp_runtime_obs` bin gates.
pub trait Recorder {
    /// `false` only for [`NullRecorder`]: lets generic code skip
    /// recording branches at compile time.
    const ENABLED: bool = true;

    /// `true` when spans and counters are actually being collected.
    /// Generic code should gate optional work on
    /// `R::ENABLED && rec.active()`.
    fn active(&self) -> bool {
        Self::ENABLED
    }

    /// Open a span of category `cat` named `name` on the calling
    /// thread. Must be balanced by [`Recorder::exit`] with the
    /// returned token (or use the RAII [`rec_span`] helper).
    fn enter(&self, cat: &'static str, name: &str) -> SpanToken;

    /// Close the span opened by the matching [`Recorder::enter`].
    fn exit(&self, token: SpanToken);

    /// Add `delta` to the named counter.
    fn add(&self, name: &'static str, delta: u64);
}

/// Opaque handle tying a [`Recorder::exit`] to its
/// [`Recorder::enter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanToken {
    tid: u32,
    idx: u32,
    live: bool,
}

impl SpanToken {
    const DEAD: SpanToken = SpanToken {
        tid: 0,
        idx: 0,
        live: false,
    };
}

/// The recorder that records nothing and costs nothing.
///
/// `ENABLED = false`: code generic over [`Recorder`] instantiated with
/// `NullRecorder` monomorphizes to the unrecorded loop, the same way
/// [`NullProbe`](crate::NullProbe) vanishes from unprobed simulation.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn enter(&self, _cat: &'static str, _name: &str) -> SpanToken {
        SpanToken::DEAD
    }

    #[inline(always)]
    fn exit(&self, _token: SpanToken) {}

    #[inline(always)]
    fn add(&self, _name: &'static str, _delta: u64) {}
}

/// One closed span in the flight log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static category (`"measure"`, `"compile"`, `"cache"`, `"par"`,
    /// `"sweep"`, ...).
    pub cat: &'static str,
    /// Instance name (topology, width, worker index, ...).
    pub name: String,
    /// Dense thread index (0 = first thread that recorded).
    pub tid: u32,
    /// Nesting depth on its thread at open time (0 = top level).
    pub depth: u16,
    /// Open timestamp, nanoseconds since the recorder's origin.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
}

#[derive(Debug)]
struct OpenSpan {
    cat: &'static str,
    name: String,
    start_ns: u64,
}

#[derive(Debug)]
struct FlightState {
    spans: Vec<SpanRecord>,
    counters: BTreeMap<&'static str, u64>,
    /// Dense thread-index mapping, in first-recording order.
    threads: Vec<ThreadId>,
    /// Per-thread stacks of currently open spans.
    open: Vec<Vec<OpenSpan>>,
    dropped: u64,
}

impl FlightState {
    fn thread_index(&mut self, id: ThreadId) -> usize {
        if let Some(i) = self.threads.iter().position(|&t| t == id) {
            i
        } else {
            self.threads.push(id);
            self.open.push(Vec::new());
            self.threads.len() - 1
        }
    }

    fn close(&mut self, tid: usize, idx: usize, now_ns: u64) {
        // Spans close LIFO per thread; tolerate a skipped exit by
        // closing everything opened above the token first.
        while self.open[tid].len() > idx {
            let span = self.open[tid].pop().expect("stack non-empty");
            let depth = u16::try_from(self.open[tid].len()).unwrap_or(u16::MAX);
            if self.spans.len() < MAX_SPANS {
                self.spans.push(SpanRecord {
                    cat: span.cat,
                    name: span.name,
                    tid: u32::try_from(tid).expect("dense thread index fits u32"),
                    depth,
                    start_ns: span.start_ns,
                    dur_ns: now_ns.saturating_sub(span.start_ns),
                });
            } else {
                self.dropped += 1;
            }
        }
    }
}

#[derive(Debug)]
struct FlightInner {
    origin: Instant,
    state: Mutex<FlightState>,
}

/// Shared, thread-safe flight recorder.
///
/// Cloning is cheap (an `Arc` bump); all clones feed the same span
/// logs and counters, timestamped against one origin. Spans recorded
/// from different threads interleave into one timeline and are told
/// apart by their dense [`SpanRecord::tid`].
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<FlightInner>,
    enabled: bool,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// A recording (enabled) flight recorder.
    #[must_use]
    pub fn new() -> Self {
        FlightRecorder {
            inner: Arc::new(FlightInner {
                origin: Instant::now(),
                state: Mutex::new(FlightState {
                    spans: Vec::new(),
                    counters: BTreeMap::new(),
                    threads: Vec::new(),
                    open: Vec::new(),
                    dropped: 0,
                }),
            }),
            enabled: true,
        }
    }

    /// A runtime-disabled recorder: same monomorphization as an
    /// enabled one, but every instrumentation site reduces to one
    /// predictable branch. This is the configuration the
    /// `exp_runtime_obs` <3% overhead gate times against the
    /// [`NullRecorder`] baseline.
    #[must_use]
    pub fn disabled() -> Self {
        let mut r = FlightRecorder::new();
        r.enabled = false;
        r
    }

    /// Whether this handle records (`disabled()` handles do not).
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.inner.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FlightState> {
        // A panic while holding the lock only loses telemetry; the
        // data itself is append-only counters and closed spans.
        self.inner
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Open a RAII span guard; the span closes when the guard drops.
    #[must_use]
    pub fn span(&self, cat: &'static str, name: &str) -> FlightSpan {
        FlightSpan {
            rec: self.clone(),
            token: self.enter(cat, name),
        }
    }

    /// Run `f` inside a span.
    pub fn scoped<T>(&self, cat: &'static str, name: &str, f: impl FnOnce() -> T) -> T {
        let _guard = self.span(cat, name);
        f()
    }

    /// Drain everything recorded so far into a [`FlightDump`],
    /// leaving the recorder empty and reusable. Still-open spans are
    /// closed as of the drain instant.
    pub fn drain(&self) -> FlightDump {
        let now = self.now_ns();
        let mut st = self.lock();
        for tid in 0..st.open.len() {
            st.close(tid, 0, now);
        }
        let spans = std::mem::take(&mut st.spans);
        let counters = st
            .counters
            .iter()
            .map(|(&k, &v)| (k.to_owned(), v))
            .collect();
        st.counters.clear();
        let threads = u32::try_from(st.threads.len()).expect("dense thread count fits u32");
        let dropped = st.dropped;
        st.dropped = 0;
        FlightDump {
            spans,
            counters,
            threads,
            dropped,
            wall_ns: now,
        }
    }
}

impl Recorder for FlightRecorder {
    fn active(&self) -> bool {
        self.enabled
    }

    fn enter(&self, cat: &'static str, name: &str) -> SpanToken {
        if !self.enabled {
            return SpanToken::DEAD;
        }
        let start_ns = self.now_ns();
        let mut st = self.lock();
        let tid = st.thread_index(std::thread::current().id());
        let idx = st.open[tid].len();
        st.open[tid].push(OpenSpan {
            cat,
            name: name.to_owned(),
            start_ns,
        });
        SpanToken {
            tid: u32::try_from(tid).expect("dense thread index fits u32"),
            idx: u32::try_from(idx).expect("open-span depth fits u32"),
            live: true,
        }
    }

    fn exit(&self, token: SpanToken) {
        if !self.enabled || !token.live {
            return;
        }
        let now = self.now_ns();
        let mut st = self.lock();
        let tid = token.tid as usize;
        if tid < st.open.len() {
            st.close(tid, token.idx as usize, now);
        }
    }

    fn add(&self, name: &'static str, delta: u64) {
        if !self.enabled {
            return;
        }
        let mut st = self.lock();
        *st.counters.entry(name).or_insert(0) += delta;
    }
}

/// RAII guard closing a [`FlightRecorder`] span on drop.
#[derive(Debug)]
pub struct FlightSpan {
    rec: FlightRecorder,
    token: SpanToken,
}

impl Drop for FlightSpan {
    fn drop(&mut self) {
        self.rec.exit(self.token);
    }
}

/// RAII guard for spans recorded through the generic [`Recorder`]
/// seam; see [`rec_span`].
#[derive(Debug)]
pub struct RecSpan<'a, R: Recorder> {
    rec: &'a R,
    token: SpanToken,
}

/// Open a span on any [`Recorder`], closed when the guard drops.
///
/// With `R = NullRecorder` this is fully inlined away.
#[must_use]
pub fn rec_span<'a, R: Recorder>(rec: &'a R, cat: &'static str, name: &str) -> RecSpan<'a, R> {
    let token = if R::ENABLED {
        rec.enter(cat, name)
    } else {
        SpanToken::DEAD
    };
    RecSpan { rec, token }
}

impl<R: Recorder> Drop for RecSpan<'_, R> {
    fn drop(&mut self) {
        if R::ENABLED {
            self.rec.exit(self.token);
        }
    }
}

/// Everything one [`FlightRecorder::drain`] produced.
#[derive(Debug, Clone)]
pub struct FlightDump {
    /// Closed spans, in close order (interleaved across threads).
    pub spans: Vec<SpanRecord>,
    /// Named counters.
    pub counters: BTreeMap<String, u64>,
    /// Number of distinct threads that recorded.
    pub threads: u32,
    /// Spans discarded because the [`MAX_SPANS`] cap was hit.
    pub dropped: u64,
    /// Nanoseconds from the recorder's origin to the drain instant.
    pub wall_ns: u64,
}

impl FlightDump {
    /// Total duration of spans of category `cat` at depth `depth`.
    #[must_use]
    pub fn total_ns(&self, cat: &str, depth: u16) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.cat == cat && s.depth == depth)
            .map(|s| s.dur_ns)
            .sum()
    }

    /// The single longest span of category `cat`, if any.
    #[must_use]
    pub fn longest(&self, cat: &str) -> Option<&SpanRecord> {
        self.spans
            .iter()
            .filter(|s| s.cat == cat)
            .max_by_key(|s| s.dur_ns)
    }
}

// ---------------------------------------------------------------------
// Ambient (process-global) recorder.
// ---------------------------------------------------------------------

static INSTALLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: Mutex<Option<FlightRecorder>> = Mutex::new(None);

fn global() -> Option<FlightRecorder> {
    if !INSTALLED.load(Ordering::Relaxed) {
        return None;
    }
    GLOBAL
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// Install `rec` as the process-global ambient recorder, so cold
/// paths that cannot take a recorder parameter (settle-program
/// compilation, `ThroughputCache` lookups, `lip-par` workers) publish
/// into it. Replaces any previously installed recorder.
pub fn install(rec: &FlightRecorder) {
    let mut g = GLOBAL.lock().unwrap_or_else(PoisonError::into_inner);
    *g = Some(rec.clone());
    INSTALLED.store(true, Ordering::Release);
}

/// Remove and return the ambient recorder, if one was installed.
pub fn uninstall() -> Option<FlightRecorder> {
    let mut g = GLOBAL.lock().unwrap_or_else(PoisonError::into_inner);
    INSTALLED.store(false, Ordering::Release);
    g.take()
}

/// `true` while an ambient recorder is installed.
#[must_use]
pub fn installed() -> bool {
    INSTALLED.load(Ordering::Relaxed)
}

/// Guard for an ambient span; a no-op (one relaxed atomic load) when
/// no recorder is installed or the installed one is disabled.
#[derive(Debug)]
pub struct GlobalSpan {
    _guard: Option<FlightSpan>,
}

/// Open a span on the ambient recorder, if one is installed.
#[must_use]
pub fn global_span(cat: &'static str, name: &str) -> GlobalSpan {
    GlobalSpan {
        _guard: global().map(|rec| rec.span(cat, name)),
    }
}

/// Add to a counter on the ambient recorder, if one is installed.
pub fn global_add(name: &'static str, delta: u64) {
    if let Some(rec) = global() {
        rec.add(name, delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The ambient recorder is process-global; tests touching it
    /// serialize on this lock so `cargo test`'s default parallelism
    /// cannot interleave installs.
    static AMBIENT_TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn spans_nest_and_record_depth() {
        let rec = FlightRecorder::new();
        {
            let _outer = rec.span("sweep", "corpus");
            {
                let _inner = rec.span("measure", "fig1");
            }
            {
                let _inner = rec.span("measure", "ring");
            }
        }
        let dump = rec.drain();
        assert_eq!(dump.spans.len(), 3);
        assert_eq!(dump.threads, 1);
        let outer = dump.spans.iter().find(|s| s.cat == "sweep").unwrap();
        assert_eq!(outer.depth, 0);
        for inner in dump.spans.iter().filter(|s| s.cat == "measure") {
            assert_eq!(inner.depth, 1);
            assert!(inner.start_ns >= outer.start_ns);
            assert!(inner.start_ns + inner.dur_ns <= outer.start_ns + outer.dur_ns);
        }
        // Drain left the recorder empty and reusable.
        assert!(rec.drain().spans.is_empty());
    }

    #[test]
    fn counters_sum_and_drain() {
        let rec = FlightRecorder::new();
        rec.add("cache.hits", 2);
        rec.add("cache.hits", 3);
        rec.add("cache.misses", 1);
        let dump = rec.drain();
        assert_eq!(dump.counters["cache.hits"], 5);
        assert_eq!(dump.counters["cache.misses"], 1);
        assert!(rec.drain().counters.is_empty());
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let rec = FlightRecorder::disabled();
        assert!(!rec.active());
        {
            let _s = rec.span("measure", "fig1");
            rec.add("cache.hits", 7);
        }
        let dump = rec.drain();
        assert!(dump.spans.is_empty());
        assert!(dump.counters.is_empty());
    }

    #[test]
    fn cross_thread_spans_merge_with_dense_tids() {
        let rec = FlightRecorder::new();
        let _root = rec.span("sweep", "parallel");
        std::thread::scope(|scope| {
            for w in 0..3 {
                let rec = rec.clone();
                scope.spawn(move || {
                    let _s = rec.span("par", &format!("worker{w}"));
                    rec.add("par.items", 1);
                });
            }
        });
        drop(_root);
        let dump = rec.drain();
        assert_eq!(dump.counters["par.items"], 3);
        let workers: Vec<&SpanRecord> = dump.spans.iter().filter(|s| s.cat == "par").collect();
        assert_eq!(workers.len(), 3);
        // 4 distinct threads recorded: the driver and three workers.
        assert_eq!(dump.threads, 4);
        // Worker spans are top-of-stack on their own threads.
        for w in workers {
            assert_eq!(w.depth, 0);
            assert!(w.tid > 0);
        }
    }

    #[test]
    fn span_cap_counts_dropped() {
        let rec = FlightRecorder::new();
        for i in 0..(MAX_SPANS + 10) {
            let _s = rec.span("spam", &i.to_string());
        }
        let dump = rec.drain();
        assert_eq!(dump.spans.len(), MAX_SPANS);
        assert_eq!(dump.dropped, 10);
    }

    #[test]
    fn drain_closes_open_spans() {
        let rec = FlightRecorder::new();
        let guard = rec.span("measure", "still-open");
        let dump = rec.drain();
        assert_eq!(dump.spans.len(), 1);
        assert_eq!(dump.spans[0].name, "still-open");
        drop(guard); // late exit after drain is harmless
        assert!(rec.drain().spans.is_empty());
    }

    #[test]
    fn null_recorder_is_inert() {
        let rec = NullRecorder;
        const { assert!(!NullRecorder::ENABLED) };
        assert!(!rec.active());
        let t = rec.enter("x", "y");
        rec.exit(t);
        rec.add("n", 1);
        let _guard = rec_span(&rec, "x", "y");
    }

    #[test]
    fn ambient_recorder_install_and_route() {
        let _l = AMBIENT_TEST_LOCK
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        // Nothing installed: free no-ops.
        assert!(!installed());
        {
            let _s = global_span("cache", "miss");
            global_add("cache.hits", 1);
        }
        let rec = FlightRecorder::new();
        install(&rec);
        assert!(installed());
        {
            let _s = global_span("cache", "miss");
            global_add("cache.hits", 2);
        }
        let back = uninstall().expect("was installed");
        assert!(!installed());
        let dump = back.drain();
        assert_eq!(dump.counters["cache.hits"], 2);
        assert_eq!(dump.spans.len(), 1);
        assert_eq!(dump.spans[0].cat, "cache");
    }

    #[test]
    fn rec_span_guards_through_the_trait() {
        let rec = FlightRecorder::new();
        {
            let _g = rec_span(&rec, "measure", "generic");
        }
        let dump = rec.drain();
        assert_eq!(dump.spans.len(), 1);
        assert_eq!(dump.spans[0].cat, "measure");
    }
}
