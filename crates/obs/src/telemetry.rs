//! Derived telemetry: rolling throughput, transient detection, and the
//! versioned `Report` JSON every `exp_*` bin emits.
//!
//! The paper's claims are *steady-state* claims — `T = (m − i)/m` holds
//! only after the initial transient has washed out (bounded by the
//! longest source→sink relay path). [`TransientDetector`] finds the
//! exact cycle the measured stream locks onto the analytic rate, and
//! [`RollingThroughput`] watches the rate evolve. [`Report`] packages
//! counters and telemetry as a small versioned JSON document
//! (`schema_version` = [`SCHEMA_VERSION`]) written next to the raw
//! bench numbers, so downstream tooling can evolve the format safely.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Version of the `Report` JSON layout (and of the `schema_version`
/// field in `BENCH_skeleton.json`). Re-exported from the central
/// [`crate::schema`] registry; bump it there.
pub const SCHEMA_VERSION: u32 = crate::schema::REPORT;

/// Rolling per-channel throughput: informative tokens consumed over the
/// last `window` cycles.
#[derive(Debug, Clone)]
pub struct RollingThroughput {
    window: usize,
    buf: VecDeque<u64>,
    sum: u64,
}

impl RollingThroughput {
    /// Average over the last `window` cycles (must be non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `window` is zero.
    #[must_use]
    pub fn new(window: usize) -> Self {
        assert!(window > 0, "rolling window must be non-zero");
        RollingThroughput {
            window,
            buf: VecDeque::with_capacity(window),
            sum: 0,
        }
    }

    /// Record the tokens consumed in one cycle (0 or 1 for scalar
    /// engines, up to the lane count for the batch engine).
    pub fn push(&mut self, consumed: u64) {
        if self.buf.len() == self.window {
            self.sum -= self.buf.pop_front().expect("window non-empty");
        }
        self.buf.push_back(consumed);
        self.sum += consumed;
    }

    /// `(tokens, cycles)` over the current window contents.
    #[must_use]
    pub fn rate(&self) -> (u64, u64) {
        (self.sum, self.buf.len() as u64)
    }

    /// The window average as a float; `None` before the first push.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        match self.buf.len() {
            0 => None,
            n => Some(self.sum as f64 / n as f64),
        }
    }

    /// `true` once the window is fully populated.
    #[must_use]
    pub fn warm(&self) -> bool {
        self.buf.len() == self.window
    }
}

/// Finds the first cycle from which the observed stream sustains the
/// analytic steady-state throughput `num / den`.
///
/// Feed it one boolean per cycle — "did the sink consume an informative
/// token this cycle" — via [`TransientDetector::push`]. A window of
/// `den` consecutive cycles is *good* when it contains exactly `num`
/// informative tokens; once the stream is periodic at the analytic rate,
/// every window is good. The transient length is one past the start of
/// the last bad window (0 when no window was ever bad).
#[derive(Debug, Clone)]
pub struct TransientDetector {
    num: u64,
    den: u64,
    history: Vec<bool>,
}

impl TransientDetector {
    /// Detect settling onto throughput `num / den` (`den` non-zero,
    /// `num <= den`).
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero or `num > den`.
    #[must_use]
    pub fn new(num: u64, den: u64) -> Self {
        assert!(den > 0, "throughput denominator must be non-zero");
        assert!(num <= den, "throughput cannot exceed 1");
        TransientDetector {
            num,
            den,
            history: Vec::new(),
        }
    }

    /// The analytic target as `(num, den)`.
    #[must_use]
    pub fn target(&self) -> (u64, u64) {
        (self.num, self.den)
    }

    /// Record one cycle: did the sink consume an informative token?
    pub fn push(&mut self, informative: bool) {
        self.history.push(informative);
    }

    /// Cycles observed so far.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.history.len() as u64
    }

    /// The transient length: the first cycle from which every
    /// `den`-cycle window carries exactly `num` informative tokens.
    ///
    /// `None` until a full window has been observed, or when the stream
    /// has not (yet) reached the analytic rate — i.e. the most recent
    /// window is still bad.
    #[must_use]
    pub fn transient(&self) -> Option<u64> {
        let den = usize::try_from(self.den).expect("window fits usize");
        if self.history.len() < den {
            return None;
        }
        let mut sum: u64 = self.history[..den].iter().map(|&b| u64::from(b)).sum();
        let mut last_bad: Option<usize> = None;
        let windows = self.history.len() - den;
        for start in 0..=windows {
            if sum != self.num {
                last_bad = Some(start);
            }
            if start < windows {
                sum -= u64::from(self.history[start]);
                sum += u64::from(self.history[start + den]);
            }
        }
        match last_bad {
            // The stream never deviated.
            None => Some(0),
            // Still bad at the end: not settled yet.
            Some(b) if b == windows => None,
            Some(b) => Some(b as u64 + 1),
        }
    }

    /// Informative tokens observed over the whole run, as `(num, den)`.
    /// Includes the transient, so this undershoots the steady-state rate
    /// — see [`steady_measured`](Self::steady_measured).
    #[must_use]
    pub fn measured(&self) -> (u64, u64) {
        (
            self.history.iter().map(|&b| u64::from(b)).sum(),
            self.history.len() as u64,
        )
    }

    /// Informative tokens over the steady-state suffix — the largest
    /// whole number of `den`-cycle windows after the transient — as
    /// `(num, den)`. `None` while [`transient`](Self::transient) is.
    #[must_use]
    pub fn steady_measured(&self) -> Option<(u64, u64)> {
        let settle = usize::try_from(self.transient()?).expect("transient fits usize");
        let den = usize::try_from(self.den).expect("window fits usize");
        // After the transient every den-window carries num tokens, so
        // the largest whole-window suffix starting at or after `settle`
        // is steady.
        let whole = (self.history.len() - settle) / den * den;
        let start = self.history.len() - whole;
        Some((
            self.history[start..].iter().map(|&b| u64::from(b)).sum(),
            whole as u64,
        ))
    }
}

/// Escape `s` for embedding in a JSON string literal (shared with the
/// profiler's and trace exporter's hand-rolled serialisers).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A versioned telemetry document: `schema_version`, the experiment
/// name, and an ordered set of fields.
///
/// Serialisation is hand-rolled (the workspace is offline — no serde):
/// fields keep insertion order, values are raw JSON fragments produced
/// by the typed `push_*` helpers or [`Report::push_raw`] for nested
/// objects such as
/// [`MetricsRegistry::to_json`](crate::metrics::MetricsRegistry::to_json).
#[derive(Debug, Clone)]
pub struct Report {
    experiment: String,
    fields: Vec<(String, String)>,
}

impl Report {
    /// A report for the experiment `name` (also the output file stem).
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Report {
            experiment: name.into(),
            fields: Vec::new(),
        }
    }

    /// The experiment name.
    #[must_use]
    pub fn experiment(&self) -> &str {
        &self.experiment
    }

    /// Append a field holding a pre-serialised JSON fragment.
    pub fn push_raw(&mut self, key: impl Into<String>, json: impl Into<String>) -> &mut Self {
        self.fields.push((key.into(), json.into()));
        self
    }

    /// Append an integer field.
    pub fn push_int(&mut self, key: impl Into<String>, value: u64) -> &mut Self {
        self.push_raw(key, value.to_string())
    }

    /// Append a float field (serialised via `Display`, `null` when not
    /// finite).
    pub fn push_f64(&mut self, key: impl Into<String>, value: f64) -> &mut Self {
        let json = if value.is_finite() {
            format!("{value}")
        } else {
            "null".to_owned()
        };
        self.push_raw(key, json)
    }

    /// Append a string field (escaped).
    pub fn push_str(&mut self, key: impl Into<String>, value: &str) -> &mut Self {
        self.push_raw(key, format!("\"{}\"", escape(value)))
    }

    /// Append a boolean field.
    pub fn push_bool(&mut self, key: impl Into<String>, value: bool) -> &mut Self {
        self.push_raw(key, value.to_string())
    }

    /// Append an exact ratio as `{"num":…,"den":…,"value":…}`.
    pub fn push_ratio(&mut self, key: impl Into<String>, num: u64, den: u64) -> &mut Self {
        #[allow(clippy::cast_precision_loss)]
        let value = if den == 0 {
            "null".to_owned()
        } else {
            format!("{}", num as f64 / den as f64)
        };
        self.push_raw(
            key,
            format!("{{\"num\":{num},\"den\":{den},\"value\":{value}}}"),
        )
    }

    /// Fold another report's fields into this one, each key prefixed
    /// with the other report's experiment name (`<name>.<key>`) so
    /// per-worker reports merge without colliding. Fields keep their
    /// order, so absorbing worker reports in input order produces the
    /// same document for every worker count — the determinism contract
    /// the parallel sweep executor relies on.
    pub fn absorb(&mut self, other: &Report) -> &mut Self {
        for (key, json) in &other.fields {
            self.fields
                .push((format!("{}.{key}", other.experiment), json.clone()));
        }
        self
    }

    /// Serialise the report (pretty-printed, one field per line).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {SCHEMA_VERSION},");
        let _ = write!(out, "  \"experiment\": \"{}\"", escape(&self.experiment));
        for (key, json) in &self.fields {
            let _ = write!(out, ",\n  \"{}\": {}", escape(key), json);
        }
        out.push_str("\n}\n");
        out
    }

    /// Write the report to `dir/<experiment>.json`, creating `dir` as
    /// needed, and return the path written.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation and file-write errors.
    pub fn write_to(&self, dir: impl AsRef<Path>) -> io::Result<PathBuf> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.experiment));
        fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// One live progress sample from a long-running sweep or measurement.
///
/// The identity of a sample is `(experiment, topology)`; sinks that
/// retain state (like [`PromFileProgress`]) keep the latest sample per
/// identity so a dashboard shows every in-flight unit of work.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgressSnapshot {
    /// Publishing experiment (e.g. `exp_batch_sweep`).
    pub experiment: String,
    /// Work unit within the experiment (topology name, width tag…).
    pub topology: String,
    /// Total SWAR lanes being measured.
    pub lanes: u64,
    /// Lanes whose exact periodicity has been found so far.
    pub lanes_converged: u64,
    /// Simulated cycles executed so far for this unit.
    pub cycles_executed: u64,
    /// Simulated cycles per wall-clock second (smoothed over the run).
    pub cycles_per_sec: f64,
    /// Throughput-cache hits observed by the publisher.
    pub cache_hits: u64,
    /// Throughput-cache misses observed by the publisher.
    pub cache_misses: u64,
    /// Wall-clock nanoseconds since the publisher started this unit.
    pub elapsed_ns: u64,
}

impl ProgressSnapshot {
    /// Render as Prometheus text-exposition lines (no trailing
    /// `# EOF`; callers concatenate snapshots into one document).
    #[must_use]
    pub fn prometheus_text(&self) -> String {
        let labels = format!(
            "{{experiment=\"{}\",topology=\"{}\"}}",
            escape(&self.experiment),
            escape(&self.topology)
        );
        let mut out = String::new();
        let _ = writeln!(out, "lip_lanes{labels} {}", self.lanes);
        let _ = writeln!(out, "lip_lanes_converged{labels} {}", self.lanes_converged);
        let _ = writeln!(out, "lip_cycles_executed{labels} {}", self.cycles_executed);
        let _ = writeln!(out, "lip_cycles_per_sec{labels} {}", self.cycles_per_sec);
        let _ = writeln!(out, "lip_cache_hits{labels} {}", self.cache_hits);
        let _ = writeln!(out, "lip_cache_misses{labels} {}", self.cache_misses);
        #[allow(clippy::cast_precision_loss)]
        let secs = self.elapsed_ns as f64 / 1e9;
        let _ = writeln!(out, "lip_elapsed_seconds{labels} {secs}");
        out
    }
}

/// Where long-running sweeps publish [`ProgressSnapshot`]s.
///
/// Mirrors [`Probe`](crate::Probe): `ENABLED = false` on
/// [`NullProgress`] lets generic measurement loops compile publishing
/// away entirely.
pub trait ProgressSink {
    /// `false` only for [`NullProgress`].
    const ENABLED: bool = true;

    /// Receive one snapshot. Publishers send at a coarse cadence
    /// (every ~1024 simulated cycles and at completion), so sinks may
    /// do I/O here.
    fn publish(&mut self, snap: &ProgressSnapshot);
}

/// The progress sink that publishes nowhere at zero cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProgress;

impl ProgressSink for NullProgress {
    const ENABLED: bool = false;

    #[inline(always)]
    fn publish(&mut self, _snap: &ProgressSnapshot) {}
}

/// Retains every published snapshot in memory (tests, dashboards).
#[derive(Debug, Clone, Default)]
pub struct MemoryProgress {
    /// All snapshots, in publish order.
    pub snaps: Vec<ProgressSnapshot>,
}

impl MemoryProgress {
    /// An empty in-memory sink.
    #[must_use]
    pub fn new() -> Self {
        MemoryProgress::default()
    }

    /// The latest snapshot for `topology`, if any.
    #[must_use]
    pub fn latest(&self, topology: &str) -> Option<&ProgressSnapshot> {
        self.snaps.iter().rev().find(|s| s.topology == topology)
    }
}

impl ProgressSink for MemoryProgress {
    fn publish(&mut self, snap: &ProgressSnapshot) {
        self.snaps.push(snap.clone());
    }
}

/// Publishes the latest snapshot per `(experiment, topology)` as a
/// Prometheus-style text file, rewritten atomically (temp file +
/// rename) on every publish so readers — the `lip-top` dashboard, a
/// future sweep service scraper — never observe a torn document.
#[derive(Debug)]
pub struct PromFileProgress {
    path: PathBuf,
    latest: Vec<ProgressSnapshot>,
    error: Option<io::Error>,
}

impl PromFileProgress {
    /// Expose progress at `path` (parent directories are created on
    /// first publish).
    #[must_use]
    pub fn new(path: impl Into<PathBuf>) -> Self {
        PromFileProgress {
            path: path.into(),
            latest: Vec::new(),
            error: None,
        }
    }

    /// The first I/O error hit, if any (publishing continues in
    /// memory; the file simply stops updating).
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }

    /// The full text-exposition document for the current state.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::from(
            "# lip runtime progress (Prometheus text exposition)\n\
             # one block per (experiment, topology); latest sample wins\n",
        );
        for snap in &self.latest {
            out.push_str(&snap.prometheus_text());
        }
        out
    }

    fn write_atomic(&mut self) {
        let text = self.to_text();
        let tmp = self.path.with_extension("prom.tmp");
        let res = self
            .path
            .parent()
            .map_or(Ok(()), fs::create_dir_all)
            .and_then(|()| fs::write(&tmp, &text))
            .and_then(|()| fs::rename(&tmp, &self.path));
        if let Err(e) = res {
            if self.error.is_none() {
                self.error = Some(e);
            }
        }
    }
}

impl ProgressSink for PromFileProgress {
    fn publish(&mut self, snap: &ProgressSnapshot) {
        if let Some(slot) = self
            .latest
            .iter_mut()
            .find(|s| s.experiment == snap.experiment && s.topology == snap.topology)
        {
            *slot = snap.clone();
        } else {
            self.latest.push(snap.clone());
        }
        self.write_atomic();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rolling_throughput_window_slides() {
        let mut r = RollingThroughput::new(4);
        assert_eq!(r.value(), None);
        for consumed in [1, 1, 1, 0] {
            r.push(consumed);
        }
        assert!(r.warm());
        assert_eq!(r.rate(), (3, 4));
        r.push(1); // evicts the first 1: window is now 1,1,0,1
        assert_eq!(r.rate(), (3, 4));
        assert_eq!(r.value(), Some(0.75));
    }

    #[test]
    fn transient_detector_finds_fig1_settling() {
        // Fig. 1 at the sink: informative for the first 4 cycles, then a
        // void every 5th — steady pattern 1,1,1,1,0 from the start after
        // a 2-cycle all-void pipeline-fill transient.
        let mut d = TransientDetector::new(4, 5);
        let mut pattern = vec![false, false];
        for _ in 0..6 {
            pattern.extend([true, true, true, true, false]);
        }
        for &b in &pattern {
            d.push(b);
        }
        // Only the window containing both leading voids (start 0) sums
        // to 3; from cycle 1 on, every 5-cycle window carries exactly 4
        // informative tokens.
        assert_eq!(d.transient(), Some(1));
        assert_eq!(d.target(), (4, 5));
    }

    #[test]
    fn transient_is_zero_for_immediately_steady_stream() {
        let mut d = TransientDetector::new(1, 2);
        for i in 0..10 {
            d.push(i % 2 == 0);
        }
        assert_eq!(d.transient(), Some(0));
    }

    #[test]
    fn transient_is_none_before_or_without_settling() {
        let mut d = TransientDetector::new(1, 4);
        d.push(true);
        assert_eq!(d.transient(), None); // not a full window yet
        for _ in 0..8 {
            d.push(true); // rate 1 ≠ 1/4: never settles
        }
        assert_eq!(d.transient(), None);
        assert_eq!(d.measured(), (9, 9));
    }

    #[test]
    fn report_serialises_versioned_fields_in_order() {
        let mut r = Report::new("unit_test");
        r.push_int("cycles", 100)
            .push_ratio("throughput", 4, 5)
            .push_str("note", "a \"quoted\" line")
            .push_bool("ok", true)
            .push_raw("nested", "{\"x\":1}");
        let j = r.to_json();
        assert!(j.starts_with("{\n  \"schema_version\": 2,\n  \"experiment\": \"unit_test\""));
        assert!(j.contains("\"throughput\": {\"num\":4,\"den\":5,\"value\":0.8}"));
        assert!(j.contains("\"note\": \"a \\\"quoted\\\" line\""));
        let cy = j.find("\"cycles\"").unwrap();
        let ok = j.find("\"ok\"").unwrap();
        assert!(cy < ok, "insertion order preserved");
    }

    #[test]
    fn absorb_prefixes_and_preserves_order() {
        let mut main = Report::new("sweep");
        main.push_int("threads", 4);
        let mut w0 = Report::new("worker0");
        w0.push_int("cycles", 10).push_bool("ok", true);
        let mut w1 = Report::new("worker1");
        w1.push_int("cycles", 20);
        main.absorb(&w0).absorb(&w1);
        let j = main.to_json();
        assert!(j.contains("\"worker0.cycles\": 10"));
        assert!(j.contains("\"worker0.ok\": true"));
        assert!(j.contains("\"worker1.cycles\": 20"));
        let a = j.find("worker0.cycles").unwrap();
        let b = j.find("worker1.cycles").unwrap();
        assert!(a < b, "absorb order preserved");
    }

    #[test]
    fn report_write_creates_directory_and_file() {
        let dir = std::env::temp_dir().join("lip_obs_report_test");
        let _ = fs::remove_dir_all(&dir);
        let mut r = Report::new("smoke");
        r.push_int("n", 1);
        let path = r.write_to(&dir).unwrap();
        let body = fs::read_to_string(&path).unwrap();
        assert!(body.contains("\"schema_version\": 2"));
        let _ = fs::remove_dir_all(&dir);
    }

    fn snap(topology: &str, converged: u64) -> ProgressSnapshot {
        ProgressSnapshot {
            experiment: "exp_test".to_owned(),
            topology: topology.to_owned(),
            lanes: 64,
            lanes_converged: converged,
            cycles_executed: 1024,
            cycles_per_sec: 5e8,
            cache_hits: 3,
            cache_misses: 1,
            elapsed_ns: 2_000_000_000,
        }
    }

    #[test]
    fn progress_snapshot_renders_prometheus_lines() {
        let text = snap("fig1", 60).prometheus_text();
        assert!(text.contains("lip_lanes{experiment=\"exp_test\",topology=\"fig1\"} 64"));
        assert!(text.contains("lip_lanes_converged{experiment=\"exp_test\",topology=\"fig1\"} 60"));
        assert!(text.contains("lip_elapsed_seconds{experiment=\"exp_test\",topology=\"fig1\"} 2"));
        // Every line is `name{labels} value`.
        for line in text.lines() {
            assert!(line.starts_with("lip_"), "unexpected line {line:?}");
            assert_eq!(line.matches(' ').count(), 1);
        }
    }

    #[test]
    fn memory_progress_retains_in_order() {
        let mut m = MemoryProgress::new();
        m.publish(&snap("fig1", 10));
        m.publish(&snap("fig1", 40));
        m.publish(&snap("ring", 64));
        assert_eq!(m.snaps.len(), 3);
        assert_eq!(m.latest("fig1").unwrap().lanes_converged, 40);
        assert!(m.latest("absent").is_none());
    }

    #[test]
    fn prom_file_progress_keeps_latest_per_unit_and_writes_atomically() {
        let dir = std::env::temp_dir().join("lip_obs_prom_test");
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("progress.prom");
        let mut p = PromFileProgress::new(&path);
        p.publish(&snap("fig1", 10));
        p.publish(&snap("ring", 5));
        p.publish(&snap("fig1", 64)); // replaces the fig1 row
        assert!(p.take_error().is_none());
        let body = fs::read_to_string(&path).unwrap();
        assert!(body.contains("lip_lanes_converged{experiment=\"exp_test\",topology=\"fig1\"} 64"));
        assert!(!body.contains("lip_lanes_converged{experiment=\"exp_test\",topology=\"fig1\"} 10"));
        assert!(body.contains("topology=\"ring\"}"));
        // The temp file was renamed away, not left behind.
        assert!(!path.with_extension("prom.tmp").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn null_progress_is_inert() {
        const { assert!(!NullProgress::ENABLED) };
        NullProgress.publish(&snap("fig1", 0));
    }
}
