//! Structured cycle events: the one vocabulary every engine speaks.
//!
//! The scalar skeleton, the many-lane batch engine and the
//! RTL-on-kernel path all describe protocol activity with the same
//! eight [`EventKind`]s.
//! An [`Event`] stamps a kind with the cycle it happened in, the entity
//! it happened to (a channel, shell or relay row — see the kind's
//! documentation) and, for the batch engine, the lane it happened in.
//! Events flow into an [`EventSink`](crate::sink::EventSink) — ring
//! buffer, JSONL, or the kernel's VCD `Trace` — so waveforms and
//! skeleton telemetry share one pipeline.

use std::fmt;

/// What happened. The `entity` field of an [`Event`] is interpreted per
/// kind, as documented on each variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A shell fired (consumed one token per input, produced one per
    /// output). `entity` = shell row (compiled table order).
    Fire,
    /// A channel's settled stop bit was asserted this cycle — someone
    /// upstream must hold. `entity` = channel id.
    Stall,
    /// A sink consumed a void token — the observable throughput loss of
    /// the paper's Fig. 1 ("the output utters an invalid datum every 5
    /// cycles"). `entity` = the sink's input channel id.
    VoidIn,
    /// The refined protocol variant discarded a stop that arrived
    /// against a void output register (the paper's §refinement: stalling
    /// a void costs nothing, so the stop is not propagated).
    /// `entity` = channel id whose stop was suppressed.
    VoidDiscard,
    /// A relay station's occupancy increased. `entity` = relay row
    /// (full relays first, then half, then FIFO, each in table order).
    RelayFill,
    /// A relay station's occupancy decreased. `entity` = relay row.
    RelayDrain,
    /// A channel's settled valid bit was low this cycle — it carried a
    /// void token. `entity` = channel id. Streamed since schema
    /// version 2 so post-hoc replay blame matches live blame.
    ChannelVoid,
    /// A sink consumed an informative token. `entity` = the sink's
    /// input channel id. Streamed since schema version 2 (the
    /// throughput numerator, previously counter-only).
    Consume,
}

impl EventKind {
    /// Stable lowercase name used in JSONL output and VCD signal names.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EventKind::Fire => "fire",
            EventKind::Stall => "stall",
            EventKind::VoidIn => "void_in",
            EventKind::VoidDiscard => "void_discard",
            EventKind::RelayFill => "relay_fill",
            EventKind::RelayDrain => "relay_drain",
            EventKind::ChannelVoid => "channel_void",
            EventKind::Consume => "consume",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One cycle event: at `cycle`, `kind` happened to `entity` in `lane`.
///
/// Scalar engines always report lane 0; the batch engine reports the
/// lane the event occurred in (`0..lanes`, up to 1024 with the widest
/// lane word).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Cycle the event occurred in (pre-clock-edge numbering — the same
    /// cycle the engines' `cycle()` reported while settling it).
    pub cycle: u64,
    /// What happened.
    pub kind: EventKind,
    /// Which channel / shell / relay it happened to (see [`EventKind`]).
    pub entity: u32,
    /// Which batch lane it happened in (0 for scalar engines; `u16`
    /// because the widest batch engine runs 1024 lanes).
    pub lane: u16,
}

impl Event {
    /// Construct an event.
    #[must_use]
    pub fn new(cycle: u64, kind: EventKind, entity: u32, lane: u16) -> Self {
        Event {
            cycle,
            kind,
            entity,
            lane,
        }
    }

    /// The event as one JSON object (no trailing newline) — the JSONL
    /// record format of [`JsonlSink`](crate::sink::JsonlSink).
    #[must_use]
    pub fn to_json(&self) -> String {
        format!(
            "{{\"cycle\":{},\"kind\":\"{}\",\"entity\":{},\"lane\":{}}}",
            self.cycle,
            self.kind.name(),
            self.entity,
            self.lane
        )
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "@{} {} entity={} lane={}",
            self.cycle, self.kind, self.entity, self.lane
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_record_is_stable() {
        let ev = Event::new(17, EventKind::VoidIn, 3, 5);
        assert_eq!(
            ev.to_json(),
            "{\"cycle\":17,\"kind\":\"void_in\",\"entity\":3,\"lane\":5}"
        );
    }

    #[test]
    fn kind_names_are_unique() {
        let kinds = [
            EventKind::Fire,
            EventKind::Stall,
            EventKind::VoidIn,
            EventKind::VoidDiscard,
            EventKind::RelayFill,
            EventKind::RelayDrain,
            EventKind::ChannelVoid,
            EventKind::Consume,
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }
}
