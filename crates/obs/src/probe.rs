//! The [`Probe`] trait: the zero-cost instrumentation seam of every
//! engine.
//!
//! Engines take a `&mut P: Probe` in their `*_probed` entry points and
//! invoke its hooks from the settle/clock loop, always guarded by
//! `P::ENABLED`. With [`NullProbe`] every hook is an empty `#[inline]`
//! function and `ENABLED` is `false`, so monomorphisation deletes both
//! the calls *and* the work of computing their arguments — the unprobed
//! fast path compiles to exactly the code it was before observability
//! existed. That is the layer's zero-overhead guarantee; the
//! lane-equivalence and batch-sweep suites run both ways to hold it.
//!
//! The `*_mask` hooks carry one full lane word as a slice of `u64`
//! sub-words: bit `l` of `masks[w]` means "this happened in lane
//! `64·w + l`". A 64-lane engine passes a single-element slice; the
//! widest (1024-lane) engine passes sixteen words. Probes that only
//! count override them with popcounts, so counting any width costs
//! O(words) word ops.
//!
//! Two probe families ship in this crate:
//!
//! * [`MetricsRegistry`](crate::metrics::MetricsRegistry) — counters and
//!   occupancy histograms, overriding the `*_mask` hooks with popcounts
//!   so lane-word counting costs O(words);
//! * [`EventStreamProbe`] — forwards every event to an
//!   [`EventSink`] (ring buffer, JSONL, VCD).
//!
//! Compose them with [`Tee`].

use crate::event::{Event, EventKind};
use crate::sink::EventSink;

/// Call `f(lane)` for every set bit of the single word `mask` (bit `l`
/// = lane `l`).
#[inline]
pub fn for_each_lane(mut mask: u64, mut f: impl FnMut(u16)) {
    while mask != 0 {
        let lane = mask.trailing_zeros() as u16;
        f(lane);
        mask &= mask - 1;
    }
}

/// Call `f(lane)` for every set bit of a multi-word lane mask: bit `l`
/// of `masks[w]` is lane `64·w + l`.
#[inline]
pub fn for_each_lane_word(masks: &[u64], mut f: impl FnMut(u16)) {
    for (w, &mask) in masks.iter().enumerate() {
        let base = (w * 64) as u16;
        for_each_lane(mask, |l| f(base + l));
    }
}

/// Total set lanes of a multi-word lane mask.
#[inline]
#[must_use]
pub fn mask_count(masks: &[u64]) -> u64 {
    masks.iter().map(|m| u64::from(m.count_ones())).sum()
}

/// `true` if `lane` is set in a multi-word lane mask.
#[inline]
#[must_use]
pub fn mask_lane(masks: &[u64], lane: u16) -> bool {
    let w = usize::from(lane) / 64;
    w < masks.len() && masks[w] >> (usize::from(lane) % 64) & 1 == 1
}

/// Observation hooks invoked by the engines' probed settle/clock loops.
///
/// Every hook has a default implementation, so a probe only overrides
/// what it cares about. The scalar hooks take a `lane` (0 for scalar
/// engines); the `*_mask` variants are the batch engine's word-wide
/// form — bit `l` of `masks[w]` means "this happened in lane
/// `64·w + l`" — and default to decomposing the words into per-lane
/// scalar calls.
///
/// `cycle` is always the cycle being settled/clocked (the value the
/// engine's `cycle()` returned before the step).
pub trait Probe {
    /// `false` only for [`NullProbe`]-like probes: engines guard every
    /// hook invocation (and the computation of its arguments) with this
    /// constant, so disabled probes cost literally nothing.
    const ENABLED: bool = true;

    /// Receive one structured event. The event-mapped hooks below
    /// funnel here by default, so a sink-style probe only implements
    /// this.
    fn event(&mut self, ev: Event);

    /// The engine finished clocking `cycle` (called once per step, after
    /// every event of that cycle).
    #[inline]
    fn end_cycle(&mut self, _cycle: u64) {}

    /// Shell `shell` fired. Maps to [`EventKind::Fire`].
    #[inline]
    fn fire(&mut self, cycle: u64, shell: u32, lane: u16) {
        self.event(Event::new(cycle, EventKind::Fire, shell, lane));
    }

    /// Channel `ch`'s settled stop bit was asserted. Maps to
    /// [`EventKind::Stall`].
    #[inline]
    fn stall(&mut self, cycle: u64, ch: u32, lane: u16) {
        self.event(Event::new(cycle, EventKind::Stall, ch, lane));
    }

    /// Channel `ch` carried a void this cycle (settled valid bit low).
    /// Maps to [`EventKind::ChannelVoid`] since schema version 2, so a
    /// recorded stream replays into the same blame a live attachment
    /// produces.
    #[inline]
    fn channel_void(&mut self, cycle: u64, ch: u32, lane: u16) {
        self.event(Event::new(cycle, EventKind::ChannelVoid, ch, lane));
    }

    /// A sink consumed an informative token from its input channel
    /// `ch` (the throughput numerator). Maps to [`EventKind::Consume`]
    /// since schema version 2.
    #[inline]
    fn consume(&mut self, cycle: u64, ch: u32, lane: u16) {
        self.event(Event::new(cycle, EventKind::Consume, ch, lane));
    }

    /// A sink consumed a void token from channel `ch`. Maps to
    /// [`EventKind::VoidIn`].
    #[inline]
    fn void_in(&mut self, cycle: u64, ch: u32, lane: u16) {
        self.event(Event::new(cycle, EventKind::VoidIn, ch, lane));
    }

    /// The refined variant suppressed a stop against a void on channel
    /// `ch`. Maps to [`EventKind::VoidDiscard`].
    #[inline]
    fn void_discard(&mut self, cycle: u64, ch: u32, lane: u16) {
        self.event(Event::new(cycle, EventKind::VoidDiscard, ch, lane));
    }

    /// Relay row `relay` gained a token. Maps to
    /// [`EventKind::RelayFill`].
    #[inline]
    fn relay_fill(&mut self, cycle: u64, relay: u32, lane: u16) {
        self.event(Event::new(cycle, EventKind::RelayFill, relay, lane));
    }

    /// Relay row `relay` released a token. Maps to
    /// [`EventKind::RelayDrain`].
    #[inline]
    fn relay_drain(&mut self, cycle: u64, relay: u32, lane: u16) {
        self.event(Event::new(cycle, EventKind::RelayDrain, relay, lane));
    }

    /// Word-wide [`Probe::fire`].
    #[inline]
    fn fire_mask(&mut self, cycle: u64, shell: u32, masks: &[u64]) {
        for_each_lane_word(masks, |l| self.fire(cycle, shell, l));
    }

    /// Word-wide [`Probe::stall`].
    #[inline]
    fn stall_mask(&mut self, cycle: u64, ch: u32, masks: &[u64]) {
        for_each_lane_word(masks, |l| self.stall(cycle, ch, l));
    }

    /// Word-wide [`Probe::channel_void`].
    #[inline]
    fn channel_void_mask(&mut self, cycle: u64, ch: u32, masks: &[u64]) {
        for_each_lane_word(masks, |l| self.channel_void(cycle, ch, l));
    }

    /// Word-wide [`Probe::consume`].
    #[inline]
    fn consume_mask(&mut self, cycle: u64, ch: u32, masks: &[u64]) {
        for_each_lane_word(masks, |l| self.consume(cycle, ch, l));
    }

    /// Word-wide [`Probe::void_in`].
    #[inline]
    fn void_in_mask(&mut self, cycle: u64, ch: u32, masks: &[u64]) {
        for_each_lane_word(masks, |l| self.void_in(cycle, ch, l));
    }

    /// Word-wide [`Probe::void_discard`].
    #[inline]
    fn void_discard_mask(&mut self, cycle: u64, ch: u32, masks: &[u64]) {
        for_each_lane_word(masks, |l| self.void_discard(cycle, ch, l));
    }

    /// Word-wide [`Probe::relay_fill`].
    #[inline]
    fn relay_fill_mask(&mut self, cycle: u64, relay: u32, masks: &[u64]) {
        for_each_lane_word(masks, |l| self.relay_fill(cycle, relay, l));
    }

    /// Word-wide [`Probe::relay_drain`].
    #[inline]
    fn relay_drain_mask(&mut self, cycle: u64, relay: u32, masks: &[u64]) {
        for_each_lane_word(masks, |l| self.relay_drain(cycle, relay, l));
    }
}

/// The probe that observes nothing, at no cost.
///
/// `ENABLED = false` lets the engines skip the hook guard entirely, so
/// `step()` (which delegates to `step_probed(&mut NullProbe)`)
/// monomorphizes to the uninstrumented loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {
    const ENABLED: bool = false;

    #[inline]
    fn event(&mut self, _ev: Event) {}
}

impl<P: Probe + ?Sized> Probe for &mut P {
    const ENABLED: bool = P::ENABLED;

    #[inline]
    fn event(&mut self, ev: Event) {
        (**self).event(ev);
    }

    #[inline]
    fn end_cycle(&mut self, cycle: u64) {
        (**self).end_cycle(cycle);
    }

    #[inline]
    fn fire_mask(&mut self, cycle: u64, shell: u32, masks: &[u64]) {
        (**self).fire_mask(cycle, shell, masks);
    }

    #[inline]
    fn stall_mask(&mut self, cycle: u64, ch: u32, masks: &[u64]) {
        (**self).stall_mask(cycle, ch, masks);
    }

    #[inline]
    fn channel_void_mask(&mut self, cycle: u64, ch: u32, masks: &[u64]) {
        (**self).channel_void_mask(cycle, ch, masks);
    }

    #[inline]
    fn consume_mask(&mut self, cycle: u64, ch: u32, masks: &[u64]) {
        (**self).consume_mask(cycle, ch, masks);
    }

    #[inline]
    fn void_in_mask(&mut self, cycle: u64, ch: u32, masks: &[u64]) {
        (**self).void_in_mask(cycle, ch, masks);
    }

    #[inline]
    fn void_discard_mask(&mut self, cycle: u64, ch: u32, masks: &[u64]) {
        (**self).void_discard_mask(cycle, ch, masks);
    }

    #[inline]
    fn relay_fill_mask(&mut self, cycle: u64, relay: u32, masks: &[u64]) {
        (**self).relay_fill_mask(cycle, relay, masks);
    }

    #[inline]
    fn relay_drain_mask(&mut self, cycle: u64, relay: u32, masks: &[u64]) {
        (**self).relay_drain_mask(cycle, relay, masks);
    }

    #[inline]
    fn fire(&mut self, cycle: u64, shell: u32, lane: u16) {
        (**self).fire(cycle, shell, lane);
    }

    #[inline]
    fn stall(&mut self, cycle: u64, ch: u32, lane: u16) {
        (**self).stall(cycle, ch, lane);
    }

    #[inline]
    fn channel_void(&mut self, cycle: u64, ch: u32, lane: u16) {
        (**self).channel_void(cycle, ch, lane);
    }

    #[inline]
    fn consume(&mut self, cycle: u64, ch: u32, lane: u16) {
        (**self).consume(cycle, ch, lane);
    }

    #[inline]
    fn void_in(&mut self, cycle: u64, ch: u32, lane: u16) {
        (**self).void_in(cycle, ch, lane);
    }

    #[inline]
    fn void_discard(&mut self, cycle: u64, ch: u32, lane: u16) {
        (**self).void_discard(cycle, ch, lane);
    }

    #[inline]
    fn relay_fill(&mut self, cycle: u64, relay: u32, lane: u16) {
        (**self).relay_fill(cycle, relay, lane);
    }

    #[inline]
    fn relay_drain(&mut self, cycle: u64, relay: u32, lane: u16) {
        (**self).relay_drain(cycle, relay, lane);
    }
}

/// Run two probes side by side (e.g. counters *and* an event stream).
///
/// Enabled iff either side is; hooks fan out to both.
#[derive(Debug, Clone, Default)]
pub struct Tee<A, B>(pub A, pub B);

macro_rules! tee_scalar {
    ($name:ident, $($arg:ident : $ty:ty),*) => {
        #[inline]
        fn $name(&mut self, $($arg: $ty),*) {
            self.0.$name($($arg),*);
            self.1.$name($($arg),*);
        }
    };
}

impl<A: Probe, B: Probe> Probe for Tee<A, B> {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    #[inline]
    fn event(&mut self, ev: Event) {
        self.0.event(ev);
        self.1.event(ev);
    }

    tee_scalar!(end_cycle, cycle: u64);
    tee_scalar!(fire, cycle: u64, shell: u32, lane: u16);
    tee_scalar!(stall, cycle: u64, ch: u32, lane: u16);
    tee_scalar!(channel_void, cycle: u64, ch: u32, lane: u16);
    tee_scalar!(consume, cycle: u64, ch: u32, lane: u16);
    tee_scalar!(void_in, cycle: u64, ch: u32, lane: u16);
    tee_scalar!(void_discard, cycle: u64, ch: u32, lane: u16);
    tee_scalar!(relay_fill, cycle: u64, relay: u32, lane: u16);
    tee_scalar!(relay_drain, cycle: u64, relay: u32, lane: u16);
    tee_scalar!(fire_mask, cycle: u64, shell: u32, masks: &[u64]);
    tee_scalar!(stall_mask, cycle: u64, ch: u32, masks: &[u64]);
    tee_scalar!(channel_void_mask, cycle: u64, ch: u32, masks: &[u64]);
    tee_scalar!(consume_mask, cycle: u64, ch: u32, masks: &[u64]);
    tee_scalar!(void_in_mask, cycle: u64, ch: u32, masks: &[u64]);
    tee_scalar!(void_discard_mask, cycle: u64, ch: u32, masks: &[u64]);
    tee_scalar!(relay_fill_mask, cycle: u64, relay: u32, masks: &[u64]);
    tee_scalar!(relay_drain_mask, cycle: u64, relay: u32, masks: &[u64]);
}

/// Forward every event to an [`EventSink`], propagating cycle
/// boundaries.
#[derive(Debug)]
pub struct EventStreamProbe<S: EventSink> {
    sink: S,
}

impl<S: EventSink> EventStreamProbe<S> {
    /// Stream into `sink`.
    pub fn new(sink: S) -> Self {
        EventStreamProbe { sink }
    }

    /// The sink, for reading results back.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Mutable access to the sink.
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Flush and return the sink.
    pub fn into_sink(mut self) -> S {
        self.sink.flush();
        self.sink
    }
}

impl<S: EventSink> Probe for EventStreamProbe<S> {
    #[inline]
    fn event(&mut self, ev: Event) {
        self.sink.accept(&ev);
    }

    #[inline]
    fn end_cycle(&mut self, cycle: u64) {
        self.sink.end_cycle(cycle);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct CountingProbe {
        events: Vec<Event>,
        cycles_ended: u64,
    }

    impl Probe for CountingProbe {
        fn event(&mut self, ev: Event) {
            self.events.push(ev);
        }

        fn end_cycle(&mut self, _cycle: u64) {
            self.cycles_ended += 1;
        }
    }

    #[test]
    fn mask_hooks_decompose_into_lanes() {
        let mut p = CountingProbe::default();
        p.fire_mask(9, 2, &[0b1010_0001]);
        let lanes: Vec<u16> = p.events.iter().map(|e| e.lane).collect();
        assert_eq!(lanes, vec![0, 5, 7]);
        assert!(p
            .events
            .iter()
            .all(|e| e.kind == EventKind::Fire && e.entity == 2 && e.cycle == 9));
    }

    #[test]
    fn multi_word_masks_offset_lanes_by_word() {
        let mut p = CountingProbe::default();
        p.stall_mask(3, 7, &[0b1, 0b100, 0, 1 << 63]);
        let lanes: Vec<u16> = p.events.iter().map(|e| e.lane).collect();
        assert_eq!(lanes, vec![0, 66, 255]);
        assert_eq!(mask_count(&[0b1, 0b100, 0, 1 << 63]), 3);
        assert!(mask_lane(&[0b1, 0b100], 66));
        assert!(!mask_lane(&[0b1, 0b100], 67));
        assert!(!mask_lane(&[0b1], 1000), "out of range is unset");
    }

    #[test]
    fn channel_void_and_consume_default_to_events() {
        // Schema v2: the previously counter-only hooks now reach the
        // event stream, so replaying a recorded stream reproduces
        // void-side blame.
        let mut p = CountingProbe::default();
        p.channel_void(4, 2, 1);
        p.consume(4, 3, 0);
        p.consume_mask(5, 3, &[0b10]);
        assert_eq!(
            p.events,
            vec![
                Event::new(4, EventKind::ChannelVoid, 2, 1),
                Event::new(4, EventKind::Consume, 3, 0),
                Event::new(5, EventKind::Consume, 3, 1),
            ]
        );
    }

    #[test]
    fn null_probe_is_disabled() {
        const {
            assert!(!NullProbe::ENABLED);
            assert!(CountingProbe::ENABLED);
            // &mut P inherits the flag.
            assert!(!<&mut NullProbe as Probe>::ENABLED);
        }
    }

    #[test]
    fn tee_fans_out() {
        let mut tee = Tee(CountingProbe::default(), CountingProbe::default());
        tee.stall(1, 4, 0);
        tee.end_cycle(1);
        assert_eq!(tee.0.events.len(), 1);
        assert_eq!(tee.1.events.len(), 1);
        assert_eq!(tee.0.cycles_ended, 1);
        const { assert!(<Tee<CountingProbe, NullProbe> as Probe>::ENABLED) }
    }
}
