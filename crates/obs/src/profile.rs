//! Causal stall profiling: blame attribution and token-level latency
//! tracing.
//!
//! The counters in [`MetricsRegistry`](crate::metrics::MetricsRegistry)
//! say *that* shells stalled; this module says *why*. A
//! [`CausalProfiler`] is a heavyweight [`Probe`] that classifies every
//! stalled shell-cycle ([`StallCause`]), charges each lost cycle to the
//! channel endpoint that caused it, and tags tokens at the sources with
//! sequence ids so end-to-end latency and per-relay residency become
//! measurable. Its output is a versioned [`BlameReport`]
//! ([`BLAME_SCHEMA_VERSION`]).
//!
//! # Blame model
//!
//! Every settled cycle, each channel contributes at most two *blame
//! edges* over the [`ChannelGraph`]:
//!
//! * a **void** edge `consumer → producer` whenever the channel carries
//!   a void — the consumer lost the cycle because the producer had
//!   nothing informative to offer;
//! * a **stop** edge `producer → consumer` whenever the channel's stop
//!   bit is asserted — the producer lost the cycle because the consumer
//!   refused the token.
//!
//! The *blame* of an entity is the number of edges pointing at it. In a
//! periodic steady state the heaviest edges trace exactly the
//! throughput-binding loop of the marked-graph model (the void bubble
//! circulates forward along it, the backpressure backward), so the
//! greedy max-weight walk in [`BlameReport::top_cycle`] recovers the
//! same cycle `lip-lint`'s LIP005 predicts statically — the experiment
//! suite asserts this equivalence netlist by netlist.
//!
//! # Token tracing
//!
//! Sources tag emissions with sequence ids (the k-th emission is token
//! k). Latency-insensitive protocols preserve token order, so the k-th
//! informative token consumed by a sink is sequence-matched against the
//! k-th emission of each source that reaches it; the difference is the
//! *sequence latency* reported per source→sink pair (initial in-flight
//! reset tokens shift the matching by a constant — matches that would
//! be negative are skipped). Relay residency is recovered from
//! fill/drain order (relays are FIFOs), and per-relay occupancy
//! histograms are tracked from the same events.
//!
//! Unlike the zero-cost counting probes, a profiler retains spans and
//! per-endpoint cycle logs — memory grows with the observed window.
//! Profile bounded windows, or [`CausalProfiler::rebase`] after warmup
//! to restrict the window to the steady state.

use std::collections::VecDeque;
use std::fmt::Write as _;

use crate::event::{Event, EventKind};
use crate::probe::{mask_lane, Probe};
use crate::telemetry::escape;

/// Version of the [`BlameReport`] JSON layout. Re-exported from the
/// central [`crate::schema`] registry; bump it there.
pub const BLAME_SCHEMA_VERSION: u32 = crate::schema::BLAME;

/// A channel endpoint in the blame model: the protocol-visible entities
/// of the compiled netlist, in engine row numbering (relays full, then
/// half, then FIFO).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Entity {
    /// Shell row.
    Shell(u32),
    /// Relay row (full, then half, then FIFO numbering).
    Relay(u32),
    /// Source row.
    Source(u32),
    /// Sink row.
    Sink(u32),
}

impl Entity {
    /// Stable machine label, e.g. `"shell:2"` or `"relay:0"`.
    #[must_use]
    pub fn label(self) -> String {
        match self {
            Entity::Shell(i) => format!("shell:{i}"),
            Entity::Relay(i) => format!("relay:{i}"),
            Entity::Source(i) => format!("source:{i}"),
            Entity::Sink(i) => format!("sink:{i}"),
        }
    }
}

/// The channel-level wiring of a compiled netlist: who produces and who
/// consumes every channel, shell port geometry, relay rows, and the
/// mapping back to netlist node ids and display names.
///
/// Engines provide this next to [`Topology`](crate::Topology) (see
/// `SettleProgram::channel_graph` in `lip-sim`); the profiler only
/// needs the wiring, never the netlist itself, which keeps the
/// dependency graph acyclic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChannelGraph {
    /// Per channel: its producing entity.
    pub producer: Vec<Entity>,
    /// Per channel: its consuming entity.
    pub consumer: Vec<Entity>,
    /// Per source row: its single output channel.
    pub source_out: Vec<u32>,
    /// Per sink row: its single input channel.
    pub sink_in: Vec<u32>,
    /// Per relay row: its input channel.
    pub relay_in: Vec<u32>,
    /// Per relay row: its output channel.
    pub relay_out: Vec<u32>,
    /// Per relay row: its token capacity (2 full, 1 half, k FIFO).
    pub relay_capacity: Vec<u32>,
    /// Shell row → start of its input-channel run (`len = shells + 1`).
    pub shell_in_off: Vec<u32>,
    /// Flat input channels of all shells.
    pub shell_in_ch: Vec<u32>,
    /// Shell row → start of its output-channel run (`len = shells + 1`).
    pub shell_out_off: Vec<u32>,
    /// Flat output channels of all shells.
    pub shell_out_ch: Vec<u32>,
    /// Per dense entity id (see [`ChannelGraph::dense`]): netlist node
    /// id.
    pub nodes: Vec<u32>,
    /// Per dense entity id: display name from the netlist.
    pub names: Vec<String>,
}

impl ChannelGraph {
    /// Number of channels.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.producer.len()
    }

    /// Number of shell rows.
    #[must_use]
    pub fn shell_count(&self) -> usize {
        self.shell_in_off.len().saturating_sub(1)
    }

    /// Number of relay rows.
    #[must_use]
    pub fn relay_count(&self) -> usize {
        self.relay_in.len()
    }

    /// Number of sources.
    #[must_use]
    pub fn source_count(&self) -> usize {
        self.source_out.len()
    }

    /// Number of sinks.
    #[must_use]
    pub fn sink_count(&self) -> usize {
        self.sink_in.len()
    }

    /// Total entity count (shells + relays + sources + sinks).
    #[must_use]
    pub fn entity_count(&self) -> usize {
        self.shell_count() + self.relay_count() + self.source_count() + self.sink_count()
    }

    /// Dense id of `e`: shells first, then relays, sources, sinks —
    /// the index into [`ChannelGraph::nodes`] / [`ChannelGraph::names`].
    #[must_use]
    pub fn dense(&self, e: Entity) -> usize {
        match e {
            Entity::Shell(i) => i as usize,
            Entity::Relay(i) => self.shell_count() + i as usize,
            Entity::Source(i) => self.shell_count() + self.relay_count() + i as usize,
            Entity::Sink(i) => {
                self.shell_count() + self.relay_count() + self.source_count() + i as usize
            }
        }
    }

    /// Inverse of [`ChannelGraph::dense`].
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[must_use]
    pub fn entity(&self, id: usize) -> Entity {
        let (s, r, src) = (self.shell_count(), self.relay_count(), self.source_count());
        if id < s {
            Entity::Shell(id as u32)
        } else if id < s + r {
            Entity::Relay((id - s) as u32)
        } else if id < s + r + src {
            Entity::Source((id - s - r) as u32)
        } else {
            assert!(id < self.entity_count(), "entity id out of range");
            Entity::Sink((id - s - r - src) as u32)
        }
    }

    /// Display name of `e`.
    #[must_use]
    pub fn name(&self, e: Entity) -> &str {
        &self.names[self.dense(e)]
    }

    /// Netlist node id of `e`.
    #[must_use]
    pub fn node(&self, e: Entity) -> u32 {
        self.nodes[self.dense(e)]
    }

    /// Input channels of shell row `s`.
    #[must_use]
    pub fn shell_inputs(&self, s: usize) -> &[u32] {
        &self.shell_in_ch[self.shell_in_off[s] as usize..self.shell_in_off[s + 1] as usize]
    }

    /// Output channels of shell row `s`.
    #[must_use]
    pub fn shell_outputs(&self, s: usize) -> &[u32] {
        &self.shell_out_ch[self.shell_out_off[s] as usize..self.shell_out_off[s + 1] as usize]
    }

    /// `true` if tokens can flow from source row `i` to sink row `j`
    /// (forward reachability over the channel wiring).
    #[must_use]
    pub fn source_reaches_sink(&self, i: usize, j: usize) -> bool {
        let target = self.sink_in[j];
        let mut seen = vec![false; self.channel_count()];
        let mut queue = VecDeque::from([self.source_out[i]]);
        seen[self.source_out[i] as usize] = true;
        while let Some(ch) = queue.pop_front() {
            if ch == target {
                return true;
            }
            let outs: &[u32] = match self.consumer[ch as usize] {
                Entity::Shell(s) => self.shell_outputs(s as usize),
                Entity::Relay(r) => std::slice::from_ref(&self.relay_out[r as usize]),
                Entity::Sink(_) | Entity::Source(_) => &[],
            };
            for &o in outs {
                if !seen[o as usize] {
                    seen[o as usize] = true;
                    queue.push_back(o);
                }
            }
        }
        false
    }
}

/// Why a shell lost a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StallCause {
    /// Some input carried a void and no output was stopped.
    UpstreamVoid,
    /// Every input was informative but a stopped output blocked firing.
    DownstreamStop,
    /// Void inputs and stopped outputs at once.
    Both,
}

/// A histogram over small non-negative integer samples (latencies,
/// residencies), with exact percentiles.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
}

/// Largest representable histogram sample; larger values saturate into
/// the final bucket (keeps a corrupt sample from allocating unbounded
/// memory).
const HISTOGRAM_CLAMP: u64 = 1 << 24;

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        let v = usize::try_from(value.min(HISTOGRAM_CLAMP)).expect("clamped sample fits usize");
        if self.counts.len() <= v {
            self.counts.resize(v + 1, 0);
        }
        self.counts[v] += 1;
        self.total += 1;
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest recorded sample, `None` when empty.
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        self.counts.iter().rposition(|&c| c > 0).map(|v| v as u64)
    }

    /// Smallest value `v` such that at least `p`% of the samples are
    /// `<= v` (`p` in `0..=100`); `None` when empty.
    #[must_use]
    pub fn percentile(&self, p: u8) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let need = (self.total * u64::from(p.min(100))).div_ceil(100).max(1);
        let mut cum = 0u64;
        for (v, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= need {
                return Some(v as u64);
            }
        }
        self.max()
    }

    /// Fold another histogram into this one, bucket-wise. After the
    /// merge this histogram reports exactly the statistics it would
    /// have had if every sample of `other` had been [`record`]ed here
    /// directly — the differ uses this to combine per-run latency
    /// histograms before comparing percentiles.
    ///
    /// [`record`]: Histogram::record
    pub fn merge(&mut self, other: &Histogram) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, &src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.total += other.total;
    }

    /// `{"samples":…,"p50":…,"p95":…,"max":…}` (nulls when empty).
    #[must_use]
    pub fn summary_json(&self) -> String {
        let opt = |v: Option<u64>| v.map_or_else(|| "null".to_owned(), |v| v.to_string());
        format!(
            "{{\"samples\":{},\"p50\":{},\"p95\":{},\"max\":{}}}",
            self.total,
            opt(self.percentile(50)),
            opt(self.percentile(95)),
            opt(self.max())
        )
    }
}

/// One ranked entry of the blame profile.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlameEntry {
    /// The blamed entity.
    pub entity: Entity,
    /// Its netlist node id.
    pub node: u32,
    /// Its display name.
    pub name: String,
    /// Lane-cycles charged to it (incoming blame edges).
    pub blamed: u64,
}

/// An aggregated blame edge between two entities.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlameEdge {
    /// The losing entity.
    pub from: Entity,
    /// The entity it blames.
    pub to: Entity,
    /// Cycles blamed because a channel between them carried a void.
    pub void_weight: u64,
    /// Cycles blamed because a channel between them was stopped.
    pub stop_weight: u64,
}

impl BlameEdge {
    /// Combined weight of the edge.
    #[must_use]
    pub fn weight(&self) -> u64 {
        self.void_weight + self.stop_weight
    }
}

/// Sequence-latency statistics of one source→sink pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PairLatency {
    /// Source row.
    pub source: u32,
    /// Sink row.
    pub sink: u32,
    /// Latency histogram (cycles between the k-th emission and the k-th
    /// informative consumption).
    pub histogram: Histogram,
}

/// The profiler's versioned output document (JSON via
/// [`BlameReport::to_json`], `schema_version` =
/// [`BLAME_SCHEMA_VERSION`]).
#[derive(Debug, Clone)]
pub struct BlameReport {
    /// Cycles observed (after any [`CausalProfiler::rebase`]).
    pub cycles: u64,
    /// The batch lane observed (0 for scalar engines).
    pub lane: u16,
    /// Void tokens consumed by sinks — the lost cycles.
    pub lost_cycles: u64,
    /// Informative tokens consumed by sinks.
    pub consumed: u64,
    /// Shell-cycles that did not fire, by cause.
    pub upstream_void: u64,
    /// See [`StallCause::DownstreamStop`].
    pub downstream_stop: u64,
    /// See [`StallCause::Both`].
    pub both: u64,
    /// Per channel: cycles its stop bit was asserted (equals
    /// `MetricsRegistry::stalls` over the same window).
    pub channel_stalls: Vec<u64>,
    /// Per channel: cycles it carried a void (equals
    /// `MetricsRegistry::voids`).
    pub channel_voids: Vec<u64>,
    /// Blame profile, heaviest first (ties broken by dense entity id).
    pub entries: Vec<BlameEntry>,
    /// The dominant causal loop: greedy max-weight walk over the blame
    /// edges from the top-blamed entity. Empty when nothing is blamed
    /// or the walk dead-ends (feed-forward designs at full rate).
    pub top_cycle: Vec<Entity>,
    /// Aggregated non-zero blame edges, ordered by (from, to).
    pub edges: Vec<BlameEdge>,
    /// Sequence latency per reachable source→sink pair.
    pub latency: Vec<PairLatency>,
    /// Per relay row: residency histogram (cycles between fill and the
    /// matching drain).
    pub relay_residency: Vec<Histogram>,
    /// Per relay row: occupancy histogram (`[occ] = cycles spent at
    /// exactly `occ` tokens`).
    pub relay_occupancy: Vec<Vec<u64>>,
    /// Tokens emitted by sources in the observed window.
    pub tokens_emitted: u64,
    graph: ChannelGraph,
}

impl BlameReport {
    /// Total blame mass (sum over [`BlameReport::entries`]).
    #[must_use]
    pub fn total_blame(&self) -> u64 {
        self.entries.iter().map(|e| e.blamed).sum()
    }

    /// Blame charged to `e` (0 when absent from the profile).
    #[must_use]
    pub fn blame_of(&self, e: Entity) -> u64 {
        self.entries
            .iter()
            .find(|en| en.entity == e)
            .map_or(0, |en| en.blamed)
    }

    /// Blame charged to the entity mapped to netlist node `node`.
    #[must_use]
    pub fn blame_of_node(&self, node: u32) -> u64 {
        self.entries
            .iter()
            .filter(|en| en.node == node)
            .map(|en| en.blamed)
            .sum()
    }

    /// Netlist node ids of [`BlameReport::top_cycle`], sorted and
    /// deduplicated — the set to compare against a static bottleneck
    /// prediction.
    #[must_use]
    pub fn top_cycle_nodes(&self) -> Vec<u32> {
        let mut nodes: Vec<u32> = self.top_cycle.iter().map(|&e| self.graph.node(e)).collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }

    /// The wiring the report was built over.
    #[must_use]
    pub fn graph(&self) -> &ChannelGraph {
        &self.graph
    }

    /// Serialise as a versioned JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let g = &self.graph;
        let ent = |e: Entity| {
            format!(
                "{{\"entity\":\"{}\",\"name\":\"{}\",\"node\":{}}}",
                e.label(),
                escape(g.name(e)),
                g.node(e)
            )
        };
        let list = |v: &[u64]| {
            let items: Vec<String> = v.iter().map(u64::to_string).collect();
            format!("[{}]", items.join(","))
        };
        let total = self.total_blame();
        let entries: Vec<String> = self
            .entries
            .iter()
            .map(|e| {
                #[allow(clippy::cast_precision_loss)]
                let share = if total == 0 {
                    0.0
                } else {
                    e.blamed as f64 / total as f64
                };
                format!(
                    "{{\"entity\":\"{}\",\"name\":\"{}\",\"node\":{},\"blamed\":{},\"share\":{share}}}",
                    e.entity.label(),
                    escape(&e.name),
                    e.node,
                    e.blamed
                )
            })
            .collect();
        let cycle: Vec<String> = self.top_cycle.iter().map(|&e| ent(e)).collect();
        let edges: Vec<String> = self
            .edges
            .iter()
            .map(|e| {
                format!(
                    "{{\"from\":\"{}\",\"to\":\"{}\",\"void\":{},\"stop\":{}}}",
                    e.from.label(),
                    e.to.label(),
                    e.void_weight,
                    e.stop_weight
                )
            })
            .collect();
        let latency: Vec<String> = self
            .latency
            .iter()
            .map(|p| {
                format!(
                    "{{\"source\":\"{}\",\"sink\":\"{}\",\"latency\":{}}}",
                    escape(g.name(Entity::Source(p.source))),
                    escape(g.name(Entity::Sink(p.sink))),
                    p.histogram.summary_json()
                )
            })
            .collect();
        let relays: Vec<String> = (0..g.relay_count())
            .map(|r| {
                format!(
                    "{{\"entity\":\"relay:{r}\",\"name\":\"{}\",\"capacity\":{},\"residency\":{},\"occupancy\":{}}}",
                    escape(g.name(Entity::Relay(r as u32))),
                    g.relay_capacity[r],
                    self.relay_residency[r].summary_json(),
                    list(&self.relay_occupancy[r])
                )
            })
            .collect();
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"schema_version\": {BLAME_SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"kind\": \"blame_report\",");
        let _ = writeln!(out, "  \"cycles\": {},", self.cycles);
        let _ = writeln!(out, "  \"lane\": {},", self.lane);
        let _ = writeln!(out, "  \"lost_cycles\": {},", self.lost_cycles);
        let _ = writeln!(out, "  \"consumed\": {},", self.consumed);
        let _ = writeln!(
            out,
            "  \"classification\": {{\"upstream_void\":{},\"downstream_stop\":{},\"both\":{}}},",
            self.upstream_void, self.downstream_stop, self.both
        );
        let _ = writeln!(out, "  \"channel_stalls\": {},", list(&self.channel_stalls));
        let _ = writeln!(out, "  \"channel_voids\": {},", list(&self.channel_voids));
        let _ = writeln!(out, "  \"blame\": [{}],", entries.join(","));
        let _ = writeln!(out, "  \"top_cycle\": [{}],", cycle.join(","));
        let _ = writeln!(out, "  \"edges\": [{}],", edges.join(","));
        let _ = writeln!(out, "  \"latency\": [{}],", latency.join(","));
        let _ = writeln!(out, "  \"relays\": [{}],", relays.join(","));
        let _ = writeln!(out, "  \"tokens_emitted\": {}", self.tokens_emitted);
        out.push_str("}\n");
        out
    }
}

/// Matched relay residency: a token entered `relay` at `enter` and left
/// at `exit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HopSpan {
    /// Relay row.
    pub relay: u32,
    /// Fill cycle.
    pub enter: u64,
    /// Drain cycle.
    pub exit: u64,
}

/// A closed interval of consecutive cycles a shell did not fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallSpan {
    /// Shell row.
    pub shell: u32,
    /// First stalled cycle.
    pub start: u64,
    /// One past the last stalled cycle.
    pub end: u64,
}

/// The causal profiling probe (see the [module docs](self)).
///
/// Observes exactly one lane: lane 0 by default (the scalar engines),
/// or any batch lane via [`CausalProfiler::for_lane`] — the `*_mask`
/// hooks filter the configured lane's bit, so attaching the profiler to
/// a many-lane run profiles that lane alone.
#[derive(Debug, Clone)]
pub struct CausalProfiler {
    graph: ChannelGraph,
    lane: u16,
    cycles: u64,
    // Per-cycle scratch, cleared at end_cycle.
    cur_stall: Vec<bool>,
    cur_void: Vec<bool>,
    cur_fired: Vec<bool>,
    // Persistent counters.
    channel_stalls: Vec<u64>,
    channel_voids: Vec<u64>,
    lost_cycles: u64,
    consumed: u64,
    upstream_void: u64,
    downstream_stop: u64,
    both: u64,
    // Token tracing.
    emits: Vec<Vec<u64>>,
    consumes: Vec<Vec<u64>>,
    relay_queue: Vec<VecDeque<u64>>,
    relay_residency: Vec<Histogram>,
    relay_occupancy: Vec<Vec<u64>>,
    cur_occ: Vec<u32>,
    unmatched_drains: u64,
    // Span retention for trace export.
    hop_spans: Vec<HopSpan>,
    stall_spans: Vec<StallSpan>,
    stall_run: Vec<Option<u64>>,
}

impl CausalProfiler {
    /// A profiler over `graph`, observing lane 0.
    #[must_use]
    pub fn new(graph: ChannelGraph) -> Self {
        Self::for_lane(graph, 0)
    }

    /// A profiler observing batch lane `lane`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 1024` (the widest lane word).
    #[must_use]
    pub fn for_lane(graph: ChannelGraph, lane: u16) -> Self {
        assert!(lane < 1024, "lane must be in 0..1024");
        let nch = graph.channel_count();
        let nsh = graph.shell_count();
        let nre = graph.relay_count();
        CausalProfiler {
            lane,
            cycles: 0,
            cur_stall: vec![false; nch],
            cur_void: vec![false; nch],
            cur_fired: vec![false; nsh],
            channel_stalls: vec![0; nch],
            channel_voids: vec![0; nch],
            lost_cycles: 0,
            consumed: 0,
            upstream_void: 0,
            downstream_stop: 0,
            both: 0,
            emits: vec![Vec::new(); graph.source_count()],
            consumes: vec![Vec::new(); graph.sink_count()],
            relay_queue: vec![VecDeque::new(); nre],
            relay_residency: vec![Histogram::new(); nre],
            relay_occupancy: graph
                .relay_capacity
                .iter()
                .map(|&cap| vec![0; cap as usize + 1])
                .collect(),
            cur_occ: vec![0; nre],
            unmatched_drains: 0,
            hop_spans: Vec::new(),
            stall_spans: Vec::new(),
            stall_run: vec![None; nsh],
            graph,
        }
    }

    /// The wiring this profiler observes.
    #[must_use]
    pub fn graph(&self) -> &ChannelGraph {
        &self.graph
    }

    /// Cycles observed since construction or the last
    /// [`rebase`](Self::rebase).
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Void tokens consumed by sinks in the window.
    #[must_use]
    pub fn lost_cycles(&self) -> u64 {
        self.lost_cycles
    }

    /// Per-channel stop-asserted cycle counts.
    #[must_use]
    pub fn channel_stalls(&self) -> &[u64] {
        &self.channel_stalls
    }

    /// Per-channel void-carried cycle counts.
    #[must_use]
    pub fn channel_voids(&self) -> &[u64] {
        &self.channel_voids
    }

    /// Relay drains that found no matched fill (only possible when the
    /// profiler attached mid-run without [`rebase`](Self::rebase)
    /// semantics — from reset this stays 0).
    #[must_use]
    pub fn unmatched_drains(&self) -> u64 {
        self.unmatched_drains
    }

    /// Retained relay residency spans (for trace export).
    #[must_use]
    pub fn hop_spans(&self) -> &[HopSpan] {
        &self.hop_spans
    }

    /// Retained closed stall intervals (for trace export); runs still
    /// open at the end of the window are in
    /// [`open_stall_runs`](Self::open_stall_runs).
    #[must_use]
    pub fn stall_spans(&self) -> &[StallSpan] {
        &self.stall_spans
    }

    /// Per shell: start cycle of a still-open stall run.
    #[must_use]
    pub fn open_stall_runs(&self) -> &[Option<u64>] {
        &self.stall_run
    }

    /// Per source row: cycle of each emission in the window.
    #[must_use]
    pub fn emissions(&self) -> &[Vec<u64>] {
        &self.emits
    }

    /// Per sink row: cycle of each informative consumption.
    #[must_use]
    pub fn consumptions(&self) -> &[Vec<u64>] {
        &self.consumes
    }

    /// Restrict the window to everything *after* `cycle`: zero every
    /// counter, histogram, log and span, but keep the relay occupancy
    /// tracking state so histograms stay correct. Call after a warmup
    /// run to profile the steady state alone.
    pub fn rebase(&mut self, cycle: u64) {
        self.cycles = 0;
        self.channel_stalls.iter_mut().for_each(|c| *c = 0);
        self.channel_voids.iter_mut().for_each(|c| *c = 0);
        self.lost_cycles = 0;
        self.consumed = 0;
        self.upstream_void = 0;
        self.downstream_stop = 0;
        self.both = 0;
        self.emits.iter_mut().for_each(Vec::clear);
        self.consumes.iter_mut().for_each(Vec::clear);
        for q in &mut self.relay_queue {
            for enter in q.iter_mut() {
                *enter = (*enter).max(cycle);
            }
        }
        self.relay_residency
            .iter_mut()
            .for_each(|h| *h = Histogram::new());
        for hist in &mut self.relay_occupancy {
            hist.iter_mut().for_each(|c| *c = 0);
        }
        self.unmatched_drains = 0;
        self.hop_spans.clear();
        self.stall_spans.clear();
        for start in self.stall_run.iter_mut().flatten() {
            *start = (*start).max(cycle);
        }
    }

    /// Build the [`BlameReport`] for the observed window.
    #[must_use]
    pub fn report(&self) -> BlameReport {
        let g = &self.graph;
        let n_ent = g.entity_count();
        // Fold per-channel counters into blame edges and per-entity
        // blame: void edge consumer -> producer, stop edge
        // producer -> consumer.
        let mut edge_w: Vec<std::collections::BTreeMap<usize, [u64; 2]>> =
            vec![std::collections::BTreeMap::new(); n_ent];
        let mut blame = vec![0u64; n_ent];
        for ch in 0..g.channel_count() {
            let p = g.dense(g.producer[ch]);
            let c = g.dense(g.consumer[ch]);
            let voids = self.channel_voids[ch];
            let stalls = self.channel_stalls[ch];
            if voids > 0 {
                edge_w[c].entry(p).or_default()[0] += voids;
                blame[p] += voids;
            }
            if stalls > 0 {
                edge_w[p].entry(c).or_default()[1] += stalls;
                blame[c] += stalls;
            }
        }
        let mut order: Vec<usize> = (0..n_ent).collect();
        order.sort_by_key(|&i| (std::cmp::Reverse(blame[i]), i));
        let entries: Vec<BlameEntry> = order
            .iter()
            .filter(|&&i| blame[i] > 0)
            .map(|&i| {
                let e = g.entity(i);
                BlameEntry {
                    entity: e,
                    node: g.node(e),
                    name: g.name(e).to_owned(),
                    blamed: blame[i],
                }
            })
            .collect();
        // Greedy max-weight walk from the top-blamed entity; the first
        // revisited entity closes the dominant causal loop.
        let top_cycle = entries.first().map_or_else(Vec::new, |top| {
            let mut path: Vec<usize> = vec![g.dense(top.entity)];
            loop {
                let cur = *path.last().expect("path non-empty");
                let next = edge_w[cur]
                    .iter()
                    .max_by_key(|&(&t, w)| (w[0] + w[1], std::cmp::Reverse(t)))
                    .map(|(&t, _)| t);
                let Some(next) = next else { break Vec::new() };
                if let Some(i) = path.iter().position(|&e| e == next) {
                    break path[i..].iter().map(|&e| g.entity(e)).collect();
                }
                if path.len() > n_ent {
                    break Vec::new();
                }
                path.push(next);
            }
        });
        let mut edges = Vec::new();
        for (from, targets) in edge_w.iter().enumerate() {
            for (&to, w) in targets {
                edges.push(BlameEdge {
                    from: g.entity(from),
                    to: g.entity(to),
                    void_weight: w[0],
                    stop_weight: w[1],
                });
            }
        }
        // Sequence latency per reachable source -> sink pair.
        let mut latency = Vec::new();
        for i in 0..g.source_count() {
            for j in 0..g.sink_count() {
                if !g.source_reaches_sink(i, j) {
                    continue;
                }
                let mut hist = Histogram::new();
                for (em, co) in self.emits[i].iter().zip(&self.consumes[j]) {
                    if let Some(lat) = co.checked_sub(*em) {
                        hist.record(lat);
                    }
                }
                latency.push(PairLatency {
                    source: i as u32,
                    sink: j as u32,
                    histogram: hist,
                });
            }
        }
        BlameReport {
            cycles: self.cycles,
            lane: self.lane,
            lost_cycles: self.lost_cycles,
            consumed: self.consumed,
            upstream_void: self.upstream_void,
            downstream_stop: self.downstream_stop,
            both: self.both,
            channel_stalls: self.channel_stalls.clone(),
            channel_voids: self.channel_voids.clone(),
            entries,
            top_cycle,
            edges,
            latency,
            relay_residency: self.relay_residency.clone(),
            relay_occupancy: self.relay_occupancy.clone(),
            tokens_emitted: self.emits.iter().map(|v| v.len() as u64).sum(),
            graph: self.graph.clone(),
        }
    }
}

impl Probe for CausalProfiler {
    /// Replayed event streams route to the same handlers as direct
    /// hooks. Since schema version 2 the stream carries
    /// `channel_void`/`consume` records, so a recorded JSONL stream
    /// replays into the same blame a live engine attachment produces —
    /// void-side attribution included.
    fn event(&mut self, ev: Event) {
        match ev.kind {
            EventKind::Fire => self.fire(ev.cycle, ev.entity, ev.lane),
            EventKind::Stall => self.stall(ev.cycle, ev.entity, ev.lane),
            EventKind::VoidIn => self.void_in(ev.cycle, ev.entity, ev.lane),
            EventKind::RelayFill => self.relay_fill(ev.cycle, ev.entity, ev.lane),
            EventKind::RelayDrain => self.relay_drain(ev.cycle, ev.entity, ev.lane),
            EventKind::ChannelVoid => self.channel_void(ev.cycle, ev.entity, ev.lane),
            EventKind::Consume => self.consume(ev.cycle, ev.entity, ev.lane),
            EventKind::VoidDiscard => {}
        }
    }

    #[inline]
    fn fire(&mut self, _cycle: u64, shell: u32, lane: u16) {
        if lane == self.lane {
            self.cur_fired[shell as usize] = true;
        }
    }

    #[inline]
    fn stall(&mut self, _cycle: u64, ch: u32, lane: u16) {
        if lane == self.lane {
            self.cur_stall[ch as usize] = true;
        }
    }

    #[inline]
    fn channel_void(&mut self, _cycle: u64, ch: u32, lane: u16) {
        if lane == self.lane {
            self.cur_void[ch as usize] = true;
        }
    }

    #[inline]
    fn consume(&mut self, cycle: u64, ch: u32, lane: u16) {
        if lane == self.lane {
            self.consumed += 1;
            if let Entity::Sink(j) = self.graph.consumer[ch as usize] {
                self.consumes[j as usize].push(cycle);
            }
        }
    }

    #[inline]
    fn void_in(&mut self, _cycle: u64, _ch: u32, lane: u16) {
        if lane == self.lane {
            self.lost_cycles += 1;
        }
    }

    #[inline]
    fn relay_fill(&mut self, cycle: u64, relay: u32, lane: u16) {
        if lane == self.lane {
            self.relay_queue[relay as usize].push_back(cycle);
            self.cur_occ[relay as usize] += 1;
        }
    }

    #[inline]
    fn relay_drain(&mut self, cycle: u64, relay: u32, lane: u16) {
        if lane == self.lane {
            if let Some(enter) = self.relay_queue[relay as usize].pop_front() {
                self.relay_residency[relay as usize].record(cycle.saturating_sub(enter));
                self.hop_spans.push(HopSpan {
                    relay,
                    enter,
                    exit: cycle,
                });
            } else {
                self.unmatched_drains += 1;
            }
            let occ = &mut self.cur_occ[relay as usize];
            *occ = occ.saturating_sub(1);
        }
    }

    fn end_cycle(&mut self, cycle: u64) {
        // Blame counters: a channel's void charges its producer, its
        // stop charges its consumer (folded into edges at report time).
        for ch in 0..self.graph.channel_count() {
            self.channel_stalls[ch] += u64::from(self.cur_stall[ch]);
            self.channel_voids[ch] += u64::from(self.cur_void[ch]);
        }
        // Stall classification per non-firing shell.
        for s in 0..self.graph.shell_count() {
            if self.cur_fired[s] {
                if let Some(start) = self.stall_run[s].take() {
                    self.stall_spans.push(StallSpan {
                        shell: s as u32,
                        start,
                        end: cycle,
                    });
                }
                continue;
            }
            if self.stall_run[s].is_none() {
                self.stall_run[s] = Some(cycle);
            }
            let some_void = self
                .graph
                .shell_inputs(s)
                .iter()
                .any(|&ch| self.cur_void[ch as usize]);
            let some_stop = self
                .graph
                .shell_outputs(s)
                .iter()
                .any(|&ch| self.cur_stall[ch as usize]);
            match (some_void, some_stop) {
                (true, false) => self.upstream_void += 1,
                (false, true) => self.downstream_stop += 1,
                (true, true) => self.both += 1,
                (false, false) => {}
            }
        }
        // Source emissions: a valid, unstopped output channel moved one
        // token into the network this cycle.
        for i in 0..self.graph.source_count() {
            let ch = self.graph.source_out[i] as usize;
            if !self.cur_void[ch] && !self.cur_stall[ch] {
                self.emits[i].push(cycle);
            }
        }
        // Occupancy histograms.
        for (r, &occ) in self.cur_occ.iter().enumerate() {
            let hist = &mut self.relay_occupancy[r];
            let slot = (occ as usize).min(hist.len() - 1);
            hist[slot] += 1;
        }
        self.cur_stall.iter_mut().for_each(|b| *b = false);
        self.cur_void.iter_mut().for_each(|b| *b = false);
        self.cur_fired.iter_mut().for_each(|b| *b = false);
        self.cycles += 1;
    }

    #[inline]
    fn fire_mask(&mut self, cycle: u64, shell: u32, masks: &[u64]) {
        if mask_lane(masks, self.lane) {
            self.fire(cycle, shell, self.lane);
        }
    }

    #[inline]
    fn stall_mask(&mut self, cycle: u64, ch: u32, masks: &[u64]) {
        if mask_lane(masks, self.lane) {
            self.stall(cycle, ch, self.lane);
        }
    }

    #[inline]
    fn channel_void_mask(&mut self, cycle: u64, ch: u32, masks: &[u64]) {
        if mask_lane(masks, self.lane) {
            self.channel_void(cycle, ch, self.lane);
        }
    }

    #[inline]
    fn consume_mask(&mut self, cycle: u64, ch: u32, masks: &[u64]) {
        if mask_lane(masks, self.lane) {
            self.consume(cycle, ch, self.lane);
        }
    }

    #[inline]
    fn void_in_mask(&mut self, cycle: u64, ch: u32, masks: &[u64]) {
        if mask_lane(masks, self.lane) {
            self.void_in(cycle, ch, self.lane);
        }
    }

    #[inline]
    fn void_discard_mask(&mut self, _cycle: u64, _ch: u32, _masks: &[u64]) {}

    #[inline]
    fn relay_fill_mask(&mut self, cycle: u64, relay: u32, masks: &[u64]) {
        if mask_lane(masks, self.lane) {
            self.relay_fill(cycle, relay, self.lane);
        }
    }

    #[inline]
    fn relay_drain_mask(&mut self, cycle: u64, relay: u32, masks: &[u64]) {
        if mask_lane(masks, self.lane) {
            self.relay_drain(cycle, relay, self.lane);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 3-entity pipeline: source -> c0 -> shell -> c1 -> sink.
    fn pipeline_graph() -> ChannelGraph {
        ChannelGraph {
            producer: vec![Entity::Source(0), Entity::Shell(0)],
            consumer: vec![Entity::Shell(0), Entity::Sink(0)],
            source_out: vec![0],
            sink_in: vec![1],
            relay_in: vec![],
            relay_out: vec![],
            relay_capacity: vec![],
            shell_in_off: vec![0, 1],
            shell_in_ch: vec![0],
            shell_out_off: vec![0, 1],
            shell_out_ch: vec![1],
            nodes: vec![1, 0, 2],
            names: vec!["A".into(), "in".into(), "out".into()],
        }
    }

    #[test]
    fn dense_roundtrip_and_reachability() {
        let g = pipeline_graph();
        assert_eq!(g.entity_count(), 3);
        for i in 0..g.entity_count() {
            assert_eq!(g.dense(g.entity(i)), i);
        }
        assert_eq!(g.name(Entity::Shell(0)), "A");
        assert!(g.source_reaches_sink(0, 0));
    }

    #[test]
    fn histogram_percentiles_are_exact() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 2, 3, 100] {
            h.record(v);
        }
        assert_eq!(h.total(), 5);
        assert_eq!(h.percentile(50), Some(2));
        assert_eq!(h.percentile(95), Some(100));
        assert_eq!(h.max(), Some(100));
        assert_eq!(Histogram::new().percentile(50), None);
    }

    #[test]
    fn empty_histogram_reports_nulls() {
        let h = Histogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.max(), None);
        assert_eq!(h.percentile(0), None);
        assert_eq!(h.percentile(100), None);
        assert_eq!(
            h.summary_json(),
            "{\"samples\":0,\"p50\":null,\"p95\":null,\"max\":null}"
        );
    }

    #[test]
    fn single_sample_pins_every_statistic() {
        let mut h = Histogram::new();
        h.record(7);
        assert_eq!(h.total(), 1);
        assert_eq!(h.percentile(50), Some(7));
        assert_eq!(h.percentile(95), Some(7));
        assert_eq!(h.percentile(0), Some(7));
        assert_eq!(h.max(), Some(7));
    }

    #[test]
    fn merge_of_disjoint_ranges_equals_recording_both() {
        let mut low = Histogram::new();
        for v in [0u64, 1, 1, 2] {
            low.record(v);
        }
        let mut high = Histogram::new();
        for v in [50u64, 60, 70] {
            high.record(v);
        }
        // Merge the wider histogram into the narrower one (exercises
        // the resize path) and compare against recording all samples
        // into a single histogram.
        let mut merged = low.clone();
        merged.merge(&high);
        let mut direct = Histogram::new();
        for v in [0u64, 1, 1, 2, 50, 60, 70] {
            direct.record(v);
        }
        assert_eq!(merged.total(), direct.total());
        assert_eq!(merged.max(), direct.max());
        for p in [0u8, 25, 50, 75, 95, 100] {
            assert_eq!(merged.percentile(p), direct.percentile(p), "p{p}");
        }
        // Merging in the other direction gives the same statistics.
        let mut merged_rev = high;
        merged_rev.merge(&low);
        assert_eq!(merged_rev.summary_json(), merged.summary_json());
        // Merging an empty histogram is a no-op.
        let before = merged.summary_json();
        merged.merge(&Histogram::new());
        assert_eq!(merged.summary_json(), before);
    }

    #[test]
    fn downstream_stop_blames_the_stopping_consumer() {
        let g = pipeline_graph();
        let mut p = CausalProfiler::new(g);
        // Cycle 0: sink stops the shell's output; the shell holds a
        // valid token everywhere, does not fire.
        p.stall(0, 1, 0);
        p.end_cycle(0);
        assert_eq!(p.cycles(), 1);
        let r = p.report();
        assert_eq!(r.downstream_stop, 1);
        assert_eq!(r.upstream_void, 0);
        assert_eq!(r.blame_of(Entity::Sink(0)), 1);
        assert_eq!(r.channel_stalls, vec![0, 1]);
        // Source emitted (its channel was valid and unstopped).
        assert_eq!(r.tokens_emitted, 1);
    }

    #[test]
    fn upstream_void_blames_the_starving_producer() {
        let g = pipeline_graph();
        let mut p = CausalProfiler::new(g);
        p.channel_void(0, 0, 0);
        p.end_cycle(0);
        let r = p.report();
        assert_eq!(r.upstream_void, 1);
        assert_eq!(r.blame_of(Entity::Source(0)), 1);
        assert_eq!(r.channel_voids, vec![1, 0]);
        assert_eq!(r.tokens_emitted, 0);
    }

    #[test]
    fn other_lanes_are_filtered() {
        let g = pipeline_graph();
        let mut p = CausalProfiler::for_lane(g, 3);
        p.stall_mask(0, 1, &[0b0001]); // lane 0 only: ignored
        p.stall_mask(0, 0, &[0b1000]); // lane 3: observed
        p.end_cycle(0);
        let r = p.report();
        assert_eq!(r.channel_stalls, vec![1, 0]);
        assert_eq!(r.lane, 3);
    }

    #[test]
    fn high_lanes_filter_across_words() {
        let g = pipeline_graph();
        // Lane 130 lives in word 2, bit 2 of a multi-word mask.
        let mut p = CausalProfiler::for_lane(g, 130);
        p.stall_mask(0, 0, &[!0, !0, 0b001, 0]); // bit 0 of word 2: lane 128
        p.stall_mask(0, 1, &[0, 0, 0b100, 0]); // bit 2 of word 2: lane 130
        p.end_cycle(0);
        let r = p.report();
        assert_eq!(r.channel_stalls, vec![0, 1]);
        assert_eq!(r.lane, 130);
    }

    #[test]
    fn replayed_stream_reproduces_void_side_blame() {
        // Schema v2: channel_void/consume arrive as events, so feeding
        // a recorded stream through `event()` must match live hooks.
        let mut live = CausalProfiler::new(pipeline_graph());
        live.channel_void(0, 0, 0);
        live.consume(0, 1, 0);
        live.end_cycle(0);
        let mut replay = CausalProfiler::new(pipeline_graph());
        replay.event(Event::new(0, EventKind::ChannelVoid, 0, 0));
        replay.event(Event::new(0, EventKind::Consume, 1, 0));
        replay.end_cycle(0);
        let (a, b) = (live.report(), replay.report());
        assert_eq!(a.channel_voids, b.channel_voids);
        assert_eq!(a.consumed, b.consumed);
        assert_eq!(a.upstream_void, b.upstream_void);
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn relay_residency_matches_fill_drain_order() {
        let mut g = pipeline_graph();
        g.relay_in.push(0);
        g.relay_out.push(1);
        g.relay_capacity.push(2);
        let mut p = CausalProfiler::new(g);
        p.relay_fill(0, 0, 0);
        p.end_cycle(0);
        p.relay_fill(1, 0, 0);
        p.relay_drain(1, 0, 0); // drains the cycle-0 token
        p.end_cycle(1);
        p.relay_drain(2, 0, 0); // drains the cycle-1 token
        p.end_cycle(2);
        let r = p.report();
        assert_eq!(r.relay_residency[0].total(), 2);
        assert_eq!(r.relay_residency[0].max(), Some(1));
        // occ: 1 after cycle 0, 1 after cycle 1, 0 after cycle 2.
        assert_eq!(r.relay_occupancy[0], vec![1, 2, 0]);
        assert_eq!(p.hop_spans().len(), 2);
        assert_eq!(p.unmatched_drains(), 0);
    }

    #[test]
    fn rebase_clears_the_window_but_keeps_tracking_state() {
        let mut g = pipeline_graph();
        g.relay_in.push(0);
        g.relay_out.push(1);
        g.relay_capacity.push(2);
        let mut p = CausalProfiler::new(g);
        p.relay_fill(0, 0, 0);
        p.stall(0, 1, 0);
        p.end_cycle(0);
        p.rebase(1);
        assert_eq!(p.cycles(), 0);
        assert_eq!(p.channel_stalls(), &[0, 0]);
        // The in-flight token survives the rebase; a later drain still
        // matches (with the enter clamped to the rebase cycle).
        p.relay_drain(3, 0, 0);
        p.end_cycle(3);
        assert_eq!(p.unmatched_drains(), 0);
        let r = p.report();
        assert_eq!(r.relay_residency[0].max(), Some(2));
    }

    #[test]
    fn blame_json_is_versioned() {
        let g = pipeline_graph();
        let mut p = CausalProfiler::new(g);
        p.stall(0, 1, 0);
        p.end_cycle(0);
        let j = p.report().to_json();
        assert!(j.contains("\"schema_version\": 1"));
        assert!(j.contains("\"kind\": \"blame_report\""));
        assert!(j.contains("\"blamed\":1"));
        assert!(j.contains("\"channel_stalls\": [0,1]"));
    }
}
