//! Chrome-trace-format export of a profiled run.
//!
//! Renders the spans retained by a [`CausalProfiler`] as a Trace Event
//! Format JSON document (`{"traceEvents":[...]}`) loadable in
//! `chrome://tracing` and Perfetto, next to the existing VCD and JSONL
//! sinks:
//!
//! * one named track (`tid` = dense entity id) per shell, relay, source
//!   and sink, via `"M"` metadata events;
//! * a complete (`"X"`) *stall* slice per maximal run of consecutive
//!   cycles a shell did not fire;
//! * a complete (`"X"`) *resident* slice per token's stay in a relay
//!   station (fill → drain, FIFO-matched);
//! * an async `"b"`/`"e"` span pair per delivered token, one per
//!   source→sink pair, carrying the token's sequence id — load the
//!   trace and the protocol's end-to-end latency is the visible span
//!   length.
//!
//! Timestamps are protocol cycles written as microseconds (1 cycle =
//! 1 µs), so viewer zoom levels stay sane. All strings pass through the
//! shared JSON escaper, and the document is plain hand-rolled JSON like
//! every other artefact in the crate (no serde in the offline
//! workspace).

use std::fmt::Write as _;

use crate::flight::FlightDump;
use crate::profile::{CausalProfiler, Entity};
use crate::telemetry::escape;

/// Render `profiler`'s retained spans as a Chrome-trace JSON document.
///
/// `end_cycle` closes any still-open stall runs (pass the cycle the run
/// stopped at — e.g. `system.cycle()` — so trailing deadlocked
/// intervals render with their true extent).
#[must_use]
pub fn chrome_trace_json(profiler: &CausalProfiler, end_cycle: u64) -> String {
    let g = profiler.graph();
    let mut events: Vec<String> = Vec::new();

    // Track metadata: one process, one named thread per entity.
    events.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"lip\"}}"
            .to_owned(),
    );
    for id in 0..g.entity_count() {
        let e = g.entity(id);
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{id},\
             \"args\":{{\"name\":\"{} {}\"}}}}",
            e.label(),
            escape(g.name(e))
        ));
    }

    // Shell stall slices (closed runs, then runs still open at the end
    // of the window).
    let mut stall_slice = |shell: u32, start: u64, end: u64| {
        let tid = g.dense(Entity::Shell(shell));
        events.push(format!(
            "{{\"name\":\"stall\",\"cat\":\"stall\",\"ph\":\"X\",\
             \"ts\":{start},\"dur\":{},\"pid\":1,\"tid\":{tid}}}",
            end.saturating_sub(start).max(1)
        ));
    };
    for span in profiler.stall_spans() {
        stall_slice(span.shell, span.start, span.end);
    }
    for (shell, run) in profiler.open_stall_runs().iter().enumerate() {
        if let Some(start) = run {
            stall_slice(shell as u32, *start, end_cycle.max(*start + 1));
        }
    }

    // Relay residency slices.
    for hop in profiler.hop_spans() {
        let tid = g.dense(Entity::Relay(hop.relay));
        events.push(format!(
            "{{\"name\":\"resident\",\"cat\":\"relay\",\"ph\":\"X\",\
             \"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{tid}}}",
            hop.enter,
            hop.exit.saturating_sub(hop.enter).max(1)
        ));
    }

    // Async token spans: the k-th informative consumption at a sink
    // closes the span the k-th emission of each reaching source opened
    // (order preservation is the protocol's invariant). Ids are unique
    // per (pair, sequence).
    let mut pair = 0u64;
    for i in 0..g.source_count() {
        for j in 0..g.sink_count() {
            if !g.source_reaches_sink(i, j) {
                continue;
            }
            let name = format!(
                "token {}\u{2192}{}",
                escape(g.name(Entity::Source(i as u32))),
                escape(g.name(Entity::Sink(j as u32)))
            );
            let tid = g.dense(Entity::Sink(j as u32));
            let emits = &profiler.emissions()[i];
            let consumes = &profiler.consumptions()[j];
            for (k, (em, co)) in emits.iter().zip(consumes).enumerate() {
                if co < em {
                    continue; // initial in-flight token, not ours
                }
                let id = (pair << 32) | k as u64;
                events.push(format!(
                    "{{\"name\":\"{name}\",\"cat\":\"token\",\"ph\":\"b\",\
                     \"ts\":{em},\"pid\":1,\"tid\":{tid},\"id\":{id},\
                     \"args\":{{\"seq\":{k}}}}}"
                ));
                events.push(format!(
                    "{{\"name\":\"{name}\",\"cat\":\"token\",\"ph\":\"e\",\
                     \"ts\":{co},\"pid\":1,\"tid\":{tid},\"id\":{id}}}"
                ));
            }
            pair += 1;
        }
    }

    let mut out = String::with_capacity(events.iter().map(String::len).sum::<usize>() + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, ev) in events.iter().enumerate() {
        out.push_str(ev);
        if i + 1 != events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    let _ = write!(out, "]}}");
    out.push('\n');
    out
}

/// Render a drained flight-recorder dump (see
/// [`flight`](crate::flight)) as a Chrome-trace JSON document.
///
/// Same Trace Event Format as [`chrome_trace_json`], but over the
/// *engine's* wall clock instead of protocol cycles: one named track
/// per recording thread, one complete (`"X"`) slice per closed span
/// (`name` = span name, `cat` = span category, nesting conveyed by the
/// timestamps), and one counter (`"C"`) event per named counter at the
/// end of the timeline. Timestamps are nanoseconds rendered as
/// fractional microseconds, the format's native unit.
#[must_use]
pub fn runtime_chrome_trace(dump: &FlightDump) -> String {
    let mut events: Vec<String> = Vec::new();
    events.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"lip-runtime\"}}"
            .to_owned(),
    );
    for tid in 0..dump.threads {
        let name = if tid == 0 { "driver" } else { "worker" };
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{name} {tid}\"}}}}"
        ));
    }
    #[allow(clippy::cast_precision_loss)]
    let us = |ns: u64| ns as f64 / 1000.0;
    for span in &dump.spans {
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{}}}",
            escape(&span.name),
            escape(span.cat),
            us(span.start_ns),
            us(span.dur_ns.max(1)),
            span.tid
        ));
    }
    for (name, value) in &dump.counters {
        events.push(format!(
            "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":0,\
             \"args\":{{\"value\":{value}}}}}",
            escape(name),
            us(dump.wall_ns)
        ));
    }

    let mut out = String::with_capacity(events.iter().map(String::len).sum::<usize>() + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, ev) in events.iter().enumerate() {
        out.push_str(ev);
        if i + 1 != events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    let _ = write!(out, "]}}");
    out.push('\n');
    out
}

/// One interval on a [`ScheduleTrack`], in protocol cycles.
///
/// `end` is exclusive; zero-length slices render with `dur` 1 so they
/// stay visible at any zoom level.
#[derive(Debug, Clone)]
pub struct ScheduleSlice {
    /// Slice label shown in the viewer (escaped on render).
    pub name: String,
    /// Trace Event Format category (escaped on render).
    pub cat: String,
    /// First cycle of the interval.
    pub start: u64,
    /// One past the last cycle of the interval.
    pub end: u64,
}

/// A named horizontal track of [`ScheduleSlice`]s — one per node when
/// rendering a model-checker counterexample schedule.
#[derive(Debug, Clone)]
pub struct ScheduleTrack {
    /// Track label shown in the viewer (escaped on render).
    pub name: String,
    /// Slices on this track, any order.
    pub slices: Vec<ScheduleSlice>,
}

/// Render an explicit cycle-by-cycle schedule (e.g. a model-checker
/// counterexample trace) as a Chrome-trace JSON document.
///
/// Same Trace Event Format and conventions as [`chrome_trace_json`]:
/// one process named `process`, one named thread per track (`tid` =
/// track index), a complete (`"X"`) slice per [`ScheduleSlice`], and
/// cycles written as microseconds. Strings pass through the shared
/// escaper; the document is hand-rolled JSON (no serde offline).
#[must_use]
pub fn schedule_chrome_trace(process: &str, tracks: &[ScheduleTrack]) -> String {
    let mut events: Vec<String> = Vec::new();
    events.push(format!(
        "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{{\"name\":\"{}\"}}}}",
        escape(process)
    ));
    for (tid, track) in tracks.iter().enumerate() {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape(&track.name)
        ));
    }
    for (tid, track) in tracks.iter().enumerate() {
        for s in &track.slices {
            events.push(format!(
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\
                 \"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{tid}}}",
                escape(&s.name),
                escape(&s.cat),
                s.start,
                s.end.saturating_sub(s.start).max(1)
            ));
        }
    }

    let mut out = String::with_capacity(events.iter().map(String::len).sum::<usize>() + 64);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    for (i, ev) in events.iter().enumerate() {
        out.push_str(ev);
        if i + 1 != events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    let _ = write!(out, "]}}");
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::{FlightRecorder, Recorder};
    use crate::probe::Probe;
    use crate::profile::ChannelGraph;

    fn relay_pipeline() -> ChannelGraph {
        // source -> c0 -> shell -> c1 -> relay -> c2 -> sink
        ChannelGraph {
            producer: vec![Entity::Source(0), Entity::Shell(0), Entity::Relay(0)],
            consumer: vec![Entity::Shell(0), Entity::Relay(0), Entity::Sink(0)],
            source_out: vec![0],
            sink_in: vec![2],
            relay_in: vec![1],
            relay_out: vec![2],
            relay_capacity: vec![2],
            shell_in_off: vec![0, 1],
            shell_in_ch: vec![0],
            shell_out_off: vec![0, 1],
            shell_out_ch: vec![1],
            nodes: vec![1, 2, 0, 3],
            names: vec!["A".into(), "r\"1".into(), "in".into(), "out".into()],
        }
    }

    #[test]
    fn trace_has_tracks_slices_and_token_spans() {
        let mut p = CausalProfiler::new(relay_pipeline());
        // Cycle 0: source emits, relay fills, shell stalls (stopped).
        p.stall(0, 1, 0);
        p.relay_fill(0, 0, 0);
        p.end_cycle(0);
        // Cycle 1: relay drains, sink consumes.
        p.relay_drain(1, 0, 0);
        p.consume(1, 2, 0);
        p.end_cycle(1);
        let json = chrome_trace_json(&p, 2);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        assert!(json.contains("\"traceEvents\""));
        // One named track per entity (4), plus process_name.
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 5);
        // The quote in the relay name is escaped.
        assert!(json.contains("relay:0 r\\\"1"));
        // The shell's open stall run is closed at end_cycle.
        assert!(json.contains("\"cat\":\"stall\""));
        // Relay residency slice.
        assert!(json.contains("\"cat\":\"resident\"") || json.contains("\"name\":\"resident\""));
        // Exactly one async begin/end pair for the delivered token.
        assert_eq!(json.matches("\"ph\":\"b\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"e\"").count(), 1);
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn empty_profiler_renders_valid_skeleton() {
        let p = CausalProfiler::new(relay_pipeline());
        let json = chrome_trace_json(&p, 0);
        assert!(json.contains("\"traceEvents\""));
        assert_eq!(json.matches("\"ph\":\"b\"").count(), 0);
    }

    #[test]
    fn runtime_trace_renders_spans_threads_and_counters() {
        let rec = FlightRecorder::new();
        {
            let _root = rec.span("sweep", "corpus");
            let _child = rec.span("measure", "fig\"1");
            rec.add("cache.hits", 5);
        }
        let json = runtime_chrome_trace(&rec.drain());
        assert!(json.starts_with("{\"displayTimeUnit\""));
        // process_name + one thread_name.
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 2);
        assert!(json.contains("lip-runtime"));
        // Two complete slices, quote escaped.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("fig\\\"1"));
        // One counter event.
        assert_eq!(json.matches("\"ph\":\"C\"").count(), 1);
        assert!(json.contains("\"value\":5"));
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn schedule_trace_renders_tracks_and_slices() {
        let tracks = vec![
            ScheduleTrack {
                name: "source \"A\"".into(),
                slices: vec![
                    ScheduleSlice {
                        name: "offer".into(),
                        cat: "env".into(),
                        start: 0,
                        end: 3,
                    },
                    ScheduleSlice {
                        name: "void".into(),
                        cat: "env".into(),
                        start: 3,
                        end: 3, // zero-length still renders
                    },
                ],
            },
            ScheduleTrack {
                name: "shell S".into(),
                slices: vec![ScheduleSlice {
                    name: "starved".into(),
                    cat: "stall".into(),
                    start: 1,
                    end: 4,
                }],
            },
        ];
        let json = schedule_chrome_trace("lip-mc", &tracks);
        assert!(json.starts_with("{\"displayTimeUnit\""));
        // process_name + two thread_names, quote escaped.
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 3);
        assert!(json.contains("lip-mc"));
        assert!(json.contains("source \\\"A\\\""));
        // Three complete slices; the empty one got dur 1.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 3);
        assert!(json.contains("\"ts\":3,\"dur\":1"));
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn schedule_trace_with_no_tracks_is_valid() {
        let json = schedule_chrome_trace("empty", &[]);
        assert!(json.contains("\"traceEvents\""));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 0);
        assert!(!json.contains(",\n]"));
    }
}
