//! `Probe` mask-hook coverage at lane widths beyond one word.
//!
//! The many-lane engine widened every `*_mask` hook to `&[u64]` slices
//! (bit `l` of `masks[w]` = lane `64·w + l`) without dedicated unit
//! tests for the multi-word shapes. These tests exercise
//! `for_each_lane_word` / `mask_count` / `mask_lane` and the default
//! per-lane decomposition on the `[u64; W]` shapes the engines actually
//! pass — 128, 256 and 1024 lanes — including masks whose *final word
//! is partially populated* (the hazardous case: a lane count that is
//! not a multiple of 64 must neither lose high lanes nor invent
//! phantom ones).

use lip_obs::{
    for_each_lane_word, mask_count, mask_lane, Event, EventKind, MetricsRegistry, Probe, Topology,
};

/// Build a multi-word mask with exactly the given lanes set.
fn mask_of(words: usize, lanes: &[u16]) -> Vec<u64> {
    let mut m = vec![0u64; words];
    for &l in lanes {
        m[usize::from(l) / 64] |= 1u64 << (usize::from(l) % 64);
    }
    m
}

#[test]
fn for_each_lane_word_visits_lanes_in_ascending_order_across_words() {
    // 256-lane shape ([u64; 4]): lanes straddling every word boundary.
    let lanes = [0u16, 63, 64, 127, 128, 191, 192, 255];
    let mask = mask_of(4, &lanes);
    let mut seen = Vec::new();
    for_each_lane_word(&mask, |l| seen.push(l));
    assert_eq!(seen, lanes);
}

#[test]
fn for_each_lane_word_with_partial_final_word() {
    // A 100-lane engine presents two words with the top 28 bits of the
    // final word permanently clear. Set every third lane of the 100.
    let lanes: Vec<u16> = (0..100).step_by(3).collect();
    let mask = mask_of(2, &lanes);
    assert_eq!(mask[1] >> 36, 0, "lanes above 99 must stay clear");
    let mut seen = Vec::new();
    for_each_lane_word(&mask, |l| seen.push(l));
    assert_eq!(seen, lanes);
    assert_eq!(mask_count(&mask), lanes.len() as u64);
}

#[test]
fn mask_count_sums_popcounts_at_every_width() {
    for words in [1usize, 2, 4, 8, 16] {
        let total_lanes = words * 64;
        // Every seventh lane set, so the final word is partial for
        // every width (64·w − 1 is never ≡ 0 mod 7 for these w).
        let lanes: Vec<u16> = (0..total_lanes).step_by(7).map(|l| l as u16).collect();
        let mask = mask_of(words, &lanes);
        assert_eq!(mask_count(&mask), lanes.len() as u64, "width {total_lanes}");
        // All-set and all-clear extremes.
        assert_eq!(mask_count(&vec![u64::MAX; words]), total_lanes as u64);
        assert_eq!(mask_count(&vec![0u64; words]), 0);
    }
}

#[test]
fn mask_lane_across_word_boundaries_and_out_of_range() {
    let mask = mask_of(16, &[0, 64, 100, 512, 1023]); // 1024-lane shape
    for l in [0u16, 64, 100, 512, 1023] {
        assert!(mask_lane(&mask, l), "lane {l} should be set");
    }
    for l in [1u16, 63, 65, 99, 101, 511, 513, 1022] {
        assert!(!mask_lane(&mask, l), "lane {l} should be clear");
    }
    // Lanes beyond the slice are unset, not a panic.
    assert!(!mask_lane(&mask, 1024));
    let short = mask_of(2, &[100]);
    assert!(mask_lane(&short, 100));
    assert!(!mask_lane(&short, 500));
}

/// Records every decomposed per-lane call the default mask hooks make.
#[derive(Default)]
struct LaneLog {
    fires: Vec<(u64, u32, u16)>,
    stalls: Vec<(u64, u32, u16)>,
}

impl Probe for LaneLog {
    fn event(&mut self, ev: Event) {
        match ev.kind {
            EventKind::Fire => self.fires.push((ev.cycle, ev.entity, ev.lane)),
            EventKind::Stall => self.stalls.push((ev.cycle, ev.entity, ev.lane)),
            _ => {}
        }
    }
}

#[test]
fn default_mask_hooks_decompose_multiword_masks_losslessly() {
    let mut p = LaneLog::default();
    // 512-lane shape with a partial final word (lane 400 set, 401..511
    // clear).
    let fire_lanes = [5u16, 70, 150, 400];
    p.fire_mask(11, 3, &mask_of(8, &fire_lanes));
    assert_eq!(
        p.fires,
        fire_lanes.iter().map(|&l| (11, 3, l)).collect::<Vec<_>>()
    );
    // An empty high word between populated ones must not shift lanes.
    p.stall_mask(12, 9, &[1 << 7, 0, 1 << 7]);
    assert_eq!(p.stalls, vec![(12, 9, 7), (12, 9, 135)]);
}

#[test]
fn metrics_popcount_overrides_match_default_decomposition_beyond_64_lanes() {
    // The registry overrides `*_mask` with popcounts; the default path
    // decomposes into per-lane scalar calls. Both must agree on every
    // multi-word shape, including partial final words.
    let topo = Topology {
        channels: 2,
        shells: 1,
        relay_capacities: vec![3],
    };
    for (lanes, words) in [(128u32, 2usize), (192, 3), (1024, 16)] {
        let lane_list: Vec<u16> = (0..lanes).step_by(5).map(|l| l as u16).collect();
        let mask = mask_of(words, &lane_list);
        let mut fast = MetricsRegistry::with_lanes(topo.clone(), lanes);
        fast.fire_mask(0, 0, &mask);
        fast.stall_mask(0, 1, &mask);
        fast.relay_fill_mask(0, 0, &mask);
        fast.end_cycle(0);
        let mut slow = MetricsRegistry::with_lanes(topo.clone(), lanes);
        for_each_lane_word(&mask, |l| {
            slow.fire(0, 0, l);
            slow.stall(0, 1, l);
            slow.relay_fill(0, 0, l);
        });
        slow.end_cycle(0);
        assert_eq!(fast.fires(0), lane_list.len() as u64, "width {lanes}");
        assert_eq!(fast.to_json(), slow.to_json(), "width {lanes}");
        // Occupancy histogram saw exactly one filled slot per set lane.
        let hist = fast.occupancy_histogram(0);
        assert_eq!(hist[1], lane_list.len() as u64);
        assert_eq!(hist[0], u64::from(lanes) - lane_list.len() as u64);
    }
}
