//! `MetricsRegistry::merge` + `Report::absorb` under concurrent
//! per-worker registries at non-u64 lane widths.
//!
//! The parallel sweep executor fans one registry out per worker and
//! folds them back with `merge` (counters) and `absorb` (reports). Its
//! determinism contract — byte-identical output for every worker count
//! — rests on two properties exercised here at multi-word widths
//! (128/256/1024 lanes):
//!
//! * **associativity**: merging `(a ∪ b) ∪ c` equals `a ∪ (b ∪ c)`;
//! * **worker-count independence**: any partition of the same event
//!   stream over 1, 2 or 4 concurrently-filled registries merges (in
//!   input order) to the same document a single observer produces.

use lip_obs::{MetricsRegistry, Probe, Report, Topology};

fn topo() -> Topology {
    Topology {
        channels: 3,
        shells: 2,
        relay_capacities: vec![2, 4],
    }
}

/// Build a multi-word mask with exactly the given lanes set.
fn mask_of(words: usize, lanes: &[u16]) -> Vec<u64> {
    let mut m = vec![0u64; words];
    for &l in lanes {
        m[usize::from(l) / 64] |= 1u64 << (usize::from(l) % 64);
    }
    m
}

/// Deterministic lane set derived from `(seed, tag)`.
fn lanes_for(lanes: u32, seed: u64, tag: u64) -> Vec<u16> {
    let mut x = seed ^ tag.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut lane_list = Vec::new();
    for _ in 0..8 {
        // xorshift64* — cheap, deterministic, well-mixed.
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let l = (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 33) % u64::from(lanes);
        lane_list.push(l as u16);
    }
    lane_list.sort_unstable();
    lane_list.dedup();
    lane_list
}

/// Deterministic pseudo-stream: feed `cycles` cycles of mask-hook
/// traffic derived from `seed` into `reg`. Every worker processing the
/// same `(seed, cycle)` slice produces the same observations.
///
/// Relay traffic is fill-on-even / drain-the-same-mask-on-odd, so
/// occupancy returns to zero at every even cycle: chunk boundaries on
/// even cycles hand a worker the same empty-relay state a fresh run
/// starts from. (That mirrors the real executor, where each worker's
/// registry observes complete runs — the transient `cur_occ` is
/// per-run state and is deliberately not merged.)
fn feed(reg: &mut MetricsRegistry, lanes: u32, seed: u64, cycles: std::ops::Range<u64>) {
    assert!(
        cycles.start.is_multiple_of(2),
        "chunks must start occupancy-neutral"
    );
    let words = (lanes as usize).div_ceil(64);
    for cycle in cycles {
        let mask = mask_of(words, &lanes_for(lanes, seed, cycle));
        reg.fire_mask(cycle, (cycle % 2) as u32, &mask);
        reg.stall_mask(cycle, (cycle % 3) as u32, &mask);
        reg.consume_mask(cycle, 0, &mask);
        reg.void_in_mask(cycle, 2, &mask);
        let pair = mask_of(words, &lanes_for(lanes, seed ^ 0xace1, cycle / 2));
        if cycle % 2 == 0 {
            reg.relay_fill_mask(cycle, (cycle % 2) as u32, &pair);
        } else {
            reg.relay_drain_mask(cycle, ((cycle + 1) % 2) as u32, &pair);
        }
        reg.end_cycle(cycle);
    }
}

#[test]
fn merge_is_associative_at_multiword_widths() {
    for lanes in [128u32, 256, 1024] {
        let mut parts = Vec::new();
        for w in 0..3u64 {
            let mut r = MetricsRegistry::with_lanes(topo(), lanes);
            feed(&mut r, lanes, 41 + w, (w * 50)..((w + 1) * 50));
            parts.push(r);
        }
        // (a ∪ b) ∪ c
        let mut left = parts[0].clone();
        left.merge(&parts[1]);
        left.merge(&parts[2]);
        // a ∪ (b ∪ c)
        let mut bc = parts[1].clone();
        bc.merge(&parts[2]);
        let mut right = parts[0].clone();
        right.merge(&bc);
        assert_eq!(left.to_json(), right.to_json(), "width {lanes}");
        assert_eq!(left.cycles(), 150);
    }
}

#[test]
fn concurrent_worker_registries_merge_independent_of_worker_count() {
    for lanes in [128u32, 256] {
        const CYCLES: u64 = 120;
        let seed = 7u64;
        // Ground truth: one registry observes the whole stream.
        let mut solo = MetricsRegistry::with_lanes(topo(), lanes);
        feed(&mut solo, lanes, seed, 0..CYCLES);
        let expected = solo.to_json();

        for workers in [1u64, 2, 3, 4] {
            // Fill one registry per worker on real threads (the
            // executor's fan-out shape), then fold in input order.
            // `std::thread::scope` is used directly: lip-par depends on
            // this crate, so the pool itself cannot appear in its tests.
            let chunk = CYCLES.div_ceil(workers);
            let mut regs: Vec<MetricsRegistry> = (0..workers)
                .map(|_| MetricsRegistry::with_lanes(topo(), lanes))
                .collect();
            std::thread::scope(|scope| {
                for (w, reg) in regs.iter_mut().enumerate() {
                    let w = w as u64;
                    scope.spawn(move || {
                        let lo = w * chunk;
                        let hi = CYCLES.min(lo + chunk);
                        feed(reg, lanes, seed, lo..hi);
                    });
                }
            });
            let mut merged = regs.remove(0);
            for r in &regs {
                merged.merge(r);
            }
            assert_eq!(
                merged.to_json(),
                expected,
                "width {lanes}, {workers} workers"
            );
            assert_eq!(merged.cycles(), CYCLES);
        }
    }
}

/// Per-worker report as the sweep executor writes it.
fn worker_report(w: usize, reg: &MetricsRegistry) -> Report {
    let mut r = Report::new(format!("worker{w}"));
    r.push_int("cycles", reg.cycles())
        .push_int("fires", reg.total_fires())
        .push_raw("metrics", reg.to_json());
    r
}

#[test]
fn report_absorb_is_worker_count_independent_over_concurrent_workers() {
    const CYCLES: u64 = 96;
    let lanes = 256u32;
    let seed = 13u64;

    // The absorbed document must depend only on the partition *points*,
    // not on how many OS threads filled the partitions: reports are
    // per-chunk, so fix 4 chunks and vary the thread count used to
    // fill them.
    let chunks = 4u64;
    let chunk = CYCLES / chunks;
    let mut documents = Vec::new();
    for threads in [1usize, 2, 4] {
        let mut regs: Vec<MetricsRegistry> = (0..chunks)
            .map(|_| MetricsRegistry::with_lanes(topo(), lanes))
            .collect();
        std::thread::scope(|scope| {
            let mut slots: Vec<&mut MetricsRegistry> = regs.iter_mut().collect();
            // Distribute chunks round-robin over `threads` threads.
            let mut per_thread: Vec<Vec<(u64, &mut MetricsRegistry)>> =
                (0..threads).map(|_| Vec::new()).collect();
            let mut i = 0u64;
            while let Some(reg) = slots.pop() {
                let c = chunks - 1 - i; // pop returns the last chunk
                per_thread[(i as usize) % threads].push((c, reg));
                i += 1;
            }
            for batch in per_thread {
                scope.spawn(move || {
                    for (c, reg) in batch {
                        feed(reg, lanes, seed, (c * chunk)..((c + 1) * chunk));
                    }
                });
            }
        });
        let mut main = Report::new("sweep");
        main.push_int("lanes", u64::from(lanes));
        for (w, reg) in regs.iter().enumerate() {
            main.absorb(&worker_report(w, reg));
        }
        documents.push(main.to_json());
    }
    assert_eq!(documents[0], documents[1]);
    assert_eq!(documents[1], documents[2]);
    assert!(documents[0].contains("\"worker0.cycles\""));
    assert!(documents[0].contains("\"worker3.metrics\""));
}
