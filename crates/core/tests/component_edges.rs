//! Edge-case coverage of the core components: behaviours that the
//! protocol relies on but which the main property suites exercise only
//! incidentally.

use lip_core::pearl::{ConstPearl, DelayPearl, Pearl};
use lip_core::{
    BufferedShell, FifoStation, FullRelayStation, HalfRelayStation, Pattern, ProtocolVariant,
    Shell, Sink, Source, Token,
};

#[test]
fn tokens_order_voids_first() {
    // Ord is derived from Option<u64>: voids sort before values, which
    // keeps BTreeMap-based bookkeeping deterministic.
    let mut v = vec![Token::valid(2), Token::VOID, Token::valid(0)];
    v.sort();
    assert_eq!(v, vec![Token::VOID, Token::valid(0), Token::valid(2)]);
}

#[test]
#[should_panic(expected = "pattern period must be at least 1")]
fn zero_period_pattern_panics() {
    let _ = Pattern::EveryNth {
        period: 0,
        phase: 0,
    }
    .at(3);
}

#[test]
#[should_panic(expected = "cyclic pattern must be non-empty")]
fn empty_cyclic_pattern_panics() {
    let _ = Pattern::Cyclic(vec![]).at(0);
}

#[test]
fn source_emission_counter_ignores_held_cycles() {
    let mut s = Source::new();
    for _ in 0..10 {
        s.clock(true); // held the whole time
    }
    assert_eq!(s.emitted(), 1); // only the initial token exists
    assert_eq!(s.output(), Token::valid(0));
}

#[test]
fn sink_throughput_on_empty_window_is_zero() {
    let sink = Sink::new();
    assert_eq!(sink.throughput(), 0.0);
    assert_eq!(sink.cycles(), 0);
}

#[test]
fn full_relay_under_alternating_stop_never_duplicates() {
    let mut rs = FullRelayStation::new();
    let mut src = Source::new();
    let mut seen = Vec::new();
    for cycle in 0..50u64 {
        let stop = cycle % 2 == 0;
        let out = rs.output();
        if out.is_valid() && !stop {
            seen.push(out.value().unwrap());
        }
        let up = rs.stop_upstream();
        rs.clock(src.output(), stop);
        src.clock(up);
    }
    for (i, v) in seen.iter().enumerate() {
        assert_eq!(*v, i as u64);
    }
    assert!(seen.len() >= 20);
}

#[test]
fn half_relay_capture_release_cycle_is_stable() {
    // Exercise the tight alternation: capture, hold, release, bypass.
    let mut h = HalfRelayStation::new();
    let mut expected_next = 0u64;
    let mut src = Source::new();
    for cycle in 0..60u64 {
        let stop = (cycle / 3) % 2 == 0; // 3-on 3-off stop bursts
        let out = h.output(src.output());
        if out.is_valid() && !stop {
            assert_eq!(out.value().unwrap(), expected_next);
            expected_next += 1;
        }
        let up = h.stop_upstream();
        h.clock(src.output(), stop);
        src.clock(up);
    }
    assert!(expected_next >= 25);
}

#[test]
fn fifo_station_equivalence_to_full_holds_under_random_traffic() {
    let stop = Pattern::Random {
        num: 2,
        denom: 5,
        seed: 99,
    };
    let voids = Pattern::Random {
        num: 1,
        denom: 4,
        seed: 7,
    };
    let mut full = FullRelayStation::new();
    let mut fifo = FifoStation::new(2);
    let mut src_a = Source::with_void_pattern(voids.clone());
    let mut src_b = Source::with_void_pattern(voids);
    for cycle in 0..500u64 {
        let s = stop.at(cycle);
        assert_eq!(full.output(), fifo.output(), "cycle {cycle}");
        assert_eq!(full.stop_upstream(), fifo.stop_upstream(), "cycle {cycle}");
        let (ua, ub) = (full.stop_upstream(), fifo.stop_upstream());
        full.clock(src_a.output(), s);
        fifo.clock(src_b.output(), s);
        src_a.clock(ua);
        src_b.clock(ub);
    }
}

#[test]
fn carloni_shell_blocks_on_any_stop() {
    let mut shell = Shell::with_variant(ConstPearl::new(7), ProtocolVariant::Carloni);
    // Drain the initial output, then stop over the void: the Carloni
    // shell must stall anyway.
    shell.clock(&[], &[false]);
    shell.clock(&[], &[false]);
    let before = shell.stats().fires;
    shell.clock(&[], &[true]);
    assert_eq!(
        shell.stats().fires,
        before,
        "carloni must respect stop over void"
    );
}

#[test]
fn refined_shell_fires_through_stop_over_void() {
    let mut shell = Shell::new(ConstPearl::new(7));
    shell.clock(&[], &[false]); // consumed: output now refreshed each fire
    let before = shell.stats().fires;
    // Make the output void first: impossible for a firing const shell —
    // outputs are always replaced valid. Instead check can_fire directly
    // after a forced consumption with simultaneous stop on the *void*
    // state of an identity shell.
    let mut idle = Shell::new(lip_core::pearl::IdentityPearl::new());
    idle.clock(&[Token::VOID], &[false]); // output consumed, now void
    assert!(idle.can_fire(&[Token::valid(1)], &[true]));
    let _ = before;
}

#[test]
fn buffered_shell_stats_and_display() {
    let mut b = BufferedShell::new(lip_core::pearl::AccumulatorPearl::new());
    b.clock(&[Token::valid(5)], &[false]);
    assert_eq!(b.stats().fires, 1);
    assert!(b.to_string().contains("Buffered"));
    assert_eq!(b.variant(), ProtocolVariant::Refined);
    assert_eq!(b.effective_input(0, Token::valid(9)), Token::valid(9));
}

#[test]
fn delay_pearl_inside_shell_is_gated_with_it() {
    let mut shell = Shell::new(DelayPearl::new(2));
    // Fire twice, then gate: internal pipeline must freeze.
    shell.clock(&[Token::valid(10)], &[false]);
    shell.clock(&[Token::valid(11)], &[false]);
    let frozen = shell.pearl_state();
    for _ in 0..5 {
        shell.clock(&[Token::VOID], &[false]);
    }
    assert_eq!(shell.pearl_state(), frozen);
    // Resume: the pipeline picks up where it left off.
    shell.clock(&[Token::valid(12)], &[false]);
    assert_eq!(shell.outputs()[0], Token::valid(10));
}

#[test]
fn pearl_trait_object_reports_metadata() {
    let p: Box<dyn Pearl> = Box::new(DelayPearl::new(3));
    assert_eq!(p.num_inputs(), 1);
    assert_eq!(p.state().len(), 3);
    assert_eq!(p.name(), "delay");
    let q = p.clone();
    assert_eq!(q.state(), p.state());
}
