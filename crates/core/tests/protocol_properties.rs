//! Property-based tests of the protocol invariants.
//!
//! The paper's safety notion: a composition of shells and relay stations
//! must behave, up to latency, exactly like the original zero-delay
//! system. Concretely, on every channel the stream of *informative*
//! tokens must arrive complete, in order, with no duplicates — for any
//! stop/void pattern exercised by the environment. These tests drive
//! randomised pipelines and check exactly that.

use lip_core::pearl::{AccumulatorPearl, IdentityPearl};
use lip_core::{Pattern, RelayKind, RelayStation, Shell, Sink, Source, Token};
use proptest::prelude::*;

/// Drive `src -> stations[0] -> ... -> stations[k-1] -> sink` for
/// `cycles` cycles, honouring the protocol's evaluation order.
fn run_chain(stations: &mut [RelayStation], src: &mut Source, sink: &mut Sink, cycles: usize) {
    for _ in 0..cycles {
        // Forward phase: settle the token offered at each stage input.
        let mut inputs = Vec::with_capacity(stations.len() + 1);
        let mut x = src.output();
        for rs in stations.iter() {
            inputs.push(x);
            x = rs.output(x);
        }
        let to_sink = x;

        // Backward phase: stops, downstream to upstream. Relay-station
        // stops are registered (Moore), so no iteration is needed.
        let mut stops = vec![false; stations.len()]; // stop over each station's output
        let mut down = sink.stop();
        for (i, rs) in stations.iter().enumerate().rev() {
            stops[i] = down;
            down = rs.stop_upstream();
        }
        let stop_src = down;

        // Clock edge.
        sink.clock(to_sink);
        for (i, rs) in stations.iter_mut().enumerate() {
            rs.clock(inputs[i], stops[i]);
        }
        src.clock(stop_src);
    }
}

/// `received` must be exactly `0..n` for some `n`: complete, ordered,
/// duplicate-free.
fn assert_in_order_prefix(received: &[u64]) {
    for (i, &v) in received.iter().enumerate() {
        assert_eq!(
            v, i as u64,
            "stream corrupted at position {i}: {received:?}"
        );
    }
}

fn relay_kind_strategy() -> impl Strategy<Value = RelayKind> {
    prop_oneof![Just(RelayKind::Full), Just(RelayKind::Half)]
}

proptest! {
    /// Any chain of relay stations is a transparent FIFO under any sink
    /// stop pattern and any source void pattern.
    #[test]
    fn relay_chain_preserves_streams(
        kinds in proptest::collection::vec(relay_kind_strategy(), 0..6),
        stop_bits in proptest::collection::vec(any::<bool>(), 1..24),
        void_bits in proptest::collection::vec(any::<bool>(), 1..24),
        cycles in 16usize..200,
    ) {
        let mut stations: Vec<RelayStation> =
            kinds.iter().map(|&k| RelayStation::new(k)).collect();
        let mut src = Source::with_void_pattern(Pattern::Cyclic(void_bits));
        let mut sink = Sink::with_stop_pattern(Pattern::Cyclic(stop_bits));
        run_chain(&mut stations, &mut src, &mut sink, cycles);
        assert_in_order_prefix(sink.received());
    }

    /// With a free-flowing sink and no voids, a chain of full relay
    /// stations delivers one token per cycle after its fill latency
    /// (tree-topology claim: throughput 1, transient = path latency).
    #[test]
    fn full_chain_reaches_unit_throughput(
        n_stations in 0usize..8,
        cycles in 30usize..120,
    ) {
        let mut stations: Vec<RelayStation> =
            (0..n_stations).map(|_| RelayStation::new(RelayKind::Full)).collect();
        let mut src = Source::new();
        let mut sink = Sink::new();
        run_chain(&mut stations, &mut src, &mut sink, cycles);
        assert_in_order_prefix(sink.received());
        // Exactly the pipeline-fill voids are lost; every later cycle
        // delivers data.
        assert_eq!(sink.received().len(), cycles - n_stations);
        assert_eq!(sink.voids_seen() as usize, n_stations);
    }

    /// Half relay stations are latency-transparent: they add no bubbles
    /// at all when nothing stops.
    #[test]
    fn half_chain_is_latency_transparent(
        n_stations in 0usize..8,
        cycles in 10usize..80,
    ) {
        let mut stations: Vec<RelayStation> =
            (0..n_stations).map(|_| RelayStation::new(RelayKind::Half)).collect();
        let mut src = Source::new();
        let mut sink = Sink::new();
        run_chain(&mut stations, &mut src, &mut sink, cycles);
        assert_eq!(sink.received().len(), cycles);
        assert_eq!(sink.voids_seen(), 0);
    }

    /// A persistent stop must not lose the in-flight token, whatever the
    /// station mix, and the system must resume cleanly afterwards.
    #[test]
    fn stop_burst_loses_nothing(
        kinds in proptest::collection::vec(relay_kind_strategy(), 1..5),
        burst_at in 1u32..10,
        burst_len in 1u32..10,
    ) {
        let total = 60;
        let stop_bits: Vec<bool> = (0..total)
            .map(|c| (burst_at..burst_at + burst_len).contains(&(c as u32)))
            .collect();
        let mut stations: Vec<RelayStation> =
            kinds.iter().map(|&k| RelayStation::new(k)).collect();
        let mut src = Source::new();
        let mut sink = Sink::with_stop_pattern(Pattern::Cyclic(stop_bits));
        run_chain(&mut stations, &mut src, &mut sink, total);
        assert_in_order_prefix(sink.received());
        // Stalled cycles and fill bubbles are bounded; everything else
        // must deliver data.
        let full_fill: usize = kinds.iter().filter(|k| **k == RelayKind::Full).count();
        let lost_bound = burst_len as usize + full_fill + kinds.len();
        assert!(
            sink.received().len() + lost_bound >= total,
            "lost more tokens than stop burst + fill can explain: {} received of {}",
            sink.received().len(),
            total
        );
    }

    /// A shell between relay stations computes its pearl over the
    /// uncorrupted stream: an accumulator's outputs are exactly the
    /// prefix sums of 0,1,2,...
    #[test]
    fn shell_computes_over_streams(
        front in relay_kind_strategy(),
        back in relay_kind_strategy(),
        stop_bits in proptest::collection::vec(any::<bool>(), 1..16),
        void_bits in proptest::collection::vec(any::<bool>(), 1..16),
        cycles in 20usize..150,
    ) {
        let mut r_front = RelayStation::new(front);
        let mut r_back = RelayStation::new(back);
        let mut shell = Shell::new(AccumulatorPearl::new());
        let mut src = Source::with_void_pattern(Pattern::Cyclic(void_bits));
        let mut sink = Sink::with_stop_pattern(Pattern::Cyclic(stop_bits));

        for _ in 0..cycles {
            // Forward phase.
            let src_out = src.output();
            let shell_in = r_front.output(src_out);
            let shell_out = shell.outputs()[0];
            let sink_in = r_back.output(shell_out);
            // Backward phase.
            let stop_sink = sink.stop();
            let stop_shell_out = r_back.stop_upstream();
            let stop_front = shell.stop_upstream(0, &[shell_in], &[stop_shell_out]);
            let stop_src = r_front.stop_upstream();
            // Edge.
            sink.clock(sink_in);
            r_back.clock(shell_out, stop_sink);
            shell.clock(&[shell_in], &[stop_shell_out]);
            r_front.clock(src_out, stop_front);
            src.clock(stop_src);
        }

        // Expected: initial output (accumulator fired once on zeros at
        // init => 0), then prefix sums of 0,1,2,...
        let received = sink.received();
        let mut expect = vec![0u64];
        let mut acc = 0u64;
        for k in 0..received.len() {
            acc += k as u64;
            expect.push(acc);
        }
        assert_eq!(received, &expect[..received.len()], "pearl stream corrupted");
    }

    /// Clock gating: when its input stream starves, a shell's pearl state
    /// freezes (paper: "a module waiting for new data and/or stopped
    /// keeps its present state").
    #[test]
    fn gated_shell_freezes_state(starve_after in 1usize..20) {
        let mut shell = Shell::new(AccumulatorPearl::new());
        for i in 0..starve_after {
            shell.clock(&[Token::valid(i as u64)], &[false]);
        }
        let frozen = shell.pearl_state();
        for _ in 0..50 {
            shell.clock(&[Token::VOID], &[false]);
        }
        assert_eq!(shell.pearl_state(), frozen);
    }

    /// The identity shell under arbitrary stop/void traffic still
    /// delivers the exact input stream (end-to-end safety with a
    /// stateless pearl).
    #[test]
    fn identity_shell_end_to_end(
        stop_bits in proptest::collection::vec(any::<bool>(), 1..16),
        void_bits in proptest::collection::vec(any::<bool>(), 1..16),
        cycles in 20usize..150,
    ) {
        let mut r_back = RelayStation::new(RelayKind::Half);
        let mut shell = Shell::new(IdentityPearl::new());
        let mut src = Source::with_void_pattern(Pattern::Cyclic(void_bits));
        let mut sink = Sink::with_stop_pattern(Pattern::Cyclic(stop_bits));

        for _ in 0..cycles {
            let src_out = src.output();
            let shell_out = shell.outputs()[0];
            let sink_in = r_back.output(shell_out);
            let stop_sink = sink.stop();
            let stop_shell_out = r_back.stop_upstream();
            let stop_src = shell.stop_upstream(0, &[src_out], &[stop_shell_out]);
            sink.clock(sink_in);
            r_back.clock(shell_out, stop_sink);
            shell.clock(&[src_out], &[stop_shell_out]);
            src.clock(stop_src);
        }

        // Identity shell initialises its output to identity(0) = 0, then
        // relays 0,1,2,...: so the sink sees 0, 0, 1, 2, 3, ...
        let received = sink.received();
        if !received.is_empty() {
            assert_eq!(received[0], 0);
            for (i, &v) in received[1..].iter().enumerate() {
                assert_eq!(v, i as u64, "stream corrupted: {received:?}");
            }
        }
    }
}
