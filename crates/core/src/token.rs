//! Tokens: the unit of information travelling on a latency-insensitive
//! channel.

use std::fmt;

/// A datum travelling on a channel together with its `valid` flag.
///
/// Latency-insensitive channels carry either an *informative* token (a
/// datum the consumer has still to use) or a *void* token (τ in Carloni's
/// theory, printed `n` in the paper's figures). Voids appear when a relay
/// station has nothing buffered or when a stalled shell's output was
/// already consumed.
///
/// # Example
///
/// ```
/// use lip_core::Token;
///
/// let t = Token::valid(42);
/// assert!(t.is_valid());
/// assert_eq!(t.value(), Some(42));
/// assert_eq!(Token::VOID.value(), None);
/// assert_eq!(Token::VOID.to_string(), "n");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Token(Option<u64>);

impl Token {
    /// The void token (`valid = 0`).
    pub const VOID: Token = Token(None);

    /// An informative token carrying `value`.
    #[must_use]
    pub fn valid(value: u64) -> Self {
        Token(Some(value))
    }

    /// `true` for informative tokens.
    #[must_use]
    pub fn is_valid(self) -> bool {
        self.0.is_some()
    }

    /// `true` for the void token.
    #[must_use]
    pub fn is_void(self) -> bool {
        self.0.is_none()
    }

    /// The carried datum, or `None` for voids.
    #[must_use]
    pub fn value(self) -> Option<u64> {
        self.0
    }

    /// The carried datum, or `default` for voids.
    #[must_use]
    pub fn value_or(self, default: u64) -> u64 {
        self.0.unwrap_or(default)
    }

    /// Strip the datum, keeping only validity — the *skeleton* view of the
    /// token used by the paper's cheap deadlock simulations.
    #[must_use]
    pub fn skeleton(self) -> Token {
        if self.is_valid() {
            Token::valid(0)
        } else {
            Token::VOID
        }
    }
}

impl From<Option<u64>> for Token {
    fn from(v: Option<u64>) -> Self {
        Token(v)
    }
}

impl From<Token> for Option<u64> {
    fn from(t: Token) -> Self {
        t.0
    }
}

impl fmt::Display for Token {
    /// Prints the datum, or `n` for voids — matching the notation of the
    /// paper's Fig. 1 and Fig. 2.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            Some(v) => write!(f, "{v}"),
            None => f.write_str("n"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn void_and_valid_are_distinct() {
        assert!(Token::VOID.is_void());
        assert!(!Token::VOID.is_valid());
        assert!(Token::valid(0).is_valid());
        assert_ne!(Token::valid(0), Token::VOID);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(Token::valid(9).value(), Some(9));
        assert_eq!(Token::VOID.value(), None);
        assert_eq!(Token::VOID.value_or(7), 7);
        assert_eq!(Token::valid(9).value_or(7), 9);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(Token::valid(3).to_string(), "3");
        assert_eq!(Token::VOID.to_string(), "n");
    }

    #[test]
    fn skeleton_erases_data_keeps_validity() {
        assert_eq!(Token::valid(99).skeleton(), Token::valid(0));
        assert_eq!(Token::VOID.skeleton(), Token::VOID);
    }

    #[test]
    fn option_conversions() {
        let t: Token = Some(5).into();
        assert_eq!(t, Token::valid(5));
        let o: Option<u64> = Token::VOID.into();
        assert_eq!(o, None);
        assert_eq!(Token::default(), Token::VOID);
    }
}
