//! The buffered shell: the alternative the paper's simplified shell is
//! measured against.
//!
//! The abstract contrasts its shell with "the papers by Carloni et
//! alii": the earlier shell *stores incoming stop signals* (its inputs
//! are registered), so no relay station is required between two shells —
//! at the price of one register per input. [`BufferedShell`] implements
//! that alternative: a [`Shell`] whose every input carries a fused
//! one-place skid buffer with a registered stop, behaviourally identical
//! to placing a [`HalfRelayStation`](crate::HalfRelayStation) on each
//! input channel.
//!
//! This makes the paper's minimum-memory discussion executable: the two
//! designs — simplified shell + explicit half station per shell-to-shell
//! channel, versus buffered shell — use the same total storage and
//! produce the same cycle-level behaviour (asserted by the test-suite
//! and by experiment `EXP-A2`).

use std::fmt;

use crate::pearl::Pearl;
use crate::shell::{Shell, ShellStats};
use crate::token::Token;
use crate::variant::ProtocolVariant;

/// A shell whose inputs are registered: incoming stops are *saved*, so
/// the backward stop path is cut inside the shell itself.
///
/// Per-cycle usage mirrors [`Shell`], except that `stop_upstream` is a
/// Moore output (state only), like a relay station's.
///
/// # Example
///
/// ```
/// use lip_core::{BufferedShell, Token};
/// use lip_core::pearl::IdentityPearl;
///
/// let mut shell = BufferedShell::new(IdentityPearl::new());
/// // Registered back-pressure: no stop before anything is buffered.
/// assert!(!shell.stop_upstream(0));
/// shell.clock(&[Token::valid(5)], &[false]);
/// assert_eq!(shell.outputs()[0], Token::valid(5));
/// ```
#[derive(Debug, Clone)]
pub struct BufferedShell {
    inner: Shell,
    /// One-place skid buffer per input (void = empty).
    buffers: Vec<Token>,
}

impl BufferedShell {
    /// Wrap `pearl` using the paper's refined protocol variant.
    pub fn new(pearl: impl Pearl + 'static) -> Self {
        Self::with_variant(pearl, ProtocolVariant::Refined)
    }

    /// Wrap `pearl` under an explicit [`ProtocolVariant`].
    pub fn with_variant(pearl: impl Pearl + 'static, variant: ProtocolVariant) -> Self {
        Self::from_box(Box::new(pearl), variant)
    }

    /// Wrap an already-boxed pearl (used by elaboration code).
    #[must_use]
    pub fn from_box(pearl: Box<dyn Pearl>, variant: ProtocolVariant) -> Self {
        let inner = Shell::from_box(pearl, variant);
        let buffers = vec![Token::VOID; inner.num_inputs()];
        BufferedShell { inner, buffers }
    }

    /// Number of input channels.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.inner.num_inputs()
    }

    /// Number of output channels.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.inner.num_outputs()
    }

    /// The protocol variant this shell follows.
    #[must_use]
    pub fn variant(&self) -> ProtocolVariant {
        self.inner.variant()
    }

    /// Current output tokens.
    #[must_use]
    pub fn outputs(&self) -> &[Token] {
        self.inner.outputs()
    }

    /// Firing statistics so far.
    #[must_use]
    pub fn stats(&self) -> ShellStats {
        self.inner.stats()
    }

    /// Snapshot of the wrapped pearl's internal state.
    #[must_use]
    pub fn pearl_state(&self) -> Vec<u64> {
        self.inner.pearl_state()
    }

    /// The buffered token at input `index` (void when empty).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn buffer(&self, index: usize) -> Token {
        self.buffers[index]
    }

    /// The token the pearl would consume on input `index` this cycle:
    /// the buffered one if present, else the channel's.
    #[must_use]
    pub fn effective_input(&self, index: usize, channel: Token) -> Token {
        if self.buffers[index].is_valid() {
            self.buffers[index]
        } else {
            channel
        }
    }

    fn effective_inputs(&self, inputs: &[Token]) -> Vec<Token> {
        inputs
            .iter()
            .enumerate()
            .map(|(i, t)| self.effective_input(i, *t))
            .collect()
    }

    /// Registered back-pressure towards the producer of input `index`:
    /// asserted iff that input's buffer is occupied. A Moore output —
    /// this is the "memory element that saves the stop".
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn stop_upstream(&self, index: usize) -> bool {
        self.buffers[index].is_valid()
    }

    /// Whether the pearl fires this cycle, given the channel tokens and
    /// downstream stops.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the port counts.
    #[must_use]
    pub fn can_fire(&self, inputs: &[Token], output_stops: &[bool]) -> bool {
        self.inner
            .can_fire(&self.effective_inputs(inputs), output_stops)
    }

    /// Advance one clock cycle.
    ///
    /// On a stall, any valid channel token whose buffer is free is
    /// captured (its producer saw our registered stop low, so it
    /// considers the token delivered — exactly the half-station capture
    /// rule). On a fire, consumed buffers empty; channel tokens offered
    /// while a buffer was occupied are re-offers and are ignored.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the port counts.
    pub fn clock(&mut self, inputs: &[Token], output_stops: &[bool]) {
        assert_eq!(inputs.len(), self.num_inputs(), "input arity mismatch");
        let effective = self.effective_inputs(inputs);
        let fire = self.inner.can_fire(&effective, output_stops);
        if fire {
            for buf in &mut self.buffers {
                *buf = Token::VOID;
            }
        } else {
            for (i, buf) in self.buffers.iter_mut().enumerate() {
                if buf.is_void() && inputs[i].is_valid() {
                    *buf = inputs[i];
                }
            }
        }
        self.inner.clock(&effective, output_stops);
    }
}

impl fmt::Display for BufferedShell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Buffered{}", self.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::endpoint::{Pattern, Sink, Source};
    use crate::pearl::{AccumulatorPearl, IdentityPearl, JoinPearl};
    use crate::relay::HalfRelayStation;

    #[test]
    fn outputs_initialise_valid() {
        let shell = BufferedShell::new(IdentityPearl::new());
        assert!(shell.outputs()[0].is_valid());
        assert!(!shell.stop_upstream(0));
        assert_eq!(shell.num_inputs(), 1);
        assert_eq!(shell.num_outputs(), 1);
    }

    #[test]
    fn stall_captures_channel_token() {
        // A join stalls on one void input; the valid input must be
        // captured (its producer was not stopped this cycle).
        let mut shell = BufferedShell::new(JoinPearl::first(2));
        shell.clock(&[Token::valid(7), Token::VOID], &[false]);
        assert_eq!(shell.buffer(0), Token::valid(7));
        assert!(shell.stop_upstream(0));
        assert!(!shell.stop_upstream(1));
        // Second input arrives: fire from buffer + channel.
        shell.clock(&[Token::valid(99), Token::valid(8)], &[false]);
        assert_eq!(shell.outputs()[0], Token::valid(7)); // first(2) = input 0
        assert!(!shell.stop_upstream(0)); // buffer drained
    }

    #[test]
    fn reoffer_is_ignored_while_buffered() {
        let mut shell = BufferedShell::new(JoinPearl::first(2));
        shell.clock(&[Token::valid(1), Token::VOID], &[false]);
        // Upstream re-offers token 1 (it saw our stop); it must not be
        // duplicated.
        shell.clock(&[Token::valid(1), Token::VOID], &[false]);
        assert_eq!(shell.buffer(0), Token::valid(1));
        shell.clock(&[Token::valid(1), Token::valid(2)], &[false]);
        assert_eq!(shell.outputs()[0], Token::valid(1));
    }

    #[test]
    fn gating_preserves_pearl_state() {
        let mut shell = BufferedShell::new(AccumulatorPearl::new());
        shell.clock(&[Token::valid(10)], &[false]);
        let state = shell.pearl_state();
        for _ in 0..5 {
            shell.clock(&[Token::VOID], &[false]);
        }
        assert_eq!(shell.pearl_state(), state);
        assert_eq!(shell.stats().fires, 1);
    }

    /// The equivalence the paper's minimum-memory discussion implies:
    /// a buffered shell behaves exactly like a half relay station
    /// feeding a simplified shell.
    #[test]
    fn buffered_shell_equals_half_station_plus_simple_shell() {
        let stop_pattern = Pattern::Cyclic(vec![false, true, true, false, true]);
        let void_pattern = Pattern::Cyclic(vec![false, false, true]);

        // Design A: buffered shell.
        let mut src_a = Source::with_void_pattern(void_pattern.clone());
        let mut sink_a = Sink::with_stop_pattern(stop_pattern.clone());
        let mut shell_a = BufferedShell::new(AccumulatorPearl::new());

        // Design B: half relay station + simplified shell.
        let mut src_b = Source::with_void_pattern(void_pattern);
        let mut sink_b = Sink::with_stop_pattern(stop_pattern);
        let mut hrs = HalfRelayStation::new();
        let mut shell_b = Shell::new(AccumulatorPearl::new());

        for _ in 0..200 {
            // Design A.
            let in_a = src_a.output();
            let out_a = shell_a.outputs()[0];
            let stop_out_a = sink_a.stop();
            let stop_src_a = shell_a.stop_upstream(0);
            sink_a.clock(out_a);
            shell_a.clock(&[in_a], &[stop_out_a]);
            src_a.clock(stop_src_a);

            // Design B.
            let src_out = src_b.output();
            let shell_in = hrs.output(src_out);
            let out_b = shell_b.outputs()[0];
            let stop_out_b = sink_b.stop();
            let stop_hrs = shell_b.stop_upstream(0, &[shell_in], &[stop_out_b]);
            let stop_src_b = hrs.stop_upstream();
            sink_b.clock(out_b);
            shell_b.clock(&[shell_in], &[stop_out_b]);
            hrs.clock(src_out, stop_hrs);
            src_b.clock(stop_src_b);
        }
        assert_eq!(sink_a.received(), sink_b.received());
        assert_eq!(sink_a.voids_seen(), sink_b.voids_seen());
    }

    #[test]
    fn display_marks_buffered() {
        let shell = BufferedShell::new(IdentityPearl::new());
        assert!(shell.to_string().starts_with("BufferedShell("));
    }

    #[test]
    fn clone_is_independent() {
        let mut a = BufferedShell::new(AccumulatorPearl::new());
        let b = a.clone();
        a.clock(&[Token::valid(3)], &[false]);
        assert_ne!(a.pearl_state(), b.pearl_state());
    }

    use crate::shell::Shell;
}
