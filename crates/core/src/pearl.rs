//! Pearls: the functional modules a shell encapsulates.
//!
//! Carloni's terminology calls the original synchronous IP block the
//! *pearl* and its latency-insensitive wrapper the *shell*. A pearl is an
//! ordinary clocked module designed under the zero-delay-wire assumption;
//! the shell fires it only when every input is informative and every
//! pending output has been consumed, and clock-gates it otherwise.
//!
//! The [`Pearl`] trait captures exactly what the shell needs: port counts,
//! a firing function, and (for stateful pearls) access to the internal
//! state so tests and the model checker can confirm clock gating keeps the
//! state unchanged.

use std::fmt;

/// A synchronous functional module wrapped by a [`Shell`](crate::Shell).
///
/// One call to [`eval`](Pearl::eval) corresponds to one *enabled* clock
/// tick: the shell guarantees it is called only when the module would have
/// fired in the original zero-delay design. Implementations may hold
/// state; the shell never calls `eval` on a gated cycle, which is the
/// protocol's "clock gating" obligation.
///
/// `Send + Sync` is required so whole systems (whose shells box pearls)
/// can be shared across the deterministic sweep executor's threads;
/// pearls are plain data plus pure functions, so this costs nothing in
/// practice.
pub trait Pearl: Send + Sync {
    /// Number of input ports.
    fn num_inputs(&self) -> usize;

    /// Number of output ports.
    fn num_outputs(&self) -> usize;

    /// Fire once: consume one datum per input port, produce one per
    /// output port.
    ///
    /// `inputs` has length [`num_inputs`](Pearl::num_inputs); `outputs`
    /// has length [`num_outputs`](Pearl::num_outputs) and is fully
    /// overwritten.
    fn eval(&mut self, inputs: &[u64], outputs: &mut [u64]);

    /// Snapshot of the internal state, used to verify clock gating and to
    /// hash system states. Stateless pearls return an empty vector.
    fn state(&self) -> Vec<u64> {
        Vec::new()
    }

    /// Human-readable name for traces and evolution tables.
    fn name(&self) -> &str {
        "pearl"
    }

    /// Clone into a box, so shells (and the systems containing them) can
    /// be cloned for state-space exploration.
    fn clone_box(&self) -> Box<dyn Pearl>;
}

impl Clone for Box<dyn Pearl> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl fmt::Debug for dyn Pearl {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Pearl({} {}in {}out state={:?})",
            self.name(),
            self.num_inputs(),
            self.num_outputs(),
            self.state()
        )
    }
}

/// A stateless pearl computed by a plain function.
///
/// # Example
///
/// ```
/// use lip_core::pearl::{FnPearl, Pearl};
///
/// let mut add = FnPearl::new("add", 2, 1, |i, o| o[0] = i[0] + i[1]);
/// let mut out = [0u64];
/// add.eval(&[2, 3], &mut out);
/// assert_eq!(out[0], 5);
/// ```
#[derive(Clone)]
pub struct FnPearl<F> {
    name: String,
    inputs: usize,
    outputs: usize,
    f: F,
}

impl<F> core::fmt::Debug for FnPearl<F> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("FnPearl")
            .field("name", &self.name)
            .field("inputs", &self.inputs)
            .field("outputs", &self.outputs)
            .finish_non_exhaustive()
    }
}

impl<F> FnPearl<F>
where
    F: FnMut(&[u64], &mut [u64]) + Clone + Send + Sync + 'static,
{
    /// Wrap `f` as a pearl with the given port counts.
    pub fn new(name: impl Into<String>, inputs: usize, outputs: usize, f: F) -> Self {
        FnPearl {
            name: name.into(),
            inputs,
            outputs,
            f,
        }
    }
}

impl<F> Pearl for FnPearl<F>
where
    F: FnMut(&[u64], &mut [u64]) + Clone + Send + Sync + 'static,
{
    fn num_inputs(&self) -> usize {
        self.inputs
    }

    fn num_outputs(&self) -> usize {
        self.outputs
    }

    fn eval(&mut self, inputs: &[u64], outputs: &mut [u64]) {
        (self.f)(inputs, outputs);
    }

    fn name(&self) -> &str {
        &self.name
    }

    fn clone_box(&self) -> Box<dyn Pearl> {
        Box::new(self.clone())
    }
}

/// Identity on one channel — the workhorse of protocol-level experiments,
/// where only token movement matters. With `fanout > 1` it copies its
/// input to several output ports (LID fanout is per-port, each port having
/// its own valid/stop pair).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct IdentityPearl {
    fanout: usize,
}

impl IdentityPearl {
    /// One-input, one-output identity.
    #[must_use]
    pub fn new() -> Self {
        IdentityPearl { fanout: 1 }
    }

    /// One-input identity replicated onto `fanout` output ports.
    ///
    /// # Panics
    ///
    /// Panics if `fanout == 0`.
    #[must_use]
    pub fn with_fanout(fanout: usize) -> Self {
        assert!(fanout > 0, "fanout must be at least 1");
        IdentityPearl { fanout }
    }
}

impl Default for IdentityPearl {
    fn default() -> Self {
        Self::new()
    }
}

impl Pearl for IdentityPearl {
    fn num_inputs(&self) -> usize {
        1
    }

    fn num_outputs(&self) -> usize {
        self.fanout
    }

    fn eval(&mut self, inputs: &[u64], outputs: &mut [u64]) {
        for o in outputs.iter_mut() {
            *o = inputs[0];
        }
    }

    fn name(&self) -> &str {
        "identity"
    }

    fn clone_box(&self) -> Box<dyn Pearl> {
        Box::new(self.clone())
    }
}

/// Join pearl: combines `arity` inputs into one output with a chosen
/// reduction. The paper's Fig. 1 join node ("C") is `Join::first(2)` —
/// throughput analysis only needs the token alignment, not the arithmetic.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct JoinPearl {
    arity: usize,
    op: JoinOp,
}

/// Reduction applied by a [`JoinPearl`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum JoinOp {
    /// Emit the first input (token alignment only).
    First,
    /// Wrapping sum of all inputs.
    Sum,
    /// Maximum of all inputs.
    Max,
}

impl JoinPearl {
    /// A join forwarding its first input.
    ///
    /// # Panics
    ///
    /// Panics if `arity == 0`.
    #[must_use]
    pub fn first(arity: usize) -> Self {
        assert!(arity > 0, "join arity must be at least 1");
        JoinPearl {
            arity,
            op: JoinOp::First,
        }
    }

    /// A join computing the wrapping sum of its inputs.
    ///
    /// # Panics
    ///
    /// Panics if `arity == 0`.
    #[must_use]
    pub fn sum(arity: usize) -> Self {
        assert!(arity > 0, "join arity must be at least 1");
        JoinPearl {
            arity,
            op: JoinOp::Sum,
        }
    }

    /// A join computing the maximum of its inputs.
    ///
    /// # Panics
    ///
    /// Panics if `arity == 0`.
    #[must_use]
    pub fn max(arity: usize) -> Self {
        assert!(arity > 0, "join arity must be at least 1");
        JoinPearl {
            arity,
            op: JoinOp::Max,
        }
    }
}

impl Pearl for JoinPearl {
    fn num_inputs(&self) -> usize {
        self.arity
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn eval(&mut self, inputs: &[u64], outputs: &mut [u64]) {
        outputs[0] = match self.op {
            JoinOp::First => inputs[0],
            JoinOp::Sum => inputs.iter().fold(0u64, |a, &b| a.wrapping_add(b)),
            JoinOp::Max => inputs.iter().copied().max().unwrap_or(0),
        };
    }

    fn name(&self) -> &str {
        "join"
    }

    fn clone_box(&self) -> Box<dyn Pearl> {
        Box::new(self.clone())
    }
}

/// A general N-input, M-output pearl: reduces its inputs with a wrapping
/// sum and replicates the result onto every output port. The generic
/// "some computation happens here" node used by netlist generators, where
/// only token alignment matters.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RouterPearl {
    inputs: usize,
    outputs: usize,
}

impl RouterPearl {
    /// A router with the given port counts.
    ///
    /// # Panics
    ///
    /// Panics if `outputs == 0` (a node must produce something; use a
    /// sink for pure consumers).
    #[must_use]
    pub fn new(inputs: usize, outputs: usize) -> Self {
        assert!(outputs > 0, "router must have at least one output");
        RouterPearl { inputs, outputs }
    }
}

impl Pearl for RouterPearl {
    fn num_inputs(&self) -> usize {
        self.inputs
    }

    fn num_outputs(&self) -> usize {
        self.outputs
    }

    fn eval(&mut self, inputs: &[u64], outputs: &mut [u64]) {
        let v = inputs.iter().fold(0u64, |a, &b| a.wrapping_add(b));
        for o in outputs.iter_mut() {
            *o = v;
        }
    }

    fn name(&self) -> &str {
        "router"
    }

    fn clone_box(&self) -> Box<dyn Pearl> {
        Box::new(self.clone())
    }
}

/// A stateful accumulator: output is the running (wrapping) sum of every
/// datum consumed so far. Used to verify that clock gating preserves
/// pearl state ("a module waiting for new data and/or stopped keeps its
/// present state").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AccumulatorPearl {
    sum: u64,
}

impl AccumulatorPearl {
    /// An accumulator starting from zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current accumulated value.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }
}

impl Pearl for AccumulatorPearl {
    fn num_inputs(&self) -> usize {
        1
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn eval(&mut self, inputs: &[u64], outputs: &mut [u64]) {
        self.sum = self.sum.wrapping_add(inputs[0]);
        outputs[0] = self.sum;
    }

    fn state(&self) -> Vec<u64> {
        vec![self.sum]
    }

    fn name(&self) -> &str {
        "accumulator"
    }

    fn clone_box(&self) -> Box<dyn Pearl> {
        Box::new(*self)
    }
}

/// A stateful counter source pearl: zero inputs, one output, emits
/// 0, 1, 2, … — sequence numbers make ordering violations visible, which
/// is how the verification properties detect skipped or reordered tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CounterPearl {
    next: u64,
}

impl CounterPearl {
    /// A counter starting from zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A counter starting from `start`.
    #[must_use]
    pub fn starting_at(start: u64) -> Self {
        CounterPearl { next: start }
    }
}

impl Pearl for CounterPearl {
    fn num_inputs(&self) -> usize {
        0
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn eval(&mut self, _inputs: &[u64], outputs: &mut [u64]) {
        outputs[0] = self.next;
        self.next = self.next.wrapping_add(1);
    }

    fn state(&self) -> Vec<u64> {
        vec![self.next]
    }

    fn name(&self) -> &str {
        "counter"
    }

    fn clone_box(&self) -> Box<dyn Pearl> {
        Box::new(*self)
    }
}

/// A constant generator: zero inputs, one output, always the same
/// value. Useful as a coefficient port in datapath examples.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConstPearl {
    value: u64,
}

impl ConstPearl {
    /// A pearl that always emits `value`.
    #[must_use]
    pub fn new(value: u64) -> Self {
        ConstPearl { value }
    }
}

impl Pearl for ConstPearl {
    fn num_inputs(&self) -> usize {
        0
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn eval(&mut self, _inputs: &[u64], outputs: &mut [u64]) {
        outputs[0] = self.value;
    }

    fn name(&self) -> &str {
        "const"
    }

    fn clone_box(&self) -> Box<dyn Pearl> {
        Box::new(*self)
    }
}

/// A `k`-stage internal pipeline: models a pearl whose own datapath is
/// pipelined (a multiplier, a filter). Each firing consumes one datum
/// and emits the datum from `k` firings ago (zeros before that). Being
/// inside the shell, the internal pipeline is clock-gated together with
/// the pearl — the protocol never observes its depth except as
/// different data timing, which is the latency-insensitivity point.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DelayPearl {
    stages: std::collections::VecDeque<u64>,
}

impl DelayPearl {
    /// A pearl with `k` internal pipeline stages (all initially zero).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` (use [`IdentityPearl`] for a combinational
    /// pass-through).
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "a delay pearl needs at least one stage");
        DelayPearl {
            stages: std::collections::VecDeque::from(vec![0; k]),
        }
    }

    /// Number of internal stages.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.stages.len()
    }
}

impl Pearl for DelayPearl {
    fn num_inputs(&self) -> usize {
        1
    }

    fn num_outputs(&self) -> usize {
        1
    }

    fn eval(&mut self, inputs: &[u64], outputs: &mut [u64]) {
        self.stages.push_back(inputs[0]);
        outputs[0] = self.stages.pop_front().expect("k >= 1 stages");
    }

    fn state(&self) -> Vec<u64> {
        self.stages.iter().copied().collect()
    }

    fn name(&self) -> &str {
        "delay"
    }

    fn clone_box(&self) -> Box<dyn Pearl> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn const_pearl_emits_fixed_value() {
        let mut p = ConstPearl::new(42);
        let mut out = [0u64];
        p.eval(&[], &mut out);
        p.eval(&[], &mut out);
        assert_eq!(out[0], 42);
        assert_eq!(p.num_inputs(), 0);
        assert!(p.state().is_empty());
    }

    #[test]
    fn delay_pearl_shifts_by_k() {
        let mut p = DelayPearl::new(2);
        assert_eq!(p.depth(), 2);
        let mut out = [0u64];
        for (input, expect) in [(10, 0), (11, 0), (12, 10), (13, 11)] {
            p.eval(&[input], &mut out);
            assert_eq!(out[0], expect);
        }
        assert_eq!(p.state(), vec![12, 13]);
    }

    #[test]
    #[should_panic(expected = "at least one stage")]
    fn delay_pearl_rejects_zero_depth() {
        let _ = DelayPearl::new(0);
    }

    #[test]
    fn fn_pearl_computes() {
        let mut p = FnPearl::new("xor", 2, 1, |i, o| o[0] = i[0] ^ i[1]);
        let mut out = [0u64];
        p.eval(&[0b1100, 0b1010], &mut out);
        assert_eq!(out[0], 0b0110);
        assert_eq!(p.name(), "xor");
        assert_eq!(p.num_inputs(), 2);
        assert_eq!(p.num_outputs(), 1);
        assert!(p.state().is_empty());
    }

    #[test]
    fn identity_fans_out() {
        let mut p = IdentityPearl::with_fanout(3);
        let mut out = [0u64; 3];
        p.eval(&[7], &mut out);
        assert_eq!(out, [7, 7, 7]);
        assert_eq!(p.num_outputs(), 3);
    }

    #[test]
    #[should_panic(expected = "fanout must be at least 1")]
    fn identity_rejects_zero_fanout() {
        let _ = IdentityPearl::with_fanout(0);
    }

    #[test]
    fn join_ops() {
        let mut out = [0u64];
        JoinPearl::first(3).eval(&[4, 5, 6], &mut out);
        assert_eq!(out[0], 4);
        JoinPearl::sum(3).eval(&[4, 5, 6], &mut out);
        assert_eq!(out[0], 15);
        JoinPearl::max(3).eval(&[4, 9, 6], &mut out);
        assert_eq!(out[0], 9);
    }

    #[test]
    fn accumulator_tracks_state() {
        let mut p = AccumulatorPearl::new();
        let mut out = [0u64];
        p.eval(&[10], &mut out);
        p.eval(&[5], &mut out);
        assert_eq!(out[0], 15);
        assert_eq!(p.sum(), 15);
        assert_eq!(p.state(), vec![15]);
    }

    #[test]
    fn counter_emits_sequence() {
        let mut p = CounterPearl::starting_at(3);
        let mut out = [0u64];
        p.eval(&[], &mut out);
        assert_eq!(out[0], 3);
        p.eval(&[], &mut out);
        assert_eq!(out[0], 4);
        assert_eq!(p.state(), vec![5]);
    }

    #[test]
    fn router_reduces_and_replicates() {
        let mut p = RouterPearl::new(2, 3);
        let mut out = [0u64; 3];
        p.eval(&[3, 4], &mut out);
        assert_eq!(out, [7, 7, 7]);
        assert_eq!(p.num_inputs(), 2);
        assert_eq!(p.num_outputs(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one output")]
    fn router_rejects_zero_outputs() {
        let _ = RouterPearl::new(1, 0);
    }

    #[test]
    fn boxed_pearls_clone() {
        let p: Box<dyn Pearl> = Box::new(AccumulatorPearl::new());
        let mut q = p.clone();
        let mut out = [0u64];
        q.eval(&[2], &mut out);
        // The original is unaffected by evaluating the clone.
        assert_eq!(p.state(), vec![0]);
        assert_eq!(q.state(), vec![2]);
        assert!(format!("{p:?}").contains("accumulator"));
    }
}
