//! Relay stations: the pipelined interconnect blocks of a
//! latency-insensitive design.
//!
//! A relay station sits on a channel whose wire is too long to traverse in
//! one clock period (the **full** station) or between two shells whose
//! back-to-back stop path must be cut (the **half** station, introduced by
//! the paper). Both register the backward `stop` signal; the data
//! register(s) absorb the token that is in flight during the one-cycle
//! stop lag, so no datum is ever lost:
//!
//! * [`FullRelayStation`] — two data registers (*main* + *aux*), forward
//!   latency 1, capacity 2. Initialised void (paper footnote 1: voids must
//!   flush towards the primary outputs during the transient).
//! * [`HalfRelayStation`] — one data register with a combinational bypass,
//!   forward latency 0, capacity 1. It exists because the simplified shell
//!   "does not save the incoming stop signals", so *"at least one memory
//!   element to save this signal is needed between two shells"*.
//!
//! Both are Moore machines on the stop output (`stop_upstream` depends on
//! state only), which is what cuts the combinational back-pressure chain.

use std::fmt;

use crate::token::Token;

/// Which flavour of relay station to instantiate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelayKind {
    /// Two registers, latency 1, capacity 2 — the paper's relay station.
    Full,
    /// One register with bypass, latency 0, capacity 1 — the paper's
    /// half relay station.
    Half,
    /// Generalised queueing station: latency 1, capacity `k ≥ 2`
    /// (`Fifo(2)` behaves like `Full`). This is the sized relay queue of
    /// the paper's reference \[5\] (Carloni & Sangiovanni-Vincentelli,
    /// DAC'00): extra capacity buys reconvergence slack without extra
    /// stations.
    Fifo(u8),
}

impl RelayKind {
    /// Storage capacity in tokens.
    ///
    /// # Panics
    ///
    /// Panics for `Fifo(k)` with `k < 2` (use [`RelayKind::Half`] for a
    /// single-place station).
    #[must_use]
    pub fn capacity(self) -> usize {
        match self {
            RelayKind::Full => 2,
            RelayKind::Half => 1,
            RelayKind::Fifo(k) => {
                assert!(k >= 2, "fifo stations need capacity >= 2");
                k as usize
            }
        }
    }

    /// Forward latency in cycles when the pipeline is flowing.
    #[must_use]
    pub fn forward_latency(self) -> u64 {
        match self {
            RelayKind::Full | RelayKind::Fifo(_) => 1,
            RelayKind::Half => 0,
        }
    }
}

impl fmt::Display for RelayKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelayKind::Full => f.write_str("full"),
            RelayKind::Half => f.write_str("half"),
            RelayKind::Fifo(k) => write!(f, "fifo{k}"),
        }
    }
}

/// A generalised relay station: a `k`-place FIFO with one-cycle forward
/// latency and a registered stop asserted while full — the sized queue
/// of Carloni's DAC'00 optimization paper. `FifoStation::new(2)` is
/// behaviourally identical to [`FullRelayStation`].
///
/// # Example
///
/// ```
/// use lip_core::{FifoStation, Token};
///
/// let mut q = FifoStation::new(3);
/// q.clock(Token::valid(1), true); // output void: input still latched
/// assert_eq!(q.output(), Token::valid(1));
/// assert_eq!(q.capacity(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FifoStation {
    /// Queue contents, oldest first. Length ≤ capacity.
    queue: std::collections::VecDeque<u64>,
    capacity: usize,
}

impl FifoStation {
    /// An empty station with `capacity ≥ 2` places (paper init: void).
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 2`.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 2, "fifo stations need capacity >= 2");
        FifoStation {
            queue: std::collections::VecDeque::new(),
            capacity,
        }
    }

    /// Token currently presented downstream.
    #[must_use]
    pub fn output(&self) -> Token {
        match self.queue.front() {
            Some(&v) => Token::valid(v),
            None => Token::VOID,
        }
    }

    /// Registered back-pressure: asserted iff the queue is full.
    #[must_use]
    pub fn stop_upstream(&self) -> bool {
        self.queue.len() == self.capacity
    }

    /// Stored informative tokens.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.queue.len()
    }

    /// Configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Advance one clock cycle.
    pub fn clock(&mut self, input: Token, stop_downstream: bool) {
        let was_full = self.queue.len() == self.capacity;
        if !stop_downstream && !self.queue.is_empty() {
            self.queue.pop_front();
        }
        // Upstream saw our registered stop only if we *were* full at the
        // start of the cycle; otherwise the offer is fresh and must be
        // accepted (we have space now in every non-full case).
        if !was_full {
            if let Some(v) = input.value() {
                debug_assert!(self.queue.len() < self.capacity);
                self.queue.push_back(v);
            }
        }
    }
}

impl fmt::Display for FifoStation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FIFO[{}/{}]", self.queue.len(), self.capacity)
    }
}

/// The full relay station: a two-place latency-insensitive pipeline stage.
///
/// FSM states (paper/FMGALS'03 nomenclature) map onto the register pair:
/// `Empty` (both void), `One` (main informative), `Full` (both
/// informative). `stop_upstream` is asserted exactly in `Full`.
///
/// # Example
///
/// ```
/// use lip_core::{FullRelayStation, Token};
///
/// let mut rs = FullRelayStation::new();
/// assert!(rs.output().is_void()); // initialised void
/// rs.clock(Token::valid(7), false);
/// assert_eq!(rs.output(), Token::valid(7)); // one-cycle latency
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct FullRelayStation {
    /// Register whose content is presented downstream.
    main: Token,
    /// Overflow register that catches the in-flight token during the
    /// one-cycle stop lag.
    aux: Token,
}

impl FullRelayStation {
    /// A station initialised with void outputs, as the paper requires.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A station pre-loaded with one informative token (used when
    /// retiming moves initialisation, and by tests).
    #[must_use]
    pub fn with_initial(token: Token) -> Self {
        FullRelayStation {
            main: token,
            aux: Token::VOID,
        }
    }

    /// Token currently presented downstream.
    #[must_use]
    pub fn output(&self) -> Token {
        self.main
    }

    /// Registered back-pressure to the upstream producer: asserted iff
    /// both places are occupied.
    #[must_use]
    pub fn stop_upstream(&self) -> bool {
        self.aux.is_valid()
    }

    /// Number of informative tokens stored (0..=2).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        usize::from(self.main.is_valid()) + usize::from(self.aux.is_valid())
    }

    /// Always 2.
    #[must_use]
    pub fn capacity(&self) -> usize {
        RelayKind::Full.capacity()
    }

    /// `(main, aux)` register pair, for state inspection and hashing.
    #[must_use]
    pub fn state(&self) -> (Token, Token) {
        (self.main, self.aux)
    }

    /// Advance one clock cycle.
    ///
    /// `input` is the token offered by the upstream producer this cycle;
    /// `stop_downstream` is the consumer's back-pressure over
    /// [`output`](Self::output).
    pub fn clock(&mut self, input: Token, stop_downstream: bool) {
        let released = self.main.is_valid() && !stop_downstream;
        let full = self.aux.is_valid();
        if full {
            if released {
                // Shift aux forward; upstream was stopped so `input` is a
                // re-offer that will be captured once stop deasserts.
                self.main = self.aux;
                self.aux = Token::VOID;
            }
            // else: hold both registers.
        } else if self.main.is_valid() {
            if released {
                self.main = input;
            } else if input.is_valid() {
                // Stop lag: catch the in-flight token.
                self.aux = input;
            }
            // A void input under stop changes nothing.
        } else {
            // Empty: a stop over our void output is meaningless (there is
            // nothing to hold), so we always latch the input.
            self.main = input;
        }
    }
}

impl fmt::Display for FullRelayStation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "RS[{},{}]", self.main, self.aux)
    }
}

/// The half relay station: one register plus a combinational bypass.
///
/// While empty it is transparent (forward latency 0); when a registered
/// stop arrives over an informative bypassing token, the single register
/// captures that token. `stop_upstream` is asserted exactly while the
/// register is occupied.
///
/// # Example
///
/// ```
/// use lip_core::{HalfRelayStation, Token};
///
/// let mut rs = HalfRelayStation::new();
/// // Transparent while empty:
/// assert_eq!(rs.output(Token::valid(3)), Token::valid(3));
/// // A stop over the bypassing token captures it:
/// rs.clock(Token::valid(3), true);
/// assert!(rs.is_occupied());
/// assert_eq!(rs.output(Token::VOID), Token::valid(3));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct HalfRelayStation {
    reg: Token,
}

impl HalfRelayStation {
    /// An empty (transparent) station, as the paper requires at reset.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Token presented downstream given this cycle's `input`: the stored
    /// token when occupied, the bypassed input otherwise.
    #[must_use]
    pub fn output(&self, input: Token) -> Token {
        if self.reg.is_valid() {
            self.reg
        } else {
            input
        }
    }

    /// Registered back-pressure: asserted iff the register is occupied.
    #[must_use]
    pub fn stop_upstream(&self) -> bool {
        self.reg.is_valid()
    }

    /// `true` when a token is stored.
    #[must_use]
    pub fn is_occupied(&self) -> bool {
        self.reg.is_valid()
    }

    /// Number of informative tokens stored (0 or 1).
    #[must_use]
    pub fn occupancy(&self) -> usize {
        usize::from(self.reg.is_valid())
    }

    /// Always 1.
    #[must_use]
    pub fn capacity(&self) -> usize {
        RelayKind::Half.capacity()
    }

    /// The stored token (void when empty), for state inspection.
    #[must_use]
    pub fn state(&self) -> Token {
        self.reg
    }

    /// Advance one clock cycle. `input` is the upstream offer,
    /// `stop_downstream` the consumer's back-pressure over
    /// [`output`](Self::output).
    pub fn clock(&mut self, input: Token, stop_downstream: bool) {
        if self.reg.is_valid() {
            if !stop_downstream {
                // Stored token consumed. Upstream saw our registered stop
                // this cycle, so `input` is a re-offer: do not capture it.
                self.reg = Token::VOID;
            }
        } else if stop_downstream && input.is_valid() {
            // The bypassing token was refused downstream while upstream
            // already considers it delivered: capture it.
            self.reg = input;
        }
    }
}

impl fmt::Display for HalfRelayStation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HRS[{}]", self.reg)
    }
}

/// A relay station of either kind behind one interface, for elaboration
/// code that treats stations uniformly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RelayStation {
    /// A [`FullRelayStation`].
    Full(FullRelayStation),
    /// A [`HalfRelayStation`].
    Half(HalfRelayStation),
    /// A sized [`FifoStation`].
    Fifo(FifoStation),
}

impl RelayStation {
    /// Instantiate a station of `kind` with the paper's initialisation.
    ///
    /// # Panics
    ///
    /// Panics for `Fifo(k)` with `k < 2`.
    #[must_use]
    pub fn new(kind: RelayKind) -> Self {
        match kind {
            RelayKind::Full => RelayStation::Full(FullRelayStation::new()),
            RelayKind::Half => RelayStation::Half(HalfRelayStation::new()),
            RelayKind::Fifo(k) => RelayStation::Fifo(FifoStation::new(k as usize)),
        }
    }

    /// Which kind this station is.
    #[must_use]
    pub fn kind(&self) -> RelayKind {
        match self {
            RelayStation::Full(_) => RelayKind::Full,
            RelayStation::Half(_) => RelayKind::Half,
            RelayStation::Fifo(q) => {
                RelayKind::Fifo(u8::try_from(q.capacity()).expect("capacity fits u8"))
            }
        }
    }

    /// Token presented downstream given this cycle's `input`.
    #[must_use]
    pub fn output(&self, input: Token) -> Token {
        match self {
            RelayStation::Full(rs) => rs.output(),
            RelayStation::Half(rs) => rs.output(input),
            RelayStation::Fifo(q) => q.output(),
        }
    }

    /// Registered back-pressure to the upstream producer.
    #[must_use]
    pub fn stop_upstream(&self) -> bool {
        match self {
            RelayStation::Full(rs) => rs.stop_upstream(),
            RelayStation::Half(rs) => rs.stop_upstream(),
            RelayStation::Fifo(q) => q.stop_upstream(),
        }
    }

    /// Number of informative tokens stored.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        match self {
            RelayStation::Full(rs) => rs.occupancy(),
            RelayStation::Half(rs) => rs.occupancy(),
            RelayStation::Fifo(q) => q.occupancy(),
        }
    }

    /// Storage capacity in tokens.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.kind().capacity()
    }

    /// Advance one clock cycle.
    pub fn clock(&mut self, input: Token, stop_downstream: bool) {
        match self {
            RelayStation::Full(rs) => rs.clock(input, stop_downstream),
            RelayStation::Half(rs) => rs.clock(input, stop_downstream),
            RelayStation::Fifo(q) => q.clock(input, stop_downstream),
        }
    }
}

impl fmt::Display for RelayStation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelayStation::Full(rs) => rs.fmt(f),
            RelayStation::Half(rs) => rs.fmt(f),
            RelayStation::Fifo(q) => q.fmt(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_initialised_void() {
        let rs = FullRelayStation::new();
        assert!(rs.output().is_void());
        assert!(!rs.stop_upstream());
        assert_eq!(rs.occupancy(), 0);
        assert_eq!(rs.capacity(), 2);
    }

    #[test]
    fn full_streams_at_unit_throughput() {
        let mut rs = FullRelayStation::new();
        let mut received = Vec::new();
        for i in 0..10u64 {
            received.push(rs.output());
            rs.clock(Token::valid(i), false);
        }
        // One-cycle latency: first output void, then 0,1,2,...
        assert_eq!(received[0], Token::VOID);
        for (i, t) in received[1..].iter().enumerate() {
            assert_eq!(*t, Token::valid(i as u64));
        }
    }

    #[test]
    fn full_absorbs_inflight_token_on_stop() {
        let mut rs = FullRelayStation::new();
        rs.clock(Token::valid(1), false); // main = 1
        assert_eq!(rs.output(), Token::valid(1));
        // Downstream stops while upstream (which has not yet seen a stop)
        // offers token 2: it must be caught by aux.
        rs.clock(Token::valid(2), true);
        assert_eq!(rs.output(), Token::valid(1)); // held
        assert!(rs.stop_upstream()); // now full
        assert_eq!(rs.occupancy(), 2);
        // Upstream is stopped: its re-offer of 3 must be ignored even as
        // downstream resumes.
        rs.clock(Token::valid(3), false);
        assert_eq!(rs.output(), Token::valid(2));
        assert!(!rs.stop_upstream());
        // Now the re-offer is captured.
        rs.clock(Token::valid(3), false);
        assert_eq!(rs.output(), Token::valid(3));
    }

    #[test]
    fn full_holds_output_on_persistent_stop() {
        let mut rs = FullRelayStation::with_initial(Token::valid(9));
        for _ in 0..5 {
            rs.clock(Token::VOID, true);
            assert_eq!(rs.output(), Token::valid(9));
        }
    }

    #[test]
    fn full_discards_nothing_when_empty_and_stopped() {
        let mut rs = FullRelayStation::new();
        // Stop over a void output is meaningless; input still latches.
        rs.clock(Token::valid(5), true);
        assert_eq!(rs.output(), Token::valid(5));
        assert_eq!(rs.occupancy(), 1);
    }

    #[test]
    fn half_is_transparent_when_empty() {
        let rs = HalfRelayStation::new();
        assert_eq!(rs.output(Token::valid(4)), Token::valid(4));
        assert_eq!(rs.output(Token::VOID), Token::VOID);
        assert!(!rs.stop_upstream());
        assert_eq!(rs.capacity(), 1);
    }

    #[test]
    fn half_captures_on_stop_and_releases() {
        let mut rs = HalfRelayStation::new();
        rs.clock(Token::valid(8), true); // refused downstream: capture
        assert!(rs.is_occupied());
        assert!(rs.stop_upstream());
        assert_eq!(rs.output(Token::valid(99)), Token::valid(8)); // stored wins
        rs.clock(Token::valid(99), false); // consumed; re-offer ignored
        assert!(!rs.is_occupied());
        assert_eq!(rs.output(Token::valid(99)), Token::valid(99)); // bypass again
    }

    #[test]
    fn half_ignores_stop_over_void() {
        let mut rs = HalfRelayStation::new();
        rs.clock(Token::VOID, true);
        assert!(!rs.is_occupied());
    }

    #[test]
    fn half_holds_under_persistent_stop() {
        let mut rs = HalfRelayStation::new();
        rs.clock(Token::valid(1), true);
        for _ in 0..4 {
            rs.clock(Token::valid(2), true);
            assert_eq!(rs.output(Token::valid(2)), Token::valid(1));
        }
        assert_eq!(rs.occupancy(), 1);
    }

    #[test]
    fn fifo_station_behaves_like_full_at_capacity_two() {
        use crate::endpoint::{Pattern, Sink, Source};
        let stop = Pattern::Cyclic(vec![false, true, true, false, true]);
        let voids = Pattern::Cyclic(vec![false, false, true]);
        let mut src_a = Source::with_void_pattern(voids.clone());
        let mut src_b = Source::with_void_pattern(voids);
        let mut sink_a = Sink::with_stop_pattern(stop.clone());
        let mut sink_b = Sink::with_stop_pattern(stop);
        let mut full = FullRelayStation::new();
        let mut fifo = FifoStation::new(2);
        for _ in 0..200 {
            let oa = full.output();
            let ob = fifo.output();
            assert_eq!(oa, ob);
            assert_eq!(full.stop_upstream(), fifo.stop_upstream());
            let stop_a = sink_a.stop();
            let stop_b = sink_b.stop();
            sink_a.clock(oa);
            sink_b.clock(ob);
            full.clock(src_a.output(), stop_a);
            fifo.clock(src_b.output(), stop_b);
            src_a.clock(full.stop_upstream());
            src_b.clock(fifo.stop_upstream());
        }
        assert_eq!(sink_a.received(), sink_b.received());
    }

    #[test]
    fn fifo_station_preserves_order_and_capacity() {
        let mut q = FifoStation::new(3);
        // Fill under persistent stop.
        q.clock(Token::valid(1), true);
        q.clock(Token::valid(2), true);
        q.clock(Token::valid(3), true);
        assert_eq!(q.occupancy(), 3);
        assert!(q.stop_upstream());
        // Re-offers while full are ignored.
        q.clock(Token::valid(3), true);
        assert_eq!(q.occupancy(), 3);
        // Drain in order.
        assert_eq!(q.output(), Token::valid(1));
        q.clock(Token::valid(4), false); // re-offer of 4? was_full -> ignored
        assert_eq!(q.output(), Token::valid(2));
        q.clock(Token::valid(4), false); // now accepted
        assert_eq!(q.output(), Token::valid(3));
        q.clock(Token::VOID, false);
        assert_eq!(q.output(), Token::valid(4));
    }

    #[test]
    #[should_panic(expected = "capacity >= 2")]
    fn fifo_station_rejects_tiny_capacity() {
        let _ = FifoStation::new(1);
    }

    #[test]
    fn fifo_kind_properties() {
        assert_eq!(RelayKind::Fifo(4).capacity(), 4);
        assert_eq!(RelayKind::Fifo(4).forward_latency(), 1);
        assert_eq!(RelayKind::Fifo(4).to_string(), "fifo4");
        let rs = RelayStation::new(RelayKind::Fifo(3));
        assert_eq!(rs.kind(), RelayKind::Fifo(3));
        assert_eq!(rs.capacity(), 3);
        assert_eq!(
            RelayStation::new(RelayKind::Fifo(3)).to_string(),
            "FIFO[0/3]"
        );
    }

    #[test]
    fn relay_station_enum_dispatches() {
        let mut full = RelayStation::new(RelayKind::Full);
        let mut half = RelayStation::new(RelayKind::Half);
        assert_eq!(full.kind(), RelayKind::Full);
        assert_eq!(half.kind(), RelayKind::Half);
        assert_eq!(full.capacity(), 2);
        assert_eq!(half.capacity(), 1);
        assert_eq!(RelayKind::Full.forward_latency(), 1);
        assert_eq!(RelayKind::Half.forward_latency(), 0);
        full.clock(Token::valid(1), false);
        half.clock(Token::valid(1), true);
        assert_eq!(full.output(Token::VOID), Token::valid(1));
        assert_eq!(half.output(Token::VOID), Token::valid(1));
        assert_eq!(full.occupancy(), 1);
        assert_eq!(half.occupancy(), 1);
        assert!(!full.stop_upstream());
        assert!(half.stop_upstream());
    }

    #[test]
    fn display_forms() {
        assert_eq!(FullRelayStation::new().to_string(), "RS[n,n]");
        assert_eq!(HalfRelayStation::new().to_string(), "HRS[n]");
        assert_eq!(RelayKind::Full.to_string(), "full");
        assert_eq!(RelayKind::Half.to_string(), "half");
        assert_eq!(RelayStation::new(RelayKind::Half).to_string(), "HRS[n]");
    }
}
