//! Latency-insensitive protocol primitives — the contribution of
//! *"Issues in Implementing Latency Insensitive Protocols"* (Casu &
//! Macchiarulo, DATE 2004).
//!
//! A latency-insensitive design (LID) takes a synchronous system designed
//! under the zero-delay-wire assumption and makes it tolerant of
//! multi-cycle interconnect:
//!
//! * functional modules (*pearls*) are wrapped in [`Shell`]s that perform
//!   data validation, back pressure and clock gating;
//! * long wires are pipelined with [`FullRelayStation`]s;
//! * shell-to-shell channels receive at least one [`HalfRelayStation`]
//!   (or a full one), because the simplified shell does not store
//!   incoming `stop` signals — the paper's minimum-memory result;
//! * every channel carries `data` + `valid` forward and `stop` backward;
//!   a cycle's worth of traffic is a [`Token`] plus a stop bit.
//!
//! Two stop-handling disciplines are provided (see [`ProtocolVariant`]):
//! the paper's refinement discards stops asserted over void tokens, the
//! Carloni-style baseline back-propagates them unconditionally. All other
//! behaviour is shared, so throughput comparisons isolate the refinement.
//!
//! # Quick tour
//!
//! ```
//! use lip_core::{FullRelayStation, Shell, Source, Sink};
//! use lip_core::pearl::IdentityPearl;
//!
//! // source -> relay station -> shell -> sink, stepped by hand.
//! let mut src = Source::new();
//! let mut rs = FullRelayStation::new();
//! let mut shell = Shell::new(IdentityPearl::new());
//! let mut sink = Sink::new();
//!
//! for _ in 0..5 {
//!     // Forward phase: tokens offered this cycle.
//!     let rs_out = rs.output();
//!     let shell_out = shell.outputs()[0];
//!     // Backward phase: stops (sink never stops here).
//!     let stop_shell = sink.stop();
//!     let stop_rs = shell.stop_upstream(0, &[rs_out], &[stop_shell]);
//!     let stop_src = rs.stop_upstream();
//!     // Clock edge.
//!     sink.clock(shell_out);
//!     shell.clock(&[rs_out], &[stop_shell]);
//!     rs.clock(src.output(), stop_rs);
//!     src.clock(stop_src);
//! }
//! // The relay station initialises void, so exactly its one-cycle bubble
//! // (plus the shell's initial token) shows at the sink.
//! assert!(sink.received().len() >= 3);
//! ```
//!
//! Higher layers live in sibling crates: `lip-graph` (netlists and
//! topology analysis), `lip-sim` (system simulation and measurement),
//! `lip-analysis` (throughput/transient formulas) and `lip-verify`
//! (model checking of the properties the paper verified with SMV).

#![warn(missing_docs)]

mod buffered;
mod endpoint;
pub mod pearl;
mod relay;
mod shell;
mod token;
mod variant;

pub use buffered::BufferedShell;
pub use endpoint::{Pattern, Sink, Source};
pub use pearl::Pearl;
pub use relay::{FifoStation, FullRelayStation, HalfRelayStation, RelayKind, RelayStation};
pub use shell::{Shell, ShellStats};
pub use token::Token;
pub use variant::ProtocolVariant;
