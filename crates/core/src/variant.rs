//! The two stop-handling disciplines compared by the paper.

use std::fmt;

/// How a shell treats `stop` signals relative to data validity.
///
/// The paper's key protocol refinement (Section 1): *"In previous works
/// the stop signal is back-propagated regardless of the signals validity;
/// in our implementation stops on invalid signals are discarded. The
/// overall computation can get a significant speedup, and higher locality
/// of management of void/stop signals is ensured."*
///
/// The two variants differ **only** in stop handling, so measured
/// throughput differences (experiment `EXP-T5`) isolate exactly the
/// refinement the paper claims credit for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ProtocolVariant {
    /// Casu & Macchiarulo's refinement: a `stop` asserted on a channel
    /// whose current token is void is discarded — it neither stalls the
    /// producer nor propagates further upstream.
    #[default]
    Refined,
    /// The original Carloni-style discipline: `stop` back-propagates
    /// unconditionally, regardless of the validity of the data it covers.
    Carloni,
}

impl ProtocolVariant {
    /// All variants, for sweeps.
    pub const ALL: [ProtocolVariant; 2] = [ProtocolVariant::Refined, ProtocolVariant::Carloni];

    /// `true` when a stop asserted over a void token should be ignored.
    #[must_use]
    pub fn discards_stop_on_void(self) -> bool {
        matches!(self, ProtocolVariant::Refined)
    }
}

impl fmt::Display for ProtocolVariant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolVariant::Refined => f.write_str("refined"),
            ProtocolVariant::Carloni => f.write_str("carloni"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_papers_variant() {
        assert_eq!(ProtocolVariant::default(), ProtocolVariant::Refined);
        assert!(ProtocolVariant::Refined.discards_stop_on_void());
        assert!(!ProtocolVariant::Carloni.discards_stop_on_void());
    }

    #[test]
    fn display_names() {
        assert_eq!(ProtocolVariant::Refined.to_string(), "refined");
        assert_eq!(ProtocolVariant::Carloni.to_string(), "carloni");
    }

    #[test]
    fn all_lists_both() {
        assert_eq!(ProtocolVariant::ALL.len(), 2);
    }
}
