//! Shells: the latency-insensitive wrappers around pearls.
//!
//! A shell performs the three duties the paper lists:
//!
//! * **Data validation** — each output channel carries a `valid` flag
//!   telling the consumer whether the datum has still to be consumed.
//! * **Back pressure** — when the pearl is stalled, a `stop` is generated
//!   towards the inputs (in the [`Refined`](crate::ProtocolVariant::Refined)
//!   variant only towards inputs that currently carry *valid* data; stops
//!   over voids are discarded).
//! * **Clock gating** — a stalled pearl keeps its present state; its
//!   `eval` function is simply not called.
//!
//! This is the paper's *simplified shell*: it does **not** save incoming
//! stop signals (they traverse the shell combinationally within the
//! cycle), which is why the netlist validator requires at least one half
//! or full relay station on every shell-to-shell channel.

use std::fmt;

use crate::pearl::Pearl;
use crate::token::Token;
use crate::variant::ProtocolVariant;

/// Firing/stall counters of a [`Shell`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct ShellStats {
    /// Cycles in which the pearl fired.
    pub fires: u64,
    /// Cycles in which the pearl was clock-gated.
    pub stalls: u64,
}

impl ShellStats {
    /// Fraction of cycles in which the pearl fired (its local throughput).
    #[must_use]
    pub fn utilisation(&self) -> f64 {
        let total = self.fires + self.stalls;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.fires as f64 / total as f64
            }
        }
    }
}

/// A latency-insensitive shell wrapping a [`Pearl`].
///
/// Per-cycle usage (the shell is a Mealy machine in the stop direction):
///
/// 1. read the output tokens via [`outputs`](Shell::outputs);
/// 2. with this cycle's input tokens and downstream stops, query
///    [`stop_upstream`](Shell::stop_upstream) for the back-pressure to
///    each producer;
/// 3. call [`clock`](Shell::clock) to advance to the next cycle.
///
/// # Example
///
/// ```
/// use lip_core::{Shell, Token};
/// use lip_core::pearl::IdentityPearl;
///
/// let mut shell = Shell::new(IdentityPearl::new());
/// // Outputs initialise valid (paper footnote 1). Feed a token through:
/// shell.clock(&[Token::valid(5)], &[false]);
/// assert_eq!(shell.outputs()[0], Token::valid(5));
/// ```
#[derive(Debug, Clone)]
pub struct Shell {
    pearl: Box<dyn Pearl>,
    outputs: Vec<Token>,
    variant: ProtocolVariant,
    stats: ShellStats,
    scratch_in: Vec<u64>,
    scratch_out: Vec<u64>,
}

impl Shell {
    /// Wrap `pearl` using the paper's refined protocol variant.
    ///
    /// Output registers initialise to valid tokens carrying the pearl's
    /// first firing over zero-valued inputs — the paper's footnote 1:
    /// *"the shells outputs are initialized with valid data"*.
    pub fn new(pearl: impl Pearl + 'static) -> Self {
        Self::with_variant(pearl, ProtocolVariant::Refined)
    }

    /// Wrap `pearl` under an explicit [`ProtocolVariant`].
    pub fn with_variant(pearl: impl Pearl + 'static, variant: ProtocolVariant) -> Self {
        Self::from_box(Box::new(pearl), variant)
    }

    /// Wrap an already-boxed pearl (used by elaboration code).
    #[must_use]
    pub fn from_box(mut pearl: Box<dyn Pearl>, variant: ProtocolVariant) -> Self {
        let n_in = pearl.num_inputs();
        let n_out = pearl.num_outputs();
        // Initial valid outputs: the pearl's firing over all-zero inputs.
        let zero_in = vec![0u64; n_in];
        let mut first = vec![0u64; n_out];
        pearl.eval(&zero_in, &mut first);
        let outputs = first.into_iter().map(Token::valid).collect();
        Shell {
            pearl,
            outputs,
            variant,
            stats: ShellStats::default(),
            scratch_in: vec![0; n_in],
            scratch_out: vec![0; n_out],
        }
    }

    /// Number of input channels.
    #[must_use]
    pub fn num_inputs(&self) -> usize {
        self.pearl.num_inputs()
    }

    /// Number of output channels.
    #[must_use]
    pub fn num_outputs(&self) -> usize {
        self.pearl.num_outputs()
    }

    /// The protocol variant this shell follows.
    #[must_use]
    pub fn variant(&self) -> ProtocolVariant {
        self.variant
    }

    /// Current output tokens (one per output channel).
    #[must_use]
    pub fn outputs(&self) -> &[Token] {
        &self.outputs
    }

    /// Firing statistics so far.
    #[must_use]
    pub fn stats(&self) -> ShellStats {
        self.stats
    }

    /// Snapshot of the wrapped pearl's internal state.
    #[must_use]
    pub fn pearl_state(&self) -> Vec<u64> {
        self.pearl.state()
    }

    /// Name of the wrapped pearl.
    #[must_use]
    pub fn pearl_name(&self) -> &str {
        self.pearl.name()
    }

    /// Whether the pearl fires this cycle, given this cycle's input
    /// tokens and the stops asserted over our outputs.
    ///
    /// The pearl fires iff every input is informative **and** no output
    /// that still holds unconsumed data is stopped. Under the
    /// [`Carloni`](ProtocolVariant::Carloni) variant any asserted output
    /// stop blocks firing, valid or not.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the port counts.
    #[must_use]
    pub fn can_fire(&self, inputs: &[Token], output_stops: &[bool]) -> bool {
        assert_eq!(inputs.len(), self.num_inputs(), "input arity mismatch");
        assert_eq!(
            output_stops.len(),
            self.num_outputs(),
            "output arity mismatch"
        );
        let all_valid = inputs.iter().all(|t| t.is_valid());
        let blocked =
            self.outputs.iter().zip(output_stops).any(|(out, &stop)| {
                stop && (out.is_valid() || !self.variant.discards_stop_on_void())
            });
        all_valid && !blocked
    }

    /// Back-pressure generated towards the producer of input `index`.
    ///
    /// Refined variant: asserted iff that input carries valid data the
    /// stalled pearl cannot consume. Carloni variant: asserted on every
    /// input whenever the pearl stalls.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range or the slice lengths do not match
    /// the port counts.
    #[must_use]
    pub fn stop_upstream(&self, index: usize, inputs: &[Token], output_stops: &[bool]) -> bool {
        assert!(index < self.num_inputs(), "input index out of range");
        if self.can_fire(inputs, output_stops) {
            return false;
        }
        if self.variant.discards_stop_on_void() {
            inputs[index].is_valid()
        } else {
            true
        }
    }

    /// Advance one clock cycle.
    ///
    /// If the pearl fires, all inputs are consumed and every output
    /// register loads a fresh valid token. Otherwise the pearl is gated
    /// and each output register is updated according to consumption: a
    /// valid, un-stopped token was taken by the consumer (the register
    /// turns void); a stopped token is held.
    ///
    /// # Panics
    ///
    /// Panics if the slice lengths do not match the port counts.
    pub fn clock(&mut self, inputs: &[Token], output_stops: &[bool]) {
        if self.can_fire(inputs, output_stops) {
            for (slot, t) in self.scratch_in.iter_mut().zip(inputs) {
                *slot = t.value().expect("can_fire guarantees valid inputs");
            }
            self.pearl.eval(&self.scratch_in, &mut self.scratch_out);
            for (reg, &v) in self.outputs.iter_mut().zip(&self.scratch_out) {
                *reg = Token::valid(v);
            }
            self.stats.fires += 1;
        } else {
            for (reg, &stop) in self.outputs.iter_mut().zip(output_stops) {
                if reg.is_valid() && !stop {
                    // Consumed downstream this cycle.
                    *reg = Token::VOID;
                }
            }
            self.stats.stalls += 1;
        }
    }
}

impl fmt::Display for Shell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shell({}", self.pearl.name())?;
        for t in &self.outputs {
            write!(f, " {t}")?;
        }
        f.write_str(")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pearl::{AccumulatorPearl, CounterPearl, IdentityPearl, JoinPearl};

    #[test]
    fn outputs_initialise_valid() {
        let shell = Shell::new(IdentityPearl::new());
        assert!(shell.outputs()[0].is_valid());
    }

    #[test]
    fn fires_when_inputs_valid_and_unstopped() {
        let shell = Shell::new(IdentityPearl::new());
        assert!(shell.can_fire(&[Token::valid(1)], &[false]));
        assert!(!shell.can_fire(&[Token::VOID], &[false]));
        assert!(!shell.can_fire(&[Token::valid(1)], &[true])); // valid output stopped
    }

    #[test]
    fn refined_variant_discards_stop_on_void_output() {
        let mut shell = Shell::new(IdentityPearl::new());
        // Drain the initial valid output while stalling on a void input.
        shell.clock(&[Token::VOID], &[false]);
        assert!(shell.outputs()[0].is_void());
        // A stop over the void output must not block firing.
        assert!(shell.can_fire(&[Token::valid(1)], &[true]));
    }

    #[test]
    fn carloni_variant_respects_stop_on_void_output() {
        let mut shell = Shell::with_variant(IdentityPearl::new(), ProtocolVariant::Carloni);
        shell.clock(&[Token::VOID], &[false]);
        assert!(shell.outputs()[0].is_void());
        assert!(!shell.can_fire(&[Token::valid(1)], &[true]));
    }

    #[test]
    fn back_pressure_only_on_valid_inputs_in_refined() {
        let shell = Shell::new(JoinPearl::first(2));
        let inputs = [Token::valid(1), Token::VOID]; // stalls: one void input
        let stops = [false];
        assert!(shell.stop_upstream(0, &inputs, &stops)); // valid input held
        assert!(!shell.stop_upstream(1, &inputs, &stops)); // void: discarded
    }

    #[test]
    fn back_pressure_unconditional_in_carloni() {
        let shell = Shell::with_variant(JoinPearl::first(2), ProtocolVariant::Carloni);
        let inputs = [Token::valid(1), Token::VOID];
        let stops = [false];
        assert!(shell.stop_upstream(0, &inputs, &stops));
        assert!(shell.stop_upstream(1, &inputs, &stops));
    }

    #[test]
    fn no_back_pressure_when_firing() {
        let shell = Shell::new(IdentityPearl::new());
        assert!(!shell.stop_upstream(0, &[Token::valid(4)], &[false]));
    }

    #[test]
    fn gating_preserves_pearl_state() {
        let mut shell = Shell::new(AccumulatorPearl::new());
        shell.clock(&[Token::valid(10)], &[false]);
        let state = shell.pearl_state();
        for _ in 0..5 {
            shell.clock(&[Token::VOID], &[false]); // gated: void input
        }
        assert_eq!(shell.pearl_state(), state);
        assert_eq!(shell.stats().fires, 1);
        assert_eq!(shell.stats().stalls, 5);
    }

    #[test]
    fn consumed_output_turns_void_held_output_stays() {
        let mut shell = Shell::new(IdentityPearl::with_fanout(2));
        // Stall (void input); output 0 consumed, output 1 stopped.
        let before = shell.outputs().to_vec();
        shell.clock(&[Token::VOID], &[false, true]);
        assert!(shell.outputs()[0].is_void());
        assert_eq!(shell.outputs()[1], before[1]);
    }

    #[test]
    fn firing_replaces_outputs() {
        let mut shell = Shell::new(CounterPearl::new());
        // Counter pearl: zero inputs. Initial output = 0; then 1, 2, ...
        assert_eq!(shell.outputs()[0], Token::valid(0));
        shell.clock(&[], &[false]);
        assert_eq!(shell.outputs()[0], Token::valid(1));
        shell.clock(&[], &[false]);
        assert_eq!(shell.outputs()[0], Token::valid(2));
    }

    #[test]
    fn source_like_shell_holds_on_stop() {
        let mut shell = Shell::new(CounterPearl::new());
        shell.clock(&[], &[true]); // stopped: hold the 0
        assert_eq!(shell.outputs()[0], Token::valid(0));
        shell.clock(&[], &[false]); // consumed & fires
        assert_eq!(shell.outputs()[0], Token::valid(1));
    }

    #[test]
    fn utilisation_reflects_fires() {
        let mut shell = Shell::new(IdentityPearl::new());
        shell.clock(&[Token::valid(1)], &[false]);
        shell.clock(&[Token::VOID], &[false]);
        let u = shell.stats().utilisation();
        assert!((u - 0.5).abs() < 1e-12);
        assert_eq!(ShellStats::default().utilisation(), 0.0);
    }

    #[test]
    fn display_shows_pearl_and_outputs() {
        let shell = Shell::new(IdentityPearl::new());
        let s = shell.to_string();
        assert!(s.starts_with("Shell(identity"), "{s}");
    }

    #[test]
    #[should_panic(expected = "input arity mismatch")]
    fn arity_mismatch_panics() {
        let shell = Shell::new(IdentityPearl::new());
        let _ = shell.can_fire(&[], &[false]);
    }

    #[test]
    fn clone_is_independent() {
        let mut a = Shell::new(AccumulatorPearl::new());
        let b = a.clone();
        a.clock(&[Token::valid(3)], &[false]);
        assert_ne!(a.pearl_state(), b.pearl_state());
    }
}
