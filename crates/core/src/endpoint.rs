//! Primary inputs and outputs of a latency-insensitive design.
//!
//! A [`Source`] models an upstream environment producing a stream of
//! tokens (sequence-numbered, with a configurable void pattern); a
//! [`Sink`] models a downstream consumer with a configurable stop pattern.
//! Both honour the protocol: a source holds its token under stop, a sink
//! never consumes a token it stopped. The paper's formal properties are
//! stated relative to such an *appropriate environment* — "all its inputs
//! keep their values on asserted stops".

use std::fmt;

use crate::token::Token;

/// Deterministic boolean pattern used for void injection and stop
/// injection. Patterns make experiments reproducible without a global
/// RNG; the pseudo-random flavour uses a splitmix64 stream seeded
/// explicitly.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Pattern {
    /// Never asserted.
    Never,
    /// Always asserted.
    Always,
    /// Asserted on cycles `c` with `c % period == phase`.
    ///
    /// `period` must be ≥ 1 and `phase < period`.
    EveryNth {
        /// Pattern period in cycles.
        period: u32,
        /// Offset of the asserted cycle within each period.
        phase: u32,
    },
    /// Asserted with probability `num/denom`, from a seeded deterministic
    /// stream.
    Random {
        /// Numerator of the assertion probability.
        num: u32,
        /// Denominator of the assertion probability (≥ 1).
        denom: u32,
        /// Stream seed.
        seed: u64,
    },
    /// Explicit cyclic pattern (repeats after `len()` cycles; must be
    /// non-empty).
    Cyclic(Vec<bool>),
}

impl Pattern {
    /// The period after which the pattern provably repeats, or `None` for
    /// aperiodic (pseudo-random) patterns. Used by transient/periodicity
    /// detection: the paper's claim that "each part of [the system]
    /// behaves in a periodic fashion" holds once environment patterns are
    /// themselves periodic.
    #[must_use]
    pub fn period(&self) -> Option<u64> {
        match self {
            Pattern::Never | Pattern::Always => Some(1),
            Pattern::EveryNth { period, .. } => Some(u64::from(*period)),
            Pattern::Random { .. } => None,
            Pattern::Cyclic(bits) => Some(bits.len() as u64),
        }
    }

    /// Whether the pattern asserts at `cycle`.
    ///
    /// # Panics
    ///
    /// Panics if the pattern is malformed (`period == 0`, `denom == 0` or
    /// an empty cyclic vector).
    #[must_use]
    pub fn at(&self, cycle: u64) -> bool {
        match self {
            Pattern::Never => false,
            Pattern::Always => true,
            Pattern::EveryNth { period, phase } => {
                assert!(*period >= 1, "pattern period must be at least 1");
                cycle % u64::from(*period) == u64::from(*phase)
            }
            Pattern::Random { num, denom, seed } => {
                assert!(*denom >= 1, "pattern denominator must be at least 1");
                let x = splitmix64(seed.wrapping_add(cycle));
                (x % u64::from(*denom)) < u64::from(*num)
            }
            Pattern::Cyclic(bits) => {
                assert!(!bits.is_empty(), "cyclic pattern must be non-empty");
                bits[usize::try_from(cycle % bits.len() as u64).expect("index fits")]
            }
        }
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A primary input: emits sequence-numbered tokens `0, 1, 2, …`,
/// interleaved with voids according to a [`Pattern`], and holds its token
/// under back-pressure.
///
/// # Example
///
/// ```
/// use lip_core::{Source, Token};
///
/// let mut src = Source::new();
/// assert_eq!(src.output(), Token::valid(0));
/// src.clock(true);  // stopped: token 0 held
/// assert_eq!(src.output(), Token::valid(0));
/// src.clock(false); // consumed
/// assert_eq!(src.output(), Token::valid(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Source {
    out: Token,
    next_seq: u64,
    void_pattern: Pattern,
    cycle: u64,
    emitted: u64,
}

impl Source {
    /// A source that always emits valid tokens.
    #[must_use]
    pub fn new() -> Self {
        Self::with_void_pattern(Pattern::Never)
    }

    /// A source injecting voids where `void_pattern` asserts.
    ///
    /// The cycle-0 output honours the pattern (like shell outputs, a
    /// source output initialises valid unless the pattern voids it).
    #[must_use]
    pub fn with_void_pattern(void_pattern: Pattern) -> Self {
        let mut src = Source {
            out: Token::VOID,
            next_seq: 0,
            void_pattern,
            cycle: 0,
            emitted: 0,
        };
        src.out = src.generate();
        src
    }

    fn generate(&mut self) -> Token {
        if self.void_pattern.at(self.cycle) {
            Token::VOID
        } else {
            let t = Token::valid(self.next_seq);
            self.next_seq += 1;
            self.emitted += 1;
            t
        }
    }

    /// Token currently offered downstream.
    #[must_use]
    pub fn output(&self) -> Token {
        self.out
    }

    /// Number of informative tokens emitted so far (including the one
    /// currently offered).
    #[must_use]
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Advance one cycle under the consumer's `stop`.
    pub fn clock(&mut self, stop: bool) {
        self.cycle += 1;
        if self.out.is_valid() && stop {
            // Appropriate environment: hold the value under stop.
            return;
        }
        self.out = self.generate();
    }
}

impl Default for Source {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for Source {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Source[{}]", self.out)
    }
}

/// A primary output: consumes tokens, optionally exerting back-pressure
/// according to a [`Pattern`], and records what it received.
///
/// # Example
///
/// ```
/// use lip_core::{Sink, Token};
///
/// let mut sink = Sink::new();
/// sink.clock(Token::valid(0));
/// sink.clock(Token::VOID);
/// sink.clock(Token::valid(1));
/// assert_eq!(sink.received(), &[0, 1]);
/// assert_eq!(sink.voids_seen(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Sink {
    stop_pattern: Pattern,
    cycle: u64,
    received: Vec<u64>,
    voids_seen: u64,
}

impl Sink {
    /// A sink that never stops (free-flowing primary output).
    #[must_use]
    pub fn new() -> Self {
        Self::with_stop_pattern(Pattern::Never)
    }

    /// A sink asserting stop where `stop_pattern` asserts.
    #[must_use]
    pub fn with_stop_pattern(stop_pattern: Pattern) -> Self {
        Sink {
            stop_pattern,
            cycle: 0,
            received: Vec::new(),
            voids_seen: 0,
        }
    }

    /// The back-pressure this sink asserts in the current cycle.
    #[must_use]
    pub fn stop(&self) -> bool {
        self.stop_pattern.at(self.cycle)
    }

    /// Advance one cycle, consuming `input` unless stopped.
    pub fn clock(&mut self, input: Token) {
        let stop = self.stop();
        if !stop {
            match input.value() {
                Some(v) => self.received.push(v),
                None => self.voids_seen += 1,
            }
        }
        self.cycle += 1;
    }

    /// Informative data consumed so far, in arrival order.
    #[must_use]
    pub fn received(&self) -> &[u64] {
        &self.received
    }

    /// Void tokens observed (cycles where the channel carried nothing).
    #[must_use]
    pub fn voids_seen(&self) -> u64 {
        self.voids_seen
    }

    /// Cycles elapsed.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Fraction of un-stopped cycles that delivered informative data —
    /// the node throughput of the paper ("number of valid data per clock
    /// cycle").
    #[must_use]
    pub fn throughput(&self) -> f64 {
        let observed = self.received.len() as u64 + self.voids_seen;
        if observed == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.received.len() as f64 / observed as f64
            }
        }
    }
}

impl Default for Sink {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Display for Sink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Sink[{} valid, {} void]",
            self.received.len(),
            self.voids_seen
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_shapes() {
        assert!(!Pattern::Never.at(0));
        assert!(Pattern::Always.at(123));
        let p = Pattern::EveryNth {
            period: 4,
            phase: 1,
        };
        assert!(!p.at(0));
        assert!(p.at(1));
        assert!(p.at(5));
        let c = Pattern::Cyclic(vec![true, false]);
        assert!(c.at(0));
        assert!(!c.at(1));
        assert!(c.at(2));
    }

    #[test]
    fn pattern_periods() {
        assert_eq!(Pattern::Never.period(), Some(1));
        assert_eq!(Pattern::Always.period(), Some(1));
        assert_eq!(
            Pattern::EveryNth {
                period: 5,
                phase: 2
            }
            .period(),
            Some(5)
        );
        assert_eq!(Pattern::Cyclic(vec![true, false, true]).period(), Some(3));
        assert_eq!(
            Pattern::Random {
                num: 1,
                denom: 2,
                seed: 0
            }
            .period(),
            None
        );
    }

    #[test]
    fn random_pattern_is_deterministic_and_plausible() {
        let p = Pattern::Random {
            num: 1,
            denom: 2,
            seed: 42,
        };
        let a: Vec<bool> = (0..1000).map(|c| p.at(c)).collect();
        let b: Vec<bool> = (0..1000).map(|c| p.at(c)).collect();
        assert_eq!(a, b);
        let ones = a.iter().filter(|&&x| x).count();
        assert!((300..700).contains(&ones), "{ones} not near 500");
    }

    #[test]
    fn source_emits_sequence_and_holds_on_stop() {
        let mut s = Source::new();
        assert_eq!(s.output(), Token::valid(0));
        s.clock(true);
        s.clock(true);
        assert_eq!(s.output(), Token::valid(0)); // held
        s.clock(false);
        assert_eq!(s.output(), Token::valid(1));
        assert_eq!(s.emitted(), 2);
    }

    #[test]
    fn source_injects_voids() {
        let mut s = Source::with_void_pattern(Pattern::EveryNth {
            period: 2,
            phase: 0,
        });
        assert_eq!(s.output(), Token::VOID); // cycle 0 voided
        s.clock(false);
        assert_eq!(s.output(), Token::valid(0));
        s.clock(false);
        assert_eq!(s.output(), Token::VOID);
    }

    #[test]
    fn stop_over_void_does_not_hold_a_source_void() {
        let mut s = Source::with_void_pattern(Pattern::Cyclic(vec![true, false, false]));
        assert_eq!(s.output(), Token::VOID);
        s.clock(true); // stop over a void: the source still advances
        assert_eq!(s.output(), Token::valid(0));
    }

    #[test]
    fn sink_records_and_measures() {
        let mut k = Sink::new();
        for t in [
            Token::valid(0),
            Token::VOID,
            Token::valid(1),
            Token::valid(2),
        ] {
            k.clock(t);
        }
        assert_eq!(k.received(), &[0, 1, 2]);
        assert_eq!(k.voids_seen(), 1);
        assert_eq!(k.cycles(), 4);
        assert!((k.throughput() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn stopped_sink_consumes_nothing() {
        let mut k = Sink::with_stop_pattern(Pattern::Always);
        assert!(k.stop());
        k.clock(Token::valid(7));
        assert!(k.received().is_empty());
        assert_eq!(k.voids_seen(), 0);
        assert_eq!(k.throughput(), 0.0);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Source::new().to_string(), "Source[0]");
        assert_eq!(Sink::new().to_string(), "Sink[0 valid, 0 void]");
    }
}
