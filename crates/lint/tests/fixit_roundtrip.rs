//! Fix-it round trip: applying every emitted fix-it yields a netlist
//! on which the fixed rule no longer fires and whose simulated
//! throughput is no worse than before.

use lip_core::pearl::IdentityPearl;
use lip_core::RelayKind;
use lip_graph::{generate, Netlist, SourceMap};
use lip_lint::{apply_fixits, lint, RuleId};
use lip_sim::{measure, Ratio};

/// Simulated system throughput (all corpus environments are periodic).
fn throughput(netlist: &Netlist) -> Ratio {
    measure(netlist)
        .expect("valid netlist")
        .system_throughput()
        .expect("has sinks")
}

fn assert_roundtrip(name: &str, netlist: &Netlist) {
    let diags = lint(netlist, &SourceMap::new());
    let fixed_rules: Vec<RuleId> = diags
        .iter()
        .filter(|d| d.fix.is_some())
        .map(|d| d.rule)
        .collect();
    if fixed_rules.is_empty() {
        return;
    }
    let mut fixed = netlist.clone();
    let report = apply_fixits(&mut fixed, &diags).unwrap_or_else(|e| panic!("{name}: {e}"));
    assert!(
        report.total_inserted() + report.resized.len() > 0,
        "{name}: fix did nothing"
    );
    fixed.validate().unwrap_or_else(|e| panic!("{name}: {e}"));

    let after = lint(&fixed, &SourceMap::new());
    for rule in &fixed_rules {
        assert!(
            !after.iter().any(|d| d.rule == *rule),
            "{name}: {rule} still fires after its fix"
        );
    }

    let (before_t, after_t) = (throughput(netlist), throughput(&fixed));
    assert!(
        after_t.num() * before_t.den() >= before_t.num() * after_t.den(),
        "{name}: throughput regressed {before_t} -> {after_t}"
    );
}

#[test]
fn named_corpus_roundtrips() {
    let mut back_to_back = Netlist::new();
    let s = back_to_back.add_source("in");
    let a = back_to_back.add_shell("a", IdentityPearl::new());
    let b = back_to_back.add_shell("b", IdentityPearl::new());
    let c = back_to_back.add_shell("c", IdentityPearl::new());
    let t = back_to_back.add_sink("out");
    back_to_back.connect(s, 0, a, 0).unwrap();
    back_to_back.connect(a, 0, b, 0).unwrap();
    back_to_back.connect(b, 0, c, 0).unwrap();
    back_to_back.connect(c, 0, t, 0).unwrap();

    let corpus: Vec<(&str, Netlist)> = vec![
        ("back_to_back_chain", back_to_back),
        ("fig1", generate::fig1().netlist),
        ("fork_join(3,0,2)", generate::fork_join(3, 0, 2).netlist),
        ("tree_no_relays", generate::tree(2, 2, 0).netlist),
        (
            "ring(2,3,full)",
            generate::ring(2, 3, RelayKind::Full).netlist,
        ),
        (
            "chain(4,0,full)",
            generate::chain(4, 0, RelayKind::Full).netlist,
        ),
    ];
    for (name, netlist) in &corpus {
        assert_roundtrip(name, netlist);
    }
}

#[test]
fn random_corpus_roundtrips() {
    let mut fixed_any = 0;
    for seed in 0..40u64 {
        let (family, netlist) = generate::random_family(seed);
        if netlist.validate().is_err() {
            continue;
        }
        let diags = lint(&netlist, &SourceMap::new());
        if diags.iter().any(|d| d.fix.is_some()) {
            assert_roundtrip(&format!("seed {seed} {family:?}"), &netlist);
            fixed_any += 1;
        }
    }
    assert!(fixed_any >= 3, "corpus produced too few fixable designs");
}

/// Fig. 1's equalize fix lifts it from 4/5 to the tree optimum T = 1.
#[test]
fn equalizing_fig1_reaches_full_rate() {
    let mut n = generate::fig1().netlist;
    let diags = lint(&n, &SourceMap::new());
    apply_fixits(&mut n, &diags).unwrap();
    assert_eq!(throughput(&n), Ratio::new(1, 1));
    assert!(lint(&n, &SourceMap::new()).is_empty());
}
