# LIP003: the source never presents data — guaranteed deadlock.
source  in   voids=every:1:0
shell   a    identity
relay   r    full
shell   b    identity
sink    out

connect in:0 -> a:0
connect a:0  -> r:0
connect r:0  -> b:0
connect b:0  -> out:0
