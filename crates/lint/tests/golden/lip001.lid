# LIP001: two simplified shells back-to-back, no stop-saving element.
source  in
shell   a   identity
shell   b   identity
sink    out

connect in:0 -> a:0
connect a:0  -> b:0
connect b:0  -> out:0
