# LIP008: no structural bottleneck, but the source only offers data
# every other cycle — the model checker proves the rate 1/2.
source  in   voids=every:2:0
shell   a    identity
relay   r    full
shell   b    identity
sink    out

connect in:0 -> a:0
connect a:0  -> r:0
connect r:0  -> b:0
connect b:0  -> out:0
