# LIP007: a fifo:6 relay station whose proved occupancy never exceeds 1.
source  in
shell   a    identity
relay   q    fifo:6
shell   b    identity
sink    out

connect in:0 -> a:0
connect a:0  -> q:0
connect q:0  -> b:0
connect b:0  -> out:0
