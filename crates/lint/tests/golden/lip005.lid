# LIP005: a feedback loop binds global throughput to S/(S+R) = 2/4.
shell a  identity
shell b  identity
relay r1 full
relay r2 full

connect a:0  -> r1:0
connect r1:0 -> b:0
connect b:0  -> r2:0
connect r2:0 -> a:0
