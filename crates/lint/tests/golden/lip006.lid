# LIP006: the sink never accepts — the model checker proves the wedge
# exhaustively (and LIP003 flags the structural cause).
source  in
shell   a    identity
relay   r    full
shell   b    identity
sink    out  stops=every:1:0

connect in:0 -> a:0
connect a:0  -> r:0
connect r:0  -> b:0
connect b:0  -> out:0
