# LIP002: a sealed ring of relay stations with no shell.
relay r1 full
relay r2 full
relay r3 half

connect r1:0 -> r2:0
connect r2:0 -> r3:0
connect r3:0 -> r1:0
