# LIP004: reconvergent paths with relay imbalance i = 1 (paper Fig. 1).
source  in
shell   A   identity fanout=2
shell   B   identity
shell   C   join arity=2
relay   r1  full
relay   r2  full
relay   r3  full
sink    out

connect in:0  -> A:0
connect A:0   -> r1:0
connect r1:0  -> B:0
connect B:0   -> r2:0
connect r2:0  -> C:0
connect A:1   -> r3:0
connect r3:0  -> C:1
connect C:0   -> out:0
