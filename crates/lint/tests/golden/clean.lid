# A well-formed pipeline: relays between shells, balanced, free-flowing.
source  in
shell   a   identity
relay   r1  full
shell   b   identity
relay   r2  full
shell   c   identity
sink    out

connect in:0 -> a:0
connect a:0  -> r1:0
connect r1:0 -> b:0
connect b:0  -> r2:0
connect r2:0 -> c:0
connect c:0  -> out:0
