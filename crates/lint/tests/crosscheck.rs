//! Cross-validation of the static rules against the simulator.
//!
//! * LIP005's predicted steady-state ratio must equal
//!   `measure_batch_periodic`'s measured throughput *exactly* (as a
//!   [`Ratio`] equality) on the fig1/tree/ring corpus and on the
//!   random-netlist corpus;
//! * LIP003 must agree with `lip_sim`'s liveness verdict (the oracle
//!   behind `verify::liveness`) on every corpus netlist, both pristine
//!   (free-flowing, live) and with a blocking environment injected
//!   (dead).

use lip_core::RelayKind;
use lip_graph::{generate, Netlist, SourceMap};
use lip_lint::{lint, RuleId};
use lip_sim::measure::check_liveness;
use lip_sim::{measure_batch_periodic, LanePatterns, Ratio, SettleProgram};
use proptest::prelude::*;

/// The linter's throughput verdict: LIP005's attached prediction, or
/// full rate when the bottleneck rule stays silent.
fn lint_prediction(netlist: &Netlist) -> Ratio {
    lint(netlist, &SourceMap::new())
        .iter()
        .find(|d| d.rule == RuleId::Lip005)
        .and_then(|d| d.predicted_throughput)
        .unwrap_or(Ratio::new(1, 1))
}

/// Lane-0 steady state from the batched periodic simulator, or `None`
/// when the lane never converged within the budget.
fn batch_measured(netlist: &Netlist) -> Option<Ratio> {
    let prog = SettleProgram::compile(netlist).ok()?;
    let pats = LanePatterns::broadcast(&prog);
    let m = measure_batch_periodic(netlist, &pats, 8192).ok()?;
    m.periodicity[0].as_ref()?;
    m.system_throughput(0)
}

fn lip003_fires(netlist: &Netlist) -> bool {
    lint(netlist, &SourceMap::new())
        .iter()
        .any(|d| d.rule == RuleId::Lip003)
}

fn assert_lip003_matches_liveness(netlist: &Netlist, context: &str) {
    let report = check_liveness(netlist, 20_000, 5_000).expect("valid netlist");
    assert_eq!(
        lip003_fires(netlist),
        !report.is_live(),
        "{context}: LIP003 vs liveness disagree (dead shells: {:?})",
        report.dead_shells
    );
}

/// Rewrite the first `source NAME` statement to void on every cycle —
/// a statically dead environment — and reparse.
fn kill_first_source(netlist: &Netlist) -> Option<Netlist> {
    let text = lip_graph::write_netlist(netlist);
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    let line = lines
        .iter_mut()
        .find(|l| l.starts_with("source ") && !l.contains("voids="))?;
    line.push_str(" voids=every:1:0");
    let (mutated, _) = lip_graph::parse_netlist(&lines.join("\n")).ok()?;
    Some(mutated)
}

/// Same, stalling the first sink with a permanent stop.
fn kill_first_sink(netlist: &Netlist) -> Option<Netlist> {
    let text = lip_graph::write_netlist(netlist);
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    let line = lines
        .iter_mut()
        .find(|l| l.starts_with("sink ") && !l.contains("stops="))?;
    line.push_str(" stops=every:1:0");
    let (mutated, _) = lip_graph::parse_netlist(&lines.join("\n")).ok()?;
    Some(mutated)
}

#[test]
fn lip005_matches_batched_simulation_on_named_corpus() {
    let corpus: Vec<(&str, Netlist)> = vec![
        ("fig1", generate::fig1().netlist),
        ("tree(2,2,1)", generate::tree(2, 2, 1).netlist),
        ("tree(3,2,2)", generate::tree(3, 2, 2).netlist),
        (
            "ring(2,1,full)",
            generate::ring(2, 1, RelayKind::Full).netlist,
        ),
        (
            "ring(2,3,full)",
            generate::ring(2, 3, RelayKind::Full).netlist,
        ),
        (
            "ring(3,2,half)",
            generate::ring(3, 2, RelayKind::Half).netlist,
        ),
        (
            "chain(3,2,full)",
            generate::chain(3, 2, RelayKind::Full).netlist,
        ),
        ("fork_join(3,0,2)", generate::fork_join(3, 0, 2).netlist),
        (
            "composed(1,1,1,2,1)",
            generate::composed_coupled(1, 1, 1, 2, 1).netlist,
        ),
        ("buffered_ring(3,1)", generate::buffered_ring(3, 1).netlist),
    ];
    for (name, netlist) in corpus {
        netlist.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
        let measured =
            batch_measured(&netlist).unwrap_or_else(|| panic!("{name}: lane 0 did not converge"));
        assert_eq!(lint_prediction(&netlist), measured, "{name}");
    }
}

#[test]
fn lip005_matches_batched_simulation_on_random_corpus() {
    let mut checked = 0;
    for seed in 0..60u64 {
        let (family, netlist) = generate::random_family(seed);
        if netlist.validate().is_err() {
            continue;
        }
        let Some(measured) = batch_measured(&netlist) else {
            continue;
        };
        assert_eq!(
            lint_prediction(&netlist),
            measured,
            "seed {seed} family {family:?}"
        );
        checked += 1;
    }
    assert!(checked >= 30, "random corpus mostly skipped: {checked}");
}

#[test]
fn lip003_agrees_with_liveness_on_random_corpus() {
    for seed in 0..40u64 {
        let (family, netlist) = generate::random_family(seed);
        if netlist.validate().is_err() {
            continue;
        }
        // Pristine corpus: free-flowing environments, so liveness must
        // hold and LIP003 must stay silent.
        assert_lip003_matches_liveness(&netlist, &format!("seed {seed} {family:?}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// LIP003 iff dead, on corpus netlists with a blocking environment
    /// injected: a never-presenting source (or never-accepting sink)
    /// must make both the static rule and the simulated liveness check
    /// report deadlock — or neither, when no shell is affected.
    #[test]
    fn lip003_iff_liveness_under_injected_blockers(seed in 0u64..200) {
        let (family, netlist) = generate::random_family(seed);
        if netlist.validate().is_err() {
            return Ok(());
        }
        for (what, mutated) in [
            ("dead source", kill_first_source(&netlist)),
            ("dead sink", kill_first_sink(&netlist)),
        ] {
            let Some(mutated) = mutated else { continue };
            if mutated.validate().is_err() {
                continue;
            }
            assert_lip003_matches_liveness(
                &mutated,
                &format!("seed {seed} {family:?} with {what}"),
            );
        }
    }
}
