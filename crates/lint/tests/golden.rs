//! Golden-file snapshots of `lip-lint` diagnostics, one fixture per rule.
//!
//! Each `tests/golden/<name>.lid` netlist is linted and its human-readable
//! report compared byte-for-byte against the checked-in
//! `tests/golden/<name>.expected` snapshot. Run with `UPDATE_GOLDEN=1` to
//! regenerate the snapshots after an intentional output change.

use std::fs;
use std::path::PathBuf;

use lip_graph::parse_netlist_spanned;
use lip_lint::{lint, render_human, render_json, RuleId};

fn golden_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden")
}

/// Lint `tests/golden/<name>.lid` and return the human-rendered report
/// alongside the raw diagnostics.
fn lint_fixture(name: &str) -> (String, Vec<lip_lint::Diagnostic>) {
    let path = golden_dir().join(format!("{name}.lid"));
    let src = fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    let parsed =
        parse_netlist_spanned(&src).unwrap_or_else(|e| panic!("parse {}: {e}", path.display()));
    let diags = lint(&parsed.netlist, &parsed.source_map);
    let rendered = render_human(&format!("golden/{name}.lid"), &diags);
    (rendered, diags)
}

/// Compare `rendered` against the checked-in `<name><ext>` snapshot, or
/// rewrite the snapshot when `UPDATE_GOLDEN` is set in the environment.
fn assert_golden(name: &str, ext: &str, rendered: &str) {
    let expected_path = golden_dir().join(format!("{name}{ext}"));
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        fs::write(&expected_path, rendered)
            .unwrap_or_else(|e| panic!("write {}: {e}", expected_path.display()));
        return;
    }
    let expected = fs::read_to_string(&expected_path).unwrap_or_else(|e| {
        panic!(
            "read {}: {e}\n(run the golden tests once with UPDATE_GOLDEN=1 to generate snapshots)",
            expected_path.display()
        )
    });
    assert_eq!(
        rendered, expected,
        "golden mismatch for {name}{ext}; rerun with UPDATE_GOLDEN=1 if the change is intentional"
    );
}

/// Check a fixture against its snapshot and assert exactly which rules fire.
fn check(name: &str, expected_rules: &[RuleId]) {
    let (rendered, diags) = lint_fixture(name);
    let fired: Vec<RuleId> = diags.iter().map(|d| d.rule).collect();
    assert_eq!(fired, expected_rules, "rules fired on {name}.lid");
    assert_golden(name, ".expected", &rendered);
}

#[test]
fn golden_lip001_back_to_back_shells() {
    check("lip001", &[RuleId::Lip001]);
}

#[test]
fn golden_lip002_relay_ring() {
    check("lip002", &[RuleId::Lip002]);
}

#[test]
fn golden_lip003_dead_source() {
    // The model-checked LIP006 corroborates the structural verdict.
    check("lip003", &[RuleId::Lip003, RuleId::Lip006]);
}

#[test]
fn golden_lip004_reconvergent_imbalance() {
    // Fig. 1 fires both the reconvergence rule and the bottleneck report.
    check("lip004", &[RuleId::Lip004, RuleId::Lip005]);
}

#[test]
fn golden_lip005_loop_bottleneck() {
    check("lip005", &[RuleId::Lip005]);
}

#[test]
fn golden_lip006_stopped_sink() {
    check("lip006", &[RuleId::Lip003, RuleId::Lip006]);
}

#[test]
fn golden_lip007_oversized_fifo() {
    check("lip007", &[RuleId::Lip007]);
}

#[test]
fn golden_lip008_environment_limited() {
    check("lip008", &[RuleId::Lip008]);
}

#[test]
fn golden_clean_pipeline() {
    check("clean", &[]);
}

#[test]
fn golden_json_schema_stable() {
    // One JSON snapshot pins the machine-readable schema (schema_version 1).
    let (_, diags) = lint_fixture("lip004");
    let json = render_json(&[("golden/lip004.lid".to_string(), diags)]);
    assert_golden("lip004", ".json.expected", &json);
}
