//! The rule engine: every LIP rule, run over a [`Netlist`] plus the
//! [`SourceMap`] that locates its nodes and channels in the source
//! text (pass [`SourceMap::new`] for programmatic netlists — spans
//! simply come back empty).
//!
//! | rule   | finds                                                        | fix-it |
//! |--------|--------------------------------------------------------------|--------|
//! | LIP001 | simplified shells back-to-back (minimum-memory violation)    | insert half relay station |
//! | LIP002 | shell-free cycle of relay stations                           | — |
//! | LIP003 | environment-guaranteed deadlock (starved / stalled shells)   | — |
//! | LIP004 | reconvergent relay imbalance `i > 0`                         | equalize |
//! | LIP005 | throughput bottleneck cycle (minimum cycle ratio < 1)        | — |
//! | LIP006 | model-checked deadlock (exhaustive state-space proof)        | — |
//! | LIP007 | over-provisioned FIFO (proved occupancy bound < capacity)    | shrink fifo |
//! | LIP008 | environment-limited throughput proved below 1                | — |
//!
//! LIP006–LIP008 are backed by one exhaustive [`lip_mc::check_declared`]
//! pass over the declared environment; they stay silent when that
//! environment is aperiodic or the reachable space exceeds the default
//! budget, and never contradict the structural rules — related findings
//! are cross-referenced through [`Diagnostic::related`].

use std::collections::VecDeque;

use lip_analysis::model::{pattern_accept_rate, pattern_data_rate, MarkedGraph};
use lip_core::RelayKind;
use lip_graph::{topology, ChannelId, Netlist, NodeId, NodeKind, SourceMap};
use lip_mc::{check_declared, DeclaredProof, McConfig};
use lip_sim::Ratio;

use crate::diag::{DiagChannel, DiagNode, Diagnostic, RuleId};
use crate::fix::FixIt;

/// Run every rule over `netlist` and return the findings, ordered by
/// rule code and then by primary span.
#[must_use]
pub fn lint(netlist: &Netlist, map: &SourceMap) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    lip001(netlist, map, &mut diags);
    lip002(netlist, map, &mut diags);
    lip003(netlist, map, &mut diags);
    // The marked-graph rules assume a structurally legal netlist; on a
    // broken one (combinational loops, open ports, shell-free rings)
    // the model is meaningless and LIP001/LIP002 already carry the
    // diagnosis.
    let illegal = diags.iter().any(|d| d.rule == RuleId::Lip002);
    if !illegal && netlist.validate().is_ok() {
        lip004(netlist, map, &mut diags);
        lip005(netlist, map, &mut diags);
        // The model-checked rules share one exhaustive state-space
        // pass. They go silent (never wrong) when the declared
        // environment is aperiodic or the space exceeds the budget.
        if let Ok(proof) = check_declared(netlist, &McConfig::default()) {
            lip006(netlist, map, &proof, &mut diags);
            lip007(netlist, map, &proof, &mut diags);
            lip008(&proof, &mut diags);
        }
        cross_link(&mut diags);
    }
    diags.sort_by_key(|d| (d.rule, d.primary));
    diags
}

/// Cross-reference rule pairs where one finding refines the other:
/// LIP006 is the model-checked upgrade of LIP003, LIP008 the
/// environment-aware refinement of LIP005. Only links pairs that both
/// fired on this run.
fn cross_link(diags: &mut [Diagnostic]) {
    const PAIRS: [(RuleId, RuleId); 2] = [
        (RuleId::Lip003, RuleId::Lip006),
        (RuleId::Lip005, RuleId::Lip008),
    ];
    for (a, b) in PAIRS {
        let has_a = diags.iter().any(|d| d.rule == a);
        let has_b = diags.iter().any(|d| d.rule == b);
        if !(has_a && has_b) {
            continue;
        }
        for d in diags.iter_mut() {
            if d.rule == a && !d.related.contains(&b) {
                d.related.push(b);
            }
            if d.rule == b && !d.related.contains(&a) {
                d.related.push(a);
            }
        }
    }
}

/// The steady-state system throughput the rule engine predicts:
/// the marked-graph minimum cycle ratio combined with every periodic
/// environment rate. `None` when an environment pattern is aperiodic
/// (nothing exact can be promised statically).
#[must_use]
pub fn predicted_throughput(netlist: &Netlist) -> Option<Ratio> {
    lip_analysis::predict_throughput(netlist)
}

fn node_ref(netlist: &Netlist, map: &SourceMap, id: NodeId) -> DiagNode {
    let name = netlist.node(id).name();
    DiagNode {
        id,
        name: if name.is_empty() {
            id.to_string()
        } else {
            name.to_owned()
        },
        span: map.node(id),
    }
}

fn channel_ref(netlist: &Netlist, map: &SourceMap, id: ChannelId) -> DiagChannel {
    let ch = netlist.channel(id);
    let from = node_ref(netlist, map, ch.producer.node);
    let to = node_ref(netlist, map, ch.consumer.node);
    DiagChannel {
        id,
        endpoints: format!(
            "{}:{} -> {}:{}",
            from.name, ch.producer.index, to.name, ch.consumer.index
        ),
        span: map.channel(id),
    }
}

fn first_span(nodes: &[DiagNode], channels: &[DiagChannel]) -> Option<lip_graph::Span> {
    channels
        .iter()
        .filter_map(|c| c.span)
        .chain(nodes.iter().filter_map(|n| n.span))
        .min()
}

/// LIP001 — two simplified shells wired back-to-back. The paper's
/// minimum-memory theorem: the simplified shell stores no stops, so
/// back-pressure would have to propagate combinationally through the
/// upstream shell; at least one stop-saving element (a half relay
/// station) is required between any two shells.
fn lip001(netlist: &Netlist, map: &SourceMap, out: &mut Vec<Diagnostic>) {
    for id in netlist.shell_to_shell_channels() {
        let ch = netlist.channel(id);
        let channel = channel_ref(netlist, map, id);
        let producer = node_ref(netlist, map, ch.producer.node);
        let consumer = node_ref(netlist, map, ch.consumer.node);
        let message = format!(
            "shells `{}` and `{}` are wired back-to-back with no stop-saving \
             element between them; a stop from `{1}` must be absorbed by at \
             least one memory element (minimum-memory theorem)",
            producer.name, consumer.name,
        );
        let fix = FixIt::InsertRelay {
            channel: id,
            kind: RelayKind::Half,
        };
        out.push(Diagnostic {
            rule: RuleId::Lip001,
            severity: RuleId::Lip001.default_severity(),
            message,
            primary: channel
                .span
                .or(first_span(std::slice::from_ref(&producer), &[])),
            nodes: vec![producer, consumer],
            fix_label: Some(format!(
                "insert a half relay station on `{}`",
                channel.endpoints
            )),
            channels: vec![channel],
            predicted_throughput: None,
            fix: Some(fix),
            related: Vec::new(),
        });
    }
}

/// LIP002 — a closed cycle of relay stations with no shell. Relay
/// stations have exactly one input and one output, so such a cycle is
/// a sealed ring: with a full or fifo station it holds no data forever
/// (nothing can ever enter), and an all-half ring is a combinational
/// data loop. Either way the loop is illegal LID.
fn lip002(netlist: &Netlist, map: &SourceMap, out: &mut Vec<Diagnostic>) {
    // The relay-only subgraph is functional (each relay has at most
    // one successor relay), so pointer-chasing with a visit state
    // finds every ring exactly once.
    let mut state = vec![0u8; netlist.node_count()]; // 0 new, 1 on path, 2 done
    for start in netlist.relays() {
        if state[start.index()] != 0 {
            continue;
        }
        let mut path: Vec<NodeId> = Vec::new();
        let mut cur = Some(start);
        while let Some(id) = cur {
            if state[id.index()] != 0 {
                break;
            }
            state[id.index()] = 1;
            path.push(id);
            cur = netlist
                .successors(id)
                .into_iter()
                .find(|&s| netlist.node(s).kind().is_relay());
        }
        if let Some(hit) = cur {
            if state[hit.index()] == 1 {
                let at = path.iter().position(|&n| n == hit).unwrap_or(0);
                let ring: Vec<NodeId> = path[at..].to_vec();
                emit_lip002(netlist, map, &ring, out);
            }
        }
        for id in &path {
            state[id.index()] = 2;
        }
    }
}

fn emit_lip002(netlist: &Netlist, map: &SourceMap, ring: &[NodeId], out: &mut Vec<Diagnostic>) {
    let nodes: Vec<DiagNode> = ring.iter().map(|&id| node_ref(netlist, map, id)).collect();
    let names: Vec<&str> = nodes.iter().map(|n| n.name.as_str()).collect();
    let sealed = ring.iter().any(|&id| {
        matches!(
            netlist.node(id).kind(),
            NodeKind::Relay {
                kind: RelayKind::Full | RelayKind::Fifo(_)
            }
        )
    });
    let consequence = if sealed {
        "no data item can ever enter the ring, so it idles forever"
    } else {
        "the half stations' bypasses close a combinational data loop"
    };
    let message = format!(
        "cycle of {} relay stations contains no shell (`{}` back to `{}`); \
         a legal LID loop needs at least one shell — {consequence}",
        ring.len(),
        names.join(" -> "),
        names[0],
    );
    out.push(Diagnostic {
        rule: RuleId::Lip002,
        severity: RuleId::Lip002.default_severity(),
        message,
        primary: first_span(&nodes, &[]),
        nodes,
        channels: Vec::new(),
        predicted_throughput: None,
        fix: None,
        fix_label: None,
        related: Vec::new(),
    });
}

/// LIP003 — guaranteed deadlock: the declared environment statically
/// prevents progress. A source whose periodic void pattern never
/// presents data starves every shell downstream of it; a sink whose
/// periodic stop pattern never accepts stalls every shell upstream
/// (a shell fires only when none of its outputs is stopped). This is
/// exactly the condition under which `verify::liveness` reports dead
/// shells, checked without simulating.
fn lip003(netlist: &Netlist, map: &SourceMap, out: &mut Vec<Diagnostic>) {
    let zero = Ratio::new(0, 1);
    for (id, node) in netlist.nodes() {
        let (is_source, starved) = match node.kind() {
            NodeKind::Source { void_pattern } => {
                (true, pattern_data_rate(void_pattern) == Some(zero))
            }
            NodeKind::Sink { stop_pattern } => {
                (false, pattern_accept_rate(stop_pattern) == Some(zero))
            }
            _ => continue,
        };
        if !starved {
            continue;
        }
        let affected = reachable_shells(netlist, id, is_source);
        if affected.is_empty() {
            continue;
        }
        let blocker = node_ref(netlist, map, id);
        let message = if is_source {
            format!(
                "source `{}` never presents data (void rate 1); {} downstream \
                 shell(s) are guaranteed to starve — the system deadlocks",
                blocker.name,
                affected.len(),
            )
        } else {
            format!(
                "sink `{}` stops on every cycle (accept rate 0); {} upstream \
                 shell(s) are guaranteed to stall — the system deadlocks",
                blocker.name,
                affected.len(),
            )
        };
        let mut nodes = vec![blocker];
        nodes.extend(affected.iter().map(|&s| node_ref(netlist, map, s)));
        out.push(Diagnostic {
            rule: RuleId::Lip003,
            severity: RuleId::Lip003.default_severity(),
            message,
            primary: first_span(&nodes[..1], &[]),
            nodes,
            channels: Vec::new(),
            predicted_throughput: Some(zero),
            fix: None,
            fix_label: None,
            related: Vec::new(),
        });
    }
}

/// Shells reachable from `from` following channels forward
/// (`forward = true`) or backward.
fn reachable_shells(netlist: &Netlist, from: NodeId, forward: bool) -> Vec<NodeId> {
    let mut seen = vec![false; netlist.node_count()];
    seen[from.index()] = true;
    let mut queue = VecDeque::from([from]);
    let mut shells = Vec::new();
    while let Some(id) = queue.pop_front() {
        let next = if forward {
            netlist.successors(id)
        } else {
            netlist.predecessors(id)
        };
        for n in next {
            if !seen[n.index()] {
                seen[n.index()] = true;
                if netlist.node(n).kind().is_shell() {
                    shells.push(n);
                }
                queue.push_back(n);
            }
        }
    }
    shells.sort_unstable();
    shells
}

/// LIP004 — reconvergent relay imbalance on a feed-forward design:
/// converging paths into a join differ by `i` relay stations, costing
/// `(m − i)/m` of the throughput until equalized.
fn lip004(netlist: &Netlist, map: &SourceMap, out: &mut Vec<Diagnostic>) {
    if !topology::is_acyclic(netlist) {
        return; // feedback loops adapt by resizing, not equalization
    }
    // Relay-count imbalance alone can be harmless (a half station adds
    // a place but no forward latency), so only report joins whose
    // reconvergence demonstrably costs throughput: in a feed-forward
    // design, a minimum cycle ratio below 1 comes from nothing else.
    let predicted = MarkedGraph::new(netlist).min_cycle_ratio();
    if predicted == Ratio::new(1, 1) {
        return;
    }
    let imbalanced: Vec<(NodeId, usize)> = topology::join_nodes(netlist)
        .into_iter()
        .filter_map(|j| {
            topology::join_imbalance(netlist, j)
                .filter(|&i| i > 0)
                .map(|i| (j, i))
        })
        .collect();
    for (join, i) in imbalanced {
        let node = node_ref(netlist, map, join);
        let message = format!(
            "join `{}` reconverges paths whose relay counts differ by i = {i}; \
             uncompensated reconvergence limits steady-state throughput to \
             {predicted} (the paper's (m - i)/m)",
            node.name,
        );
        out.push(Diagnostic {
            rule: RuleId::Lip004,
            severity: RuleId::Lip004.default_severity(),
            message,
            primary: node.span,
            nodes: vec![node],
            channels: Vec::new(),
            predicted_throughput: Some(predicted),
            fix: Some(FixIt::Equalize),
            fix_label: Some(
                "equalize path lengths with spare relay stations (analysis::equalize)".to_owned(),
            ),
            related: Vec::new(),
        });
    }
}

/// LIP005 — the slowest sub-topology dictates global throughput: a
/// minimum-cycle-ratio pass over the marked-graph model names the
/// binding cycle whenever the structural steady state is below 1
/// token/cycle.
fn lip005(netlist: &Netlist, map: &SourceMap, out: &mut Vec<Diagnostic>) {
    let graph = MarkedGraph::new(netlist);
    let Some((cycle, ratio)) = graph.binding_cycle() else {
        return;
    };
    let mut ids: Vec<NodeId> = Vec::new();
    for edge in &cycle {
        if !ids.contains(&edge.from) {
            ids.push(edge.from);
        }
    }
    let nodes: Vec<DiagNode> = ids.iter().map(|&id| node_ref(netlist, map, id)).collect();
    let names: Vec<&str> = nodes.iter().map(|n| n.name.as_str()).collect();
    let message = format!(
        "throughput bottleneck: the cycle through `{}` sustains at most \
         {ratio} tokens/cycle, and the slowest sub-topology dictates the \
         global throughput",
        names.join(" -> "),
    );
    out.push(Diagnostic {
        rule: RuleId::Lip005,
        severity: RuleId::Lip005.default_severity(),
        message,
        primary: first_span(&nodes, &[]),
        nodes,
        channels: Vec::new(),
        predicted_throughput: Some(ratio),
        fix: None,
        fix_label: None,
        related: Vec::new(),
    });
}

/// LIP006 — model-checked deadlock: the exhaustive declared-environment
/// search proved one or more shells never fire once the steady state is
/// entered. Unlike LIP003 this is decided over the actual reachable
/// state space, so it also catches protocol-level wedges whose endpoint
/// patterns look live.
fn lip006(netlist: &Netlist, map: &SourceMap, proof: &DeclaredProof, out: &mut Vec<Diagnostic>) {
    if proof.is_live() {
        return;
    }
    let full = proof.deadlock();
    let nodes: Vec<DiagNode> = proof
        .dead_shells
        .iter()
        .map(|&s| node_ref(netlist, map, s))
        .collect();
    let names: Vec<&str> = nodes.iter().map(|n| n.name.as_str()).collect();
    let message = if full {
        format!(
            "model checker proved whole-system deadlock: after cycle {} none \
             of the {} shell(s) ever fires again (all {} reachable states \
             searched)",
            proof.stem, proof.shell_count, proof.states,
        )
    } else {
        format!(
            "model checker proved partial deadlock: shell(s) `{}` never fire \
             once the steady state is entered at cycle {} (all {} reachable \
             states searched)",
            names.join("`, `"),
            proof.stem,
            proof.states,
        )
    };
    out.push(Diagnostic {
        rule: RuleId::Lip006,
        severity: RuleId::Lip006.default_severity(),
        message,
        primary: first_span(&nodes, &[]),
        nodes,
        channels: Vec::new(),
        predicted_throughput: full.then(|| Ratio::new(0, 1)),
        fix: None,
        fix_label: None,
        related: Vec::new(),
    });
}

/// LIP007 — over-provisioned FIFO: the model checker proved a maximum
/// reachable occupancy strictly below what the configured capacity
/// admits. Shrinking to one place above the proved bound is
/// behaviour-preserving — a FIFO asserts stop only when completely
/// full, and the search proved that fill level unreachable.
fn lip007(netlist: &Netlist, map: &SourceMap, proof: &DeclaredProof, out: &mut Vec<Diagnostic>) {
    for &(id, occ, cap) in &proof.relay_bounds {
        if !matches!(
            netlist.node(id).kind(),
            NodeKind::Relay {
                kind: RelayKind::Fifo(_)
            }
        ) {
            continue;
        }
        let tight = (occ + 1).max(2);
        if cap <= tight {
            continue;
        }
        let node = node_ref(netlist, map, id);
        let message = format!(
            "fifo relay station `{}` has capacity {cap} but a proved maximum \
             reachable occupancy of {occ}; {tight} place(s) suffice under the \
             declared environment",
            node.name,
        );
        let fix_label = Some(format!("shrink `{}` to fifo:{tight}", node.name));
        out.push(Diagnostic {
            rule: RuleId::Lip007,
            severity: RuleId::Lip007.default_severity(),
            message,
            primary: node.span,
            nodes: vec![node],
            channels: Vec::new(),
            predicted_throughput: None,
            fix: Some(FixIt::ResizeFifo {
                node: id,
                capacity: u8::try_from(tight).expect("fifo capacity fits u8"),
            }),
            fix_label,
            related: Vec::new(),
        });
    }
}

/// LIP008 — environment-limited throughput: the model checker proved a
/// sustained rate below 1 token/cycle that the structural bottleneck
/// rule (LIP005) either misses entirely (minimum cycle ratio 1) or
/// predicts differently. Either way the declared environment, not the
/// topology, is the binding constraint. Suppressed when any shell is
/// dead — LIP006 already carries that stronger verdict.
fn lip008(proof: &DeclaredProof, out: &mut Vec<Diagnostic>) {
    let Some(proved) = proof.system_throughput() else {
        return;
    };
    if proved.num() >= proved.den() || !proof.is_live() {
        return;
    }
    let structural = out
        .iter()
        .find(|d| d.rule == RuleId::Lip005)
        .and_then(|d| d.predicted_throughput);
    if structural == Some(proved) {
        return;
    }
    let message = match structural {
        Some(s) => format!(
            "model checker proved sustained throughput {proved}, but the \
             structural bottleneck analysis predicts {s}; the declared \
             environment is the binding constraint",
        ),
        None => format!(
            "model checker proved sustained throughput {proved} although no \
             structural bottleneck exists; the declared environment alone \
             limits the rate",
        ),
    };
    out.push(Diagnostic {
        rule: RuleId::Lip008,
        severity: RuleId::Lip008.default_severity(),
        message,
        primary: None,
        nodes: Vec::new(),
        channels: Vec::new(),
        predicted_throughput: Some(proved),
        fix: None,
        fix_label: None,
        related: Vec::new(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_core::pearl::IdentityPearl;
    use lip_core::Pattern;
    use lip_graph::generate;

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.rule.code()).collect()
    }

    #[test]
    fn fig1_fires_lip004_and_lip005_only() {
        let fig1 = generate::fig1();
        let diags = lint(&fig1.netlist, &SourceMap::new());
        assert_eq!(codes(&diags), ["LIP004", "LIP005"]);
        let expected = Ratio::new(4, 5);
        assert_eq!(diags[0].predicted_throughput, Some(expected));
        assert_eq!(diags[1].predicted_throughput, Some(expected));
        assert!(matches!(diags[0].fix, Some(FixIt::Equalize)));
    }

    #[test]
    fn back_to_back_shells_fire_lip001() {
        let mut n = Netlist::new();
        let s = n.add_source("in");
        let a = n.add_shell("a", IdentityPearl::new());
        let b = n.add_shell("b", IdentityPearl::new());
        let t = n.add_sink("out");
        n.connect(s, 0, a, 0).unwrap();
        let ab = n.connect(a, 0, b, 0).unwrap();
        n.connect(b, 0, t, 0).unwrap();
        let diags = lint(&n, &SourceMap::new());
        assert_eq!(codes(&diags), ["LIP001"]);
        assert_eq!(
            diags[0].fix,
            Some(FixIt::InsertRelay {
                channel: ab,
                kind: RelayKind::Half
            })
        );
        assert!(diags[0].message.contains("`a`"));
    }

    #[test]
    fn relay_ring_fires_lip002() {
        let mut n = Netlist::new();
        let r1 = n.add_relay(RelayKind::Full);
        let r2 = n.add_relay(RelayKind::Full);
        n.connect(r1, 0, r2, 0).unwrap();
        n.connect(r2, 0, r1, 0).unwrap();
        let diags = lint(&n, &SourceMap::new());
        assert_eq!(codes(&diags), ["LIP002"]);
        assert_eq!(diags[0].nodes.len(), 2);
        assert!(diags[0].message.contains("no shell"));
    }

    #[test]
    fn dead_environment_fires_lip003() {
        let mut n = Netlist::new();
        let s = n.add_source_with_pattern("in", Pattern::Always); // always void
        let a = n.add_shell("a", IdentityPearl::new());
        let t = n.add_sink("out");
        n.connect(s, 0, a, 0).unwrap();
        n.connect(a, 0, t, 0).unwrap();
        let diags = lint(&n, &SourceMap::new());
        // LIP006 (the model-checked proof) corroborates the structural
        // LIP003 verdict, and the two findings cross-reference.
        assert_eq!(codes(&diags), ["LIP003", "LIP006"]);
        assert_eq!(diags[0].predicted_throughput, Some(Ratio::new(0, 1)));
        assert!(diags[0].message.contains("starve"));
        assert_eq!(diags[0].related, [RuleId::Lip006]);
        assert_eq!(diags[1].related, [RuleId::Lip003]);
        assert_eq!(diags[1].predicted_throughput, Some(Ratio::new(0, 1)));
        assert!(diags[1].message.contains("whole-system deadlock"));
    }

    #[test]
    fn stopped_sink_fires_lip003() {
        let mut n = Netlist::new();
        let s = n.add_source("in");
        let a = n.add_shell("a", IdentityPearl::new());
        let t = n.add_sink_with_pattern("out", Pattern::Always); // always stop
        n.connect(s, 0, a, 0).unwrap();
        n.connect(a, 0, t, 0).unwrap();
        let diags = lint(&n, &SourceMap::new());
        assert_eq!(codes(&diags), ["LIP003", "LIP006"]);
        assert!(diags[0].message.contains("stall"));
    }

    #[test]
    fn oversized_fifo_fires_lip007_with_resize_fix() {
        // Chain relays never hold more than one item at full rate, so
        // every fifo:6 (one per gap) is provably over-provisioned.
        let chain = generate::chain(2, 1, RelayKind::Fifo(6));
        let diags = lint(&chain.netlist, &SourceMap::new());
        assert_eq!(codes(&diags), ["LIP007", "LIP007", "LIP007"]);
        let Some(FixIt::ResizeFifo { node, capacity }) = diags[0].fix else {
            panic!("LIP007 must carry a resize fix");
        };
        assert_eq!(capacity, 2);
        // Applying the fixes silences the rule without changing behavior.
        let mut fixed = chain.netlist.clone();
        let report = crate::fix::apply_fixits(&mut fixed, &diags).unwrap();
        assert_eq!(report.resized.len(), 3);
        assert!(matches!(
            fixed.node(node).kind(),
            NodeKind::Relay {
                kind: RelayKind::Fifo(2)
            }
        ));
        assert!(lint(&fixed, &SourceMap::new()).is_empty());
    }

    #[test]
    fn environment_limited_throughput_fires_lip008() {
        // Structurally this chain sustains 1 token/cycle (no LIP005),
        // but the source only offers data every other cycle: the model
        // checker proves the environment-limited rate 1/2.
        let mut n = Netlist::new();
        let s = n.add_source_with_pattern(
            "in",
            Pattern::EveryNth {
                period: 2,
                phase: 0,
            },
        );
        let a = n.add_shell("a", IdentityPearl::new());
        let t = n.add_sink("out");
        n.connect(s, 0, a, 0).unwrap();
        n.connect(a, 0, t, 0).unwrap();
        let diags = lint(&n, &SourceMap::new());
        assert_eq!(codes(&diags), ["LIP008"]);
        assert_eq!(diags[0].predicted_throughput, Some(Ratio::new(1, 2)));
        assert!(diags[0].message.contains("declared environment"));
        assert!(diags[0].related.is_empty()); // no LIP005 to link to
    }

    #[test]
    fn ring_fires_lip005_with_loop_formula() {
        // S = 2 shells, R = 3 relays: T = S/(S+R) = 2/5. The generator
        // puts every relay on the closing arc, so the two shells are
        // also back-to-back and LIP001 fires alongside the bottleneck.
        let ring = generate::ring(2, 3, RelayKind::Full);
        let diags = lint(&ring.netlist, &SourceMap::new());
        assert_eq!(codes(&diags), ["LIP001", "LIP005"]);
        let bottleneck = &diags[1];
        assert_eq!(bottleneck.predicted_throughput, Some(Ratio::new(2, 5)));
    }

    #[test]
    fn clean_designs_lint_clean() {
        // A tree is the paper's optimal topology: T = 1, nothing fires.
        let tree = generate::tree(2, 2, 1);
        assert!(lint(&tree.netlist, &SourceMap::new()).is_empty());
        let chain = generate::chain(3, 2, RelayKind::Full);
        assert!(lint(&chain.netlist, &SourceMap::new()).is_empty());
    }
}
