//! The diagnostic data model: rule identifiers, severities, and the
//! structured findings the rule engine emits.
//!
//! A [`Diagnostic`] is self-contained — node names, channel endpoints
//! and source spans are resolved at emission time — so renderers and
//! the JSON encoder never need the netlist back.

use std::fmt;

use lip_graph::{ChannelId, NodeId, Span};
use lip_sim::Ratio;

use crate::fix::FixIt;

/// Identifier of a lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RuleId {
    /// Minimum-memory violation: two simplified shells back-to-back
    /// with no stop-saving element between them.
    Lip001,
    /// Shell-free cycle: a closed loop of relay stations only.
    Lip002,
    /// Structural deadlock guarantee: a source that never presents
    /// data (or a sink that never accepts) starves or stalls shells —
    /// decided from the declared patterns alone, without a state-space
    /// search. [`RuleId::Lip006`] is the exhaustive, model-checked
    /// upgrade of this rule.
    Lip003,
    /// Reconvergent relay imbalance `i > 0` on a feed-forward join.
    Lip004,
    /// Global throughput bottleneck: a cycle with minimum cycle ratio
    /// below 1 dictates the design's steady-state throughput.
    Lip005,
    /// Model-checked deadlock: the exhaustive state-space search of
    /// `lip-mc` proves one or more shells never fire again under the
    /// declared environment. Catches deadlocks LIP003's structural
    /// check cannot see (e.g. protocol-level wedges with live-looking
    /// patterns), and carries the proof (stem, state count).
    Lip006,
    /// Over-provisioned FIFO: the model checker proves an occupancy
    /// bound strictly below what the configured capacity admits, so the
    /// station can shrink without changing behaviour.
    Lip007,
    /// Statically proved throughput below 1 token/cycle where the
    /// structural bottleneck rule (LIP005) is silent or disagrees: the
    /// binding constraint is the declared environment, not topology.
    Lip008,
}

impl RuleId {
    /// Every rule, in code order.
    pub const ALL: [RuleId; 8] = [
        RuleId::Lip001,
        RuleId::Lip002,
        RuleId::Lip003,
        RuleId::Lip004,
        RuleId::Lip005,
        RuleId::Lip006,
        RuleId::Lip007,
        RuleId::Lip008,
    ];

    /// Stable rule code, e.g. `"LIP001"`.
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            Self::Lip001 => "LIP001",
            Self::Lip002 => "LIP002",
            Self::Lip003 => "LIP003",
            Self::Lip004 => "LIP004",
            Self::Lip005 => "LIP005",
            Self::Lip006 => "LIP006",
            Self::Lip007 => "LIP007",
            Self::Lip008 => "LIP008",
        }
    }

    /// Parse a rule code (case-insensitive): `"LIP001"`, `"lip005"`.
    #[must_use]
    pub fn from_code(code: &str) -> Option<Self> {
        Self::ALL
            .into_iter()
            .find(|r| r.code().eq_ignore_ascii_case(code))
    }

    /// One-line description, for `--help` and the rule table.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            Self::Lip001 => "combinational stop chain: simplified shells back-to-back",
            Self::Lip002 => "shell-free cycle of relay stations",
            Self::Lip003 => "structurally guaranteed deadlock under the declared environment",
            Self::Lip004 => "reconvergent relay imbalance i > 0",
            Self::Lip005 => "global throughput bottleneck cycle",
            Self::Lip006 => "model-checked deadlock: shells proved to never fire again",
            Self::Lip007 => "over-provisioned FIFO: proved occupancy bound below capacity",
            Self::Lip008 => "statically proved throughput below 1, environment-limited",
        }
    }

    /// Default severity of this rule's diagnostics.
    #[must_use]
    pub fn default_severity(self) -> Severity {
        match self {
            Self::Lip001 | Self::Lip004 => Severity::Warning,
            Self::Lip002 | Self::Lip003 | Self::Lip006 => Severity::Error,
            Self::Lip005 | Self::Lip007 | Self::Lip008 => Severity::Info,
        }
    }

    /// Dense index into per-rule tables (`0..RuleId::ALL.len()`).
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for RuleId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// How bad a finding is. `Error` makes the CLI exit non-zero even
/// without `--deny`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Severity {
    /// Informational: legal design, quantified performance fact.
    Info,
    /// Suspicious: legal but violates the paper's design guidance.
    Warning,
    /// Broken: the design cannot work as a latency-insensitive system.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Self::Info => "info",
            Self::Warning => "warning",
            Self::Error => "error",
        })
    }
}

/// A node involved in a diagnostic, with its name and declaration span
/// resolved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagNode {
    /// The node in the linted netlist.
    pub id: NodeId,
    /// Display name (falls back to the node id when unnamed).
    pub name: String,
    /// Where the node was declared, if the netlist came from text.
    pub span: Option<Span>,
}

/// A channel involved in a diagnostic, with endpoints resolved to
/// `producer:port -> consumer:port` form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiagChannel {
    /// The channel in the linted netlist.
    pub id: ChannelId,
    /// Human-readable endpoints, e.g. `"A:0 -> B:1"`.
    pub endpoints: String,
    /// Span of the `connect` statement, if the netlist came from text.
    pub span: Option<Span>,
}

/// One structured finding from the rule engine.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which rule fired.
    pub rule: RuleId,
    /// Severity (the rule's default unless a renderer overrides it).
    pub severity: Severity,
    /// Human-readable description of the violation.
    pub message: String,
    /// Primary source position (first involved span, when available).
    pub primary: Option<Span>,
    /// Nodes involved, most significant first.
    pub nodes: Vec<DiagNode>,
    /// Channels involved.
    pub channels: Vec<DiagChannel>,
    /// Statically predicted steady-state throughput, where the rule
    /// computes one (LIP004/LIP005).
    pub predicted_throughput: Option<Ratio>,
    /// Machine-applicable fix, if the rule has one.
    pub fix: Option<FixIt>,
    /// Human description of `fix`.
    pub fix_label: Option<String>,
    /// Rules whose findings this diagnostic refines or corroborates
    /// (e.g. LIP006 relates to LIP003 when both fired on the design).
    pub related: Vec<RuleId>,
}

impl Diagnostic {
    /// Count diagnostics per severity: `(errors, warnings, infos)`.
    #[must_use]
    pub fn tally(diags: &[Diagnostic]) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for d in diags {
            match d.severity {
                Severity::Error => t.0 += 1,
                Severity::Warning => t.1 += 1,
                Severity::Info => t.2 += 1,
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for rule in RuleId::ALL {
            assert_eq!(RuleId::from_code(rule.code()), Some(rule));
            assert_eq!(RuleId::from_code(&rule.code().to_lowercase()), Some(rule));
        }
        assert_eq!(RuleId::from_code("LIP999"), None);
        assert_eq!(RuleId::from_code(""), None);
    }

    #[test]
    fn severity_orders_and_displays() {
        assert!(Severity::Info < Severity::Warning);
        assert!(Severity::Warning < Severity::Error);
        assert_eq!(Severity::Warning.to_string(), "warning");
    }
}
