//! `lip-lint` — a static protocol analyzer for latency-insensitive
//! designs.
//!
//! The paper's implementation issues are *structural* facts: a stop
//! cannot back-propagate combinationally through a chain of simplified
//! shells, a loop needs a shell, and throughput is a closed-form
//! function of topology. This crate detects all of them at
//! netlist-construction time, without running the simulator:
//!
//! * [`rules::lint`] walks a [`Netlist`](lip_graph::Netlist) and emits
//!   structured [`Diagnostic`]s with rule ids (`LIP001`–`LIP008`),
//!   severities, node/channel spans (resolved through the
//!   [`SourceMap`] of the textual format) and
//!   machine-applicable [`FixIt`]s — `LIP006`–`LIP008` carry exhaustive
//!   model-checking proofs from `lip_mc`;
//! * [`fix::apply_fixits`] rewrites the netlist per those fixes
//!   (`--fix` in the CLI);
//! * [`render`] provides the human renderer and the versioned JSON
//!   document ([`LINT_SCHEMA_VERSION`]);
//! * the `lip_lint` binary drives it all over `.lid` files with
//!   `--deny`/`--allow` per rule.
//!
//! Statically predicted throughputs are exact: the engine's
//! [`rules::predicted_throughput`] agrees with
//! `lip_sim::measure_batch_periodic` as an equality of
//! [`Ratio`](lip_sim::Ratio)s, which the crate's test suite enforces over the
//! random-netlist corpus.
//!
//! # Example
//!
//! ```
//! use lip_graph::generate;
//! use lip_lint::{lint, RuleId, SourceMap};
//!
//! let fig1 = generate::fig1();
//! let diags = lint(&fig1.netlist, &SourceMap::new());
//! // Fig. 1's reconvergent imbalance is caught without simulating:
//! assert_eq!(diags[0].rule, RuleId::Lip004);
//! assert_eq!(
//!     diags[0].predicted_throughput,
//!     Some(lip_sim::Ratio::new(4, 5)),
//! );
//! ```

#![warn(missing_docs)]

pub mod diag;
pub mod fix;
pub mod render;
pub mod rules;

pub use diag::{DiagChannel, DiagNode, Diagnostic, RuleId, Severity};
pub use fix::{apply_fixits, apply_fixits_compiled, FixIt, FixReport};
pub use render::{render_human, render_json, LINT_SCHEMA_VERSION};
pub use rules::{lint, predicted_throughput};

// Re-exported so CLI-level callers need only this crate.
pub use lip_graph::SourceMap;

/// Per-rule allow/deny policy, mirroring the CLI's `--allow`/`--deny`
/// flags. `allow` wins over `deny`; an allowed rule's diagnostics are
/// dropped entirely.
#[derive(Debug, Clone, Copy, Default)]
pub struct LintConfig {
    denied: [bool; RuleId::ALL.len()],
    allowed: [bool; RuleId::ALL.len()],
}

impl LintConfig {
    /// Default policy: nothing denied, nothing allowed away.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Treat any diagnostic of `rule` as fatal.
    pub fn deny(&mut self, rule: RuleId) {
        self.denied[rule.index()] = true;
    }

    /// Treat every rule as fatal.
    pub fn deny_all(&mut self) {
        self.denied = [true; RuleId::ALL.len()];
    }

    /// Suppress diagnostics of `rule` entirely.
    pub fn allow(&mut self, rule: RuleId) {
        self.allowed[rule.index()] = true;
    }

    /// Suppress every rule (renders every file clean).
    pub fn allow_all(&mut self) {
        self.allowed = [true; RuleId::ALL.len()];
    }

    /// Is `rule` suppressed?
    #[must_use]
    pub fn is_allowed(&self, rule: RuleId) -> bool {
        self.allowed[rule.index()]
    }

    /// Is `rule` fatal (and not suppressed)?
    #[must_use]
    pub fn is_denied(&self, rule: RuleId) -> bool {
        self.denied[rule.index()] && !self.is_allowed(rule)
    }

    /// Drop suppressed diagnostics.
    #[must_use]
    pub fn filter(&self, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        diags
            .into_iter()
            .filter(|d| !self.is_allowed(d.rule))
            .collect()
    }

    /// Should these (already filtered) diagnostics fail the run?
    /// `true` when any is `Error`-severity or of a denied rule.
    #[must_use]
    pub fn should_fail(&self, diags: &[Diagnostic]) -> bool {
        diags
            .iter()
            .any(|d| d.severity == Severity::Error || self.is_denied(d.rule))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lip_graph::generate;

    #[test]
    fn allow_wins_over_deny() {
        let fig1 = generate::fig1();
        let diags = lint(&fig1.netlist, &SourceMap::new());
        let mut config = LintConfig::new();
        config.deny_all();
        assert!(config.should_fail(&diags));
        config.allow(RuleId::Lip004);
        config.allow(RuleId::Lip005);
        let filtered = config.filter(diags);
        assert!(filtered.is_empty());
        assert!(!config.should_fail(&filtered));
    }

    #[test]
    fn errors_fail_without_deny() {
        let mut n = lip_graph::Netlist::new();
        let r1 = n.add_relay(lip_core::RelayKind::Full);
        let r2 = n.add_relay(lip_core::RelayKind::Full);
        n.connect(r1, 0, r2, 0).unwrap();
        n.connect(r2, 0, r1, 0).unwrap();
        let diags = lint(&n, &SourceMap::new());
        let config = LintConfig::new();
        assert!(config.should_fail(&diags), "LIP002 is error severity");
    }
}
